//! Decision sequences: how the driver tells the ORAQL pass what to
//! answer.
//!
//! The paper communicates a series of space-separated `1` (optimistic)
//! and `0` (pessimistic) characters via `-opt-aa-seq=<sequence>`, with a
//! `@<filename>` escape for sequences longer than the command-line
//! limit. The *frequency-space* strategy additionally needs
//! length-independent descriptors, which we model as residue-class
//! rules.

use std::collections::BTreeSet;

/// A complete decision source for one compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decisions {
    /// Explicit per-index decisions; indices beyond the end are answered
    /// with `tail` (the driver uses `tail = true`: end-of-sequence means
    /// optimistic, and `tail = false` to pad a pessimistic tail during
    /// probing).
    Explicit {
        /// Per-unique-query decisions, `true` = optimistic no-alias.
        seq: Vec<bool>,
        /// Decision for indices past the end of `seq`.
        tail: bool,
    },
    /// Frequency-space descriptor: indices in any listed residue class
    /// (`idx % modulus == residue`) are answered pessimistically, all
    /// others optimistically. Independent of the sequence length.
    PessimisticClasses(Vec<(u64, u64)>),
}

impl Decisions {
    /// Everything optimistic (the paper's "empty sequence").
    pub fn all_optimistic() -> Self {
        Decisions::Explicit {
            seq: Vec::new(),
            tail: true,
        }
    }

    /// Everything pessimistic (behaves like the baseline compile).
    pub fn all_pessimistic() -> Self {
        Decisions::Explicit {
            seq: Vec::new(),
            tail: false,
        }
    }

    /// The decision for unique query number `idx`.
    pub fn decide(&self, idx: u64) -> bool {
        match self {
            Decisions::Explicit { seq, tail } => seq.get(idx as usize).copied().unwrap_or(*tail),
            Decisions::PessimisticClasses(classes) => {
                !classes.iter().any(|&(m, r)| m != 0 && idx % m == r)
            }
        }
    }

    /// Number of pessimistic decisions among the first `n` indices.
    pub fn pessimistic_count(&self, n: u64) -> u64 {
        (0..n).filter(|&i| !self.decide(i)).count() as u64
    }

    /// An equivalent canonical form: explicit sequences drop trailing
    /// entries equal to `tail` (they are no-ops — the tail answers
    /// those indices identically), class descriptors are deduplicated
    /// and sorted. Two decision sources that answer every index the
    /// same way have equal canonical `Explicit` forms; the parallel
    /// driver's determinism tests compare through this because the
    /// sequential driver may append no-op trailing entries that
    /// speculative probing measures more precisely.
    pub fn canonical(&self) -> Decisions {
        match self {
            Decisions::Explicit { seq, tail } => {
                let mut seq = seq.clone();
                while seq.last() == Some(tail) {
                    seq.pop();
                }
                Decisions::Explicit { seq, tail: *tail }
            }
            Decisions::PessimisticClasses(classes) => {
                let set: BTreeSet<(u64, u64)> = classes.iter().copied().collect();
                Decisions::PessimisticClasses(set.into_iter().collect())
            }
        }
    }

    /// Serializes like the paper's `-opt-aa-seq` argument: explicit
    /// sequences as space-separated 0/1 (with `...1` / `...0` marking
    /// the implicit tail), class descriptors as `mod:res` pairs.
    pub fn render(&self) -> String {
        match self {
            Decisions::Explicit { seq, tail } => {
                let mut parts: Vec<String> = seq
                    .iter()
                    .map(|&b| if b { "1".into() } else { "0".into() })
                    .collect();
                parts.push(if *tail { "...1".into() } else { "...0".into() });
                parts.join(" ")
            }
            Decisions::PessimisticClasses(classes) => {
                let set: BTreeSet<(u64, u64)> = classes.iter().copied().collect();
                set.iter()
                    .map(|(m, r)| format!("{m}:{r}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        }
    }

    /// Parses the output of [`Decisions::render`] (also accepts a plain
    /// `0 1 0 ...` sequence without a tail marker, defaulting the tail
    /// to optimistic like the paper's pass does).
    pub fn parse(s: &str) -> Result<Self, String> {
        let toks: Vec<&str> = s.split_whitespace().collect();
        if toks.iter().any(|t| t.contains(':')) {
            let mut classes = Vec::new();
            for t in toks {
                let (m, r) = t
                    .split_once(':')
                    .ok_or_else(|| format!("bad class token {t:?}"))?;
                classes.push((
                    m.parse::<u64>().map_err(|e| e.to_string())?,
                    r.parse::<u64>().map_err(|e| e.to_string())?,
                ));
            }
            return Ok(Decisions::PessimisticClasses(classes));
        }
        let mut seq = Vec::new();
        let mut tail = true;
        for t in toks {
            match t {
                "0" => seq.push(false),
                "1" => seq.push(true),
                "...0" => tail = false,
                "...1" => tail = true,
                other => return Err(format!("bad sequence token {other:?}")),
            }
        }
        Ok(Decisions::Explicit { seq, tail })
    }

    /// Loads a sequence from a file (the `@<filename>` mechanism used
    /// when sequences exceed the command-line length limit).
    pub fn from_arg(arg: &str) -> Result<Self, String> {
        if let Some(path) = arg.strip_prefix('@') {
            let contents = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read sequence file {path}: {e}"))?;
            Self::parse(&contents)
        } else {
            Self::parse(arg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_with_tail() {
        let d = Decisions::Explicit {
            seq: vec![true, false, true],
            tail: true,
        };
        assert!(d.decide(0));
        assert!(!d.decide(1));
        assert!(d.decide(2));
        assert!(d.decide(3)); // past the end: optimistic
        assert_eq!(d.pessimistic_count(4), 1);
    }

    #[test]
    fn classes_decide_by_residue() {
        let d = Decisions::PessimisticClasses(vec![(4, 1)]);
        assert!(d.decide(0));
        assert!(!d.decide(1));
        assert!(!d.decide(5));
        assert!(d.decide(6));
    }

    #[test]
    fn render_parse_roundtrip_explicit() {
        let d = Decisions::Explicit {
            seq: vec![true, false],
            tail: false,
        };
        let s = d.render();
        assert_eq!(s, "1 0 ...0");
        assert_eq!(Decisions::parse(&s).unwrap(), d);
    }

    #[test]
    fn render_parse_roundtrip_classes() {
        let d = Decisions::PessimisticClasses(vec![(8, 3), (2, 0)]);
        let s = d.render();
        let d2 = Decisions::parse(&s).unwrap();
        for i in 0..32 {
            assert_eq!(d.decide(i), d2.decide(i), "index {i}");
        }
    }

    #[test]
    fn parse_plain_sequence_defaults_tail_optimistic() {
        let d = Decisions::parse("0 1 0").unwrap();
        assert!(!d.decide(0));
        assert!(d.decide(1));
        assert!(d.decide(99));
    }

    #[test]
    fn from_arg_file() {
        let path = std::env::temp_dir().join("oraql_seq_test.txt");
        std::fs::write(&path, "1 0 ...1").unwrap();
        let d = Decisions::from_arg(&format!("@{}", path.display())).unwrap();
        assert!(!d.decide(1));
        assert!(d.decide(7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Decisions::parse("1 2 0").is_err());
        assert!(Decisions::parse("4:").is_err());
    }

    #[test]
    fn canonical_drops_noop_trailing_entries() {
        let a = Decisions::Explicit {
            seq: vec![false, true, true],
            tail: true,
        };
        let b = Decisions::Explicit {
            seq: vec![false, true, true, true, true],
            tail: true,
        };
        assert_ne!(a, b);
        assert_eq!(a.canonical(), b.canonical());
        for i in 0..16 {
            assert_eq!(a.decide(i), a.canonical().decide(i), "index {i}");
        }
        // Entries different from the tail are kept.
        let c = Decisions::Explicit {
            seq: vec![true, false],
            tail: true,
        };
        assert_eq!(c.canonical(), c);
    }

    #[test]
    fn canonical_sorts_and_dedups_classes() {
        let a = Decisions::PessimisticClasses(vec![(4, 1), (2, 0), (4, 1)]);
        assert_eq!(
            a.canonical(),
            Decisions::PessimisticClasses(vec![(2, 0), (4, 1)])
        );
    }
}
