//! # oraql-ir — a typed SSA intermediate representation
//!
//! This crate is the substrate that stands in for LLVM IR in the ORAQL
//! reproduction. It provides:
//!
//! * a small, typed, SSA-form instruction set with opaque pointers
//!   ([`Inst`], [`Ty`], [`Value`]),
//! * functions, basic blocks and modules stored in index arenas
//!   ([`Function`], [`Module`]),
//! * the metadata alias analyses feed on: TBAA type tags, `noalias`
//!   parameter attributes, alias scopes and source locations
//!   ([`meta`]),
//! * a builder API ([`builder::FunctionBuilder`]), a textual printer
//!   ([`printer`]), a structural verifier ([`verify`]) and CFG
//!   utilities ([`mod@cfg`]).
//!
//! The design deliberately mirrors the parts of LLVM that matter for the
//! paper: memory is byte addressed, pointers are untyped, and every load
//! and store carries an access type plus optional TBAA/scope metadata, so
//! that the alias-analysis stack in `oraql-analysis` can reproduce the
//! query protocol that the ORAQL pass participates in.
//!
//! ## Quick example
//!
//! ```
//! use oraql_ir::builder::FunctionBuilder;
//! use oraql_ir::{Module, Ty, Value};
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new(&mut m, "sum", vec![Ty::Ptr, Ty::I64], Some(Ty::I64));
//! let ptr = b.arg(0);
//! let n = b.arg(1);
//! // ... build a loop summing n i64s starting at ptr ...
//! let first = b.load(Ty::I64, ptr);
//! b.ret(Some(first));
//! let f = b.finish();
//! assert!(oraql_ir::verify::verify_function(&m, f).is_ok());
//! ```

pub mod builder;
pub mod cfg;
pub mod inst;
pub mod interner;
pub mod meta;
pub mod module;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use inst::{BinOp, CallKind, CastKind, CmpPred, FuncRef, GepOffset, Inst, InstData, InstId};
pub use interner::{StrId, StringInterner};
pub use meta::{AccessMeta, ScopeId, SrcLoc, Target, TbaaTag, TbaaTree};
pub use module::{Function, FunctionId, Global, GlobalId, Module, Param};
pub use types::Ty;
pub use value::{BlockId, Value};
