/root/repo/target/debug/deps/oraql_ir-a1811f3f5e608c69.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/inst.rs crates/ir/src/interner.rs crates/ir/src/meta.rs crates/ir/src/module.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/liboraql_ir-a1811f3f5e608c69.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/inst.rs crates/ir/src/interner.rs crates/ir/src/meta.rs crates/ir/src/module.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/inst.rs:
crates/ir/src/interner.rs:
crates/ir/src/meta.rs:
crates/ir/src/module.rs:
crates/ir/src/printer.rs:
crates/ir/src/types.rs:
crates/ir/src/value.rs:
crates/ir/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
