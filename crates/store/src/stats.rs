//! Store observability: lock-free counters surfaced in driver
//! summaries and bench artifacts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of one [`crate::Store`] handle. All counters are
/// monotone within the handle's lifetime; [`StoreStats::snapshot`]
/// returns a consistent-enough copy for reporting (each field is read
/// atomically; the set is not a single atomic snapshot, which is fine
/// for summary tables).
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Lookups answered from the persistent executable-hash tier.
    pub exe_hits: AtomicU64,
    /// Lookups answered from the persistent decisions-digest tier.
    pub dec_hits: AtomicU64,
    /// Lookups that found nothing in the store.
    pub misses: AtomicU64,
    /// Records appended to the journal by this handle.
    pub appends: AtomicU64,
    /// Intact records loaded from the journal (open + refresh).
    pub recovered: AtomicU64,
    /// Checksum-corrupt / undecodable records skipped.
    pub dropped_corrupt: AtomicU64,
    /// Torn tails (partial final records) truncated away.
    pub dropped_torn: AtomicU64,
    /// Compactions performed by this handle.
    pub compactions: AtomicU64,
    /// Frames deliberately corrupted by an installed chaos-testing
    /// write corruptor (see `Store::set_write_corruptor`).
    pub injected_corrupt: AtomicU64,
}

/// A plain-value copy of [`StoreStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Lookups answered from the persistent executable-hash tier.
    pub exe_hits: u64,
    /// Lookups answered from the persistent decisions-digest tier.
    pub dec_hits: u64,
    /// Lookups that found nothing in the store.
    pub misses: u64,
    /// Records appended to the journal by this handle.
    pub appends: u64,
    /// Intact records loaded from the journal (open + refresh).
    pub recovered: u64,
    /// Checksum-corrupt / undecodable records skipped.
    pub dropped_corrupt: u64,
    /// Torn tails (partial final records) truncated away.
    pub dropped_torn: u64,
    /// Compactions performed by this handle.
    pub compactions: u64,
    /// Frames deliberately corrupted by a chaos-testing write
    /// corruptor.
    pub injected_corrupt: u64,
}

impl StatsSnapshot {
    /// Total persistent-tier hits (both key spaces).
    pub fn hits(&self) -> u64 {
        self.exe_hits + self.dec_hits
    }
}

impl StoreStats {
    /// Copies every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            exe_hits: r(&self.exe_hits),
            dec_hits: r(&self.dec_hits),
            misses: r(&self.misses),
            appends: r(&self.appends),
            recovered: r(&self.recovered),
            dropped_corrupt: r(&self.dropped_corrupt),
            dropped_torn: r(&self.dropped_torn),
            compactions: r(&self.compactions),
            injected_corrupt: r(&self.injected_corrupt),
        }
    }

    pub(crate) fn bump(a: &AtomicU64, by: u64) {
        a.fetch_add(by, Ordering::Relaxed);
    }
}

/// Process-wide registry handles mirroring the per-handle counters
/// above: `StoreStats` stays the source for per-store CLI lines, the
/// registry aggregates across every handle in the process (warm +
/// chaos stores, server shards) for `--metrics-out` and the served
/// `METRICS` op.
pub(crate) struct StoreObs {
    pub appends: &'static oraql_obs::Counter,
    pub fsyncs: &'static oraql_obs::Counter,
    pub recovered: &'static oraql_obs::Counter,
    pub dropped_corrupt: &'static oraql_obs::Counter,
    pub dropped_torn: &'static oraql_obs::Counter,
}

pub(crate) fn obs() -> &'static StoreObs {
    static M: std::sync::OnceLock<StoreObs> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let r = oraql_obs::global();
        StoreObs {
            appends: r.counter("oraql_store_appends_total"),
            fsyncs: r.counter("oraql_store_fsyncs_total"),
            recovered: r.counter("oraql_store_recovered_total"),
            dropped_corrupt: r.counter("oraql_store_dropped_corrupt_total"),
            dropped_torn: r.counter("oraql_store_dropped_torn_total"),
        }
    })
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits ({} exe / {} dec), {} misses, {} appends; journal: {} recovered, {} corrupt dropped, {} torn dropped",
            self.hits(),
            self.exe_hits,
            self.dec_hits,
            self.misses,
            self.appends,
            self.recovered,
            self.dropped_corrupt,
            self.dropped_torn
        )
    }
}
