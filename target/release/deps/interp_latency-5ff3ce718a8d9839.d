/root/repo/target/release/deps/interp_latency-5ff3ce718a8d9839.d: crates/bench/benches/interp_latency.rs

/root/repo/target/release/deps/interp_latency-5ff3ce718a8d9839: crates/bench/benches/interp_latency.rs

crates/bench/benches/interp_latency.rs:
