#!/usr/bin/env sh
# Tier-1 gate (see README.md "CI / tier-1 gate"): offline release build,
# full test suite, formatting, and lints with warnings denied. Run from
# the repo root; exits non-zero on the first failure.
set -eux

cargo build --release --offline
cargo test -q --offline
# The differential suite is the equivalence gate for the two interpreter
# modes (tree-walk reference vs. pre-decoded executor); run it by name so
# a filtered `cargo test` invocation can never silently skip it.
cargo test -q --offline --test differential_interp
# The persistent verdict store's robustness gates (journal recovery,
# warm-run determinism), likewise by name.
cargo test -q --offline -p oraql-store
cargo test -q --offline --test store_persistence
# The probe sandbox's robustness gates: the fault-injection harness
# itself and the chaos suite over real workloads, likewise by name.
cargo test -q --offline -p oraql-faults
cargo test -q --offline --test chaos_faults
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings

# Warm-cache smoke: the same case twice against one journal — the
# second run must answer at least one probe from the store.
STORE_TMP="$(mktemp -d)"
trap 'rm -rf "$STORE_TMP"' EXIT
target/release/oraql -b testsnap --store "$STORE_TMP/verdicts.journal" > /dev/null
target/release/oraql -b testsnap --store "$STORE_TMP/verdicts.journal" \
    | grep -E 'store: [1-9][0-9]* hits'

# Chaos smoke: the whole suite under a fixed fault-plan seed matrix,
# byte-identical across two runs, plus a parallel poisoning pass.
sh scripts/chaos.sh
