//! Golden tests for the IR printer and end-to-end determinism of the
//! textual form (the executable-hash cache hashes this text, so its
//! stability matters).

use oraql_suite::ir::builder::FunctionBuilder;
use oraql_suite::ir::{printer, Module, Ty, Value};

fn sample() -> (Module, oraql_suite::ir::FunctionId) {
    let mut m = Module::new("golden");
    let g = m.add_global("table", 64, vec![1, 2], true);
    let tag = m.tbaa.add("double", oraql_suite::ir::TbaaTag::ROOT);
    let mut b = FunctionBuilder::new(&mut m, "kernel", vec![Ty::Ptr, Ty::I64], Some(Ty::F64));
    b.set_src_file("kernel.c");
    b.set_noalias(0, true);
    let p = b.arg(0);
    let n = b.arg(1);
    b.set_loc("kernel.c", 12, 3);
    let acc = b.alloca(8, "acc");
    b.store(Ty::F64, Value::const_f64(0.0), acc);
    b.counted_loop(Value::ConstInt(0), n, |b, i| {
        let addr = b.gep_scaled(p, i, 8, 0);
        let v = b.load_tbaa(Ty::F64, addr, tag);
        let cur = b.load(Ty::F64, acc);
        let s = b.fadd(cur, v);
        b.store(Ty::F64, s, acc);
    });
    let t = b.gep(Value::Global(g), 8);
    let tv = b.load(Ty::F64, t);
    let fin = b.load(Ty::F64, acc);
    let out = b.fmul(fin, tv);
    b.ret(Some(out));
    let id = b.finish();
    (m, id)
}

#[test]
fn printer_golden_function() {
    let (m, id) = sample();
    let text = printer::function_str(&m, id);
    let expected = "\
define f64 @kernel(ptr noalias %arg0, i64 %arg1) target(host) {
bb0:
  %0 = alloca 8 ; acc ; kernel.c:12:3
  store f64 0.0, ptr %0 ; kernel.c:12:3
  br bb1 ; kernel.c:12:3
bb1:
  %3 = phi i64 [bb0: 0], [bb2: %11] ; kernel.c:12:3
  %4 = cmp Lt i64 %3, %arg1 ; kernel.c:12:3
  condbr %4, bb2, bb3 ; kernel.c:12:3
bb2:
  %6 = gep ptr %arg0, %3 x 8 + 0 ; kernel.c:12:3
  %7 = load f64, ptr %6, !tbaa double ; kernel.c:12:3
  %8 = load f64, ptr %0 ; kernel.c:12:3
  %9 = FAdd f64 %8, %7 ; kernel.c:12:3
  store f64 %9, ptr %0 ; kernel.c:12:3
  %11 = Add i64 %3, 1 ; kernel.c:12:3
  br bb1 ; kernel.c:12:3
bb3:
  %13 = gep ptr @table, 8 ; kernel.c:12:3
  %14 = load f64, ptr %13 ; kernel.c:12:3
  %15 = load f64, ptr %0 ; kernel.c:12:3
  %16 = FMul f64 %15, %14 ; kernel.c:12:3
  ret %16 ; kernel.c:12:3
}
";
    assert_eq!(text, expected, "printer output drifted:\n{text}");
}

#[test]
fn module_text_is_stable_across_rebuilds() {
    let (m1, _) = sample();
    let (m2, _) = sample();
    assert_eq!(printer::module_str(&m1), printer::module_str(&m2));
    // And stable when printed twice from the same module.
    assert_eq!(printer::module_str(&m1), printer::module_str(&m1));
}

#[test]
fn global_header_lines() {
    let (m, _) = sample();
    let text = printer::module_str(&m);
    assert!(text.contains("; module golden"));
    assert!(text.contains("@table = constant global [64 bytes]"));
}

#[test]
fn workload_module_text_round_trips_through_hashing() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let case = oraql_workloads::find_case("xsbench").unwrap();
    let h = |m: &Module| {
        let mut h = DefaultHasher::new();
        printer::module_str(m).hash(&mut h);
        h.finish()
    };
    assert_eq!(h(&(case.build)()), h(&(case.build)()));
}
