//! Local maximality of the driver's result (DESIGN §5): every `0` in
//! the final sequence is necessary — flipping any single pessimistic
//! decision to optimistic breaks verification. (The paper calls the
//! result "almost optimal": a greedy search cannot guarantee a global
//! optimum, but each kept pessimistic answer must be individually
//! justified.)

use oraql_suite::oraql::compile::{compile, CompileOptions};
use oraql_suite::oraql::{Decisions, Driver, DriverOptions, Verifier};
use oraql_suite::vm::Interpreter;

#[test]
fn every_pessimistic_decision_is_necessary_for_xsbench() {
    let case = oraql_workloads::find_case("xsbench").unwrap();
    let r = Driver::run(&case, DriverOptions::default()).unwrap();
    assert!(!r.fully_optimistic);
    let Decisions::Explicit { seq, tail } = &r.decisions else {
        panic!("chunked produces explicit sequences");
    };
    assert!(*tail, "tail beyond the prefix is optimistic");
    let verifier = Verifier::new(vec![r.baseline_run.stdout.clone()], &case.ignore_patterns);

    let pessimistic: Vec<usize> = seq
        .iter()
        .enumerate()
        .filter(|(_, &b)| !b)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(pessimistic.len() as u64, r.oraql.unique_pessimistic);

    for &flip in &pessimistic {
        let mut flipped = seq.clone();
        flipped[flip] = true;
        let d = Decisions::Explicit {
            seq: flipped,
            tail: true,
        };
        let c = compile(
            &*case.build,
            &CompileOptions::with_oraql(d, case.scope.clone()),
        );
        let ok = match Interpreter::run_main(&c.module) {
            Ok(out) => verifier.check(&out.stdout).is_ok(),
            Err(_) => false,
        };
        assert!(
            !ok,
            "flipping pessimistic decision at index {flip} still verifies: \
             the driver kept an unnecessary 0"
        );
    }

    // And the unflipped final sequence does verify.
    let c = compile(
        &*case.build,
        &CompileOptions::with_oraql(r.decisions.clone(), case.scope.clone()),
    );
    let out = Interpreter::run_main(&c.module).unwrap();
    assert!(verifier.check(&out.stdout).is_ok());
}

#[test]
fn testsnap_omp_final_sequence_is_minimal() {
    let case = oraql_workloads::find_case("testsnap_omp").unwrap();
    let r = Driver::run(&case, DriverOptions::default()).unwrap();
    let Decisions::Explicit { seq, .. } = &r.decisions else {
        panic!()
    };
    let verifier = Verifier::new(vec![r.baseline_run.stdout.clone()], &case.ignore_patterns);
    let mut necessary = 0usize;
    let mut total = 0usize;
    for (i, &b) in seq.iter().enumerate() {
        if b {
            continue;
        }
        total += 1;
        let mut flipped = seq.clone();
        flipped[i] = true;
        let c = compile(
            &*case.build,
            &CompileOptions::with_oraql(
                Decisions::Explicit {
                    seq: flipped,
                    tail: true,
                },
                case.scope.clone(),
            ),
        );
        let ok = match Interpreter::run_main(&c.module) {
            Ok(out) => verifier.check(&out.stdout).is_ok(),
            Err(_) => false,
        };
        if !ok {
            necessary += 1;
        }
    }
    assert_eq!(
        necessary, total,
        "{}/{} pessimistic decisions individually necessary",
        necessary, total
    );
}
