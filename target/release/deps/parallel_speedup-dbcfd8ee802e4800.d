/root/repo/target/release/deps/parallel_speedup-dbcfd8ee802e4800.d: tests/parallel_speedup.rs

/root/repo/target/release/deps/parallel_speedup-dbcfd8ee802e4800: tests/parallel_speedup.rs

tests/parallel_speedup.rs:
