//! Determinism of the parallel probing driver: `--jobs 1` and
//! `--jobs N` must agree on the final decision sequence and the
//! verification verdict on real workloads, and the trace/effort
//! counters must stay internally consistent.

use oraql::trace::TraceSink;
use oraql::{Driver, DriverOptions, ProbeKind};
use oraql_workloads as workloads;

fn run_with_jobs(name: &str, jobs: usize) -> oraql::DriverResult {
    let case = workloads::find_case(name).expect(name);
    Driver::run(
        &case,
        DriverOptions {
            jobs,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name} (jobs={jobs}): {e}"))
}

/// Two workloads that genuinely bisect (not fully optimistic): the
/// parallel driver must reproduce the sequential decisions and
/// verdicts. Decisions are compared in canonical form: the sequential
/// driver can append no-op trailing entries (its exe-cache quirk
/// reports the first inserter's unique count), so the raw vectors may
/// differ in semantically-irrelevant suffix length.
#[test]
fn parallel_jobs_match_sequential_on_workloads() {
    for name in ["testsnap_omp", "xsbench"] {
        let seq = run_with_jobs(name, 1);
        let par = run_with_jobs(name, 4);
        assert!(!seq.fully_optimistic, "{name}");
        assert_eq!(
            seq.decisions.canonical(),
            par.decisions.canonical(),
            "{name}"
        );
        assert_eq!(seq.fully_optimistic, par.fully_optimistic, "{name}");
        assert_eq!(
            seq.oraql.unique_pessimistic, par.oraql.unique_pessimistic,
            "{name}"
        );
        assert_eq!(seq.final_run.stdout, par.final_run.stdout, "{name}");
        // Speculation actually engaged in the parallel run.
        assert!(par.effort.spec_launched > 0, "{name}: {:?}", par.effort);
    }
}

/// Parallel runs are deterministic run-to-run: probe outcomes are pure
/// functions of the decision vector in parallel mode, so scheduling
/// cannot change the bisection path.
#[test]
fn parallel_runs_are_repeatable() {
    let a = run_with_jobs("xsbench", 4);
    let b = run_with_jobs("xsbench", 4);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.oraql.unique_pessimistic, b.oraql.unique_pessimistic);
    assert_eq!(a.final_run.stdout, b.final_run.stdout);
}

/// `jobs = 1` is bit-stable run-to-run (same probes, same counters) —
/// the "byte-for-byte reports" half of the determinism contract.
#[test]
fn sequential_runs_are_bit_stable() {
    for name in ["testsnap_omp", "xsbench"] {
        let a = run_with_jobs(name, 1);
        let b = run_with_jobs(name, 1);
        assert_eq!(a.decisions, b.decisions, "{name}");
        assert_eq!(a.effort, b.effort, "{name}");
        assert_eq!(a.final_run.stdout, b.final_run.stdout, "{name}");
    }
}

/// The probe trace agrees with the effort counters in sequential mode
/// and records speculative probes in parallel mode.
#[test]
fn trace_is_consistent_with_effort() {
    let case = workloads::find_case("testsnap_omp").expect("case");
    let sink = TraceSink::in_memory();
    let r = Driver::run(
        &case,
        DriverOptions {
            trace: Some(sink.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    let events = sink.events();
    let count = |k: ProbeKind| events.iter().filter(|e| e.kind == k).count() as u64;
    assert_eq!(count(ProbeKind::Executed), r.effort.tests_run);
    assert_eq!(count(ProbeKind::ExeCacheHit), r.effort.tests_cached);
    assert_eq!(count(ProbeKind::Deduced), r.effort.tests_deduced);
    assert_eq!(count(ProbeKind::DecisionCacheHit), 0); // jobs = 1

    let par_sink = TraceSink::in_memory();
    let r = Driver::run(
        &case,
        DriverOptions {
            jobs: 4,
            trace: Some(par_sink.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    let events = par_sink.events();
    assert!(events.iter().any(|e| e.speculative), "{:?}", r.effort);
}
