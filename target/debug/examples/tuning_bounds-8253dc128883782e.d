/root/repo/target/debug/examples/tuning_bounds-8253dc128883782e.d: examples/tuning_bounds.rs

/root/repo/target/debug/examples/tuning_bounds-8253dc128883782e: examples/tuning_bounds.rs

examples/tuning_bounds.rs:
