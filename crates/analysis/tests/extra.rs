//! Additional analysis-crate scenarios: interprocedural points-to flow
//! through memcpy, returns and externals; MemorySSA walk budgets; loop
//! and dominator edge cases; deep TBAA hierarchies.

use oraql_analysis::aa::QueryCtx;
use oraql_analysis::andersen::AndersenAA;
use oraql_analysis::basic::BasicAA;
use oraql_analysis::domtree::DomTree;
use oraql_analysis::loops::LoopForest;
use oraql_analysis::memssa::{MemAccess, MemorySsa};
use oraql_analysis::steens::SteensgaardAA;
use oraql_analysis::{AAManager, AliasAnalysis, AliasResult, MemoryLocation};
use oraql_ir::builder::{declare_function, FunctionBuilder};
use oraql_ir::module::FunctionId;
use oraql_ir::{Module, TbaaTag, Ty, Value};

fn ctx(m: &Module, f: FunctionId) -> QueryCtx<'_> {
    QueryCtx {
        module: m,
        func: f,
        pass: "test",
    }
}

#[test]
fn andersen_tracks_pointers_through_memcpy() {
    // A pointer stored in one buffer, memcpy'd into another, loaded
    // back: the loaded pointer must be related to the original target.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let src_buf = b.alloca(8, "src");
    let dst_buf = b.alloca(8, "dst");
    let obj = b.alloca(64, "obj");
    let other = b.alloca(64, "other");
    b.store(Ty::Ptr, obj, src_buf);
    b.memcpy(dst_buf, src_buf, Value::ConstInt(8));
    let l = b.load(Ty::Ptr, dst_buf);
    b.store(Ty::I64, Value::ConstInt(1), l);
    b.store(Ty::I64, Value::ConstInt(2), other);
    b.ret(None);
    let f = b.finish();
    let mut aa = AndersenAA::new(&m);
    // l may point to obj (through the copy)...
    assert_eq!(
        aa.alias(
            &ctx(&m, f),
            &MemoryLocation::precise(l, 8),
            &MemoryLocation::precise(obj, 8)
        ),
        AliasResult::MayAlias
    );
    // ...but provably not to `other`.
    assert_eq!(
        aa.alias(
            &ctx(&m, f),
            &MemoryLocation::precise(l, 8),
            &MemoryLocation::precise(other, 8)
        ),
        AliasResult::NoAlias
    );
}

#[test]
fn andersen_returned_pointers_flow_to_call_sites() {
    let mut m = Module::new("t");
    let getter = declare_function(&mut m, "get", vec![Ty::Ptr], Some(Ty::Ptr));
    {
        use oraql_ir::inst::Inst;
        let f = m.func_mut(getter);
        f.push_inst(
            oraql_ir::module::Function::ENTRY,
            Inst::Ret {
                val: Some(Value::Arg(0)),
            },
            None,
        );
    }
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let x = b.alloca(64, "x");
    let y = b.alloca(64, "y");
    let r = b.call(getter, vec![x], Some(Ty::Ptr)).unwrap();
    b.store(Ty::I64, Value::ConstInt(1), r);
    b.store(Ty::I64, Value::ConstInt(2), y);
    b.ret(None);
    let f = b.finish();
    let mut aa = AndersenAA::new(&m);
    // r is x (through the identity function): may alias x, not y.
    assert_eq!(
        aa.alias(
            &ctx(&m, f),
            &MemoryLocation::precise(r, 8),
            &MemoryLocation::precise(x, 8)
        ),
        AliasResult::MayAlias
    );
    assert_eq!(
        aa.alias(
            &ctx(&m, f),
            &MemoryLocation::precise(r, 8),
            &MemoryLocation::precise(y, 8)
        ),
        AliasResult::NoAlias
    );
}

#[test]
fn steensgaard_returned_pointers_unify() {
    let mut m = Module::new("t");
    let getter = declare_function(&mut m, "get", vec![Ty::Ptr], Some(Ty::Ptr));
    {
        use oraql_ir::inst::Inst;
        let f = m.func_mut(getter);
        f.push_inst(
            oraql_ir::module::Function::ENTRY,
            Inst::Ret {
                val: Some(Value::Arg(0)),
            },
            None,
        );
    }
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let x = b.alloca(64, "x");
    let r = b.call(getter, vec![x], Some(Ty::Ptr)).unwrap();
    b.store(Ty::I64, Value::ConstInt(1), r);
    b.store(Ty::I64, Value::ConstInt(2), x);
    b.ret(None);
    let f = b.finish();
    let mut aa = SteensgaardAA::new(&m);
    assert_eq!(
        aa.alias(
            &ctx(&m, f),
            &MemoryLocation::precise(r, 8),
            &MemoryLocation::precise(x, 8)
        ),
        AliasResult::MayAlias
    );
}

#[test]
fn memssa_walk_budget_gives_conservative_answer() {
    // A long chain of non-aliasing stores before the load: with a tiny
    // budget the walk must stop at a Def (conservative), never claim
    // LiveOnEntry.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
    let target = b.arg(0);
    let scratch = b.alloca(8 * 64, "scratch");
    for i in 0..64i64 {
        let p = b.gep(scratch, 8 * i);
        b.store(Ty::I64, Value::ConstInt(i), p);
    }
    let l = b.load(Ty::I64, target);
    b.print("{}", vec![l]);
    b.ret(None);
    let id = b.finish();
    let f = m.func(id);
    let mut mssa = MemorySsa::build(f);
    mssa.walk_budget = 5;
    let load = f
        .live_insts()
        .find(|&i| matches!(f.inst(i), oraql_ir::inst::Inst::Load { ty: Ty::I64, .. }))
        .unwrap();
    let loc = MemoryLocation::of_access(f, load).unwrap();
    let start = mssa.defining_access(f, load);
    let mut aa = AAManager::new();
    aa.add(Box::new(BasicAA::new()));
    let r = mssa.clobber_walk(&m, id, &mut aa, &loc, start);
    assert!(matches!(r, MemAccess::Def(_)), "budget must stop at a def");
    // With the default budget the walk sees through all 64 stores.
    let mssa2 = MemorySsa::build(f);
    let r2 = mssa2.clobber_walk(&m, id, &mut aa, &loc, start);
    assert_eq!(r2, MemAccess::LiveOnEntry);
}

#[test]
fn tbaa_deep_hierarchy() {
    let mut m = Module::new("t");
    let agg = m.tbaa.add("struct Particle", TbaaTag::ROOT);
    let fx = m.tbaa.add("Particle::x", agg);
    let fe = m.tbaa.add("Particle::e", agg);
    let fxx = m.tbaa.add("Particle::x::lo", fx);
    assert!(m.tbaa.compatible(fx, fxx));
    assert!(m.tbaa.compatible(agg, fxx));
    assert!(!m.tbaa.compatible(fe, fxx));
    assert!(!m.tbaa.compatible(fe, fx));
    assert!(m.tbaa.compatible(TbaaTag::ROOT, fe));
}

#[test]
fn loop_without_unique_preheader_is_skipped_by_helpers() {
    // Two distinct outside edges into the header: no preheader.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::I1], None);
    let header = b.new_block();
    let body = b.new_block();
    let other = b.new_block();
    let exit = b.new_block();
    b.cond_br(b.arg(0), header, other);
    b.switch_to(other);
    b.br(header);
    b.switch_to(header);
    b.cond_br(b.arg(0), body, exit);
    b.switch_to(body);
    b.br(header);
    b.switch_to(exit);
    b.ret(None);
    let id = b.finish();
    let f = m.func(id);
    let dt = DomTree::build(f);
    let forest = LoopForest::build(f, &dt);
    assert_eq!(forest.loops.len(), 1);
    assert_eq!(forest.preheader(f, &forest.loops[0]), None);
}

#[test]
fn chain_order_determines_answerer() {
    // BasicAA resolves alloca-vs-alloca before TBAA even though both
    // could; the chain records BasicAA as the answerer.
    let mut m = Module::new("t");
    let int_tag = m.tbaa.add("int", TbaaTag::ROOT);
    let dbl_tag = m.tbaa.add("double", TbaaTag::ROOT);
    let mut b = FunctionBuilder::new(&mut m, "f", vec![], None);
    let x = b.alloca(8, "x");
    let y = b.alloca(8, "y");
    b.store_tbaa(Ty::I64, Value::ConstInt(1), x, int_tag);
    b.store_tbaa(Ty::F64, Value::const_f64(1.0), y, dbl_tag);
    b.ret(None);
    let id = b.finish();
    let mut aa = AAManager::new();
    aa.add(Box::new(BasicAA::new()));
    aa.add(Box::new(oraql_analysis::tbaa::TypeBasedAA::new()));
    aa.enable_log();
    let f = m.func(id);
    let s0 = f.blocks[0].insts[2];
    let s1 = f.blocks[0].insts[3];
    let la = MemoryLocation::of_access(f, s0).unwrap();
    let lb = MemoryLocation::of_access(f, s1).unwrap();
    assert_eq!(aa.alias(&m, id, &la, &lb), AliasResult::NoAlias);
    let log = aa.take_log();
    assert_eq!(log[0].answered_by, Some("BasicAA"));
}

#[test]
fn external_call_arguments_escape_in_andersen() {
    // A pointer passed to an unknown external could be stored anywhere:
    // loads through unknown pointers may alias it afterwards.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![Ty::Ptr], None);
    let x = b.alloca(64, "x");
    // Pass x's address to an external (not one of the pure math fns).
    let sym_exists = b.call_external(
        "pow",
        vec![Value::const_f64(1.0), Value::const_f64(2.0)],
        Some(Ty::F64),
    );
    let _ = sym_exists;
    b.store(Ty::I64, Value::ConstInt(0), x);
    let via_arg = b.arg(0);
    b.store(Ty::I64, Value::ConstInt(1), via_arg);
    b.ret(None);
    let f = b.finish();
    let mut aa = AndersenAA::new(&m);
    // Root-function arg points to universal: may alias anything.
    assert_eq!(
        aa.alias(
            &ctx(&m, f),
            &MemoryLocation::precise(via_arg, 8),
            &MemoryLocation::precise(x, 8)
        ),
        AliasResult::MayAlias
    );
}
