//! The verdict-server wire protocol: framing, operations, status codes.
//!
//! Everything on the wire is a **frame** — a little-endian `u32` length
//! prefix followed by that many payload bytes:
//!
//! ```text
//! frame:    len u32 LE | payload (len bytes)
//! request:  version u8 | op u8     | body
//! response: version u8 | status u8 | body
//! ```
//!
//! The version byte is [`VERSION`]; a server that does not speak the
//! client's version answers [`Status::BadVersion`] instead of guessing.
//! The authoritative human-readable description (including a worked hex
//! example that `tests/served_roundtrip.rs` pins against this module)
//! lives in `docs/PROTOCOL.md`.
//!
//! # Concurrency contract
//!
//! The module is pure data plus blocking frame I/O helpers; nothing
//! here holds state. [`read_frame`]/[`write_frame`] may be called from
//! any thread on any `Read`/`Write`; one connection must not be shared
//! between threads without external serialization (interleaved frames
//! are garbage).

use std::io::{self, Read, Write};

/// Protocol version spoken by this build (request and response byte 0).
pub const VERSION: u8 = 1;

/// Upper bound on one frame's payload. Mirrors the store journal's
/// `MAX_PAYLOAD` defense: a corrupted or hostile length prefix must not
/// force a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Request operations (request byte 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Liveness check; empty body, empty `Ok` response.
    Ping = 0x01,
    /// Look up a decisions-digest verdict: body `key u64 LE`.
    GetDec = 0x02,
    /// Look up an executable-hash verdict: body `key u64 LE`.
    GetExe = 0x03,
    /// Append a decisions-digest verdict: body `key u64 | pass u8 | unique u64`.
    PutDec = 0x04,
    /// Append an executable-hash verdict: same body shape as [`Op::PutDec`].
    PutExe = 0x05,
    /// Look up the reference outputs for a case salt: body `salt u64 LE`.
    GetRefs = 0x06,
    /// Append reference outputs: body `salt u64 | utf8 bytes` (the
    /// store's `\x1e`-joined encoding).
    PutRefs = 0x07,
    /// Server + per-shard counters as UTF-8 text; empty body.
    Stats = 0x08,
    /// Force a group fsync of every dirty shard now; empty body.
    Sync = 0x09,
    /// Compact every shard journal; empty body, text summary response.
    Compact = 0x0a,
    /// Metrics-registry snapshot as Prometheus-style text exposition;
    /// empty body. See `docs/OPERATIONS.md` § Monitoring.
    Metrics = 0x0b,
}

impl Op {
    /// Decodes a request op byte.
    pub fn from_byte(b: u8) -> Option<Op> {
        Some(match b {
            0x01 => Op::Ping,
            0x02 => Op::GetDec,
            0x03 => Op::GetExe,
            0x04 => Op::PutDec,
            0x05 => Op::PutExe,
            0x06 => Op::GetRefs,
            0x07 => Op::PutRefs,
            0x08 => Op::Stats,
            0x09 => Op::Sync,
            0x0a => Op::Compact,
            0x0b => Op::Metrics,
            _ => return None,
        })
    }
}

/// Response status codes (response byte 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; body is op-specific (see [`Response`]).
    Ok = 0x00,
    /// A lookup found no record for the key; empty body.
    NotFound = 0x01,
    /// The request payload could not be decoded; empty body.
    BadFrame = 0x02,
    /// The request op byte is unknown; empty body.
    BadOp = 0x03,
    /// The request version byte is not [`VERSION`]; body carries the
    /// server's version byte.
    BadVersion = 0x04,
    /// The server hit an I/O error executing the request; body is a
    /// UTF-8 error message.
    Io = 0x05,
}

impl Status {
    /// Decodes a response status byte.
    pub fn from_byte(b: u8) -> Option<Status> {
        Some(match b {
            0x00 => Status::Ok,
            0x01 => Status::NotFound,
            0x02 => Status::BadFrame,
            0x03 => Status::BadOp,
            0x04 => Status::BadVersion,
            0x05 => Status::Io,
            _ => return None,
        })
    }

    /// Stable human-readable name (used in errors and docs).
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::NotFound => "not-found",
            Status::BadFrame => "bad-frame",
            Status::BadOp => "bad-op",
            Status::BadVersion => "bad-version",
            Status::Io => "io-error",
        }
    }
}

/// One decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// [`Op::Ping`].
    Ping,
    /// [`Op::GetDec`].
    GetDec {
        /// Salted decisions digest.
        key: u64,
    },
    /// [`Op::GetExe`].
    GetExe {
        /// Salted module hash.
        key: u64,
    },
    /// [`Op::PutDec`].
    PutDec {
        /// Salted decisions digest.
        key: u64,
        /// Did the compiled program verify?
        pass: bool,
        /// Unique ORAQL queries the probe reported.
        unique: u64,
    },
    /// [`Op::PutExe`].
    PutExe {
        /// Salted module hash.
        key: u64,
        /// Did the compiled program verify?
        pass: bool,
        /// Unique ORAQL queries the probe reported.
        unique: u64,
    },
    /// [`Op::GetRefs`].
    GetRefs {
        /// Case salt.
        salt: u64,
    },
    /// [`Op::PutRefs`].
    PutRefs {
        /// Case salt.
        salt: u64,
        /// `\x1e`-joined accepted reference outputs.
        refs: String,
    },
    /// [`Op::Stats`].
    Stats,
    /// [`Op::Sync`].
    Sync,
    /// [`Op::Compact`].
    Compact,
    /// [`Op::Metrics`].
    Metrics,
}

impl Request {
    /// The op byte this request travels under.
    pub fn op(&self) -> Op {
        match self {
            Request::Ping => Op::Ping,
            Request::GetDec { .. } => Op::GetDec,
            Request::GetExe { .. } => Op::GetExe,
            Request::PutDec { .. } => Op::PutDec,
            Request::PutExe { .. } => Op::PutExe,
            Request::GetRefs { .. } => Op::GetRefs,
            Request::PutRefs { .. } => Op::PutRefs,
            Request::Stats => Op::Stats,
            Request::Sync => Op::Sync,
            Request::Compact => Op::Compact,
            Request::Metrics => Op::Metrics,
        }
    }

    fn body(&self) -> Vec<u8> {
        match self {
            Request::Ping
            | Request::Stats
            | Request::Sync
            | Request::Compact
            | Request::Metrics => Vec::new(),
            Request::GetDec { key } | Request::GetExe { key } | Request::GetRefs { salt: key } => {
                key.to_le_bytes().to_vec()
            }
            Request::PutDec { key, pass, unique } | Request::PutExe { key, pass, unique } => {
                let mut b = Vec::with_capacity(17);
                b.extend_from_slice(&key.to_le_bytes());
                b.push(u8::from(*pass));
                b.extend_from_slice(&unique.to_le_bytes());
                b
            }
            Request::PutRefs { salt, refs } => {
                let mut b = Vec::with_capacity(8 + refs.len());
                b.extend_from_slice(&salt.to_le_bytes());
                b.extend_from_slice(refs.as_bytes());
                b
            }
        }
    }

    /// Encodes the request as one complete frame (length prefix
    /// included).
    pub fn encode(&self) -> Vec<u8> {
        frame(&[VERSION, self.op() as u8], &self.body())
    }

    /// Decodes a request from a frame *payload* (the bytes after the
    /// length prefix). A decode failure maps onto the status the server
    /// must answer with.
    pub fn decode(payload: &[u8]) -> Result<Request, Status> {
        let [version, op, body @ ..] = payload else {
            return Err(Status::BadFrame);
        };
        if *version != VERSION {
            return Err(Status::BadVersion);
        }
        let op = Op::from_byte(*op).ok_or(Status::BadOp)?;
        let key_of = |b: &[u8]| -> Result<u64, Status> {
            let raw: [u8; 8] = b.try_into().map_err(|_| Status::BadFrame)?;
            Ok(u64::from_le_bytes(raw))
        };
        let verdict_of = |b: &[u8]| -> Result<(u64, bool, u64), Status> {
            if b.len() != 17 {
                return Err(Status::BadFrame);
            }
            let key = key_of(&b[0..8])?;
            let pass = match b[8] {
                0 => false,
                1 => true,
                _ => return Err(Status::BadFrame),
            };
            Ok((key, pass, key_of(&b[9..17])?))
        };
        Ok(match op {
            Op::Ping | Op::Stats | Op::Sync | Op::Compact | Op::Metrics => {
                if !body.is_empty() {
                    return Err(Status::BadFrame);
                }
                match op {
                    Op::Ping => Request::Ping,
                    Op::Stats => Request::Stats,
                    Op::Sync => Request::Sync,
                    Op::Metrics => Request::Metrics,
                    _ => Request::Compact,
                }
            }
            Op::GetDec => Request::GetDec { key: key_of(body)? },
            Op::GetExe => Request::GetExe { key: key_of(body)? },
            Op::GetRefs => Request::GetRefs {
                salt: key_of(body)?,
            },
            Op::PutDec => {
                let (key, pass, unique) = verdict_of(body)?;
                Request::PutDec { key, pass, unique }
            }
            Op::PutExe => {
                let (key, pass, unique) = verdict_of(body)?;
                Request::PutExe { key, pass, unique }
            }
            Op::PutRefs => {
                if body.len() < 8 {
                    return Err(Status::BadFrame);
                }
                Request::PutRefs {
                    salt: key_of(&body[0..8])?,
                    refs: String::from_utf8(body[8..].to_vec()).map_err(|_| Status::BadFrame)?,
                }
            }
        })
    }
}

/// One decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// [`Status::Ok`] with an empty body (ping, puts, sync).
    Ok,
    /// [`Status::Ok`] carrying a verdict (get-dec / get-exe).
    Verdict {
        /// Did the compiled program verify?
        pass: bool,
        /// Unique ORAQL queries the recorded probe reported.
        unique: u64,
    },
    /// [`Status::Ok`] carrying UTF-8 text (refs, stats, compact
    /// summaries).
    Text(String),
    /// [`Status::NotFound`] — the lookup key has no record.
    NotFound,
    /// Any error status; the string is the (possibly empty) body.
    Err(Status, String),
}

impl Response {
    /// Encodes the response as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok => frame(&[VERSION, Status::Ok as u8], &[]),
            Response::Verdict { pass, unique } => {
                let mut body = Vec::with_capacity(9);
                body.push(u8::from(*pass));
                body.extend_from_slice(&unique.to_le_bytes());
                frame(&[VERSION, Status::Ok as u8], &body)
            }
            Response::Text(t) => frame(&[VERSION, Status::Ok as u8], t.as_bytes()),
            Response::NotFound => frame(&[VERSION, Status::NotFound as u8], &[]),
            Response::Err(status, msg) => frame(&[VERSION, *status as u8], msg.as_bytes()),
        }
    }

    /// Decodes a response from a frame payload. `op` is the request
    /// this response answers — `Ok` bodies are op-specific.
    pub fn decode(op: Op, payload: &[u8]) -> Result<Response, String> {
        let [version, status, body @ ..] = payload else {
            return Err("short response payload".into());
        };
        if *version != VERSION {
            return Err(format!("server speaks protocol version {version}"));
        }
        let status = Status::from_byte(*status)
            .ok_or_else(|| format!("unknown response status {status:#04x}"))?;
        match status {
            Status::Ok => Ok(match op {
                Op::GetDec | Op::GetExe => {
                    if body.len() != 9 || body[0] > 1 {
                        return Err("malformed verdict body".into());
                    }
                    let raw: [u8; 8] = body[1..9].try_into().map_err(|_| "short verdict body")?;
                    Response::Verdict {
                        pass: body[0] == 1,
                        unique: u64::from_le_bytes(raw),
                    }
                }
                Op::GetRefs | Op::Stats | Op::Compact | Op::Metrics => Response::Text(
                    String::from_utf8(body.to_vec()).map_err(|_| "non-UTF-8 text body")?,
                ),
                Op::Ping | Op::PutDec | Op::PutExe | Op::PutRefs | Op::Sync => Response::Ok,
            }),
            Status::NotFound => Ok(Response::NotFound),
            err => Ok(Response::Err(
                err,
                String::from_utf8_lossy(body).into_owned(),
            )),
        }
    }
}

fn frame(head: &[u8], body: &[u8]) -> Vec<u8> {
    let len = head.len() + body.len();
    let mut f = Vec::with_capacity(4 + len);
    f.extend_from_slice(&(len as u32).to_le_bytes());
    f.extend_from_slice(head);
    f.extend_from_slice(body);
    f
}

/// Reads one frame and returns its payload. `Ok(None)` is a clean EOF
/// *between* frames (the peer hung up); EOF mid-frame, or a length
/// prefix past [`MAX_FRAME`], is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one already-encoded frame (as produced by
/// [`Request::encode`] / [`Response::encode`]).
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::GetDec { key: 7 },
            Request::GetExe { key: u64::MAX },
            Request::PutDec {
                key: 0x0123_4567_89ab_cdef,
                pass: true,
                unique: 42,
            },
            Request::PutExe {
                key: 1,
                pass: false,
                unique: 0,
            },
            Request::GetRefs { salt: 99 },
            Request::PutRefs {
                salt: 3,
                refs: "checksum 1.5\n\x1eother\n".into(),
            },
            Request::Stats,
            Request::Sync,
            Request::Compact,
            Request::Metrics,
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in all_requests() {
            let f = req.encode();
            let len = u32::from_le_bytes(f[0..4].try_into().unwrap()) as usize;
            assert_eq!(len, f.len() - 4, "{req:?}");
            assert_eq!(Request::decode(&f[4..]), Ok(req));
        }
    }

    #[test]
    fn response_roundtrip() {
        let cases = [
            (Op::Ping, Response::Ok),
            (
                Op::GetDec,
                Response::Verdict {
                    pass: true,
                    unique: 42,
                },
            ),
            (
                Op::GetExe,
                Response::Verdict {
                    pass: false,
                    unique: 0,
                },
            ),
            (Op::GetExe, Response::NotFound),
            (Op::GetRefs, Response::Text("a\x1eb".into())),
            (Op::Stats, Response::Text("total: 0 lookups".into())),
            (Op::PutDec, Response::Ok),
            (Op::Sync, Response::Ok),
            (Op::Compact, Response::Text("compacted 3 shards".into())),
            (
                Op::Metrics,
                Response::Text(
                    "# TYPE oraql_store_appends_total counter\noraql_store_appends_total 7\n"
                        .into(),
                ),
            ),
            (Op::Ping, Response::Err(Status::BadOp, String::new())),
            (Op::GetDec, Response::Err(Status::Io, "disk died".into())),
        ];
        for (op, resp) in cases {
            let f = resp.encode();
            assert_eq!(Response::decode(op, &f[4..]), Ok(resp.clone()), "{resp:?}");
        }
    }

    #[test]
    fn malformed_requests_classify() {
        assert_eq!(Request::decode(&[]), Err(Status::BadFrame));
        assert_eq!(Request::decode(&[VERSION]), Err(Status::BadFrame));
        assert_eq!(
            Request::decode(&[9, Op::Ping as u8]),
            Err(Status::BadVersion)
        );
        assert_eq!(Request::decode(&[VERSION, 0xee]), Err(Status::BadOp));
        // Ping carries no body.
        assert_eq!(
            Request::decode(&[VERSION, Op::Ping as u8, 1]),
            Err(Status::BadFrame)
        );
        // Truncated key.
        assert_eq!(
            Request::decode(&[VERSION, Op::GetDec as u8, 1, 2, 3]),
            Err(Status::BadFrame)
        );
        // Non-boolean pass byte.
        let mut put = Request::PutDec {
            key: 1,
            pass: true,
            unique: 2,
        }
        .encode();
        put[4 + 2 + 8] = 7;
        assert_eq!(Request::decode(&put[4..]), Err(Status::BadFrame));
    }

    #[test]
    fn frame_io_roundtrip_and_eof() {
        let mut buf = Vec::new();
        let req = Request::GetDec { key: 5 };
        write_frame(&mut buf, &req.encode()).unwrap();
        write_frame(&mut buf, &Request::Ping.encode()).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()),
            Ok(req)
        );
        assert_eq!(
            Request::decode(&read_frame(&mut r).unwrap().unwrap()),
            Ok(Request::Ping)
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // EOF inside a frame is an error, not a silent None.
        let mut torn = std::io::Cursor::new(vec![8, 0, 0, 0, VERSION]);
        assert!(read_frame(&mut torn).is_err());
        // An absurd length prefix is rejected before allocating.
        let mut hostile = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(read_frame(&mut hostile).is_err());
    }
}
