/root/repo/target/debug/deps/oraql_analysis-09c8334f01542c7c.d: crates/analysis/src/lib.rs crates/analysis/src/aa.rs crates/analysis/src/aaeval.rs crates/analysis/src/andersen.rs crates/analysis/src/basic.rs crates/analysis/src/constraints.rs crates/analysis/src/domtree.rs crates/analysis/src/globals.rs crates/analysis/src/location.rs crates/analysis/src/loops.rs crates/analysis/src/memssa.rs crates/analysis/src/pointer.rs crates/analysis/src/scoped.rs crates/analysis/src/steens.rs crates/analysis/src/tbaa.rs

/root/repo/target/debug/deps/liboraql_analysis-09c8334f01542c7c.rlib: crates/analysis/src/lib.rs crates/analysis/src/aa.rs crates/analysis/src/aaeval.rs crates/analysis/src/andersen.rs crates/analysis/src/basic.rs crates/analysis/src/constraints.rs crates/analysis/src/domtree.rs crates/analysis/src/globals.rs crates/analysis/src/location.rs crates/analysis/src/loops.rs crates/analysis/src/memssa.rs crates/analysis/src/pointer.rs crates/analysis/src/scoped.rs crates/analysis/src/steens.rs crates/analysis/src/tbaa.rs

/root/repo/target/debug/deps/liboraql_analysis-09c8334f01542c7c.rmeta: crates/analysis/src/lib.rs crates/analysis/src/aa.rs crates/analysis/src/aaeval.rs crates/analysis/src/andersen.rs crates/analysis/src/basic.rs crates/analysis/src/constraints.rs crates/analysis/src/domtree.rs crates/analysis/src/globals.rs crates/analysis/src/location.rs crates/analysis/src/loops.rs crates/analysis/src/memssa.rs crates/analysis/src/pointer.rs crates/analysis/src/scoped.rs crates/analysis/src/steens.rs crates/analysis/src/tbaa.rs

crates/analysis/src/lib.rs:
crates/analysis/src/aa.rs:
crates/analysis/src/aaeval.rs:
crates/analysis/src/andersen.rs:
crates/analysis/src/basic.rs:
crates/analysis/src/constraints.rs:
crates/analysis/src/domtree.rs:
crates/analysis/src/globals.rs:
crates/analysis/src/location.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/memssa.rs:
crates/analysis/src/pointer.rs:
crates/analysis/src/scoped.rs:
crates/analysis/src/steens.rs:
crates/analysis/src/tbaa.rs:
