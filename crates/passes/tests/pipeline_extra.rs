//! Cross-pass interplay tests: the full standard pipeline on targeted
//! patterns, checking both the transformation statistics and the
//! preserved semantics.

use oraql_analysis::basic::BasicAA;
use oraql_analysis::globals::GlobalsAA;
use oraql_analysis::scoped::ScopedNoAliasAA;
use oraql_analysis::tbaa::TypeBasedAA;
use oraql_analysis::AAManager;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::{Module, Ty, Value};
use oraql_passes::{standard_pipeline, Stats};
use oraql_vm::Interpreter;

fn compile(m: &mut Module) -> Stats {
    let mut aa = AAManager::new();
    aa.add(Box::new(BasicAA::new()));
    aa.add(Box::new(ScopedNoAliasAA::new()));
    aa.add(Box::new(TypeBasedAA::new()));
    aa.add(Box::new(GlobalsAA::new(m)));
    let mut stats = Stats::new();
    let mut pm = standard_pipeline();
    pm.verify_each = true;
    pm.run(m, &mut aa, &mut stats);
    stats
}

fn run(m: &Module) -> (String, u64) {
    let out = Interpreter::run_main(m).unwrap();
    (out.stdout, out.stats.total_insts())
}

#[test]
fn gvn_merge_lets_dce_remove_the_orphaned_gep() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let buf = b.alloca(64, "buf");
    b.store(Ty::I64, Value::ConstInt(5), buf);
    // Two identical loads through two distinct geps.
    let g1 = b.gep(buf, 0);
    let l1 = b.load(Ty::I64, g1);
    let g2 = b.gep(buf, 0);
    let l2 = b.load(Ty::I64, g2);
    let s = b.add(l1, l2);
    b.print("{}", vec![s]);
    b.ret(None);
    b.finish();
    let (before_out, before_insts) = run(&m);
    let stats = compile(&mut m);
    let (after_out, after_insts) = run(&m);
    assert_eq!(before_out, after_out);
    assert_eq!(after_out, "10\n");
    assert!(after_insts < before_insts);
    // EarlyCSE (or GVN) merged; DCE cleaned the dead gep.
    assert!(
        stats.get("DCE", "instructions removed") >= 1,
        "{}",
        stats.render()
    );
}

#[test]
fn licm_hoists_from_nested_loops_in_stages() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let k = b.alloca(8, "k");
    let out = b.alloca(8 * 64, "out");
    b.store(Ty::F64, Value::const_f64(2.5), k);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(8), |b, i| {
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(8), |b, j| {
            // Invariant w.r.t. both loops.
            let c = b.load(Ty::F64, k);
            let fi = b.si_to_fp(i);
            let fj = b.si_to_fp(j);
            let x = b.fmul(fi, c);
            let y = b.fadd(x, fj);
            let lin = b.mul(i, Value::ConstInt(8));
            let idx = b.add(lin, j);
            let addr = b.gep_scaled(out, idx, 8, 0);
            b.store(Ty::F64, y, addr);
        });
    });
    // Checksum.
    let acc = b.alloca(8, "acc");
    b.store(Ty::F64, Value::const_f64(0.0), acc);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(64), |b, i| {
        let addr = b.gep_scaled(out, i, 8, 0);
        let v = b.load(Ty::F64, addr);
        let cur = b.load(Ty::F64, acc);
        let s = b.fadd(cur, v);
        b.store(Ty::F64, s, acc);
    });
    let fin = b.load(Ty::F64, acc);
    b.print("{}", vec![fin]);
    b.ret(None);
    b.finish();
    let (before_out, before_insts) = run(&m);
    let stats = compile(&mut m);
    let (after_out, after_insts) = run(&m);
    assert_eq!(before_out, after_out);
    // The k-load leaves the inner loop, then the outer loop entirely.
    assert!(stats.get("LICM", "loads hoisted or sunk") >= 1);
    assert!(after_insts < before_insts);
}

#[test]
fn slp_packs_four_wide_when_lanes_allow() {
    let mut m = Module::new("t");
    {
        let mut b = FunctionBuilder::new(&mut m, "consume", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let mut acc = Value::const_f64(0.0);
        for k in 0..4i64 {
            let pk = b.gep(p, 8 * k);
            let v = b.load(Ty::F64, pk);
            acc = b.fadd(acc, v);
        }
        b.print("{}", vec![acc]);
        b.ret(None);
        b.finish();
    }
    let consume = m.find_func("consume").unwrap();
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let a = b.alloca(32, "a");
    let bb = b.alloca(32, "b");
    let out = b.alloca(32, "out");
    // Initialize through loops so constants cannot be forwarded into
    // the kernel lanes (the loop phi is a forwarding barrier).
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |b, k| {
        let fk = b.si_to_fp(k);
        let ak = b.gep_scaled(a, k, 8, 0);
        b.store(Ty::F64, fk, ak);
        let half = b.fmul(fk, Value::const_f64(0.5));
        let bk = b.gep_scaled(bb, k, 8, 0);
        b.store(Ty::F64, half, bk);
    });
    for k in 0..4i64 {
        let ak = b.gep(a, 8 * k);
        let av = b.load(Ty::F64, ak);
        let bk = b.gep(bb, 8 * k);
        let bv = b.load(Ty::F64, bk);
        let s = b.fadd(av, bv);
        let ok = b.gep(out, 8 * k);
        b.store(Ty::F64, s, ok);
    }
    // Consume `out` in a separate function so the kernel stores cannot
    // be store-to-load forwarded away (a call is a forwarding barrier).
    b.call(consume, vec![out], None);
    b.ret(None);
    b.finish();
    let (before_out, _) = run(&m);
    let stats = compile(&mut m);
    let (after_out, _) = run(&m);
    assert_eq!(before_out, after_out);
    assert!(
        stats.get("SLP", "vector instructions generated") >= 4,
        "{}",
        stats.render()
    );
    // The packed store must be 4-wide (one <4 x f64> store remains in
    // the kernel region).
    let f = m.func(m.find_func("main").unwrap());
    let has_vec4 = f.live_insts().any(|i| {
        matches!(
            f.inst(i),
            oraql_ir::inst::Inst::Store {
                ty: Ty::VecF64(4),
                ..
            }
        )
    });
    assert!(has_vec4);
}

#[test]
fn vectorized_loop_plus_dse_and_loop_deletion_compose() {
    // One vectorizable kernel loop, one dead scratch loop: both effects
    // in one function.
    let mut m = Module::new("t");
    let esc = {
        let mut b = FunctionBuilder::new(&mut m, "escape", vec![Ty::Ptr], None);
        b.ret(None);
        b.finish()
    };
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let a = b.alloca(8 * 16, "a");
    let out = b.alloca(8 * 16, "out");
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(16), |b, i| {
        let ai = b.gep_scaled(a, i, 8, 0);
        b.store(Ty::I64, i, ai);
    });
    // Dead scratch loop (escaped alloca, never read).
    let scratch = b.alloca(8 * 16, "scratch");
    b.call(esc, vec![scratch], None);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(16), |b, i| {
        let si = b.gep_scaled(scratch, i, 8, 0);
        let tripled = b.mul(i, Value::ConstInt(3));
        b.store(Ty::I64, tripled, si);
    });
    // Vectorizable kernel.
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(16), |b, i| {
        let ai = b.gep_scaled(a, i, 8, 0);
        let v = b.load(Ty::I64, ai);
        let w = b.mul(v, Value::ConstInt(2));
        let oi = b.gep_scaled(out, i, 8, 0);
        b.store(Ty::I64, w, oi);
    });
    let p15 = b.gep(out, 8 * 15);
    let v15 = b.load(Ty::I64, p15);
    b.print("{}", vec![v15]);
    b.ret(None);
    b.finish();
    let (before_out, before_insts) = run(&m);
    let stats = compile(&mut m);
    let (after_out, after_insts) = run(&m);
    assert_eq!(before_out, after_out);
    assert_eq!(after_out, "30\n");
    assert!(stats.get("loop vectorizer", "vectorized loops") >= 1);
    // The scratch store is dead only with the aliasing proven — here
    // BasicAA can prove it (distinct allocas... except scratch escaped).
    // Either way the loop must not be *wrongly* deleted; semantics hold.
    assert!(after_insts < before_insts);
}

#[test]
fn second_gvn_round_picks_up_licm_exposure() {
    // A load that becomes redundant only after LICM hoists its twin out
    // of the loop: the second GVN round (after LICM in the pipeline)
    // catches it.
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let k = b.alloca(8, "k");
    let out = b.alloca(8 * 8, "out");
    b.store(Ty::I64, Value::ConstInt(3), k);
    let pre = b.load(Ty::I64, k); // before the loop
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(8), |b, i| {
        let c = b.load(Ty::I64, k); // invariant: hoisted, then merged
        let v = b.mul(c, i);
        let addr = b.gep_scaled(out, i, 8, 0);
        b.store(Ty::I64, v, addr);
    });
    let p = b.gep(out, 8 * 7);
    let last = b.load(Ty::I64, p);
    let s = b.add(pre, last);
    b.print("{}", vec![s]);
    b.ret(None);
    b.finish();
    let (before_out, _) = run(&m);
    compile(&mut m);
    let (after_out, after_insts) = run(&m);
    assert_eq!(before_out, after_out);
    assert_eq!(after_out, "24\n"); // 3 + 21
                                   // Only one load of k should remain dynamically.
    let f = m.func(m.find_func("main").unwrap());
    let k_loads = f
        .live_insts()
        .filter(|&i| {
            matches!(f.inst(i), oraql_ir::inst::Inst::Load { ptr, .. } if {
                // loads whose pointer is the k alloca
                oraql_analysis::pointer::underlying_object(f, *ptr)
                    == oraql_analysis::pointer::underlying_object(f, {
                        // the first alloca in the function is k
                        oraql_ir::value::Value::Inst(f.blocks[0].insts[0])
                    })
            })
        })
        .count();
    assert!(k_loads <= 1, "k loaded {k_loads} times statically");
    let _ = after_insts;
}
