//! Use case 2 from the paper: **compiler development**.
//!
//! A compiler engineer wants to know which *kinds* of conservatively
//! answered queries matter in practice, to decide where a specialized
//! analysis would pay off. This example runs ORAQL over several proxy
//! configurations and aggregates:
//!
//! * which pass issued the queries that could be answered
//!   optimistically (where better information would be consumed),
//! * which no-alias answers actually changed the executable
//!   (optimism that transformations acted on),
//! * the Fig. 3-style dump of the irreducible pessimistic queries.
//!
//! ```text
//! cargo run --release --example compiler_dev
//! ```

use oraql_suite::oraql::report::{queries_by_pass, render_report, DumpFlags};
use oraql_suite::oraql::{Driver, DriverOptions};
use oraql_suite::workloads;
use std::collections::BTreeMap;

fn main() {
    let configs = ["testsnap", "testsnap_omp", "quicksilver", "minigmg_ompif"];
    let mut by_pass: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_opt = 0u64;
    let mut total_pess = 0u64;
    let mut code_changed = 0usize;

    for name in configs {
        let case = workloads::find_case(name).expect(name);
        let r = Driver::run(
            &case,
            DriverOptions {
                trace_passes: true,
                ..Default::default()
            },
        )
        .expect("driver");
        total_opt += r.oraql.unique_optimistic;
        total_pess += r.oraql.unique_pessimistic;
        for (pass, n) in queries_by_pass(&r.queries) {
            *by_pass.entry(pass).or_insert(0) += n;
        }
        let changed = r.baseline_run.stats.total_insts() != r.final_run.stats.total_insts();
        code_changed += changed as usize;
        println!(
            "{name:16} opt={:<5} pess={:<3} insts {:>7} -> {:<7} {}",
            r.oraql.unique_optimistic,
            r.oraql.unique_pessimistic,
            r.baseline_run.stats.total_insts(),
            r.final_run.stats.total_insts(),
            if changed {
                "(code changed)"
            } else {
                "(no effect)"
            }
        );
        if r.oraql.unique_pessimistic > 0 && name == "testsnap_omp" {
            println!("--- irreducible pessimistic queries ({name}) ---");
            print!(
                "{}",
                render_report(
                    &r.final_module,
                    &r.queries,
                    DumpFlags::pessimistic_only(),
                    &r.pass_trace
                )
            );
        }
    }

    println!(
        "\n=== queries by issuing pass (across {} configs) ===",
        configs.len()
    );
    let total: u64 = by_pass.values().sum();
    let mut entries: Vec<_> = by_pass.into_iter().collect();
    entries.sort_by_key(|e| std::cmp::Reverse(e.1));
    for (pass, n) in &entries {
        println!(
            "{pass:24} {n:>6}  ({:.1}%)",
            *n as f64 / total as f64 * 100.0
        );
    }
    println!(
        "\ntotals: {total_opt} optimistic vs {total_pess} pessimistic unique queries; \
         {code_changed}/{} configs saw actual code changes",
        configs.len()
    );

    // The takeaway the paper draws: the most valuable specialization
    // target is wherever most answerable queries concentrate.
    let (top_pass, top_n) = &entries[0];
    println!(
        "=> a specialized analysis covering '{top_pass}' queries would serve {:.0}% of the demand",
        *top_n as f64 / total as f64 * 100.0
    );
    assert!(total_opt > total_pess * 10);
    println!("compiler_dev OK");
}
