/root/repo/target/debug/deps/oraql_workloads-3fc10cf242fe8c46.d: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs Cargo.toml

/root/repo/target/debug/deps/liboraql_workloads-3fc10cf242fe8c46.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/gridmini.rs:
crates/workloads/src/lulesh.rs:
crates/workloads/src/minife.rs:
crates/workloads/src/minigmg.rs:
crates/workloads/src/quicksilver.rs:
crates/workloads/src/testsnap.rs:
crates/workloads/src/toolkit.rs:
crates/workloads/src/xsbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
