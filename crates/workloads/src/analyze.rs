//! The `oraql trace` analyzer: recomputes the paper's tables from the
//! JSONL artifacts a run leaves behind, so results can be re-derived,
//! plotted, or diffed without re-running a single probe.
//!
//! ```text
//! oraql trace --probes run.jsonl [--spans spans.jsonl]
//!             [--fig2] [--fig4] [--fig6] [--funnel] [--latency]
//!             [--top-spans] [--check-metrics metrics.prom]
//! ```
//!
//! With no section flag, every section the inputs support is printed.
//! `--fig2` reproduces the in-run `--- probe trace summary ---` table
//! byte-for-byte (both call `oraql::report::render_trace_summary` on
//! the same events), which is the analyzer's ground-truth anchor: the
//! post-hoc pipeline and the live CLI cannot drift apart.
//!
//! Every aggregate here is order-insensitive — totals, per-case maps
//! (BTreeMap), and log2 histograms whose merge is associative — so a
//! `--jobs 4` trace, whose events interleave in scheduling order,
//! analyzes identically however the scheduler shuffled it.

use oraql::report::render_trace_summary;
use oraql::trace::{read_trace, ProbeEvent, ProbeKind};
use oraql_obs::{read_spans, HistogramSnapshot, Snapshot, SpanEvent};
use std::collections::BTreeMap;

const USAGE: &str = "usage: oraql trace --probes <trace.jsonl> [--spans <spans.jsonl>]
                   [--fig2] [--fig4] [--fig6] [--funnel] [--latency]
                   [--top-spans] [--check-metrics <metrics.prom>]

Recomputes the paper's tables from a run's JSONL artifacts:
  --fig2           probing-effort table (identical to the in-run summary)
  --fig4           per-case query statistics
  --fig6           per-case wall-clock breakdown by answer kind
  --funnel         cache-tier funnel totals
  --latency        per-case probe-latency quantiles (p50/p90/p99)
  --top-spans      self-time profile from the spans file
  --check-metrics  parse a metrics exposition and report its contents";

/// Entry point for the `oraql trace` subcommand. Returns the exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut probes_path: Option<String> = None;
    let mut spans_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut sections: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--probes" => {
                i += 1;
                match args.get(i) {
                    Some(p) => probes_path = Some(p.clone()),
                    None => return usage_err(),
                }
            }
            "--spans" => {
                i += 1;
                match args.get(i) {
                    Some(p) => spans_path = Some(p.clone()),
                    None => return usage_err(),
                }
            }
            "--check-metrics" => {
                i += 1;
                match args.get(i) {
                    Some(p) => metrics_path = Some(p.clone()),
                    None => return usage_err(),
                }
            }
            "--fig2" => sections.push("fig2"),
            "--fig4" => sections.push("fig4"),
            "--fig6" => sections.push("fig6"),
            "--funnel" => sections.push("funnel"),
            "--latency" => sections.push("latency"),
            "--top-spans" => sections.push("top-spans"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            _ => return usage_err(),
        }
        i += 1;
    }
    if probes_path.is_none() && metrics_path.is_none() {
        return usage_err();
    }

    let mut code = 0;
    if let Some(path) = &metrics_path {
        code = code.max(check_metrics(path));
    }
    let events = match &probes_path {
        Some(path) => match read_trace(path) {
            Ok(evs) => Some(evs),
            Err(e) => {
                eprintln!("oraql trace: cannot read {path}: {e}");
                return 1;
            }
        },
        None => None,
    };
    let spans = match &spans_path {
        Some(path) => match read_spans(std::path::Path::new(path)) {
            Ok(sp) => Some(sp),
            Err(e) => {
                eprintln!("oraql trace: cannot read {path}: {e}");
                return 1;
            }
        },
        None => None,
    };

    let all = sections.is_empty();
    let want = |s: &str| all || sections.contains(&s);
    if let Some(events) = &events {
        if want("fig2") {
            println!("--- probing effort (fig. 2) ---");
            print!("{}", render_trace_summary(events));
        }
        if want("fig4") {
            print!("{}", render_fig4(events));
        }
        if want("fig6") {
            print!("{}", render_fig6(events));
        }
        if want("funnel") {
            print!("{}", render_funnel(events));
        }
        if want("latency") {
            print!("{}", render_latency(events));
        }
    }
    if let Some(spans) = &spans {
        if want("top-spans") {
            print!("{}", render_top_spans(spans));
        }
    } else if sections.contains(&"top-spans") {
        eprintln!("oraql trace: --top-spans needs --spans <file>");
        code = code.max(2);
    }
    code
}

fn usage_err() -> i32 {
    eprintln!("{USAGE}");
    2
}

/// Parses a Prometheus-style exposition written by `--metrics-out` (or
/// scraped from a daemon's `METRICS` op) and reports what it holds.
/// Exit code 1 when the file does not round-trip — the CI smoke relies
/// on that.
fn check_metrics(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("oraql trace: cannot read {path}: {e}");
            return 1;
        }
    };
    match Snapshot::parse(&text) {
        Some(snap) => {
            println!(
                "metrics ({path}): {} counters, {} gauges, {} histograms parsed OK",
                snap.counters.len(),
                snap.gauges.len(),
                snap.histograms.len()
            );
            0
        }
        None => {
            eprintln!("oraql trace: {path}: exposition does not parse");
            1
        }
    }
}

/// Order-insensitive per-case accumulator shared by Fig. 4 / Fig. 6 /
/// latency: one pass over the events, BTreeMap for stable output.
fn by_case(events: &[ProbeEvent]) -> BTreeMap<String, Vec<&ProbeEvent>> {
    let mut map: BTreeMap<String, Vec<&ProbeEvent>> = BTreeMap::new();
    for ev in events {
        map.entry(ev.case.clone()).or_default().push(ev);
    }
    map
}

/// Per-case query statistics (the paper's Fig. 4 flavor, recomputed
/// from the trace instead of the in-process counters).
pub fn render_fig4(events: &[ProbeEvent]) -> String {
    let mut out = String::new();
    out.push_str("--- query statistics (fig. 4) ---\n");
    out.push_str(&format!(
        "{:24} {:>7} {:>7} {:>7} {:>10} {:>6}\n",
        "case", "probes", "passes", "fails", "max-unique", "spec"
    ));
    for (case, evs) in by_case(events) {
        let passes = evs.iter().filter(|e| e.pass).count();
        let max_unique = evs.iter().map(|e| e.unique).max().unwrap_or(0);
        let spec = evs.iter().filter(|e| e.speculative).count();
        out.push_str(&format!(
            "{:24} {:>7} {:>7} {:>7} {:>10} {:>6}\n",
            case,
            evs.len(),
            passes,
            evs.len() - passes,
            max_unique,
            spec
        ));
    }
    out
}

const KINDS: [ProbeKind; 8] = [
    ProbeKind::Executed,
    ProbeKind::ExeCacheHit,
    ProbeKind::DecisionCacheHit,
    ProbeKind::StoreHit,
    ProbeKind::ServerHit,
    ProbeKind::Deduced,
    ProbeKind::Faulted,
    ProbeKind::Cancelled,
];

/// Per-case wall-clock breakdown by answer kind (the paper's Fig. 6
/// effort-breakdown flavor): where did the probing time actually go —
/// real executions, or cache tiers answering in microseconds?
pub fn render_fig6(events: &[ProbeEvent]) -> String {
    let mut out = String::new();
    out.push_str("--- effort breakdown, wall ms by answer kind (fig. 6) ---\n");
    out.push_str(&format!("{:24}", "case"));
    for k in KINDS {
        out.push_str(&format!(" {:>9}", k.as_str()));
    }
    out.push_str(&format!(" {:>9}\n", "total"));
    for (case, evs) in by_case(events) {
        out.push_str(&format!("{case:24}"));
        let mut total = 0u64;
        for k in KINDS {
            let micros: u64 = evs
                .iter()
                .filter(|e| e.kind == k)
                .map(|e| e.wall_micros)
                .sum();
            total += micros;
            out.push_str(&format!(" {:>9.1}", micros as f64 / 1000.0));
        }
        out.push_str(&format!(" {:>9.1}\n", total as f64 / 1000.0));
    }
    out
}

/// Cache-tier funnel totals: how many probe answers each tier absorbed
/// before the next tier was consulted. Order-insensitive by
/// construction (pure counts).
pub fn render_funnel(events: &[ProbeEvent]) -> String {
    let mut out = String::new();
    out.push_str("--- cache-tier funnel ---\n");
    let total = events.len() as u64;
    out.push_str(&format!("{:12} {:>8} {:>7}\n", "tier", "answers", "share"));
    for k in KINDS {
        let n = events.iter().filter(|e| e.kind == k).count() as u64;
        let pct = if total == 0 {
            0.0
        } else {
            n as f64 * 100.0 / total as f64
        };
        out.push_str(&format!("{:12} {n:>8} {pct:>6.1}%\n", k.as_str()));
    }
    out.push_str(&format!("{:12} {total:>8} {:>6.1}%\n", "TOTAL", 100.0));
    out
}

/// Builds the per-case probe-latency histogram. Public so the
/// determinism tests can assert jobs-order insensitivity on the exact
/// structure the rendering consumes.
pub fn latency_histograms(events: &[ProbeEvent]) -> BTreeMap<String, HistogramSnapshot> {
    let mut map: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
    for ev in events {
        map.entry(ev.case.clone())
            .or_default()
            .observe(ev.wall_micros);
    }
    map
}

/// Per-case probe-latency quantiles from log2 histograms (upper-bound
/// estimates, exact to within one power of two).
pub fn render_latency(events: &[ProbeEvent]) -> String {
    let mut out = String::new();
    out.push_str("--- probe latency by case (µs, log2-bucket upper bounds) ---\n");
    out.push_str(&format!(
        "{:24} {:>7} {:>9} {:>9} {:>9} {:>11}\n",
        "case", "probes", "p50", "p90", "p99", "mean"
    ));
    for (case, h) in latency_histograms(events) {
        out.push_str(&format!(
            "{:24} {:>7} {:>9} {:>9} {:>9} {:>11.1}\n",
            case,
            h.count,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.mean()
        ));
    }
    out
}

/// One row of the self-time profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanProfileRow {
    pub name: String,
    pub count: u64,
    pub total_micros: u64,
    pub self_micros: u64,
}

/// Aggregates spans by name into a self-time profile: `self` is a
/// span's duration minus its direct children's durations, so the
/// column sums to (roughly) the run's wall clock and shows where time
/// was actually spent rather than merely enclosed.
pub fn span_profile(spans: &[SpanEvent]) -> Vec<SpanProfileRow> {
    let mut child_micros: BTreeMap<u64, u64> = BTreeMap::new();
    for sp in spans {
        if sp.parent != 0 {
            *child_micros.entry(sp.parent).or_default() += sp.dur_micros;
        }
    }
    let mut rows: BTreeMap<&str, SpanProfileRow> = BTreeMap::new();
    for sp in spans {
        let row = rows.entry(sp.name.as_str()).or_insert(SpanProfileRow {
            name: sp.name.clone(),
            count: 0,
            total_micros: 0,
            self_micros: 0,
        });
        row.count += 1;
        row.total_micros += sp.dur_micros;
        row.self_micros += sp
            .dur_micros
            .saturating_sub(child_micros.get(&sp.id).copied().unwrap_or(0));
    }
    let mut rows: Vec<SpanProfileRow> = rows.into_values().collect();
    rows.sort_by(|a, b| b.self_micros.cmp(&a.self_micros).then(a.name.cmp(&b.name)));
    rows
}

/// Renders the top-spans self profile.
pub fn render_top_spans(spans: &[SpanEvent]) -> String {
    let mut out = String::new();
    out.push_str("--- top spans by self time ---\n");
    out.push_str(&format!(
        "{:12} {:>8} {:>12} {:>12}\n",
        "span", "count", "total(ms)", "self(ms)"
    ));
    for row in span_profile(spans) {
        out.push_str(&format!(
            "{:12} {:>8} {:>12.1} {:>12.1}\n",
            row.name,
            row.count,
            row.total_micros as f64 / 1000.0,
            row.self_micros as f64 / 1000.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(case: &str, kind: ProbeKind, pass: bool, unique: u64, wall: u64) -> ProbeEvent {
        ProbeEvent {
            case: case.to_string(),
            seq: 0,
            digest: 1,
            kind,
            pass,
            unique,
            speculative: false,
            wall_micros: wall,
        }
    }

    #[test]
    fn aggregates_are_order_insensitive() {
        let mut events = vec![
            ev("a", ProbeKind::Executed, true, 5, 900),
            ev("a", ProbeKind::ExeCacheHit, false, 3, 10),
            ev("b", ProbeKind::StoreHit, true, 7, 20),
            ev("a", ProbeKind::Executed, false, 9, 1100),
        ];
        let fig4 = render_fig4(&events);
        let fig6 = render_fig6(&events);
        let funnel = render_funnel(&events);
        let lat = render_latency(&events);
        events.reverse();
        events.swap(0, 2);
        assert_eq!(render_fig4(&events), fig4);
        assert_eq!(render_fig6(&events), fig6);
        assert_eq!(render_funnel(&events), funnel);
        assert_eq!(render_latency(&events), lat);
    }

    #[test]
    fn span_profile_subtracts_children() {
        let spans = vec![
            SpanEvent {
                id: 1,
                parent: 0,
                name: "case".into(),
                case: "x".into(),
                start_micros: 0,
                dur_micros: 100,
            },
            SpanEvent {
                id: 2,
                parent: 1,
                name: "probe".into(),
                case: "x".into(),
                start_micros: 1,
                dur_micros: 70,
            },
            SpanEvent {
                id: 3,
                parent: 2,
                name: "vm".into(),
                case: "x".into(),
                start_micros: 2,
                dur_micros: 40,
            },
        ];
        let rows = span_profile(&spans);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        assert_eq!(get("case").self_micros, 30);
        assert_eq!(get("probe").self_micros, 30);
        assert_eq!(get("vm").self_micros, 40);
        // Sorted by self time, descending.
        assert_eq!(rows[0].name, "vm");
    }
}
