/root/repo/target/debug/examples/compiler_dev-8fa6544104d6af76.d: examples/compiler_dev.rs

/root/repo/target/debug/examples/compiler_dev-8fa6544104d6af76: examples/compiler_dev.rs

examples/compiler_dev.rs:
