//! VM semantics corner cases: type punning through memory, narrow
//! integer sign handling, float casts, NaN comparisons, memcpy overlap,
//! fuel accounting, and machine lowering of CFG-heavy functions.

use oraql_ir::builder::FunctionBuilder;
use oraql_ir::inst::{CastKind, CmpPred};
use oraql_ir::{Module, Ty, Value};
use oraql_vm::{lower_function, Interpreter, RuntimeError};

#[test]
fn type_punning_reads_stored_bits() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let slot = b.alloca(8, "slot");
    b.store(Ty::F64, Value::const_f64(1.0), slot);
    let bits = b.load(Ty::I64, slot);
    b.print("{}", vec![bits]);
    b.ret(None);
    b.finish();
    let out = Interpreter::run_main(&m).unwrap();
    assert_eq!(out.stdout.trim(), (1.0f64).to_bits().to_string());
}

#[test]
fn narrow_integers_sign_extend_on_load() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let slot = b.alloca(8, "slot");
    b.store(Ty::I8, Value::ConstInt(-1), slot);
    let v8 = b.load(Ty::I8, slot);
    b.store(Ty::I16, Value::ConstInt(-300), slot);
    let v16 = b.load(Ty::I16, slot);
    b.store(Ty::I32, Value::ConstInt(-70000), slot);
    let v32 = b.load(Ty::I32, slot);
    b.print("{} {} {}", vec![v8, v16, v32]);
    b.ret(None);
    b.finish();
    let out = Interpreter::run_main(&m).unwrap();
    assert_eq!(out.stdout.trim(), "-1 -300 -70000");
}

#[test]
fn fp_cast_narrows_through_f32() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    // 1/3 is not representable exactly; f32 roundtrip loses precision.
    let third = b.fdiv(Value::const_f64(1.0), Value::const_f64(3.0));
    let narrowed = b.cast(CastKind::FpCast, third, Ty::F32);
    let eq = b.cmp(CmpPred::Eq, Ty::F64, third, narrowed);
    b.print("{}", vec![eq]);
    b.ret(None);
    b.finish();
    let out = Interpreter::run_main(&m).unwrap();
    assert_eq!(out.stdout.trim(), "0");
}

#[test]
fn nan_comparisons_are_ieee() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let nan = b.fdiv(Value::const_f64(0.0), Value::const_f64(0.0));
    let eq = b.cmp(CmpPred::Eq, Ty::F64, nan, nan);
    let ne = b.cmp(CmpPred::Ne, Ty::F64, nan, nan);
    let lt = b.cmp(CmpPred::Lt, Ty::F64, nan, Value::const_f64(1.0));
    b.print("{} {} {}", vec![eq, ne, lt]);
    b.ret(None);
    b.finish();
    let out = Interpreter::run_main(&m).unwrap();
    assert_eq!(out.stdout.trim(), "0 1 0");
}

#[test]
fn memcpy_overlap_behaves_like_memmove() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let buf = b.alloca(32, "buf");
    for i in 0..4i64 {
        let p = b.gep(buf, 8 * i);
        b.store(Ty::I64, Value::ConstInt(10 + i), p);
    }
    // Overlapping copy: shift [0..24) to [8..32).
    let dst = b.gep(buf, 8);
    b.memcpy(dst, buf, Value::ConstInt(24));
    for i in 0..4i64 {
        let p = b.gep(buf, 8 * i);
        let v = b.load(Ty::I64, p);
        b.print("{}", vec![v]);
    }
    b.ret(None);
    b.finish();
    let out = Interpreter::run_main(&m).unwrap();
    assert_eq!(out.stdout, "10\n10\n11\n12\n");
}

#[test]
fn fuel_counts_every_instruction() {
    // A straight-line function with exactly 4 instructions (store,
    // load, print, ret): fuel 3 fails, fuel 5 succeeds.
    let build = || {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(8, "x");
        b.store(Ty::I64, Value::ConstInt(1), x);
        let v = b.load(Ty::I64, x);
        b.print("{}", vec![v]);
        b.ret(None);
        b.finish();
        m
    };
    let m = build();
    let main = m.find_func("main").unwrap();
    let mut tight = Interpreter::new(&m).with_fuel(3);
    assert!(matches!(
        tight.run(main, vec![]),
        Err(RuntimeError::FuelExhausted)
    ));
    let m2 = build();
    let mut enough = Interpreter::new(&m2).with_fuel(5);
    assert!(enough.run(m2.find_func("main").unwrap(), vec![]).is_ok());
}

#[test]
fn machine_lowering_handles_loops_and_phis() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
    let p = b.arg(0);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(16), |b, i| {
        let a = b.gep_scaled(p, i, 8, 0);
        let v = b.load(Ty::I64, a);
        let w = b.mul(v, i);
        b.store(Ty::I64, w, a);
    });
    b.ret(None);
    let id = b.finish();
    let s = lower_function(&m, id, None).unwrap();
    assert!(s.machine_insts > 6);
    assert!(s.registers >= 2);
    assert_eq!(s.spills, 0);
    // The induction phi is live across the back edge: its interval must
    // span the whole loop, so pressure is at least phi + operands.
    assert!(s.registers <= oraql_vm::machine::HOST_REGS);
}

#[test]
fn division_semantics() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let q = b.div(Value::ConstInt(-7), Value::ConstInt(2));
    let r = b.rem(Value::ConstInt(-7), Value::ConstInt(2));
    b.print("{} {}", vec![q, r]);
    b.ret(None);
    b.finish();
    let out = Interpreter::run_main(&m).unwrap();
    // Rust/LLVM semantics: trunc toward zero.
    assert_eq!(out.stdout.trim(), "-3 -1");
}

#[test]
fn stack_reuse_across_calls_is_deterministic() {
    // Two calls to a function with an alloca: the second call sees
    // zeroed memory, not the first call's leftovers.
    let mut m = Module::new("t");
    let callee = {
        let mut b = FunctionBuilder::new(&mut m, "leaky", vec![], Some(Ty::I64));
        let x = b.alloca(8, "x");
        let v = b.load(Ty::I64, x); // read before any store
        let bump = b.add(v, Value::ConstInt(1));
        b.store(Ty::I64, bump, x);
        b.ret(Some(bump));
        b.finish()
    };
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let a = b.call(callee, vec![], Some(Ty::I64)).unwrap();
    let c = b.call(callee, vec![], Some(Ty::I64)).unwrap();
    b.print("{} {}", vec![a, c]);
    b.ret(None);
    b.finish();
    let out = Interpreter::run_main(&m).unwrap();
    assert_eq!(out.stdout.trim(), "1 1");
}
