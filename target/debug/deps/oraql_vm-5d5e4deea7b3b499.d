/root/repo/target/debug/deps/oraql_vm-5d5e4deea7b3b499.d: crates/vm/src/lib.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

/root/repo/target/debug/deps/liboraql_vm-5d5e4deea7b3b499.rmeta: crates/vm/src/lib.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

crates/vm/src/lib.rs:
crates/vm/src/interp.rs:
crates/vm/src/machine.rs:
crates/vm/src/memory.rs:
crates/vm/src/rtval.rs:
