/root/repo/target/release/deps/criterion-a72f4ab30775fd9f.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a72f4ab30775fd9f.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a72f4ab30775fd9f.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
