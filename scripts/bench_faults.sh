#!/usr/bin/env sh
# Probe-sandbox overhead benchmark (see docs/ARCHITECTURE.md §6).
#
# Drives the full workload suite fault-free, with a quiet (all-zero)
# fault plan armed, and with a watchdog deadline armed, and writes the
# wall-clock totals and overhead ratios as JSON — including the
# fault-free total against the pre-sandbox cold suite recording in
# BENCH_store.json when present. Output path defaults to
# BENCH_faults.json in the repo root; override with ORAQL_BENCH_OUT.
set -eu
cd "$(dirname "$0")/.."

# Cargo runs benches with the package directory as cwd, so anchor the
# default output at the repo root via an absolute path.
ORAQL_BENCH_OUT="${ORAQL_BENCH_OUT:-$(pwd)/BENCH_faults.json}" \
    cargo bench --offline -p oraql-bench --bench faults_overhead
