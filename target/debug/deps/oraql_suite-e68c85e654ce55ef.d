/root/repo/target/debug/deps/oraql_suite-e68c85e654ce55ef.d: src/lib.rs

/root/repo/target/debug/deps/oraql_suite-e68c85e654ce55ef: src/lib.rs

src/lib.rs:
