//! The on-disk journal: wire format, checksums, and the recovery scan.
//!
//! A journal file is a fixed 16-byte header followed by a flat sequence
//! of self-checking records:
//!
//! ```text
//! header:  magic "ORAQLST1" (8) | version u32 LE | reserved u32 LE
//! record:  tag u8 | payload_len u32 LE | checksum u64 LE | payload
//! ```
//!
//! The checksum is FNV-1a 64 over the tag byte followed by the payload
//! bytes, so neither field can be swapped or bit-flipped unnoticed.
//! Three record tags exist:
//!
//! * `1` — executable-hash verdict: `key u64 | pass u8 | unique u64`
//! * `2` — decisions-digest verdict: same payload shape
//! * `3` — reference output: `key u64 | utf8 bytes`
//!
//! # Recovery guarantees
//!
//! [`scan`] never panics on hostile bytes. Three failure classes are
//! distinguished and counted:
//!
//! * **torn tail** — the file ends inside a record header or payload
//!   (the classic kill-mid-write). The partial bytes are dropped and
//!   the scan reports the offset where the valid prefix ends, so the
//!   opener can truncate and append safely after it.
//! * **corrupt record** — the checksum does not match (or the tag is
//!   unknown) but the declared length stays in bounds. The record is
//!   skipped and the scan continues at the next offset; a corrupted
//!   *length* field degenerates into a checksum failure downstream or a
//!   torn tail, never an out-of-bounds read.
//! * **bad header** — wrong magic or unsupported version. This is the
//!   only hard error: silently rewriting a file that is not ours would
//!   destroy data.

/// Journal magic, first 8 bytes of every store file.
pub const MAGIC: [u8; 8] = *b"ORAQLST1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 16;
/// Record header length in bytes (tag + payload_len + checksum).
pub const RECORD_HEADER_LEN: usize = 1 + 4 + 8;
/// Upper bound on a single record payload (defensive: a corrupted
/// length field may not force a multi-gigabyte allocation).
pub const MAX_PAYLOAD: usize = 16 << 20;

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Verdict keyed by the salted executable (module-text) hash.
    ExeVerdict {
        /// Salted module hash.
        key: u64,
        /// Did the compiled program verify?
        pass: bool,
        /// Unique ORAQL queries observed by that compilation.
        unique: u64,
    },
    /// Verdict keyed by the salted decisions digest.
    DecVerdict {
        /// Salted decisions digest.
        key: u64,
        /// Did the compiled program verify?
        pass: bool,
        /// Unique ORAQL queries reported by that probe answer.
        unique: u64,
    },
    /// Reference output(s) keyed by the case salt.
    Reference {
        /// Case salt (see `oraql::driver`'s `case_salt`).
        key: u64,
        /// Accepted reference outputs, `\x1e`-joined.
        output: String,
    },
}

impl Record {
    fn tag(&self) -> u8 {
        match self {
            Record::ExeVerdict { .. } => 1,
            Record::DecVerdict { .. } => 2,
            Record::Reference { .. } => 3,
        }
    }

    fn payload(&self) -> Vec<u8> {
        match self {
            Record::ExeVerdict { key, pass, unique } | Record::DecVerdict { key, pass, unique } => {
                let mut p = Vec::with_capacity(17);
                p.extend_from_slice(&key.to_le_bytes());
                p.push(u8::from(*pass));
                p.extend_from_slice(&unique.to_le_bytes());
                p
            }
            Record::Reference { key, output } => {
                let mut p = Vec::with_capacity(8 + output.len());
                p.extend_from_slice(&key.to_le_bytes());
                p.extend_from_slice(output.as_bytes());
                p
            }
        }
    }

    fn decode(tag: u8, payload: &[u8]) -> Option<Record> {
        match tag {
            1 | 2 => {
                if payload.len() != 17 {
                    return None;
                }
                let key = u64::from_le_bytes(payload[0..8].try_into().ok()?);
                let pass = match payload[8] {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                let unique = u64::from_le_bytes(payload[9..17].try_into().ok()?);
                Some(if tag == 1 {
                    Record::ExeVerdict { key, pass, unique }
                } else {
                    Record::DecVerdict { key, pass, unique }
                })
            }
            3 => {
                if payload.len() < 8 {
                    return None;
                }
                let key = u64::from_le_bytes(payload[0..8].try_into().ok()?);
                let output = String::from_utf8(payload[8..].to_vec()).ok()?;
                Some(Record::Reference { key, output })
            }
            _ => None,
        }
    }

    /// Encodes the record as one wire frame (record header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        frame.push(self.tag());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(self.tag(), &payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// FNV-1a 64 over the tag byte followed by the payload.
pub fn checksum(tag: u8, payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    h ^= u64::from(tag);
    h = h.wrapping_mul(PRIME);
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Renders the 16-byte file header.
pub fn header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h
}

/// Why a journal could not be opened at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// The first 8 bytes are not [`MAGIC`] — this is not a store file.
    BadMagic,
    /// The version is newer than this code understands.
    BadVersion(u32),
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::BadMagic => write!(f, "not an oraql-store journal (bad magic)"),
            HeaderError::BadVersion(v) => write!(f, "unsupported journal version {v}"),
        }
    }
}

/// Outcome of scanning journal bytes.
#[derive(Debug, Default)]
pub struct Scan {
    /// Every intact record, in file order.
    pub records: Vec<Record>,
    /// Checksum-mismatched / undecodable records that were skipped.
    pub corrupt: u64,
    /// 1 when a torn tail (partial final record) was dropped.
    pub torn: u64,
    /// Offset one past the last frame that was *consumed* (valid or
    /// corrupt-but-well-framed) — the safe truncate-and-append point.
    pub valid_end: u64,
}

/// Scans every record frame after the header. `base` is the absolute
/// file offset of `bytes[0]` (i.e. [`HEADER_LEN`] for a full-file scan),
/// used to report [`Scan::valid_end`] as an absolute offset.
pub fn scan(bytes: &[u8], base: u64) -> Scan {
    let mut s = Scan {
        valid_end: base,
        ..Scan::default()
    };
    let mut at = 0usize;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < RECORD_HEADER_LEN {
            s.torn = 1;
            break;
        }
        let tag = rest[0];
        // rest.len() >= RECORD_HEADER_LEN was checked above, so these
        // fixed-index reads cannot go out of bounds.
        let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]) as usize;
        let want = u64::from_le_bytes([
            rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11], rest[12],
        ]);
        if len > MAX_PAYLOAD {
            // A length this absurd means the frame itself is garbage;
            // nothing after it can be trusted to be framed. Treat the
            // remainder as a torn tail.
            s.torn = 1;
            break;
        }
        if rest.len() < RECORD_HEADER_LEN + len {
            s.torn = 1;
            break;
        }
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        at += RECORD_HEADER_LEN + len;
        s.valid_end = base + at as u64;
        if checksum(tag, payload) != want {
            s.corrupt += 1;
            continue;
        }
        match Record::decode(tag, payload) {
            Some(r) => s.records.push(r),
            None => s.corrupt += 1,
        }
    }
    s
}

/// Validates the header bytes. Defensive against short input: anything
/// shorter than [`HEADER_LEN`] is rejected as [`HeaderError::BadMagic`]
/// rather than panicking (a server replaying an arbitrary shard file
/// must never be able to crash here).
pub fn check_header(bytes: &[u8]) -> Result<(), HeaderError> {
    if bytes.get(0..8) != Some(&MAGIC[..]) {
        return Err(HeaderError::BadMagic);
    }
    let v = match bytes.get(8..12) {
        Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        None => return Err(HeaderError::BadMagic),
    };
    if v != VERSION {
        return Err(HeaderError::BadVersion(v));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::ExeVerdict {
                key: 0xdead_beef,
                pass: true,
                unique: 42,
            },
            Record::DecVerdict {
                key: 7,
                pass: false,
                unique: 0,
            },
            Record::Reference {
                key: 99,
                output: "checksum 1.5\nRuntime: 3 cycles\n".into(),
            },
        ]
    }

    fn frames(records: &[Record]) -> Vec<u8> {
        records.iter().flat_map(Record::encode).collect()
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let rs = sample();
        let s = scan(&frames(&rs), HEADER_LEN as u64);
        assert_eq!(s.records, rs);
        assert_eq!(s.corrupt, 0);
        assert_eq!(s.torn, 0);
        assert_eq!(
            s.valid_end,
            (HEADER_LEN + frames(&rs).len()) as u64,
            "valid_end covers everything"
        );
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let rs = sample();
        let mut bytes = frames(&rs);
        let full = bytes.len();
        // Cut into the last record's payload.
        bytes.truncate(full - 5);
        let s = scan(&bytes, HEADER_LEN as u64);
        assert_eq!(s.records, rs[..2]);
        assert_eq!(s.torn, 1);
        assert_eq!(
            s.valid_end,
            (HEADER_LEN + frames(&rs[..2]).len()) as u64,
            "valid_end stops before the torn frame"
        );
        // Cut into a record *header* too.
        let mut bytes = frames(&rs);
        bytes.truncate(frames(&rs[..1]).len() + 3);
        let s = scan(&bytes, HEADER_LEN as u64);
        assert_eq!(s.records, rs[..1]);
        assert_eq!(s.torn, 1);
    }

    #[test]
    fn corrupt_record_is_skipped_and_counted() {
        let rs = sample();
        let mut bytes = frames(&rs);
        // Flip a byte inside the first record's payload.
        bytes[RECORD_HEADER_LEN + 2] ^= 0xff;
        let s = scan(&bytes, HEADER_LEN as u64);
        assert_eq!(s.records, rs[1..]);
        assert_eq!(s.corrupt, 1);
        assert_eq!(s.torn, 0);
    }

    #[test]
    fn unknown_tag_counts_as_corrupt() {
        let mut bytes = frames(&sample()[..1]);
        bytes[0] = 200; // unknown tag; checksum now also mismatches
        let s = scan(&bytes, HEADER_LEN as u64);
        assert!(s.records.is_empty());
        assert_eq!(s.corrupt, 1);
    }

    #[test]
    fn absurd_length_degrades_to_torn_tail() {
        let rs = sample();
        let mut bytes = frames(&rs);
        // Claim a payload far past MAX_PAYLOAD in the second frame.
        let second = frames(&rs[..1]).len();
        bytes[second + 1..second + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        let s = scan(&bytes, HEADER_LEN as u64);
        assert_eq!(s.records, rs[..1]);
        assert_eq!(s.torn, 1);
        assert_eq!(s.valid_end, (HEADER_LEN + second) as u64);
    }

    #[test]
    fn header_checks() {
        assert!(check_header(&header()).is_ok());
        let mut h = header();
        h[0] = b'X';
        assert_eq!(check_header(&h), Err(HeaderError::BadMagic));
        let mut h = header();
        h[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(check_header(&h), Err(HeaderError::BadVersion(9)));
    }

    #[test]
    fn non_boolean_pass_byte_is_corrupt() {
        let r = Record::ExeVerdict {
            key: 1,
            pass: true,
            unique: 2,
        };
        let mut bytes = r.encode();
        // Set the pass byte to 2 and fix up the checksum so only the
        // decoder can reject it.
        bytes[RECORD_HEADER_LEN + 8] = 2;
        let payload = bytes[RECORD_HEADER_LEN..].to_vec();
        let sum = checksum(1, &payload);
        bytes[5..13].copy_from_slice(&sum.to_le_bytes());
        let s = scan(&bytes, HEADER_LEN as u64);
        assert!(s.records.is_empty());
        assert_eq!(s.corrupt, 1);
    }
}
