/root/repo/target/debug/deps/fig2_probing-0b3fe6b78f1932c3.d: crates/bench/benches/fig2_probing.rs

/root/repo/target/debug/deps/fig2_probing-0b3fe6b78f1932c3: crates/bench/benches/fig2_probing.rs

crates/bench/benches/fig2_probing.rs:
