//! An ergonomic function builder used by tests and the workload
//! generators.

use crate::inst::{BinOp, CallKind, CastKind, CmpPred, FuncRef, GepOffset, Inst, InstId};
use crate::meta::{AccessMeta, SrcLoc, Target, TbaaTag};
use crate::module::{Block, Function, FunctionId, Module, Param};
use crate::types::Ty;
use crate::value::{BlockId, Value};

/// Builds one [`Function`] with a cursor ("current block") model, then
/// installs it into the module via [`FunctionBuilder::finish`].
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    func: Function,
    cur: BlockId,
    loc: Option<SrcLoc>,
}

impl<'m> FunctionBuilder<'m> {
    /// Starts a new host function with the given signature. All
    /// parameters default to non-`noalias`; use [`Self::set_noalias`].
    pub fn new(module: &'m mut Module, name: &str, params: Vec<Ty>, ret: Option<Ty>) -> Self {
        let params = params
            .into_iter()
            .enumerate()
            .map(|(i, ty)| Param {
                ty,
                noalias: false,
                name: format!("arg{i}"),
            })
            .collect();
        FunctionBuilder {
            module,
            func: Function {
                name: name.to_owned(),
                params,
                ret,
                blocks: vec![Block::default()],
                insts: Vec::new(),
                target: Target::Host,
                outlined: false,
                src_file: None,
            },
            cur: Function::ENTRY,
            loc: None,
        }
    }

    /// Access to the module being extended (e.g. to intern strings or add
    /// TBAA tags while building).
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    /// Marks the function as compiled for `target`.
    pub fn set_target(&mut self, target: Target) {
        self.func.target = target;
    }

    /// Marks the function as compiler-outlined (parallel region body).
    pub fn set_outlined(&mut self, outlined: bool) {
        self.func.outlined = outlined;
    }

    /// Records the source file the function belongs to.
    pub fn set_src_file(&mut self, file: &str) {
        let id = self.module.strings.intern(file);
        self.func.src_file = Some(id);
    }

    /// Sets the `noalias` attribute on parameter `i`.
    pub fn set_noalias(&mut self, i: usize, noalias: bool) {
        self.func.params[i].noalias = noalias;
    }

    /// Sets the source location attached to subsequently built
    /// instructions (pass `None` to clear).
    pub fn set_loc(&mut self, file: &str, line: u32, col: u32) {
        let file = self.module.strings.intern(file);
        self.loc = Some(SrcLoc { file, line, col });
    }

    /// Clears the current source location.
    pub fn clear_loc(&mut self) {
        self.loc = None;
    }

    /// The `i`-th argument as a value.
    pub fn arg(&self, i: u32) -> Value {
        Value::Arg(i)
    }

    /// Creates a new empty block (does not move the cursor).
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Moves the cursor to `bb`.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// The block the cursor is currently in.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Emits `inst` at the cursor and returns its id.
    pub fn emit(&mut self, inst: Inst) -> InstId {
        self.func.push_inst(self.cur, inst, self.loc)
    }

    /// Emits `inst` and wraps the result as a [`Value`].
    pub fn emit_value(&mut self, inst: Inst) -> Value {
        Value::Inst(self.emit(inst))
    }

    // ---- memory ---------------------------------------------------------

    /// Stack allocation of `size` bytes with a debug name.
    pub fn alloca(&mut self, size: u64, name: &str) -> Value {
        let name = self.module.strings.intern(name);
        self.emit_value(Inst::Alloca { size, name })
    }

    /// Plain load.
    pub fn load(&mut self, ty: Ty, ptr: Value) -> Value {
        self.emit_value(Inst::Load {
            ptr,
            ty,
            meta: AccessMeta::default(),
        })
    }

    /// Load with access metadata (TBAA / scopes).
    pub fn load_meta(&mut self, ty: Ty, ptr: Value, meta: AccessMeta) -> Value {
        self.emit_value(Inst::Load { ptr, ty, meta })
    }

    /// Load with just a TBAA tag.
    pub fn load_tbaa(&mut self, ty: Ty, ptr: Value, tag: TbaaTag) -> Value {
        self.load_meta(ty, ptr, AccessMeta::tbaa(tag))
    }

    /// Plain store.
    pub fn store(&mut self, ty: Ty, value: Value, ptr: Value) -> InstId {
        self.emit(Inst::Store {
            ptr,
            value,
            ty,
            meta: AccessMeta::default(),
        })
    }

    /// Store with access metadata.
    pub fn store_meta(&mut self, ty: Ty, value: Value, ptr: Value, meta: AccessMeta) -> InstId {
        self.emit(Inst::Store {
            ptr,
            value,
            ty,
            meta,
        })
    }

    /// Store with just a TBAA tag.
    pub fn store_tbaa(&mut self, ty: Ty, value: Value, ptr: Value, tag: TbaaTag) -> InstId {
        self.store_meta(ty, value, ptr, AccessMeta::tbaa(tag))
    }

    /// `base + bytes` (constant GEP).
    pub fn gep(&mut self, base: Value, bytes: i64) -> Value {
        self.emit_value(Inst::Gep {
            base,
            offset: GepOffset::Const(bytes),
        })
    }

    /// `base + index * scale + add` (scaled GEP).
    pub fn gep_scaled(&mut self, base: Value, index: Value, scale: i64, add: i64) -> Value {
        self.emit_value(Inst::Gep {
            base,
            offset: GepOffset::Scaled { index, scale, add },
        })
    }

    /// `memcpy(dst, src, bytes)`.
    pub fn memcpy(&mut self, dst: Value, src: Value, bytes: Value) -> InstId {
        self.emit(Inst::Memcpy {
            dst,
            src,
            bytes,
            meta: AccessMeta::default(),
        })
    }

    // ---- arithmetic ------------------------------------------------------

    /// Generic binary operation.
    pub fn bin(&mut self, op: BinOp, ty: Ty, lhs: Value, rhs: Value) -> Value {
        self.emit_value(Inst::Bin { op, ty, lhs, rhs })
    }

    /// i64 addition.
    pub fn add(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Add, Ty::I64, lhs, rhs)
    }

    /// i64 subtraction.
    pub fn sub(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Sub, Ty::I64, lhs, rhs)
    }

    /// i64 multiplication.
    pub fn mul(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Mul, Ty::I64, lhs, rhs)
    }

    /// i64 signed division.
    pub fn div(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Div, Ty::I64, lhs, rhs)
    }

    /// i64 remainder.
    pub fn rem(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Rem, Ty::I64, lhs, rhs)
    }

    /// f64 addition.
    pub fn fadd(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::FAdd, Ty::F64, lhs, rhs)
    }

    /// f64 subtraction.
    pub fn fsub(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::FSub, Ty::F64, lhs, rhs)
    }

    /// f64 multiplication.
    pub fn fmul(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::FMul, Ty::F64, lhs, rhs)
    }

    /// f64 division.
    pub fn fdiv(&mut self, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::FDiv, Ty::F64, lhs, rhs)
    }

    /// Comparison producing an `i1`.
    pub fn cmp(&mut self, pred: CmpPred, ty: Ty, lhs: Value, rhs: Value) -> Value {
        self.emit_value(Inst::Cmp { pred, ty, lhs, rhs })
    }

    /// Select.
    pub fn select(&mut self, ty: Ty, cond: Value, t: Value, f: Value) -> Value {
        self.emit_value(Inst::Select { cond, t, f, ty })
    }

    /// Cast.
    pub fn cast(&mut self, kind: CastKind, val: Value, to: Ty) -> Value {
        self.emit_value(Inst::Cast { kind, val, to })
    }

    /// `i64 -> f64` convenience.
    pub fn si_to_fp(&mut self, val: Value) -> Value {
        self.cast(CastKind::SiToFp, val, Ty::F64)
    }

    // ---- control flow -----------------------------------------------------

    /// Unconditional branch; does not move the cursor.
    pub fn br(&mut self, target: BlockId) -> InstId {
        self.emit(Inst::Br { target })
    }

    /// Conditional branch; does not move the cursor.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) -> InstId {
        self.emit(Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        })
    }

    /// Phi with initial incoming list; more edges can be patched later
    /// via [`Self::add_phi_incoming`].
    pub fn phi(&mut self, ty: Ty, incoming: Vec<(BlockId, Value)>) -> Value {
        self.emit_value(Inst::Phi { ty, incoming })
    }

    /// Adds an incoming edge to an existing phi.
    pub fn add_phi_incoming(&mut self, phi: Value, from: BlockId, val: Value) {
        let Value::Inst(id) = phi else {
            panic!("add_phi_incoming on non-instruction value")
        };
        match self.func.inst_mut(id) {
            Inst::Phi { incoming, .. } => incoming.push((from, val)),
            other => panic!("add_phi_incoming on non-phi {other:?}"),
        }
    }

    /// Return.
    pub fn ret(&mut self, val: Option<Value>) -> InstId {
        self.emit(Inst::Ret { val })
    }

    // ---- calls & I/O -------------------------------------------------------

    /// Plain direct call to an internal function.
    pub fn call(&mut self, callee: FunctionId, args: Vec<Value>, ret: Option<Ty>) -> Option<Value> {
        let id = self.emit(Inst::Call {
            callee: FuncRef::Internal(callee),
            args,
            ret,
            kind: CallKind::Plain,
        });
        ret.map(|_| Value::Inst(id))
    }

    /// Call to an external routine resolved by the VM (e.g. `"sqrt"`).
    pub fn call_external(
        &mut self,
        name: &str,
        args: Vec<Value>,
        ret: Option<Ty>,
    ) -> Option<Value> {
        let sym = self.module.strings.intern(name);
        let id = self.emit(Inst::Call {
            callee: FuncRef::External(sym),
            args,
            ret,
            kind: CallKind::Plain,
        });
        ret.map(|_| Value::Inst(id))
    }

    /// OpenMP-style parallel region: invokes `callee(tid, args...)` for
    /// every `tid` in `0..threads`.
    pub fn parallel_region(
        &mut self,
        callee: FunctionId,
        args: Vec<Value>,
        threads: u32,
    ) -> InstId {
        self.emit(Inst::Call {
            callee: FuncRef::Internal(callee),
            args,
            ret: None,
            kind: CallKind::ParallelRegion { threads },
        })
    }

    /// Device kernel launch: invokes `callee(gid, args...)` for every
    /// work item `gid` in `0..items`.
    pub fn kernel_launch(&mut self, callee: FunctionId, args: Vec<Value>, items: u32) -> InstId {
        self.emit(Inst::Call {
            callee: FuncRef::Internal(callee),
            args,
            ret: None,
            kind: CallKind::KernelLaunch { items },
        })
    }

    /// Deterministic formatted print (the verification output channel).
    pub fn print(&mut self, fmt: &str, args: Vec<Value>) -> InstId {
        let fmt = self.module.strings.intern(fmt);
        self.emit(Inst::Print { fmt, args })
    }

    // ---- structured helpers -----------------------------------------------

    /// Builds a counted loop `for (i = start; i < end; i += 1)`.
    ///
    /// The closure receives the builder (positioned in the loop body) and
    /// the induction variable; it may create extra blocks but must leave
    /// the cursor in the block that should fall through to the latch. The
    /// cursor ends up in the exit block. Returns the induction phi.
    pub fn counted_loop(
        &mut self,
        start: Value,
        end: Value,
        body: impl FnOnce(&mut Self, Value),
    ) -> Value {
        let header = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        let pre = self.cur;
        self.br(header);

        self.switch_to(header);
        let iv = self.phi(Ty::I64, vec![(pre, start)]);
        let cond = self.cmp(CmpPred::Lt, Ty::I64, iv, end);
        self.cond_br(cond, body_bb, exit);

        self.switch_to(body_bb);
        body(self, iv);
        // Latch: wherever the body left the cursor.
        let latch = self.cur;
        let next = self.add(iv, Value::ConstInt(1));
        self.br(header);
        self.add_phi_incoming(iv, latch, next);

        self.switch_to(exit);
        iv
    }

    // ---- aliasing-motif emission (used by `oraql-gen` and tests) ----------

    /// The observable "red square" hazard: `l1 = load i64 p; store
    /// `stored` to q; l2 = load i64 p`, returning `l1 + l2` (callers
    /// print it). If `(p, q)` alias and an optimizer believes a wrong
    /// no-alias answer, it forwards `l1` into `l2` across the store and
    /// the printed sum changes — which is exactly what makes the pair's
    /// ground-truth label *checkable*: a wrong optimistic answer cannot
    /// survive output verification. Keep `stored` different from the
    /// value at `p` or the divergence is invisible.
    pub fn hazard_probe(&mut self, p: Value, q: Value, stored: i64) -> Value {
        self.hazard_probe_typed(Ty::I64, p, Ty::I64, Value::ConstInt(stored), q)
    }

    /// [`Self::hazard_probe`] with independent load/store types — the
    /// type-punned variant (`load_ty` reads through `p`, `store_ty`
    /// writes `stored` through `q`), for motifs where one buffer is
    /// accessed through two typed views. Returns the reloaded sum
    /// (`fadd` for `F64` loads, `add` otherwise).
    pub fn hazard_probe_typed(
        &mut self,
        load_ty: Ty,
        p: Value,
        store_ty: Ty,
        stored: Value,
        q: Value,
    ) -> Value {
        let l1 = self.load(load_ty, p);
        self.store(store_ty, stored, q);
        let l2 = self.load(load_ty, p);
        match load_ty {
            Ty::F64 => self.fadd(l1, l2),
            _ => self.add(l1, l2),
        }
    }

    /// A strided two-pointer loop with a per-iteration printed hazard:
    /// for `i in 0..n`, `xg = x + i*stride + off_x` and
    /// `yg = y + i*stride + off_y`, then
    /// `print(hazard_probe(xg, yg, stored))`. This is the AoS/SoA
    /// shape: two field streams walking the same stride whose alias
    /// relation is a pure function of how the caller wired
    /// `x`/`y`/offsets. Returns the `(xg, yg)` gep values — the loop
    /// body is emitted once, so these are exactly the SSA values later
    /// alias queries are keyed on.
    #[allow(clippy::too_many_arguments)]
    pub fn strided_hazard_loop(
        &mut self,
        x: Value,
        y: Value,
        n: i64,
        stride: i64,
        off_x: i64,
        off_y: i64,
        stored: i64,
    ) -> (Value, Value) {
        let mut pair = (Value::Undef, Value::Undef);
        self.counted_loop(Value::ConstInt(0), Value::ConstInt(n), |b, i| {
            let xg = b.gep_scaled(x, i, stride, off_x);
            let yg = b.gep_scaled(y, i, stride, off_y);
            let s = b.hazard_probe(xg, yg, stored);
            b.print("{}", vec![s]);
            pair = (xg, yg);
        });
        pair
    }

    /// An 8-byte-element copy loop `dst[i] = src[i]` for `i in 0..n`
    /// (halo-exchange pack/unpack shape). Returns the `(src_gep,
    /// dst_gep)` values for ground-truth labelling.
    pub fn copy_loop8(&mut self, dst: Value, src: Value, n: i64) -> (Value, Value) {
        let mut pair = (Value::Undef, Value::Undef);
        self.counted_loop(Value::ConstInt(0), Value::ConstInt(n), |b, i| {
            let sg = b.gep_scaled(src, i, 8, 0);
            let dg = b.gep_scaled(dst, i, 8, 0);
            let v = b.load(Ty::I64, sg);
            b.store(Ty::I64, v, dg);
            pair = (sg, dg);
        });
        pair
    }

    /// An indirect gather `out[i] = vals[idx[i]]` for `i in 0..n` over
    /// 8-byte elements — the CSR-neighbor-array shape, where the
    /// `vals`-side pointer depends on loaded data and its alias
    /// relation to `out` is genuinely runtime-dependent. Returns the
    /// `(idx_gep, val_gep, out_gep)` values for labelling.
    pub fn gather_loop8(
        &mut self,
        vals: Value,
        idx: Value,
        out: Value,
        n: i64,
    ) -> (Value, Value, Value) {
        let mut ptrs = (Value::Undef, Value::Undef, Value::Undef);
        self.counted_loop(Value::ConstInt(0), Value::ConstInt(n), |b, i| {
            let ig = b.gep_scaled(idx, i, 8, 0);
            let c = b.load(Ty::I64, ig);
            let vg = b.gep_scaled(vals, c, 8, 0);
            let v = b.load(Ty::I64, vg);
            let og = b.gep_scaled(out, i, 8, 0);
            b.store(Ty::I64, v, og);
            ptrs = (ig, vg, og);
        });
        ptrs
    }

    /// Finalizes the function and installs it in the module.
    pub fn finish(self) -> FunctionId {
        let id = FunctionId(self.module.funcs.len() as u32);
        self.module.funcs.push(self.func);
        id
    }
}

/// Declares a function signature up-front (so forward calls can reference
/// it) and returns a builder that fills in the body of that declaration.
///
/// This is needed when building mutually recursive or forward-referenced
/// functions: `FunctionBuilder::finish` appends, so ids must be known
/// before bodies referencing them are built.
pub fn declare_function(
    module: &mut Module,
    name: &str,
    params: Vec<Ty>,
    ret: Option<Ty>,
) -> FunctionId {
    let params = params
        .into_iter()
        .enumerate()
        .map(|(i, ty)| Param {
            ty,
            noalias: false,
            name: format!("arg{i}"),
        })
        .collect();
    let id = FunctionId(module.funcs.len() as u32);
    module.funcs.push(Function {
        name: name.to_owned(),
        params,
        ret,
        blocks: vec![Block::default()],
        insts: Vec::new(),
        target: Target::Host,
        outlined: false,
        src_file: None,
    });
    id
}

/// Builder over an already-declared function (see [`declare_function`]).
pub struct BodyBuilder<'m> {
    module: &'m mut Module,
    id: FunctionId,
    cur: BlockId,
    loc: Option<SrcLoc>,
}

impl<'m> BodyBuilder<'m> {
    /// Starts building the body of `id`.
    pub fn new(module: &'m mut Module, id: FunctionId) -> Self {
        BodyBuilder {
            module,
            id,
            cur: Function::ENTRY,
            loc: None,
        }
    }

    fn func_mut(&mut self) -> &mut Function {
        self.module.func_mut(self.id)
    }

    /// Emits an instruction at the cursor.
    pub fn emit(&mut self, inst: Inst) -> InstId {
        let cur = self.cur;
        let loc = self.loc;
        self.func_mut().push_inst(cur, inst, loc)
    }

    /// Emits and wraps the result.
    pub fn emit_value(&mut self, inst: Inst) -> Value {
        Value::Inst(self.emit(inst))
    }

    /// Moves the cursor.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// Creates a new block.
    pub fn new_block(&mut self) -> BlockId {
        self.func_mut().add_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_straightline() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], Some(Ty::F64));
        let p = b.arg(0);
        let x = b.load(Ty::F64, p);
        let y = b.fadd(x, Value::const_f64(1.0));
        b.store(Ty::F64, y, p);
        b.ret(Some(y));
        let id = b.finish();
        assert_eq!(m.func(id).live_inst_count(), 4);
        assert_eq!(m.func(id).name, "f");
    }

    #[test]
    fn counted_loop_shape() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "loop", vec![Ty::Ptr], None);
        let p = b.arg(0);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(10), |b, i| {
            let addr = b.gep_scaled(p, i, 8, 0);
            b.store(Ty::I64, i, addr);
        });
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        // preheader(entry) + header + body + exit
        assert_eq!(f.blocks.len(), 4);
        // Phi has two incoming edges after patching.
        let phi = f
            .live_insts()
            .find(|&i| matches!(f.inst(i), Inst::Phi { .. }))
            .unwrap();
        match f.inst(phi) {
            Inst::Phi { incoming, .. } => assert_eq!(incoming.len(), 2),
            _ => unreachable!(),
        }
        assert!(crate::verify::verify_function(&m, id).is_ok());
    }

    #[test]
    fn motif_helpers_emit_verifiable_ir() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "w", vec![Ty::Ptr, Ty::Ptr, Ty::Ptr], None);
        let (p, q, r) = (b.arg(0), b.arg(1), b.arg(2));
        let s = b.hazard_probe(p, q, 100);
        b.print("{}", vec![s]);
        let (xg, yg) = b.strided_hazard_loop(p, q, 4, 16, 0, 8, 7);
        let (sg, dg) = b.copy_loop8(q, p, 3);
        let (ig, vg, og) = b.gather_loop8(p, q, r, 3);
        b.ret(None);
        let id = b.finish();
        // Every returned value is a distinct gep instruction from the
        // (single-emission) loop bodies — the keys labels attach to.
        for v in [xg, yg, sg, dg, ig, vg, og] {
            assert!(matches!(v, Value::Inst(_)), "{v:?}");
        }
        let mut uniq = [xg, yg, sg, dg, ig, vg, og].to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 7);
        assert!(crate::verify::verify_function(&m, id).is_ok());
    }

    #[test]
    fn declare_then_call() {
        let mut m = Module::new("t");
        let callee = declare_function(&mut m, "callee", vec![Ty::I64], Some(Ty::I64));
        let mut b = FunctionBuilder::new(&mut m, "caller", vec![], Some(Ty::I64));
        let r = b
            .call(callee, vec![Value::ConstInt(3)], Some(Ty::I64))
            .unwrap();
        b.ret(Some(r));
        let caller = b.finish();
        // Fill in the declared body.
        let mut bb = BodyBuilder::new(&mut m, callee);
        bb.emit(Inst::Ret {
            val: Some(Value::Arg(0)),
        });
        assert_eq!(m.func(caller).name, "caller");
        assert_eq!(m.func(callee).live_inst_count(), 1);
    }
}
