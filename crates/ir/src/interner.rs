//! A tiny string interner used for file names, external symbols and format
//! strings so that the rest of the IR can store cheap copyable ids.

use std::collections::HashMap;

/// Handle to an interned string (see [`StringInterner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// Append-only string interner. Ids are stable for the lifetime of the
/// containing [`crate::Module`].
#[derive(Debug, Default, Clone)]
pub struct StringInterner {
    strings: Vec<String>,
    map: HashMap<String, StrId>,
}

impl StringInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing id when already present.
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), id);
        id
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: StrId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// Resolves an id, returning `None` for ids this interner never
    /// produced (malformed IR must not panic consumers such as the VM).
    pub fn try_resolve(&self, id: StrId) -> Option<&str> {
        self.strings.get(id.0 as usize).map(String::as_str)
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<StrId> {
        self.map.get(s).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let mut i = StringInterner::new();
        let a = i.intern("hello");
        let b = i.intern("world");
        let c = i.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "hello");
        assert_eq!(i.resolve(b), "world");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = StringInterner::new();
        assert!(i.get("x").is_none());
        let id = i.intern("x");
        assert_eq!(i.get("x"), Some(id));
        assert_eq!(i.len(), 1);
    }
}
