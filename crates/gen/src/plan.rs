//! Generation plans: the `seed=…,cases=…,motifs=…,per=…` mini-language.
//!
//! A [`GenPlan`] is the *complete* description of a corpus: the same plan
//! always regenerates byte-identical cases, so the plan string doubles as
//! the durable name of every generated case (`gen:<plan>#<index>`). The
//! syntax deliberately mirrors `FaultPlan` (`oraql-faults`): comma-
//! separated `key=value` items, order-insensitive, `parse`/`render`
//! round-trips exactly.

use std::fmt;

/// One aliasing motif family (see [`crate::motifs`] for the shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Motif {
    /// Minimal "red square": one opaque pointer pair with an observable
    /// load/store/load hazard; wired aliased or disjoint.
    Red,
    /// Outlined OpenMP-style capture: `worker(tid, p, q)` run over a
    /// parallel region, per-thread slice stores plus a shared hazard.
    Outlined,
    /// AoS/SoA strided field streams: two pointers walking the same
    /// stride whose relation is fixed by base wiring (fields of one
    /// element, separate arrays, or a punned overlap).
    Aos,
    /// CSR neighbor gather with a type-punned value buffer (AMG /
    /// miniVite shape): indirect `vals[col[i]]` reads, optional
    /// in-place output, optional i64/f64 punned view of `vals`.
    Csr,
    /// SW4lite-style halo exchange: pack loop from grid interior into a
    /// send buffer that is either separate or a zero-copy edge view.
    Halo,
}

impl Motif {
    /// All motifs, in canonical render order.
    pub const ALL: [Motif; 5] = [
        Motif::Red,
        Motif::Outlined,
        Motif::Aos,
        Motif::Csr,
        Motif::Halo,
    ];

    /// Plan-syntax name.
    pub fn as_str(self) -> &'static str {
        match self {
            Motif::Red => "red",
            Motif::Outlined => "outlined",
            Motif::Aos => "aos",
            Motif::Csr => "csr",
            Motif::Halo => "halo",
        }
    }

    /// Parses a plan-syntax name.
    pub fn parse(s: &str) -> Result<Motif, String> {
        match s {
            "red" => Ok(Motif::Red),
            "outlined" => Ok(Motif::Outlined),
            "aos" => Ok(Motif::Aos),
            "csr" => Ok(Motif::Csr),
            "halo" => Ok(Motif::Halo),
            other => Err(format!(
                "unknown motif '{other}' (expected one of red, outlined, aos, csr, halo)"
            )),
        }
    }
}

impl fmt::Display for Motif {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Upper bound on `cases` — keeps a typo'd plan from trying to write a
/// few hundred million config files.
pub const MAX_CASES: u32 = 100_000;
/// Upper bound on motifs per case.
pub const MAX_PER_CASE: u32 = 16;

/// A parsed, immutable corpus description.
///
/// `motifs` is always non-empty, deduplicated and held in canonical
/// [`Motif::ALL`] order, so two plans that mean the same corpus compare
/// and render identically regardless of how the user spelled them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenPlan {
    /// Root seed; every case derives an independent sub-seed from it.
    pub seed: u64,
    /// Number of cases in the corpus (1..=[`MAX_CASES`]).
    pub cases: u32,
    /// Motif families the composer samples from (canonical order).
    pub motifs: Vec<Motif>,
    /// Motif instances per case (1..=[`MAX_PER_CASE`]).
    pub per_case: u32,
}

impl Default for GenPlan {
    fn default() -> Self {
        GenPlan {
            seed: 0,
            cases: 16,
            motifs: Motif::ALL.to_vec(),
            per_case: 3,
        }
    }
}

impl GenPlan {
    /// Parses `"seed=7,cases=100,motifs=red+csr,per=2"`. Every key is
    /// optional (defaults: seed 0, cases 16, all motifs, per 3); unknown
    /// keys and out-of-range values are one-line errors.
    pub fn parse(s: &str) -> Result<GenPlan, String> {
        let mut plan = GenPlan::default();
        for item in s.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("bad plan item '{item}' (expected key=value)"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value
                        .parse::<u64>()
                        .map_err(|e| format!("bad seed '{value}': {e}"))?;
                }
                "cases" => {
                    plan.cases = value
                        .parse::<u32>()
                        .map_err(|e| format!("bad cases '{value}': {e}"))?;
                }
                "per" => {
                    plan.per_case = value
                        .parse::<u32>()
                        .map_err(|e| format!("bad per '{value}': {e}"))?;
                }
                "motifs" => {
                    let mut motifs = Vec::new();
                    for name in value.split('+') {
                        let m = Motif::parse(name.trim())?;
                        if !motifs.contains(&m) {
                            motifs.push(m);
                        }
                    }
                    plan.motifs = motifs;
                }
                other => {
                    return Err(format!(
                        "unknown plan key '{other}' (expected seed, cases, motifs, per)"
                    ))
                }
            }
        }
        plan.normalize()?;
        Ok(plan)
    }

    /// Canonicalizes `motifs` and validates ranges.
    fn normalize(&mut self) -> Result<(), String> {
        if self.motifs.is_empty() {
            return Err("plan selects no motifs".to_owned());
        }
        let mut canon: Vec<Motif> = Motif::ALL
            .iter()
            .copied()
            .filter(|m| self.motifs.contains(m))
            .collect();
        std::mem::swap(&mut self.motifs, &mut canon);
        if self.cases == 0 || self.cases > MAX_CASES {
            return Err(format!(
                "cases must be in 1..={MAX_CASES}, got {}",
                self.cases
            ));
        }
        if self.per_case == 0 || self.per_case > MAX_PER_CASE {
            return Err(format!(
                "per must be in 1..={MAX_PER_CASE}, got {}",
                self.per_case
            ));
        }
        Ok(())
    }

    /// Canonical plan string; `GenPlan::parse(p.render()) == p`.
    pub fn render(&self) -> String {
        let motifs: Vec<&str> = self.motifs.iter().map(|m| m.as_str()).collect();
        format!(
            "seed={},cases={},motifs={},per={}",
            self.seed,
            self.cases,
            motifs.join("+"),
            self.per_case
        )
    }
}

impl fmt::Display for GenPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trips() {
        for s in [
            "seed=7,cases=100,motifs=red+csr,per=2",
            "seed=0,cases=1,motifs=halo,per=1",
            "seed=18446744073709551615,cases=100000,motifs=red+outlined+aos+csr+halo,per=16",
        ] {
            let p = GenPlan::parse(s).unwrap();
            assert_eq!(p.render(), s);
            assert_eq!(GenPlan::parse(&p.render()).unwrap(), p);
        }
    }

    #[test]
    fn defaults_and_empty_items() {
        let p = GenPlan::parse("").unwrap();
        assert_eq!(p, GenPlan::default());
        let q = GenPlan::parse("seed=3,,").unwrap();
        assert_eq!(q.seed, 3);
        assert_eq!(q.motifs, Motif::ALL.to_vec());
    }

    #[test]
    fn motifs_are_canonicalized() {
        let p = GenPlan::parse("motifs=halo+red+halo+aos").unwrap();
        assert_eq!(p.motifs, vec![Motif::Red, Motif::Aos, Motif::Halo]);
        assert_eq!(
            GenPlan::parse("motifs=aos+halo+red").unwrap().render(),
            p.render()
        );
    }

    #[test]
    fn rejects_bad_plans() {
        assert!(GenPlan::parse("seed=x").is_err());
        assert!(GenPlan::parse("bogus=1").is_err());
        assert!(GenPlan::parse("motifs=blue").is_err());
        assert!(GenPlan::parse("cases=0").is_err());
        assert!(GenPlan::parse("cases=100001").is_err());
        assert!(GenPlan::parse("per=0").is_err());
        assert!(GenPlan::parse("per=17").is_err());
        assert!(GenPlan::parse("seed").is_err());
    }
}
