/root/repo/target/debug/deps/driver_workloads-55ef0f0bddd21ccf.d: tests/driver_workloads.rs

/root/repo/target/debug/deps/driver_workloads-55ef0f0bddd21ccf: tests/driver_workloads.rs

tests/driver_workloads.rs:
