//! Regenerates the paper's **Fig. 7**: the static properties
//! (`# registers`, `# bytes stack frame`) of the TestSNAP Kokkos/CUDA
//! device kernels, original vs ORAQL compilation — only the kernels
//! whose properties *changed* are listed, as in the paper (7 of 44).

use criterion::{criterion_group, criterion_main, Criterion};
use oraql_bench::{print_table, run_config};
use oraql_ir::meta::Target;
use oraql_vm::machine::lower_function;

fn print_fig7() {
    let (_, r) = run_config("testsnap_kokkos");
    // Baseline module: recompile without ORAQL.
    let case = oraql_workloads::find_case("testsnap_kokkos").unwrap();
    let base = oraql::compile::compile(&*case.build, &oraql::compile::CompileOptions::baseline());

    let mut rows = Vec::new();
    let mut total = 0;
    let mut changed = 0;
    for fid in base.module.funcs_for_target(Target::Device) {
        let b = lower_function(&base.module, fid, None).unwrap();
        let o = lower_function(&r.final_module, fid, None).unwrap();
        total += 1;
        if b.registers == o.registers && b.stack_bytes == o.stack_bytes {
            continue;
        }
        changed += 1;
        let dreg = if b.registers == 0 {
            "0%".into()
        } else {
            format!(
                "{:+.1}%",
                (o.registers as f64 - b.registers as f64) / b.registers as f64 * 100.0
            )
        };
        let dstk = if b.stack_bytes == 0 {
            if o.stack_bytes == 0 {
                "0%".into()
            } else {
                "new".into()
            }
        } else {
            format!(
                "{:+.1}%",
                (o.stack_bytes as f64 - b.stack_bytes as f64) / b.stack_bytes as f64 * 100.0
            )
        };
        rows.push(vec![
            changed.to_string(),
            b.name.clone(),
            b.registers.to_string(),
            b.stack_bytes.to_string(),
            o.registers.to_string(),
            o.stack_bytes.to_string(),
            dreg,
            dstk,
        ]);
    }
    print_table(
        "Fig. 7 — TestSNAP Kokkos/CUDA device kernels with changed static properties",
        &[
            "Id",
            "kernel",
            "regs (orig)",
            "stack B (orig)",
            "regs (ORAQL)",
            "stack B (ORAQL)",
            "Δ regs",
            "Δ stack",
        ],
        &rows,
    );
    println!("({changed} of {total} kernels changed; ORAQL answered all device queries optimistically: {})",
             r.fully_optimistic);
}

fn bench(c: &mut Criterion) {
    print_fig7();

    let case = oraql_workloads::find_case("testsnap_kokkos").unwrap();
    let m = (case.build)();
    let kernels: Vec<_> = m.funcs_for_target(Target::Device).collect();
    let mut g = c.benchmark_group("machine");
    g.bench_function("linear-scan/44-kernels", |b| {
        b.iter(|| {
            kernels
                .iter()
                .map(|&fid| lower_function(&m, fid, None).unwrap().machine_insts)
                .sum::<u64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
