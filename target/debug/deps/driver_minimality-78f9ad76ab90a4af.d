/root/repo/target/debug/deps/driver_minimality-78f9ad76ab90a4af.d: tests/driver_minimality.rs Cargo.toml

/root/repo/target/debug/deps/libdriver_minimality-78f9ad76ab90a4af.rmeta: tests/driver_minimality.rs Cargo.toml

tests/driver_minimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
