//! Quickstart: build a tiny program with a planted alias, run the ORAQL
//! probing driver on it, and inspect what it found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The program has two kernels that receive a pair of pointers each:
//! one pair never aliases (but the compiler cannot prove it), the other
//! pair is the *same* array. ORAQL answers the first optimistically and
//! is forced to keep the second pessimistic.

use oraql_suite::ir::builder::FunctionBuilder;
use oraql_suite::ir::{Module, Ty, Value};
use oraql_suite::oraql::report::{render_report, DumpFlags};
use oraql_suite::oraql::{Driver, DriverOptions, TestCase};

/// `work(p, q)`: load p, store through q, re-load p. If p and q alias,
/// the second load must observe the store — forwarding it breaks the
/// printed sum.
fn emit_work(m: &mut Module, name: &str) -> oraql_suite::ir::FunctionId {
    let mut b = FunctionBuilder::new(m, name, vec![Ty::Ptr, Ty::Ptr], None);
    b.set_src_file("kernel.c");
    b.set_loc("kernel.c", 10, 5);
    let p = b.arg(0);
    let q = b.arg(1);
    let x1 = b.load(Ty::I64, p);
    let bumped = b.add(x1, Value::ConstInt(100));
    b.store(Ty::I64, bumped, q);
    let x2 = b.load(Ty::I64, p);
    let s = b.add(x1, x2);
    b.print(&format!("{name}: {{}}"), vec![s]);
    b.ret(None);
    b.finish()
}

fn build() -> Module {
    let mut m = Module::new("quickstart");
    let safe = emit_work(&mut m, "work_disjoint");
    let aliased = emit_work(&mut m, "work_aliased");
    let g = m.add_global("data", 32, vec![], false);
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    b.set_src_file("main.c");
    let a0 = b.gep(Value::Global(g), 0);
    let a1 = b.gep(Value::Global(g), 16);
    b.store(Ty::I64, Value::ConstInt(1), a0);
    b.store(Ty::I64, Value::ConstInt(2), a1);
    // Disjoint halves of the array: never alias at run time.
    b.call(safe, vec![a0, a1], None);
    // The same pointer twice: a genuine alias.
    b.call(aliased, vec![a0, a0], None);
    b.ret(None);
    b.finish();
    m
}

fn main() {
    let case = TestCase::new("quickstart", build);
    let r = Driver::run(
        &case,
        DriverOptions {
            trace_passes: true,
            ..Default::default()
        },
    )
    .expect("driver");

    println!("fully optimistic:      {}", r.fully_optimistic);
    println!("final decisions:       {}", r.decisions.render());
    println!(
        "unique queries:        {} optimistic, {} pessimistic",
        r.oraql.unique_optimistic, r.oraql.unique_pessimistic
    );
    println!(
        "no-alias results:      {} -> {} ({:+.1}%)",
        r.no_alias_original,
        r.no_alias_oraql,
        r.no_alias_delta_percent()
    );
    println!(
        "executed instructions: {} -> {}",
        r.baseline_run.stats.total_insts(),
        r.final_run.stats.total_insts()
    );
    println!(
        "probing effort:        {} compiles, {} tests, {} cached, {} deduced",
        r.effort.compiles, r.effort.tests_run, r.effort.tests_cached, r.effort.tests_deduced
    );
    println!("\n--- the queries ORAQL had to keep pessimistic ---");
    print!(
        "{}",
        render_report(
            &r.final_module,
            &r.queries,
            DumpFlags::pessimistic_only(),
            &r.pass_trace
        )
    );

    assert!(!r.fully_optimistic);
    assert!(r.oraql.unique_pessimistic >= 1);
    assert!(r.oraql.unique_optimistic >= 1);
    println!("\nquickstart OK");
}
