//! Probe-trace observability: a JSONL sink recording every probe the
//! driver answers, however it answers it.
//!
//! The paper's Fig. 2 (probing effort) and Fig. 4 (query statistics)
//! were produced from ad-hoc counters; this module replaces those with
//! a structured event stream so the same data can be recomputed,
//! plotted, or diffed after the fact. One [`ProbeEvent`] is emitted per
//! probe answer:
//!
//! * `executed` — the module was compiled, run in the VM, and verified;
//! * `exe-cache` — a bit-identical recompilation reused a prior verdict
//!   (the seed driver's executable-hash cache);
//! * `dec-cache` — an identical decision vector skipped even the
//!   recompile (the decisions-digest cache, parallel driver only);
//! * `store` — the persistent verdict store (`oraql-store`, enabled
//!   with `--store`) answered from a previous process's work;
//! * `server` — the shared verdict server (`oraql-served`, enabled
//!   with `--server`) answered after every local tier missed;
//! * `deduced` — the Fig. 2 deduction rule answered without a test.
//!
//! # Determinism contract
//!
//! With `--jobs 1` the event *sequence* is deterministic and reproduces
//! the seed driver's probe order exactly. With `--jobs N` events from
//! speculative probes interleave in scheduling order; the
//! `speculative` flag and per-case `seq` numbers let consumers
//! reconstruct per-case order. Wall-clock fields are the only
//! inherently non-reproducible values.
//!
//! The format is line-delimited JSON with a fixed key set (no external
//! serialization crates in this hermetic build — the writer and parser
//! are hand-rolled and round-trip exactly; see
//! [`ProbeEvent::to_jsonl`] / [`ProbeEvent::parse_jsonl`]).

use oraql_obs::jsonl::{escape_json, json_bool, json_str, json_u64};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// How a probe was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Compiled, executed in the VM, verified.
    Executed,
    /// Bit-identical executable: verdict reused from the hash cache.
    ExeCacheHit,
    /// Identical decision vector: verdict reused without recompiling.
    DecisionCacheHit,
    /// Answered from the persistent verdict store (`oraql-store`): a
    /// prior *process* already knew this key.
    StoreHit,
    /// Answered by the shared verdict server (`oraql-served`): another
    /// *tenant* already paid for this probe.
    ServerHit,
    /// Answered by the Fig. 2 deduction rule (known-fail, no test).
    Deduced,
    /// An injected or genuine probe failure consumed this answer: the
    /// sandbox exhausted its retries (or hit corruption) and degraded
    /// to the pessimistic may-alias verdict (`pass = false`).
    Faulted,
    /// A speculative probe that was cancelled *after* it had already
    /// been dequeued: the compile (and possibly the run) happened, but
    /// no waiter consumed the verdict. Emitted in addition to the
    /// probe's ordinary answer event when the probe ran to completion
    /// unobserved, or on its own when the cancellation landed between
    /// the compile and the test execution — either way the event makes
    /// the wasted work visible to `oraql trace`.
    Cancelled,
}

impl ProbeKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ProbeKind::Executed => "executed",
            ProbeKind::ExeCacheHit => "exe-cache",
            ProbeKind::DecisionCacheHit => "dec-cache",
            ProbeKind::StoreHit => "store",
            ProbeKind::ServerHit => "server",
            ProbeKind::Deduced => "deduced",
            ProbeKind::Faulted => "faulted",
            ProbeKind::Cancelled => "cancelled",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "executed" => ProbeKind::Executed,
            "exe-cache" => ProbeKind::ExeCacheHit,
            "dec-cache" => ProbeKind::DecisionCacheHit,
            "store" => ProbeKind::StoreHit,
            "server" => ProbeKind::ServerHit,
            "deduced" => ProbeKind::Deduced,
            "faulted" => ProbeKind::Faulted,
            "cancelled" => ProbeKind::Cancelled,
            _ => return None,
        })
    }
}

/// One probe answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Benchmark/configuration name the probe belongs to.
    pub case: String,
    /// Per-case monotone probe number (0-based, assigned at answer
    /// time on the answering thread).
    pub seq: u64,
    /// Digest of the probed decision vector (keys the decisions cache).
    /// Zero for `deduced` events, which have no materialized vector.
    pub digest: u64,
    /// How the probe was answered.
    pub kind: ProbeKind,
    /// The verdict: did the compiled program verify?
    pub pass: bool,
    /// Unique ORAQL queries observed by that compilation (0 when the
    /// compile was skipped).
    pub unique: u64,
    /// Was this probe launched speculatively for a bisection sibling?
    pub speculative: bool,
    /// Wall time spent answering, in microseconds.
    pub wall_micros: u64,
}

impl ProbeEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"case\":\"");
        s.push_str(&escape_json(&self.case));
        let _ = write!(
            s,
            "\",\"seq\":{},\"digest\":{},\"kind\":\"{}\",\"pass\":{},\"unique\":{},\"speculative\":{},\"wall_micros\":{}}}",
            self.seq,
            self.digest,
            self.kind.as_str(),
            self.pass,
            self.unique,
            self.speculative,
            self.wall_micros
        );
        s
    }

    /// Parses a line produced by [`ProbeEvent::to_jsonl`]. Returns
    /// `None` for blank lines or lines missing required keys.
    pub fn parse_jsonl(line: &str) -> Option<ProbeEvent> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let case = json_str(line, "case")?;
        Some(ProbeEvent {
            case,
            seq: json_u64(line, "seq")?,
            digest: json_u64(line, "digest")?,
            kind: ProbeKind::parse(&json_str(line, "kind")?)?,
            pass: json_bool(line, "pass")?,
            unique: json_u64(line, "unique")?,
            speculative: json_bool(line, "speculative")?,
            wall_micros: json_u64(line, "wall_micros")?,
        })
    }
}

#[derive(Debug, Default)]
struct TraceInner {
    events: Vec<ProbeEvent>,
    file: Option<BufWriter<File>>,
    /// JSONL lines lost to failed file writes. The in-memory copy is
    /// still recorded, so `events()` stays complete; the count is
    /// surfaced by [`TraceSink::flush`] and the
    /// `oraql_trace_dropped_lines_total` registry counter.
    dropped: u64,
}

/// Thread-shared probe-trace sink. Cloning shares the underlying
/// buffer; all driver threads of a suite run feed one sink.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Arc<Mutex<TraceInner>>,
}

impl TraceSink {
    /// An in-memory sink (events retrievable via [`TraceSink::events`]).
    pub fn in_memory() -> Self {
        TraceSink::default()
    }

    /// A sink that additionally appends JSONL lines to `path`
    /// (truncating any existing file).
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = BufWriter::new(File::create(path)?);
        Ok(TraceSink {
            inner: Arc::new(Mutex::new(TraceInner {
                events: Vec::new(),
                file: Some(file),
                dropped: 0,
            })),
        })
    }

    /// Records one event (writes the JSONL line immediately when backed
    /// by a file). A failed write never loses the in-memory event; it
    /// is counted and reported by [`TraceSink::flush`].
    pub fn record(&self, ev: ProbeEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(f) = inner.file.as_mut() {
            if writeln!(f, "{}", ev.to_jsonl()).is_err() {
                inner.dropped += 1;
                oraql_obs::global()
                    .counter("oraql_trace_dropped_lines_total")
                    .inc();
            }
        }
        inner.events.push(ev);
    }

    /// Snapshot of all recorded events, in record order.
    pub fn events(&self) -> Vec<ProbeEvent> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .events
            .clone()
    }

    /// Flushes the backing file, if any. Returns the total number of
    /// JSONL lines dropped by failed writes (including a failed flush)
    /// so callers can report data loss once instead of never.
    pub fn flush(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(f) = inner.file.as_mut() {
            if f.flush().is_err() {
                inner.dropped += 1;
                oraql_obs::global()
                    .counter("oraql_trace_dropped_lines_total")
                    .inc();
            }
        }
        inner.dropped
    }
}

/// Reads every parseable event from a JSONL trace file.
pub fn read_trace(path: impl AsRef<Path>) -> std::io::Result<Vec<ProbeEvent>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text.lines().filter_map(ProbeEvent::parse_jsonl).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: ProbeKind, seq: u64) -> ProbeEvent {
        ProbeEvent {
            case: "testsnap \"omp\"\n".into(),
            seq,
            digest: 0xdead_beef,
            kind,
            pass: seq.is_multiple_of(2),
            unique: 42,
            speculative: seq == 1,
            wall_micros: 1234,
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        for (i, kind) in [
            ProbeKind::Executed,
            ProbeKind::ExeCacheHit,
            ProbeKind::DecisionCacheHit,
            ProbeKind::StoreHit,
            ProbeKind::ServerHit,
            ProbeKind::Deduced,
            ProbeKind::Faulted,
            ProbeKind::Cancelled,
        ]
        .into_iter()
        .enumerate()
        {
            let ev = sample(kind, i as u64);
            let line = ev.to_jsonl();
            assert_eq!(ProbeEvent::parse_jsonl(&line), Some(ev), "{line}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(ProbeEvent::parse_jsonl(""), None);
        assert_eq!(ProbeEvent::parse_jsonl("{\"case\":\"x\"}"), None);
        assert_eq!(ProbeEvent::parse_jsonl("not json"), None);
    }

    #[test]
    fn sink_roundtrips_through_file() {
        // Per-process unique path: two concurrent `cargo test`
        // invocations must not race on one temp file.
        let path =
            std::env::temp_dir().join(format!("oraql_trace_test_{}.jsonl", std::process::id()));
        let sink = TraceSink::to_file(&path).unwrap();
        sink.record(sample(ProbeKind::Executed, 0));
        sink.record(sample(ProbeKind::Deduced, 1));
        assert_eq!(sink.flush(), 0, "healthy sink drops nothing");
        let back = read_trace(&path).unwrap();
        assert_eq!(back, sink.events());
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_counts_dropped_lines_on_write_failure() {
        // A sink whose file handle fails every write: /dev/full is the
        // classic always-ENOSPC device on Linux.
        let Ok(sink) = TraceSink::to_file("/dev/full") else {
            return; // platform without /dev/full: nothing to test
        };
        // BufWriter defers the failure; force tiny writes + flush.
        sink.record(sample(ProbeKind::Executed, 0));
        let dropped = sink.flush();
        assert!(dropped >= 1, "write failure must be counted");
        // The in-memory copy is intact regardless.
        assert_eq!(sink.events().len(), 1);
    }

    #[test]
    fn shared_clones_feed_one_buffer() {
        let sink = TraceSink::in_memory();
        let s2 = sink.clone();
        std::thread::scope(|sc| {
            sc.spawn(|| s2.record(sample(ProbeKind::Executed, 0)));
            sc.spawn(|| sink.record(sample(ProbeKind::ExeCacheHit, 1)));
        });
        assert_eq!(sink.events().len(), 2);
    }
}
