//! Functions, globals and modules.

use crate::inst::{Inst, InstData, InstId};
use crate::interner::{StrId, StringInterner};
use crate::meta::{SrcLoc, Target, TbaaTree};
use crate::types::Ty;
use crate::value::{BlockId, Value};

/// Handle to a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(pub u32);

/// Handle to a global within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Value type.
    pub ty: Ty,
    /// `noalias` (C `restrict`) attribute: the pointee is not accessed
    /// through any pointer not derived from this argument.
    pub noalias: bool,
    /// Debug name.
    pub name: String,
}

/// A basic block: an ordered list of instructions ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Instruction ids in execution order.
    pub insts: Vec<InstId>,
}

/// A function: parameters, a CFG of basic blocks and an instruction arena.
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type, `None` for void.
    pub ret: Option<Ty>,
    /// Basic blocks; `BlockId(i)` indexes this vector. Block 0 is entry.
    pub blocks: Vec<Block>,
    /// Instruction arena; `InstId(i)` indexes this vector. Removed
    /// instructions stay as `Inst::Removed` so ids remain stable.
    pub insts: Vec<InstData>,
    /// Compilation target (host or device).
    pub target: Target,
    /// True for compiler-generated outlined bodies (parallel regions,
    /// kernels). Reports print these like LLVM's `.omp_outlined.` names.
    pub outlined: bool,
    /// Source file this function was "compiled" from; ORAQL scoping uses
    /// this to restrict probing to specific files.
    pub src_file: Option<StrId>,
}

impl Function {
    /// Entry block id (always block 0).
    pub const ENTRY: BlockId = BlockId(0);

    /// Immutable access to an instruction payload.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.0 as usize].inst
    }

    /// Checked access to an instruction payload: `None` when `id` is not
    /// a valid arena index. Consumers that may face malformed IR (the VM,
    /// the machine lowering) use this instead of [`Function::inst`].
    pub fn get_inst(&self, id: InstId) -> Option<&Inst> {
        self.insts.get(id.0 as usize).map(|d| &d.inst)
    }

    /// Mutable access to an instruction payload.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.0 as usize].inst
    }

    /// Full instruction record (payload + block + location).
    pub fn inst_data(&self, id: InstId) -> &InstData {
        &self.insts[id.0 as usize]
    }

    /// Source location of an instruction, if recorded.
    pub fn loc(&self, id: InstId) -> Option<SrcLoc> {
        self.insts[id.0 as usize].loc
    }

    /// Block that currently contains `id`.
    pub fn block_of(&self, id: InstId) -> BlockId {
        self.insts[id.0 as usize].block
    }

    /// Appends a new instruction to the arena and to the end of `block`.
    pub fn push_inst(&mut self, block: BlockId, inst: Inst, loc: Option<SrcLoc>) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(InstData { inst, block, loc });
        self.blocks[block.0 as usize].insts.push(id);
        id
    }

    /// Inserts a new instruction into the arena and places it at `pos`
    /// within `block`'s instruction list.
    pub fn insert_inst(
        &mut self,
        block: BlockId,
        pos: usize,
        inst: Inst,
        loc: Option<SrcLoc>,
    ) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(InstData { inst, block, loc });
        self.blocks[block.0 as usize].insts.insert(pos, id);
        id
    }

    /// Removes `id` from its block and marks it `Removed`. Uses of its
    /// result become dangling; callers must have rewritten them first
    /// (asserted by the verifier in debug builds).
    pub fn remove_inst(&mut self, id: InstId) {
        let bb = self.insts[id.0 as usize].block;
        self.blocks[bb.0 as usize].insts.retain(|&i| i != id);
        self.insts[id.0 as usize].inst = Inst::Removed;
    }

    /// Moves `id` from its current position to the end of `to`, placing
    /// it just before the terminator. Used by LICM hoisting/sinking.
    pub fn move_inst_before_terminator(&mut self, id: InstId, to: BlockId) {
        let from = self.insts[id.0 as usize].block;
        self.blocks[from.0 as usize].insts.retain(|&i| i != id);
        let dest = &mut self.blocks[to.0 as usize].insts;
        let pos = dest.len().saturating_sub(1);
        // The destination block always has a terminator for well-formed
        // functions; insert before it.
        dest.insert(pos, id);
        self.insts[id.0 as usize].block = to;
    }

    /// Replaces every use of `from` with `to` across the whole function.
    pub fn replace_all_uses(&mut self, from: Value, to: Value) {
        for data in &mut self.insts {
            data.inst.for_each_operand_mut(|v| {
                if *v == from {
                    *v = to;
                }
            });
        }
    }

    /// Adds a fresh empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        id
    }

    /// The terminator of `bb`, if the block is non-empty and well formed.
    pub fn terminator(&self, bb: BlockId) -> Option<InstId> {
        self.blocks[bb.0 as usize]
            .insts
            .last()
            .copied()
            .filter(|&id| self.inst(id).is_terminator())
    }

    /// Iterates over all live (non-removed) instruction ids in block
    /// order, then instruction order.
    pub fn live_insts(&self) -> impl Iterator<Item = InstId> + '_ {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter().copied())
            .filter(|&id| !matches!(self.inst(id), Inst::Removed))
    }

    /// Counts live instructions (the "IR size" statistic).
    pub fn live_inst_count(&self) -> usize {
        self.live_insts().count()
    }
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Optional initial bytes (zero-filled when shorter than `size`).
    pub init: Vec<u8>,
    /// `true` for read-only data.
    pub constant: bool,
}

/// A compilation unit: functions, globals, interned strings and the TBAA
/// type tree.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name (for reports).
    pub name: String,
    /// Functions; `FunctionId(i)` indexes this vector.
    pub funcs: Vec<Function>,
    /// Globals; `GlobalId(i)` indexes this vector.
    pub globals: Vec<Global>,
    /// Interned strings (file names, formats, external symbols).
    pub strings: StringInterner,
    /// TBAA type tree shared by all functions.
    pub tbaa: TbaaTree,
    /// Number of alias scopes allocated so far.
    pub num_scopes: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: &str) -> Self {
        Module {
            name: name.to_owned(),
            funcs: Vec::new(),
            globals: Vec::new(),
            strings: StringInterner::new(),
            tbaa: TbaaTree::new(),
            num_scopes: 0,
        }
    }

    /// Immutable access to a function.
    pub fn func(&self, id: FunctionId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Checked access to a function: `None` when `id` is not a valid
    /// index (malformed IR must not panic consumers such as the VM).
    pub fn get_func(&self, id: FunctionId) -> Option<&Function> {
        self.funcs.get(id.0 as usize)
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, id: FunctionId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Finds a function by name.
    pub fn find_func(&self, name: &str) -> Option<FunctionId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FunctionId(i as u32))
    }

    /// Adds a global and returns its handle.
    pub fn add_global(&mut self, name: &str, size: u64, init: Vec<u8>, constant: bool) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.to_owned(),
            size,
            init,
            constant,
        });
        id
    }

    /// Allocates a fresh alias scope id.
    pub fn new_scope(&mut self) -> crate::meta::ScopeId {
        let id = crate::meta::ScopeId(self.num_scopes);
        self.num_scopes += 1;
        id
    }

    /// Global lookup by handle.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Total live instruction count across all functions.
    pub fn live_inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.live_inst_count()).sum()
    }

    /// Functions compiled for `target`.
    pub fn funcs_for_target(&self, target: Target) -> impl Iterator<Item = FunctionId> + '_ {
        self.funcs
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.target == target)
            .map(|(i, _)| FunctionId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::meta::AccessMeta;

    fn empty_func() -> Function {
        Function {
            name: "f".into(),
            params: vec![],
            ret: None,
            blocks: vec![Block::default()],
            insts: vec![],
            target: Target::Host,
            outlined: false,
            src_file: None,
        }
    }

    #[test]
    fn push_and_remove() {
        let mut f = empty_func();
        let a = f.push_inst(
            Function::ENTRY,
            Inst::Alloca {
                size: 8,
                name: StrId(0),
            },
            None,
        );
        let r = f.push_inst(Function::ENTRY, Inst::Ret { val: None }, None);
        assert_eq!(f.live_inst_count(), 2);
        assert_eq!(f.terminator(Function::ENTRY), Some(r));
        f.remove_inst(a);
        assert_eq!(f.live_inst_count(), 1);
        assert!(matches!(f.inst(a), Inst::Removed));
    }

    #[test]
    fn replace_all_uses() {
        let mut f = empty_func();
        let a = f.push_inst(
            Function::ENTRY,
            Inst::Alloca {
                size: 8,
                name: StrId(0),
            },
            None,
        );
        let l = f.push_inst(
            Function::ENTRY,
            Inst::Load {
                ptr: Value::Inst(a),
                ty: Ty::I64,
                meta: AccessMeta::default(),
            },
            None,
        );
        f.replace_all_uses(Value::Inst(a), Value::Arg(0));
        match f.inst(l) {
            Inst::Load { ptr, .. } => assert_eq!(*ptr, Value::Arg(0)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn module_find_func() {
        let mut m = Module::new("m");
        m.funcs.push(empty_func());
        assert_eq!(m.find_func("f"), Some(FunctionId(0)));
        assert_eq!(m.find_func("g"), None);
    }

    #[test]
    fn scopes_are_fresh() {
        let mut m = Module::new("m");
        let a = m.new_scope();
        let b = m.new_scope();
        assert_ne!(a, b);
        assert_eq!(m.num_scopes, 2);
    }

    #[test]
    fn move_before_terminator() {
        let mut f = empty_func();
        let bb2 = f.add_block();
        let a = f.push_inst(
            bb2,
            Inst::Alloca {
                size: 8,
                name: StrId(0),
            },
            None,
        );
        f.push_inst(Function::ENTRY, Inst::Br { target: bb2 }, None);
        f.push_inst(bb2, Inst::Ret { val: None }, None);
        // Move the alloca from bb2 into entry, before the branch.
        f.move_inst_before_terminator(a, Function::ENTRY);
        assert_eq!(f.block_of(a), Function::ENTRY);
        assert_eq!(f.blocks[0].insts.len(), 2);
        assert_eq!(f.blocks[0].insts[0], a);
    }
}
