//! The composer: turns `(plan, index)` into a runnable [`TestCase`]
//! plus its ground truth, and round-trips case names so a corpus on
//! disk is nothing but plan strings.
//!
//! A generated case is named `gen:<plan>#<index>` where `<plan>` is the
//! canonical [`GenPlan::render`] string. The name alone reconstructs
//! the case ([`resolve`]), which is what lets on-disk corpus configs
//! stay tiny and byte-identical across regenerations.

use oraql::driver::TestCase;
use oraql::truth::GroundTruth;

use crate::motifs::emit_case;
use crate::plan::{GenPlan, Motif};

/// A composed case: the driver-ready [`TestCase`] and the label map
/// covering every interesting pointer pair in its module.
pub struct GenCase {
    /// Driver input; `case.name` is `gen:<plan>#<index>`.
    pub case: TestCase,
    /// Ground-truth labels, keyed by this case's name.
    pub truth: GroundTruth,
    /// The motif sequence the composer sampled (for manifests).
    pub motifs: Vec<Motif>,
}

/// The durable name of case `index` of `plan`.
pub fn case_name(plan: &GenPlan, index: u32) -> String {
    format!("gen:{}#{}", plan.render(), index)
}

/// Parses a `gen:<plan>#<index>` name back into its plan and index.
/// Returns `None` for non-`gen:` names, malformed plans, or an index
/// outside the plan's case count.
pub fn parse_name(name: &str) -> Option<(GenPlan, u32)> {
    let rest = name.strip_prefix("gen:")?;
    let (plan_s, idx_s) = rest.rsplit_once('#')?;
    let plan = GenPlan::parse(plan_s).ok()?;
    let index: u32 = idx_s.parse().ok()?;
    if index >= plan.cases {
        return None;
    }
    Some((plan, index))
}

/// Composes case `index` of `plan`. Deterministic: the same inputs
/// always produce a byte-identical module and identical labels.
pub fn compose(plan: &GenPlan, index: u32) -> GenCase {
    let (_, truth, motifs) = emit_case(plan, index);
    let name = case_name(plan, index);
    let plan_c = plan.clone();
    let case = TestCase::new(&name, move || emit_case(&plan_c, index).0);
    GenCase {
        case,
        truth,
        motifs,
    }
}

/// Reconstructs a composed case from its `gen:…#…` name.
pub fn resolve(name: &str) -> Option<GenCase> {
    let (plan, index) = parse_name(name)?;
    Some(compose(&plan, index))
}

/// Composes the whole corpus: every case of `plan` plus one merged
/// label map, ready to hand to `run_suite` through a single shared
/// `DriverOptions::ground_truth`.
pub fn suite(plan: &GenPlan) -> (Vec<TestCase>, GroundTruth) {
    let mut cases = Vec::with_capacity(plan.cases as usize);
    let mut truth = GroundTruth::new();
    for index in 0..plan.cases {
        let g = compose(plan, index);
        cases.push(g.case);
        truth.merge(g.truth);
    }
    (cases, truth)
}
