//! GridMini — reduced lattice-QCD SU(3) benchmark, OpenMP-offload
//! configuration (paper §V-C).
//!
//! All 86-ish device-side queries can be answered optimistically, yet
//! the optimistic kernel is *slower*: LICM hoists loads out of a
//! rarely-executed inner loop into straight-line kernel code that every
//! work item now pays for — the paper's observed 7% kernel-time
//! regression from *more* static information (GPU heuristics acting on
//! it blindly).

use crate::toolkit::*;
use oraql::compile::Scope;
use oraql::TestCase;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::inst::CmpPred;
use oraql_ir::module::Module;
use oraql_ir::value::Value;
use oraql_ir::Ty;

/// Lattice sites (the paper evaluates L = 60; we scale down).
const SITES: i64 = 64;
/// Only every 16th site runs the correction loop.
const RARE_STRIDE: i64 = 16;
/// Iterations of the correction loop when it runs.
const RARE_ITERS: i64 = 4;

fn build() -> Module {
    let mut m = Module::new("gridmini");
    let b8 = 8 * SITES as u64;
    let ctx = make_ctx(
        &mut m,
        "su3",
        &[
            ("u_re", b8),
            ("u_im", b8),
            ("v_re", b8),
            ("v_im", b8),
            ("w_re", b8),
            ("w_im", b8),
            ("corr", 8 * RARE_ITERS as u64),
        ],
        &[],
    );
    // The SU3 matrix-multiply kernel: w = u * v element-wise proxy, plus
    // a rare correction loop reading small coefficient tables.
    let kern = {
        let mut b = device_kernel(&mut m, "su3_mult_kernel", "Benchmark_su3");
        b.set_loc("Benchmark_su3", 88, 3);
        let gid = b.arg(0);
        let cp = b.arg(1);
        let tag = ctx.tag_data;
        // Main math: w_re[g] = u_re*v_re - u_im*v_im ; w_im = ure*vim+uim*vre
        let ure = dptr(&mut b, &ctx, cp, "u_re");
        let uim = dptr(&mut b, &ctx, cp, "u_im");
        let vre = dptr(&mut b, &ctx, cp, "v_re");
        let vim = dptr(&mut b, &ctx, cp, "v_im");
        let wre = dptr(&mut b, &ctx, cp, "w_re");
        let wim = dptr(&mut b, &ctx, cp, "w_im");
        let li = |b: &mut FunctionBuilder, p: Value, i: Value| {
            let a = b.gep_scaled(p, i, 8, 0);
            b.load_tbaa(Ty::F64, a, tag)
        };
        let a = li(&mut b, ure, gid);
        let bi_ = li(&mut b, uim, gid);
        let c = li(&mut b, vre, gid);
        let d = li(&mut b, vim, gid);
        let ac = b.fmul(a, c);
        let bd = b.fmul(bi_, d);
        let re = b.fsub(ac, bd);
        let ad = b.fmul(a, d);
        let bc = b.fmul(bi_, c);
        let im = b.fadd(ad, bc);
        let wrei = b.gep_scaled(wre, gid, 8, 0);
        b.store_tbaa(Ty::F64, re, wrei, tag);
        let wimi = b.gep_scaled(wim, gid, 8, 0);
        b.store_tbaa(Ty::F64, im, wimi, tag);
        // Rare correction: runs only when gid % RARE_STRIDE == 0.
        let r = b.rem(gid, Value::ConstInt(RARE_STRIDE));
        let is_rare = b.cmp(CmpPred::Eq, Ty::I64, r, Value::ConstInt(0));
        let iters = b.select(
            Ty::I64,
            is_rare,
            Value::ConstInt(RARE_ITERS),
            Value::ConstInt(0),
        );
        // The loop's bound is usually 0. Inside, several loads through
        // invariant pointers are conservatively pinned by the w-stores'
        // may-alias; optimistically LICM hoists them into the preheader
        // — i.e. into every work item's straight-line path.
        b.counted_loop(Value::ConstInt(0), iters, |b, k| {
            let corr = dptr(b, &ctx, cp, "corr");
            let base = dptr(b, &ctx, cp, "u_re");
            let c0 = b.load_tbaa(Ty::F64, corr, tag);
            let b0 = b.load_tbaa(Ty::F64, base, tag);
            let ck = b.gep_scaled(corr, k, 8, 0);
            let cv = b.load_tbaa(Ty::F64, ck, tag);
            let f = b.fmul(c0, b0);
            let g2 = b.fadd(f, cv);
            let wk = b.gep_scaled(wre, k, 8, 0);
            let cur = b.load_tbaa(Ty::F64, wk, tag);
            let s = b.fadd(cur, g2);
            b.store_tbaa(Ty::F64, s, wk, tag);
        });
        b.ret(None);
        b.finish()
    };
    let mut b = main_builder(&mut m, "Benchmark_su3_main");
    init_ctx(&mut b, &ctx);
    fill_array(&mut b, &ctx, "u_re", SITES, 0.9, 0.001);
    fill_array(&mut b, &ctx, "u_im", SITES, -0.1, 0.002);
    fill_array(&mut b, &ctx, "v_re", SITES, 0.8, -0.001);
    fill_array(&mut b, &ctx, "v_im", SITES, 0.2, 0.003);
    fill_array(&mut b, &ctx, "w_re", SITES, 0.0, 0.0);
    fill_array(&mut b, &ctx, "w_im", SITES, 0.0, 0.0);
    fill_array(&mut b, &ctx, "corr", RARE_ITERS, 0.01, 0.01);
    b.kernel_launch(kern, vec![Value::Global(ctx.global)], SITES as u32);
    checksum(&mut b, &ctx, "w_re", SITES, "w_re");
    checksum(&mut b, &ctx, "w_im", SITES, "w_im");
    timing_epilogue(&mut b, "Gflop/s");
    b.ret(None);
    b.finish();
    m
}

/// The GridMini test case (device-scoped, like the paper's
/// device-compilation-only probing).
pub fn cases() -> Vec<TestCase> {
    let mut c = TestCase::new("gridmini", build);
    c.scope = Scope::target("device");
    c.ignore_patterns = standard_ignore_patterns();
    vec![c]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn builds_and_runs_on_device() {
        let m = build();
        oraql_ir::verify::assert_valid(&m);
        let out = Interpreter::run_main(&m).unwrap();
        assert!(out.stats.device_insts > 0);
        assert!(out.stdout.contains("checksum(w_re)="), "{}", out.stdout);
    }
}
