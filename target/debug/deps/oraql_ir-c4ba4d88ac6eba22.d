/root/repo/target/debug/deps/oraql_ir-c4ba4d88ac6eba22.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/inst.rs crates/ir/src/interner.rs crates/ir/src/meta.rs crates/ir/src/module.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/oraql_ir-c4ba4d88ac6eba22: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/inst.rs crates/ir/src/interner.rs crates/ir/src/meta.rs crates/ir/src/module.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/inst.rs:
crates/ir/src/interner.rs:
crates/ir/src/meta.rs:
crates/ir/src/module.rs:
crates/ir/src/printer.rs:
crates/ir/src/types.rs:
crates/ir/src/value.rs:
crates/ir/src/verify.rs:
