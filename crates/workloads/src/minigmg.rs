//! MiniGMG — compact geometric multigrid benchmark (paper §V-G), in the
//! `ompif` (worksharing loops), `omptask` (worksharing + tasks) and
//! `sse` (explicit intrinsics) configurations.
//!
//! MiniGMG's original build uses `icc -fno-alias`, i.e. it *assumes* no
//! aliasing globally — so all three configurations verify fully
//! optimistically. The interesting outcome is performance: the `ompif`
//! smoother loops become vectorizable with optimistic answers (the
//! paper's 8% speedup and 9 → 12 vectorized loops), the `sse` variant is
//! already hand-vectorized and barely moves, and `omptask` sits in
//! between.

use crate::toolkit::*;
use oraql::compile::Scope;
use oraql::TestCase;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::inst::{BinOp, CastKind};
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::value::Value;
use oraql_ir::Ty;

/// Grid points per box.
const POINTS: i64 = 64;
/// Smoother sweeps.
const SWEEPS: i64 = 3;

/// Variant selector.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// OpenMP worksharing (`operators.ompif.c`).
    OmpIf,
    /// OpenMP worksharing + tasks (`operators.omptask.c`).
    OmpTask,
    /// Explicit SSE intrinsics (`operators.sse.c`).
    Sse,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::OmpIf => "minigmg_ompif",
            Variant::OmpTask => "minigmg_omptask",
            Variant::Sse => "minigmg_sse",
        }
    }
    fn src(self) -> &'static str {
        match self {
            Variant::OmpIf => "operators.ompif",
            Variant::OmpTask => "operators.omptask",
            Variant::Sse => "operators.sse",
        }
    }
}

/// The Jacobi-ish smoother: `out[i] = (a[i] + b[i]) * w + c[i]`.
/// Scalar for the OpenMP variants (vectorizable only with optimistic
/// alias answers); explicit 2-wide vectors for the SSE variant.
fn emit_smoother(m: &mut Module, ctx: &Ctx, v: Variant, idx: usize) -> FunctionId {
    let mut b = FunctionBuilder::new(m, &format!("smooth_{idx}"), vec![Ty::I64, Ty::Ptr], None);
    b.set_outlined(true);
    b.set_src_file(v.src());
    b.set_loc(v.src(), 120 + idx as u32 * 40, 3);
    let tid = b.arg(0);
    let cp = b.arg(1);
    let tag = ctx.tag_data;
    let (a_n, b_n, o_n) = match idx {
        0 => ("phi", "rhs", "tmp"),
        1 => ("tmp", "beta", "phi"),
        _ => ("phi", "beta", "res"),
    };
    let (lo, hi) = chunk_bounds(&mut b, tid, POINTS, 4);
    match v {
        Variant::Sse => {
            // Hand-vectorized: 2-wide vector ops with a manual stride-2
            // loop (`_mm_load_pd` style).
            let half_lo = b.div(lo, Value::ConstInt(2));
            let half_hi = b.div(hi, Value::ConstInt(2));
            let ap = dptr(&mut b, ctx, cp, a_n);
            let bp = dptr(&mut b, ctx, cp, b_n);
            let op = dptr(&mut b, ctx, cp, o_n);
            b.counted_loop(half_lo, half_hi, |b, k| {
                let ai = b.gep_scaled(ap, k, 16, 0);
                let av = b.load_tbaa(Ty::VecF64(2), ai, tag);
                let bi = b.gep_scaled(bp, k, 16, 0);
                let bv = b.load_tbaa(Ty::VecF64(2), bi, tag);
                let s = b.bin(BinOp::FAdd, Ty::VecF64(2), av, bv);
                let w = b.cast(CastKind::Splat, Value::const_f64(0.9), Ty::VecF64(2));
                let sw = b.bin(BinOp::FMul, Ty::VecF64(2), s, w);
                let oi = b.gep_scaled(op, k, 16, 0);
                b.store_tbaa(Ty::VecF64(2), sw, oi, tag);
            });
        }
        _ => {
            let ap = dptr(&mut b, ctx, cp, a_n);
            let bp = dptr(&mut b, ctx, cp, b_n);
            let op = dptr(&mut b, ctx, cp, o_n);
            // The task variant's third smoother carries the tasking
            // runtime's per-element completion check (a branch), which
            // keeps that one loop out of the vectorizer — the reason
            // the paper's omptask gains less than ompif (22% vs 33%
            // more vectorized loops, ~1% vs ~8% runtime).
            let branchy = v == Variant::OmpTask && idx == 2;
            b.counted_loop(lo, hi, |b, i| {
                let ai = b.gep_scaled(ap, i, 8, 0);
                let av = b.load_tbaa(Ty::F64, ai, tag);
                let bi = b.gep_scaled(bp, i, 8, 0);
                let bv = b.load_tbaa(Ty::F64, bi, tag);
                let s = b.fadd(av, bv);
                let sw = if branchy {
                    let parity = b.rem(i, Value::ConstInt(2));
                    let c = b.cmp(
                        oraql_ir::inst::CmpPred::Eq,
                        Ty::I64,
                        parity,
                        Value::ConstInt(0),
                    );
                    let even = b.new_block();
                    let odd = b.new_block();
                    let join = b.new_block();
                    b.cond_br(c, even, odd);
                    b.switch_to(even);
                    let se = b.fmul(s, Value::const_f64(0.9));
                    b.br(join);
                    b.switch_to(odd);
                    let so = b.fmul(s, Value::const_f64(0.9));
                    b.br(join);
                    b.switch_to(join);
                    b.phi(Ty::F64, vec![(even, se), (odd, so)])
                } else {
                    b.fmul(s, Value::const_f64(0.9))
                };
                let oi = b.gep_scaled(op, i, 8, 0);
                b.store_tbaa(Ty::F64, sw, oi, tag);
            });
        }
    }
    b.ret(None);
    b.finish()
}

fn build(v: Variant) -> Module {
    let mut m = Module::new(v.name());
    let bytes = 8 * POINTS as u64;
    let ctx = make_ctx(
        &mut m,
        "gmg",
        &[
            ("phi", bytes),
            ("rhs", bytes),
            ("beta", bytes),
            ("tmp", bytes),
            ("res", bytes),
        ],
        &[],
    );
    let smoothers: Vec<FunctionId> = (0..3).map(|i| emit_smoother(&mut m, &ctx, v, i)).collect();
    // The task variant wraps each smoother call in an extra task shim
    // (one more indirection layer, like the paper's omptask).
    let task_shims: Vec<FunctionId> = if v == Variant::OmpTask {
        smoothers
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let mut b =
                    FunctionBuilder::new(&mut m, &format!("task_shim_{i}"), vec![Ty::Ptr], None);
                b.set_src_file(v.src());
                let cp = b.arg(0);
                b.parallel_region(s, vec![cp], 4);
                b.ret(None);
                b.finish()
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut b = main_builder(&mut m, "miniGMG-main");
    init_ctx(&mut b, &ctx);
    fill_array(&mut b, &ctx, "phi", POINTS, 1.0, 0.03);
    fill_array(&mut b, &ctx, "rhs", POINTS, 0.5, -0.01);
    fill_array(&mut b, &ctx, "beta", POINTS, 0.25, 0.005);
    fill_array(&mut b, &ctx, "tmp", POINTS, 0.0, 0.0);
    fill_array(&mut b, &ctx, "res", POINTS, 0.0, 0.0);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(SWEEPS), |b, _| {
        if v == Variant::OmpTask {
            for &shim in &task_shims {
                b.call(shim, vec![Value::Global(ctx.global)], None);
            }
        } else {
            for &s in &smoothers {
                b.parallel_region(s, vec![Value::Global(ctx.global)], 4);
            }
        }
    });
    checksum(&mut b, &ctx, "res", POINTS, "residual");
    checksum(&mut b, &ctx, "phi", POINTS, "phi");
    timing_epilogue(&mut b, "DOF/s");
    b.ret(None);
    b.finish();
    m
}

/// The three MiniGMG test cases.
pub fn cases() -> Vec<TestCase> {
    [Variant::OmpIf, Variant::OmpTask, Variant::Sse]
        .into_iter()
        .map(|v| {
            let mut c = TestCase::new(v.name(), move || build(v));
            c.scope = Scope::files(vec![v.src().into()]);
            c.ignore_patterns = standard_ignore_patterns();
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn all_variants_run_and_agree() {
        let grab = |m: &Module| {
            let out = Interpreter::run_main(m).unwrap();
            out.stdout
                .lines()
                .filter(|l| l.starts_with("checksum"))
                .collect::<Vec<_>>()
                .join("|")
        };
        let a = grab(&build(Variant::OmpIf));
        let b = grab(&build(Variant::OmpTask));
        let c = grab(&build(Variant::Sse));
        assert_eq!(a, b);
        assert_eq!(a, c); // hand-vectorized math is lane-exact here
    }

    #[test]
    fn sse_variant_uses_vector_ops() {
        let m = build(Variant::Sse);
        let uses_vec = m.funcs.iter().any(|f| {
            f.insts.iter().any(|d| {
                matches!(
                    d.inst,
                    oraql_ir::inst::Inst::Load {
                        ty: Ty::VecF64(2),
                        ..
                    }
                )
            })
        });
        assert!(uses_vec);
    }
}
