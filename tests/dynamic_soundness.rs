//! Dynamic soundness of the *conservative* analyses: a `NoAlias` answer
//! about two accesses of the same function invocation must never be
//! contradicted by the addresses those accesses actually touch.
//!
//! This is the guarantee ORAQL deliberately gives up — which is exactly
//! why it must hold watertight for the chain underneath: any divergence
//! found by the driver is then attributable to the optimistic answers
//! alone. We run every proxy workload (and random programs) with the
//! VM's access trace enabled and cross-check every within-frame access
//! pair against the chain.

use oraql_suite::analysis::{AAManager, AliasResult, MemoryLocation};
use oraql_suite::ir::Module;
use oraql_suite::oraql::compile::conservative_chain;
use oraql_suite::vm::{AccessEvent, Interpreter};
use std::collections::HashMap;

fn overlaps(a: &AccessEvent, b: &AccessEvent) -> bool {
    a.addr < b.addr + b.size && b.addr < a.addr + a.size
}

/// Checks one module: every dynamically-overlapping same-frame access
/// pair must NOT be claimed `NoAlias` by the conservative chain.
fn check_module(m: &Module, use_cfl: bool, label: &str) {
    let main = m.find_func("main").expect("main");
    let mut interp = Interpreter::new(m).with_access_trace();
    interp
        .run(main, vec![])
        .unwrap_or_else(|e| panic!("{label}: {e}"));

    // Group events by frame; bound the per-frame work.
    let mut frames: HashMap<u64, Vec<AccessEvent>> = HashMap::new();
    for &e in interp.access_trace() {
        frames.entry(e.frame).or_default().push(e);
    }

    let mut aa: AAManager = conservative_chain(m, use_cfl);
    let mut checked = 0u64;
    for events in frames.values() {
        // Cap the quadratic blow-up per frame; overlapping pairs are
        // what matter and they are rare.
        for (i, a) in events.iter().enumerate() {
            for b in events.iter().skip(i + 1) {
                if !overlaps(a, b) {
                    continue;
                }
                let f = m.func(a.func);
                let la = MemoryLocation::of_access(f, a.inst).expect("access");
                let lb = MemoryLocation::of_access(f, b.inst).expect("access");
                let r = aa.alias(m, a.func, &la, &lb);
                checked += 1;
                assert_ne!(
                    r,
                    AliasResult::NoAlias,
                    "{label}: unsound NoAlias for dynamically overlapping \
                     accesses {:?} and {:?} (addr {:#x}/{} vs {:#x}/{})",
                    a.inst,
                    b.inst,
                    a.addr,
                    a.size,
                    b.addr,
                    b.size
                );
            }
        }
    }
    assert!(
        checked > 0,
        "{label}: no overlapping pairs observed — the check is vacuous"
    );
}

#[test]
fn conservative_chain_is_dynamically_sound_on_all_workloads() {
    for case in oraql_workloads::all_cases() {
        let m = (case.build)();
        check_module(&m, false, case.name.as_str());
    }
}

#[test]
fn cfl_chain_is_dynamically_sound_on_selected_workloads() {
    for name in ["testsnap", "quicksilver", "xsbench", "lulesh"] {
        let case = oraql_workloads::find_case(name).unwrap();
        let m = (case.build)();
        check_module(&m, true, name);
    }
}

#[test]
fn soundness_check_catches_a_planted_lie() {
    // Sanity: the harness itself must be able to fail. An AA that
    // always answers NoAlias contradicts the trace of any program that
    // re-touches memory.
    struct Liar;
    impl oraql_suite::analysis::AliasAnalysis for Liar {
        fn name(&self) -> &'static str {
            "Liar"
        }
        fn alias(
            &mut self,
            _: &oraql_suite::analysis::QueryCtx<'_>,
            _: &MemoryLocation,
            _: &MemoryLocation,
        ) -> AliasResult {
            AliasResult::NoAlias
        }
    }
    let case = oraql_workloads::find_case("xsbench").unwrap();
    let m = (case.build)();
    let main = m.find_func("main").unwrap();
    let mut interp = Interpreter::new(&m).with_access_trace();
    interp.run(main, vec![]).unwrap();
    let mut aa = AAManager::new();
    aa.add(Box::new(Liar));
    let mut contradicted = false;
    let mut frames: HashMap<u64, Vec<AccessEvent>> = HashMap::new();
    for &e in interp.access_trace() {
        frames.entry(e.frame).or_default().push(e);
    }
    'outer: for events in frames.values() {
        for (i, a) in events.iter().enumerate() {
            for b in events.iter().skip(i + 1) {
                if !overlaps(a, b) || a.inst == b.inst {
                    continue;
                }
                let f = m.func(a.func);
                let la = MemoryLocation::of_access(f, a.inst).unwrap();
                let lb = MemoryLocation::of_access(f, b.inst).unwrap();
                if aa.alias(&m, a.func, &la, &lb) == AliasResult::NoAlias {
                    contradicted = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(contradicted, "the liar should have been caught");
}
