/root/repo/target/debug/deps/oraql-5b704ebcf7aa00de.d: crates/workloads/src/bin/oraql.rs Cargo.toml

/root/repo/target/debug/deps/liboraql-5b704ebcf7aa00de.rmeta: crates/workloads/src/bin/oraql.rs Cargo.toml

crates/workloads/src/bin/oraql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
