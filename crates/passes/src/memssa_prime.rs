//! MemorySSA priming pass: builds MemorySSA for each function and walks
//! every load to its clobber.
//!
//! In LLVM, MemorySSA is an analysis whose construction and walks issue
//! large numbers of alias queries that are then reused by GVN, DSE,
//! LICM and others. The paper found that in Quicksilver 61% of all
//! optimistically answered queries originated from MemorySSA. This pass
//! reproduces that behaviour: it performs the walks (issuing the
//! queries, which warms the ORAQL pass's cache in the process) without
//! transforming anything.

use crate::manager::{Pass, PassCx};
use oraql_analysis::location::MemoryLocation;
use oraql_analysis::memssa::{MemAccess, MemorySsa};
use oraql_ir::inst::Inst;
use oraql_ir::module::{FunctionId, Module};

/// The priming pass.
pub struct MemorySsaPrime;

impl Pass for MemorySsaPrime {
    fn name(&self) -> &'static str {
        "MemorySSA"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let f = m.func(fid);
        let mssa = MemorySsa::build(f);
        let loads: Vec<_> = f
            .live_insts()
            .filter(|&id| matches!(f.inst(id), Inst::Load { .. }))
            .collect();
        let mut walks = 0u64;
        let mut to_entry = 0u64;
        for id in loads {
            let f = m.func(fid);
            let Some(loc) = MemoryLocation::of_access(f, id) else {
                continue;
            };
            let start = mssa.defining_access(f, id);
            let clobber = mssa.clobber_walk(m, fid, cx.aa, &loc, start);
            walks += 1;
            if clobber == MemAccess::LiveOnEntry {
                to_entry += 1;
            }
        }
        cx.stat("MemorySSA", "clobber walks", walks);
        cx.stat("MemorySSA", "walks reaching entry", to_entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use oraql_analysis::basic::BasicAA;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Ty, Value};

    #[test]
    fn priming_issues_queries() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::Ptr], None);
        let p = b.arg(0);
        let q = b.arg(1);
        b.store(Ty::I64, Value::ConstInt(1), q);
        let l = b.load(Ty::I64, p); // must query the store to q
        b.store(Ty::I64, l, q);
        b.ret(None);
        let fid = b.finish();
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let mut stats = Stats::new();
        let mut cx = PassCx {
            aa: &mut aa,
            stats: &mut stats,
        };
        MemorySsaPrime.run(&mut m, fid, &mut cx);
        assert_eq!(stats.get("MemorySSA", "clobber walks"), 1);
        assert!(aa.total_queries >= 1);
    }
}
