//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

use oraql_ir::cfg;
use oraql_ir::module::Function;
use oraql_ir::value::BlockId;

/// Immediate-dominator tree of one function's CFG.
pub struct DomTree {
    /// `idom[b]` = immediate dominator of block `b`; entry maps to
    /// itself; unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Depth of each block in the dominator tree (entry = 0).
    depth: Vec<u32>,
    /// Reverse postorder used during construction (reachable blocks).
    rpo: Vec<BlockId>,
}

impl DomTree {
    /// Builds the dominator tree of `f`.
    pub fn build(f: &Function) -> Self {
        let n = f.blocks.len();
        let rpo = cfg::reverse_postorder(f);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        let preds = cfg::predecessors(f);
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[Function::ENTRY.0 as usize] = Some(Function::ENTRY);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed");
                }
                while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.0 as usize] != new_idom {
                    idom[b.0 as usize] = new_idom;
                    changed = true;
                }
            }
        }

        // Depths.
        let mut depth = vec![0u32; n];
        for &b in &rpo {
            if b == Function::ENTRY {
                continue;
            }
            if let Some(d) = idom[b.0 as usize] {
                depth[b.0 as usize] = depth[d.0 as usize] + 1;
            }
        }

        DomTree { idom, depth, rpo }
    }

    /// Immediate dominator of `b` (`None` for the entry block and
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.0 as usize] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// Does `a` dominate `b`? (Reflexive: every block dominates itself.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.0 as usize].is_none() || self.idom[a.0 as usize].is_none() {
            return false; // unreachable blocks dominate nothing
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if self.depth[cur.0 as usize] <= self.depth[a.0 as usize] {
                return false;
            }
            cur = self.idom[cur.0 as usize].expect("reachable");
        }
    }

    /// Does instruction `ia` dominate instruction `ib` (strictly, in
    /// execution order)?
    pub fn inst_dominates(
        &self,
        f: &Function,
        ia: oraql_ir::inst::InstId,
        ib: oraql_ir::inst::InstId,
    ) -> bool {
        let ba = f.block_of(ia);
        let bb = f.block_of(ib);
        if ba == bb {
            let block = &f.blocks[ba.0 as usize];
            let pa = block.insts.iter().position(|&i| i == ia);
            let pb = block.insts.iter().position(|&i| i == ib);
            match (pa, pb) {
                (Some(x), Some(y)) => x < y,
                _ => false,
            }
        } else {
            self.dominates(ba, bb) && ba != bb
        }
    }

    /// The reverse postorder computed during construction.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, Ty, Value};

    /// Diamond: entry -> (t, e) -> join.
    fn diamond() -> (Module, BlockId, BlockId, BlockId) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "d", vec![Ty::I1], None);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(b.arg(0), t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        b.finish();
        (m, t, e, j)
    }

    #[test]
    fn diamond_idoms() {
        let (m, t, e, j) = diamond();
        let f = m.func(oraql_ir::module::FunctionId(0));
        let dt = DomTree::build(f);
        let entry = Function::ENTRY;
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(t), Some(entry));
        assert_eq!(dt.idom(e), Some(entry));
        assert_eq!(dt.idom(j), Some(entry));
        assert!(dt.dominates(entry, j));
        assert!(!dt.dominates(t, j));
        assert!(dt.dominates(j, j));
    }

    #[test]
    fn loop_idoms() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "l", vec![], None);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |_, _| {});
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dt = DomTree::build(f);
        // header (block 1) dominated by entry; body (2) and exit (3) by
        // header.
        assert_eq!(dt.idom(BlockId(1)), Some(Function::ENTRY));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dt.dominates(BlockId(1), BlockId(2)));
        assert!(!dt.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn inst_dominance_within_block() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let a = b.load(Ty::I64, p);
        b.store(Ty::I64, a, p);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dt = DomTree::build(f);
        let i0 = f.blocks[0].insts[0];
        let i1 = f.blocks[0].insts[1];
        assert!(dt.inst_dominates(f, i0, i1));
        assert!(!dt.inst_dominates(f, i1, i0));
        assert!(!dt.inst_dominates(f, i0, i0));
    }
}
