//! Global value numbering: dominance-based redundant-load elimination,
//! store-to-load forwarding (through MemorySSA clobber walks) and global
//! CSE of pure expressions.

use crate::manager::{Pass, PassCx};
use oraql_analysis::domtree::DomTree;
use oraql_analysis::location::{AliasResult, LocationSize, MemoryLocation};
use oraql_analysis::memssa::{MemAccess, MemorySsa};
use oraql_ir::inst::{Inst, InstId};
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::types::Ty;
use oraql_ir::value::Value;
use std::collections::HashMap;

/// The pass.
pub struct Gvn;

/// Key identifying a load's value: pointer, access type, and the memory
/// state (clobber) it reads from. Two loads with equal keys see the same
/// bytes.
type LoadKey = (Value, Ty, MemAccess);

impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "GVN"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let dt = DomTree::build(m.func(fid));
        let mssa = MemorySsa::build(m.func(fid));

        let mut load_table: HashMap<LoadKey, InstId> = HashMap::new();
        let mut loads_deleted = 0u64;
        let mut forwarded = 0u64;

        // Traverse blocks in reverse postorder so dominating definitions
        // are seen first.
        let rpo: Vec<_> = dt.rpo().to_vec();
        for bb in rpo {
            let inst_ids: Vec<InstId> = m.func(fid).blocks[bb.0 as usize].insts.clone();
            for id in inst_ids {
                let inst = m.func(fid).inst(id).clone();
                let Inst::Load { ptr, ty, .. } = inst else {
                    continue;
                };
                let f = m.func(fid);
                let Some(loc) = MemoryLocation::of_access(f, id) else {
                    continue;
                };
                let start = mssa.defining_access(f, id);
                let clobber = mssa.clobber_walk(m, fid, cx.aa, &loc, start);

                // Store-to-load forwarding: the clobber is a store to the
                // very same location with a matching width.
                if let MemAccess::Def(d) = clobber {
                    let f = m.func(fid);
                    if let Inst::Store { value, ty: sty, .. } = f.inst(d) {
                        let (value, sty) = (*value, *sty);
                        let sloc = MemoryLocation::of_access(f, d).expect("store loc");
                        if sty == ty
                            && loc.size == LocationSize::Precise(ty.size())
                            && cx.aa.alias(m, fid, &sloc, &loc) == AliasResult::MustAlias
                            && dt.inst_dominates(m.func(fid), d, id)
                        {
                            let fm = m.func_mut(fid);
                            fm.replace_all_uses(Value::Inst(id), value);
                            fm.remove_inst(id);
                            forwarded += 1;
                            loads_deleted += 1;
                            continue;
                        }
                    }
                }

                // Redundant-load elimination: an earlier, dominating load
                // of the same pointer reading from the same memory state.
                let key: LoadKey = (ptr, ty, clobber);
                match load_table.get(&key) {
                    Some(&prev)
                        if !matches!(m.func(fid).inst(prev), Inst::Removed)
                            && dt.inst_dominates(m.func(fid), prev, id) =>
                    {
                        let fm = m.func_mut(fid);
                        fm.replace_all_uses(Value::Inst(id), Value::Inst(prev));
                        fm.remove_inst(id);
                        loads_deleted += 1;
                    }
                    _ => {
                        load_table.insert(key, id);
                    }
                }
            }
        }

        cx.stat("GVN", "loads deleted", loads_deleted);
        cx.stat("GVN", "loads forwarded from stores", forwarded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use oraql_analysis::basic::BasicAA;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_vm::Interpreter;

    fn run_gvn(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            Gvn.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    #[test]
    fn cross_block_redundant_load_eliminated() {
        // load in entry, re-load in a later block with only a
        // non-aliasing store between them.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(8, "x");
        let y = b.alloca(8, "y");
        b.store(Ty::I64, Value::ConstInt(3), x);
        let l1 = b.load(Ty::I64, x);
        let next = b.new_block();
        b.br(next);
        b.switch_to(next);
        b.store(Ty::I64, Value::ConstInt(4), y);
        let l2 = b.load(Ty::I64, x); // redundant across blocks
        let s = b.add(l1, l2);
        b.print("{}", vec![s]);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        let stats = run_gvn(&mut m);
        assert!(stats.get("GVN", "loads deleted") >= 1, "{}", stats.render());
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
        assert!(after.stats.loads < before.stats.loads);
    }

    #[test]
    fn store_to_load_forwarding() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(8, "x");
        b.store(Ty::I64, Value::ConstInt(11), x);
        let l = b.load(Ty::I64, x);
        b.print("{}", vec![l]);
        b.ret(None);
        b.finish();
        let stats = run_gvn(&mut m);
        assert_eq!(stats.get("GVN", "loads forwarded from stores"), 1);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "11\n");
        assert_eq!(out.stats.loads, 0);
    }

    #[test]
    fn may_aliasing_store_blocks_elimination() {
        let mut m = Module::new("t");
        let work = {
            let mut b = FunctionBuilder::new(&mut m, "work", vec![Ty::Ptr, Ty::Ptr], None);
            let p = b.arg(0);
            let q = b.arg(1);
            let l1 = b.load(Ty::I64, p);
            b.store(Ty::I64, Value::ConstInt(7), q);
            let l2 = b.load(Ty::I64, p); // q may alias p: keep
            let s = b.add(l1, l2);
            b.print("{}", vec![s]);
            b.ret(None);
            b.finish()
        };
        let g = m.add_global("buf", 8, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.store(Ty::I64, Value::ConstInt(1), Value::Global(g));
        b.call(work, vec![Value::Global(g), Value::Global(g)], None);
        b.ret(None);
        b.finish();
        run_gvn(&mut m);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "8\n"); // 1 + 7, not 1 + 1
    }

    #[test]
    fn noalias_args_enable_elimination() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "work", vec![Ty::Ptr, Ty::Ptr], Some(Ty::I64));
        b.set_noalias(0, true);
        b.set_noalias(1, true);
        let p = b.arg(0);
        let q = b.arg(1);
        let l1 = b.load(Ty::I64, p);
        b.store(Ty::I64, Value::ConstInt(7), q);
        let l2 = b.load(Ty::I64, p); // restrict: q cannot alias p
        let s = b.add(l1, l2);
        b.ret(Some(s));
        b.finish();
        let stats = run_gvn(&mut m);
        assert_eq!(stats.get("GVN", "loads deleted"), 1);
    }

    use oraql_ir::Ty;

    #[test]
    fn loads_in_loop_not_wrongly_merged_across_stores() {
        // acc pattern: load/store to the same slot each iteration must
        // not collapse to a single load.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let acc = b.alloca(8, "acc");
        b.store(Ty::I64, Value::ConstInt(0), acc);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(5), |b, i| {
            let cur = b.load(Ty::I64, acc);
            let nxt = b.add(cur, i);
            b.store(Ty::I64, nxt, acc);
        });
        let fin = b.load(Ty::I64, acc);
        b.print("{}", vec![fin]);
        b.ret(None);
        b.finish();
        run_gvn(&mut m);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "10\n");
    }
}
