//! # oraql-passes — AA-consuming transformation passes
//!
//! The optimization pipeline whose effectiveness depends on alias
//! information, mirroring the passes the ORAQL paper instruments:
//!
//! | pass | paper statistic (Fig. 6) |
//! |---|---|
//! | [`earlycse::EarlyCSE`] | `# instructions eliminated` |
//! | [`gvn::Gvn`] | `# loads deleted` |
//! | [`dse::Dse`] | `# stores deleted` |
//! | [`dce::Dce`] | (cleanup: removes orphaned pure instructions) |
//! | [`licm::Licm`] | `# loads hoisted or sunk` |
//! | [`loopdel::LoopDeletion`] | `# deleted loops` |
//! | [`loopvec::LoopVectorize`] | `# vectorized loops` |
//! | [`slp::SlpVectorize`] | `# vector instructions generated` |
//! | [`memcpyopt::MemCpyOpt`] | `# memcpys optimized` |
//! | [`sink::MachineSink`] | `# instructions sunk` |
//! | [`memssa_prime::MemorySsaPrime`] | (analysis: primes MemorySSA walks) |
//!
//! Every pass issues its alias queries through the shared
//! [`oraql_analysis::AAManager`], with `current_pass` set so queries can
//! be attributed to their issuer (paper §IV-D / Fig. 3). The machine-level
//! statistics (`asm printer`, `register allocation`) come from
//! `oraql-vm::machine` after the pipeline runs.

pub mod dce;
pub mod dse;
pub mod earlycse;
pub mod gvn;
pub mod licm;
pub mod loopdel;
pub mod loopvec;
pub mod manager;
pub mod memcpyopt;
pub mod memssa_prime;
pub mod sink;
pub mod slp;
pub mod stats;

pub use manager::{standard_pipeline, Pass, PassCx, PassManager};
pub use stats::Stats;
