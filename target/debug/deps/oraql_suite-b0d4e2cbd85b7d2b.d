/root/repo/target/debug/deps/oraql_suite-b0d4e2cbd85b7d2b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liboraql_suite-b0d4e2cbd85b7d2b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
