/root/repo/target/debug/deps/prop_components-ebec81b9b7a44fab.d: tests/prop_components.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libprop_components-ebec81b9b7a44fab.rmeta: tests/prop_components.rs tests/common/mod.rs Cargo.toml

tests/prop_components.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
