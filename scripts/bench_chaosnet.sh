#!/usr/bin/env sh
# Wire-chaos benchmark: the hardened wire's fault-free overhead (warm
# suite through a daemon, gated at 1.05x against the BENCH_served.json
# recording and against an armed-but-quiet fault plan) plus the
# degraded-mode suite against a dead address (must complete through the
# local-store fallback). Writes JSON to BENCH_chaosnet.json in the repo
# root; override with ORAQL_BENCH_OUT.
set -eu
cd "$(dirname "$0")/.."

# Cargo runs benches with the package directory as cwd, so anchor the
# default output at the repo root via an absolute path.
ORAQL_BENCH_OUT="${ORAQL_BENCH_OUT:-$(pwd)/BENCH_chaosnet.json}" \
    cargo bench --offline -p oraql-bench --bench chaos_net
