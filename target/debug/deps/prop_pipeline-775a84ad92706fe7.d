/root/repo/target/debug/deps/prop_pipeline-775a84ad92706fe7.d: tests/prop_pipeline.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libprop_pipeline-775a84ad92706fe7.rmeta: tests/prop_pipeline.rs tests/common/mod.rs Cargo.toml

tests/prop_pipeline.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
