//! Dead-code elimination: removes pure instructions (including loads
//! and unused allocas) whose results are never used. Runs late so the
//! address computations orphaned by GVN's load merging and DSE's store
//! deletion don't survive into the executable.

use crate::manager::{Pass, PassCx};
use oraql_ir::inst::{Inst, InstId};
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::value::Value;

/// The pass.
pub struct Dce;

/// Is the instruction removable when unused? (No side effects, has a
/// result. Loads are removable: our IR has no volatile accesses.)
fn removable(inst: &Inst) -> bool {
    inst.result_ty().is_some()
        && matches!(
            inst,
            Inst::Alloca { .. }
                | Inst::Load { .. }
                | Inst::Gep { .. }
                | Inst::Bin { .. }
                | Inst::Cmp { .. }
                | Inst::Select { .. }
                | Inst::Cast { .. }
                | Inst::Phi { .. }
        )
}

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "DCE"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let mut removed = 0u64;
        loop {
            // Count uses of every instruction result.
            let f = m.func(fid);
            let mut uses = vec![0u32; f.insts.len()];
            for id in f.live_insts() {
                f.inst(id).for_each_operand(|v| {
                    if let Value::Inst(d) = v {
                        uses[d.0 as usize] += 1;
                    }
                });
            }
            let dead: Vec<InstId> = f
                .live_insts()
                .filter(|&id| uses[id.0 as usize] == 0 && removable(f.inst(id)))
                .collect();
            if dead.is_empty() {
                break;
            }
            let fm = m.func_mut(fid);
            for id in dead {
                fm.remove_inst(id);
                removed += 1;
            }
        }
        cx.stat("DCE", "instructions removed", removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Ty, Value};
    use oraql_vm::Interpreter;

    fn run_dce(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            Dce.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    #[test]
    fn dead_chain_removed_transitively() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let buf = b.alloca(64, "buf");
        b.store(Ty::I64, Value::ConstInt(9), buf);
        // Dead chain: gep -> load -> mul, never used.
        let g = b.gep(buf, 8);
        let l = b.load(Ty::I64, g);
        let _ = b.mul(l, Value::ConstInt(3));
        // Live tail.
        let live = b.load(Ty::I64, buf);
        b.print("{}", vec![live]);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        let stats = run_dce(&mut m);
        assert_eq!(stats.get("DCE", "instructions removed"), 3);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
        assert!(after.stats.host_insts < before.stats.host_insts);
        assert_eq!(after.stats.loads, 1);
    }

    #[test]
    fn unused_alloca_removed() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.alloca(1024, "never_used");
        b.print("ok", vec![]);
        b.ret(None);
        let id = b.finish();
        run_dce(&mut m);
        let s = oraql_vm::machine::lower_function(&m, id, None).unwrap();
        assert_eq!(s.stack_bytes, 0);
    }

    #[test]
    fn stores_and_calls_never_removed() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 8, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.store(Ty::I64, Value::ConstInt(1), Value::Global(g));
        let r = b.call_external("sqrt", vec![Value::const_f64(4.0)], Some(Ty::F64));
        let _ = r; // unused call result: the call still stays
        b.print("done", vec![]);
        b.ret(None);
        b.finish();
        let stats = run_dce(&mut m);
        assert_eq!(stats.get("DCE", "instructions removed"), 0);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "done\n");
    }

    #[test]
    fn used_values_survive() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.add(Value::ConstInt(1), Value::ConstInt(2));
        let y = b.mul(x, Value::ConstInt(3));
        b.print("{}", vec![y]);
        b.ret(None);
        b.finish();
        let stats = run_dce(&mut m);
        assert_eq!(stats.get("DCE", "instructions removed"), 0);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "9\n");
    }

    #[test]
    fn dead_phi_cycle_is_not_removed_but_unused_phi_is() {
        // An unused phi at a join: removable.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![Ty::I1], None);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(b.arg(0), t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.phi(
            Ty::I64,
            vec![(t, Value::ConstInt(1)), (e, Value::ConstInt(2))],
        );
        b.ret(None);
        b.finish();
        let stats = run_dce(&mut m);
        assert_eq!(stats.get("DCE", "instructions removed"), 1);
    }
}
