/root/repo/target/debug/deps/oraql_passes-d38e06ed1a068ca9.d: crates/passes/src/lib.rs crates/passes/src/dce.rs crates/passes/src/dse.rs crates/passes/src/earlycse.rs crates/passes/src/gvn.rs crates/passes/src/licm.rs crates/passes/src/loopdel.rs crates/passes/src/loopvec.rs crates/passes/src/manager.rs crates/passes/src/memcpyopt.rs crates/passes/src/memssa_prime.rs crates/passes/src/sink.rs crates/passes/src/slp.rs crates/passes/src/stats.rs

/root/repo/target/debug/deps/oraql_passes-d38e06ed1a068ca9: crates/passes/src/lib.rs crates/passes/src/dce.rs crates/passes/src/dse.rs crates/passes/src/earlycse.rs crates/passes/src/gvn.rs crates/passes/src/licm.rs crates/passes/src/loopdel.rs crates/passes/src/loopvec.rs crates/passes/src/manager.rs crates/passes/src/memcpyopt.rs crates/passes/src/memssa_prime.rs crates/passes/src/sink.rs crates/passes/src/slp.rs crates/passes/src/stats.rs

crates/passes/src/lib.rs:
crates/passes/src/dce.rs:
crates/passes/src/dse.rs:
crates/passes/src/earlycse.rs:
crates/passes/src/gvn.rs:
crates/passes/src/licm.rs:
crates/passes/src/loopdel.rs:
crates/passes/src/loopvec.rs:
crates/passes/src/manager.rs:
crates/passes/src/memcpyopt.rs:
crates/passes/src/memssa_prime.rs:
crates/passes/src/sink.rs:
crates/passes/src/slp.rs:
crates/passes/src/stats.rs:
