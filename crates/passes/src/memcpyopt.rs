//! MemCpy optimization: forwards memcpy sources through copy chains and
//! removes trivially dead copies.

use crate::manager::{Pass, PassCx};
use oraql_analysis::location::{AliasResult, MemoryLocation};
use oraql_ir::inst::{Inst, InstId};
use oraql_ir::module::{FunctionId, Module};

/// The pass.
pub struct MemCpyOpt;

impl Pass for MemCpyOpt {
    fn name(&self) -> &'static str {
        "memcpy optimization"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let mut optimized = 0u64;

        // Remove no-op copies first.
        let noop: Vec<InstId> = {
            let f = m.func(fid);
            f.live_insts()
                .filter(|&id| match f.inst(id) {
                    Inst::Memcpy {
                        dst, src, bytes, ..
                    } => dst == src || bytes.as_int() == Some(0),
                    _ => false,
                })
                .collect()
        };
        for id in noop {
            m.func_mut(fid).remove_inst(id);
            optimized += 1;
        }

        // Chain forwarding within a block:
        //   memcpy(b, a, n) ... memcpy(c, b, k<=n)  =>  memcpy(c, a, k)
        // provided nothing between the two copies may write `a` or `b`.
        let nblocks = m.func(fid).blocks.len();
        for bi in 0..nblocks {
            let ids: Vec<InstId> = m.func(fid).blocks[bi].insts.clone();
            for (i, &first) in ids.iter().enumerate() {
                let (b_dst, a_src, n) = match m.func(fid).inst(first) {
                    Inst::Memcpy {
                        dst, src, bytes, ..
                    } => match bytes.as_int() {
                        Some(n) if n > 0 => (*dst, *src, n),
                        _ => continue,
                    },
                    _ => continue,
                };
                // Scan forward for a copy out of b_dst.
                'second: for &second in &ids[i + 1..] {
                    if matches!(m.func(fid).inst(second), Inst::Removed) {
                        continue;
                    }
                    if let Inst::Memcpy {
                        dst, src, bytes, ..
                    } = m.func(fid).inst(second)
                    {
                        let (c_dst, b_src, k) = (*dst, *src, *bytes);
                        if b_src == b_dst && k.as_int().map(|k| k <= n).unwrap_or(false) {
                            // Nothing between may have written a or b.
                            let loc_a = MemoryLocation::precise(a_src, n as u64);
                            let loc_b = MemoryLocation::precise(b_dst, n as u64);
                            let between: Vec<InstId> = ids[i + 1..]
                                .iter()
                                .copied()
                                .take_while(|&x| x != second)
                                .collect();
                            for mid in between {
                                if matches!(m.func(fid).inst(mid), Inst::Removed) {
                                    continue;
                                }
                                if cx.aa.may_clobber(m, fid, mid, &loc_a)
                                    || cx.aa.may_clobber(m, fid, mid, &loc_b)
                                {
                                    break 'second;
                                }
                            }
                            // Also the source regions must not overlap in
                            // a way that changes semantics: a vs c write.
                            let loc_c =
                                MemoryLocation::precise(c_dst, k.as_int().unwrap_or(0) as u64);
                            if cx.aa.alias(m, fid, &loc_a, &loc_c) != AliasResult::NoAlias {
                                break 'second;
                            }
                            if let Inst::Memcpy { src, .. } = m.func_mut(fid).inst_mut(second) {
                                *src = a_src;
                            }
                            optimized += 1;
                            break 'second;
                        }
                        // A copy INTO b_dst between kills the chain.
                        if cx.aa.may_clobber(
                            m,
                            fid,
                            second,
                            &MemoryLocation::precise(b_dst, n as u64),
                        ) {
                            break 'second;
                        }
                    } else if m.func(fid).inst(second).writes_memory() {
                        let loc_b = MemoryLocation::precise(b_dst, n as u64);
                        let loc_a = MemoryLocation::precise(a_src, n as u64);
                        if cx.aa.may_clobber(m, fid, second, &loc_b)
                            || cx.aa.may_clobber(m, fid, second, &loc_a)
                        {
                            break 'second;
                        }
                    }
                }
            }
        }

        cx.stat("memcpy optimization", "memcpys optimized", optimized);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use oraql_analysis::basic::BasicAA;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::value::Value;
    use oraql_ir::Ty;
    use oraql_vm::Interpreter;

    fn run_pass(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            MemCpyOpt.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    #[test]
    fn chain_is_forwarded() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let a = b.alloca(16, "a");
        let t = b.alloca(16, "tmp");
        let c = b.alloca(16, "c");
        b.store(Ty::I64, Value::ConstInt(77), a);
        b.memcpy(t, a, Value::ConstInt(16));
        b.memcpy(c, t, Value::ConstInt(16));
        let l = b.load(Ty::I64, c);
        b.print("{}", vec![l]);
        b.ret(None);
        let fid = b.finish();
        let stats = run_pass(&mut m);
        assert_eq!(stats.get("memcpy optimization", "memcpys optimized"), 1);
        // Second copy now reads from a directly.
        let f = m.func(fid);
        let copies: Vec<_> = f
            .live_insts()
            .filter(|&i| matches!(f.inst(i), Inst::Memcpy { .. }))
            .collect();
        match f.inst(copies[1]) {
            Inst::Memcpy { src, .. } => assert_eq!(*src, a),
            _ => unreachable!(),
        }
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "77\n");
    }

    #[test]
    fn interleaved_write_blocks_forwarding() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let a = b.alloca(16, "a");
        let t = b.alloca(16, "tmp");
        let c = b.alloca(16, "c");
        b.store(Ty::I64, Value::ConstInt(1), a);
        b.memcpy(t, a, Value::ConstInt(16));
        b.store(Ty::I64, Value::ConstInt(2), a); // a changes!
        b.memcpy(c, t, Value::ConstInt(16));
        let l = b.load(Ty::I64, c);
        b.print("{}", vec![l]);
        b.ret(None);
        b.finish();
        let stats = run_pass(&mut m);
        assert_eq!(stats.get("memcpy optimization", "memcpys optimized"), 0);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "1\n"); // t still holds the old value
    }

    #[test]
    fn self_and_zero_copies_removed() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let a = b.alloca(16, "a");
        let bp = b.alloca(16, "b");
        b.memcpy(a, a, Value::ConstInt(16));
        b.memcpy(bp, a, Value::ConstInt(0));
        b.print("ok", vec![]);
        b.ret(None);
        b.finish();
        let stats = run_pass(&mut m);
        assert_eq!(stats.get("memcpy optimization", "memcpys optimized"), 2);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "ok\n");
    }
}
