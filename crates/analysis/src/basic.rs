//! `BasicAA`: stateless local reasoning about pointer decompositions —
//! distinct identified objects, `noalias` arguments, escape analysis for
//! allocas, and constant-offset disjointness within one object.

use crate::aa::{AliasAnalysis, QueryCtx};
use crate::location::{AliasResult, LocationSize, MemoryLocation};
use crate::pointer::{decompose, DecomposedPtr, PtrBase};
use oraql_ir::inst::{Inst, InstId};
use oraql_ir::module::Function;
use oraql_ir::value::Value;
use std::collections::HashSet;

/// The workhorse local alias analysis (LLVM's `BasicAAResult`).
#[derive(Default)]
pub struct BasicAA {
    answered: u64,
    /// Cache of escape-analysis results per (function, alloca). Sound to
    /// keep across transformations: our passes only remove or move
    /// instructions, which can never *create* an escape, so a cached
    /// `true` stays conservative and a cached `false` stays correct.
    escape_cache: std::cell::RefCell<std::collections::HashMap<(u32, InstId), bool>>,
}

impl BasicAA {
    /// Creates the analysis.
    pub fn new() -> Self {
        Self::default()
    }

    fn escapes_cached(&self, func: u32, f: &Function, alloca: InstId) -> bool {
        if let Some(&e) = self.escape_cache.borrow().get(&(func, alloca)) {
            return e;
        }
        let e = alloca_escapes(f, alloca);
        self.escape_cache.borrow_mut().insert((func, alloca), e);
        e
    }
}

/// Does the address of `alloca` escape `f`? An alloca escapes when it (or
/// a pointer derived from it by GEPs) is stored somewhere, passed to a
/// call, or merged through a phi/select (we do not trace merges).
pub fn alloca_escapes(f: &Function, alloca: InstId) -> bool {
    // Collect the set of values derived from the alloca by GEP chains.
    let mut derived: HashSet<Value> = HashSet::new();
    derived.insert(Value::Inst(alloca));
    // Iterate to a fixed point; GEP chains are shallow in practice.
    loop {
        let mut grew = false;
        for id in f.live_insts() {
            if let Inst::Gep { base, .. } = f.inst(id) {
                if derived.contains(base) && derived.insert(Value::Inst(id)) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    for id in f.live_insts() {
        match f.inst(id) {
            // Storing a derived pointer as a *value* lets it escape.
            Inst::Store { value, .. } if derived.contains(value) => return true,
            Inst::Call { args, .. } if args.iter().any(|a| derived.contains(a)) => {
                return true;
            }
            Inst::Phi { incoming, .. } if incoming.iter().any(|(_, v)| derived.contains(v)) => {
                return true;
            }
            Inst::Select { t, f: fv, .. } if (derived.contains(t) || derived.contains(fv)) => {
                return true;
            }
            Inst::Memcpy { src, .. } if derived.contains(src) => {
                // Copying *out of* the alloca is fine; copying the
                // pointer value itself would require it to be in memory,
                // which the store case covers. `src` here is the address,
                // not an escape.
                continue;
            }
            Inst::Ret { val: Some(v) } if derived.contains(v) => return true,
            Inst::Print { args, .. } => {
                // Printing a pointer does not let other code access it.
                let _ = args;
            }
            _ => {}
        }
    }
    false
}

fn object_size(f: &Function, base: PtrBase, m: &oraql_ir::Module) -> Option<u64> {
    match base {
        PtrBase::Alloca(id) => match f.inst(id) {
            Inst::Alloca { size, .. } => Some(*size),
            _ => None,
        },
        PtrBase::Global(g) => Some(m.global(g).size),
        _ => None,
    }
}

/// Alias of two offsets into the *same* object / base pointer, where the
/// address difference is exactly `delta = off_a - off_b`.
fn same_base_with_delta(delta: i64, a: &MemoryLocation, b: &MemoryLocation) -> AliasResult {
    match (a.size, b.size) {
        (LocationSize::Precise(sa), LocationSize::Precise(sb)) => {
            if delta >= sb as i64 || -delta >= sa as i64 {
                AliasResult::NoAlias
            } else if delta == 0 && sa == sb {
                AliasResult::MustAlias
            } else {
                AliasResult::PartialAlias
            }
        }
        // Unknown extents around the same base: only an exact match is
        // knowable, anything else may overlap.
        _ => {
            if delta == 0 {
                AliasResult::MustAlias
            } else {
                AliasResult::MayAlias
            }
        }
    }
}

/// Can two *different* bases refer to the same object?
fn distinct_bases_no_alias(
    aa: &BasicAA,
    func: u32,
    f: &Function,
    da: &DecomposedPtr,
    db: &DecomposedPtr,
) -> bool {
    use PtrBase::*;
    match (da.base, db.base) {
        // Distinct identified objects never alias.
        (Alloca(x), Alloca(y)) => x != y,
        (Alloca(_), Global(_)) | (Global(_), Alloca(_)) => true,
        (Global(x), Global(y)) => x != y,
        // A non-escaping alloca cannot alias anything not derived from it.
        (Alloca(x), Arg { .. } | LoadResult(_) | CallResult(_) | Merge(_))
        | (Arg { .. } | LoadResult(_) | CallResult(_) | Merge(_), Alloca(x)) => {
            !aa.escapes_cached(func, f, x)
        }
        // A noalias (restrict) argument does not alias any pointer with a
        // provably different underlying object.
        (
            Arg {
                index: i,
                noalias: true,
            },
            Arg { index: j, .. },
        )
        | (
            Arg { index: j, .. },
            Arg {
                index: i,
                noalias: true,
            },
        ) => i != j,
        (Arg { noalias: true, .. }, Global(_) | LoadResult(_) | CallResult(_))
        | (Global(_) | LoadResult(_) | CallResult(_), Arg { noalias: true, .. }) => true,
        _ => false,
    }
}

impl AliasAnalysis for BasicAA {
    fn name(&self) -> &'static str {
        "BasicAA"
    }

    fn alias(&mut self, ctx: &QueryCtx<'_>, a: &MemoryLocation, b: &MemoryLocation) -> AliasResult {
        let f = ctx.module.func(ctx.func);
        let da = decompose(f, a.ptr);
        let db = decompose(f, b.ptr);

        // Case 1: provably different objects.
        if da.base != db.base && distinct_bases_no_alias(self, ctx.func.0, f, &da, &db) {
            self.answered += 1;
            return AliasResult::NoAlias;
        }

        // Case 2: same base (same underlying SSA value or same object):
        // compare offsets. `Unknown`/`Merge` bases are not positional, so
        // require a real anchor; two pointers decomposed to the *same*
        // load result / call result / argument are also anchored to the
        // same (unknown) address and can be compared by offset.
        let comparable = da.base == db.base
            && !matches!(da.base, PtrBase::Unknown)
            // Distinct Merge instructions were handled above; the same
            // merge value is a fixed (if unknown) address, comparable.
            ;
        if comparable {
            if da.is_const_offset() && db.is_const_offset() {
                self.answered += 1;
                let r = same_base_with_delta(da.const_off - db.const_off, a, b);
                if r != AliasResult::MayAlias {
                    return r;
                }
                // fall through: MayAlias from unknown extent.
            } else if da.same_dynamic_terms(&db) {
                // Identical dynamic terms cancel; the delta is constant.
                self.answered += 1;
                let r = same_base_with_delta(da.const_off - db.const_off, a, b);
                if r != AliasResult::MayAlias {
                    return r;
                }
            } else if da.is_const_offset() != db.is_const_offset() {
                // One side constant, one side dynamic with a known
                // stride: if the constant access lies outside the object
                // region the strided side can reach we still cannot tell
                // without range info — give up, except for one cheap
                // win: a strided access with scale s and in-bounds
                // accesses cannot overlap a constant offset whose
                // distance from the add-part is not reachable, which
                // requires range analysis we do not have. MayAlias.
            }
        }

        // Case 3: the access provably exceeds its object (out-of-bounds
        // is UB): if both bases are the same identified object and the
        // constant offset already exceeds the object size, answer
        // NoAlias — rare, but keeps us honest about object sizes.
        if let (LocationSize::Precise(sa), Some(osz)) =
            (a.size, object_size(f, da.base, ctx.module))
        {
            if da.is_const_offset() && (da.const_off < 0 || da.const_off as u64 + sa > osz) {
                // Out-of-bounds access: undefined, treat as NoAlias like
                // LLVM treats accesses past the object.
                self.answered += 1;
                return AliasResult::NoAlias;
            }
        }

        AliasResult::MayAlias
    }

    fn stats(&self) -> Vec<(String, u64)> {
        vec![("answered".into(), self.answered)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::module::FunctionId;
    use oraql_ir::{Module, Ty};

    fn ctx(m: &Module) -> QueryCtx<'_> {
        QueryCtx {
            module: m,
            func: FunctionId(0),
            pass: "test",
        }
    }

    /// Builds `f(p, q)` with two allocas and returns the module.
    fn two_allocas() -> (Module, Value, Value) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::Ptr], None);
        let x = b.alloca(64, "x");
        let y = b.alloca(64, "y");
        b.store(Ty::I64, Value::ConstInt(0), x);
        b.store(Ty::I64, Value::ConstInt(0), y);
        b.ret(None);
        b.finish();
        (m, x, y)
    }

    #[test]
    fn distinct_allocas_no_alias() {
        let (m, x, y) = two_allocas();
        let mut aa = BasicAA::new();
        let r = aa.alias(
            &ctx(&m),
            &MemoryLocation::precise(x, 8),
            &MemoryLocation::precise(y, 8),
        );
        assert_eq!(r, AliasResult::NoAlias);
    }

    #[test]
    fn alloca_vs_arg_no_alias_when_not_escaping() {
        let (m, x, _) = two_allocas();
        let mut aa = BasicAA::new();
        let r = aa.alias(
            &ctx(&m),
            &MemoryLocation::precise(x, 8),
            &MemoryLocation::precise(Value::Arg(0), 8),
        );
        assert_eq!(r, AliasResult::NoAlias);
    }

    #[test]
    fn escaping_alloca_may_alias_arg() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let x = b.alloca(64, "x");
        // Store the alloca's address through the argument: it escapes.
        b.store(Ty::Ptr, x, b.arg(0));
        b.ret(None);
        b.finish();
        let mut aa = BasicAA::new();
        let r = aa.alias(
            &ctx(&m),
            &MemoryLocation::precise(x, 8),
            &MemoryLocation::precise(Value::Arg(0), 8),
        );
        assert_eq!(r, AliasResult::MayAlias);
    }

    #[test]
    fn const_offsets_disjoint() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let a8 = b.gep(p, 8);
        let a16 = b.gep(p, 16);
        b.store(Ty::I64, Value::ConstInt(0), a8);
        b.store(Ty::I64, Value::ConstInt(0), a16);
        b.ret(None);
        b.finish();
        let mut aa = BasicAA::new();
        let c = ctx(&m);
        assert_eq!(
            aa.alias(
                &c,
                &MemoryLocation::precise(a8, 8),
                &MemoryLocation::precise(a16, 8)
            ),
            AliasResult::NoAlias
        );
        // Overlapping 16-byte access.
        assert_eq!(
            aa.alias(
                &c,
                &MemoryLocation::precise(a8, 16),
                &MemoryLocation::precise(a16, 8)
            ),
            AliasResult::PartialAlias
        );
        // Same offset, same size: must alias (via distinct GEPs).
        let a8b = {
            // re-derive p+8 as another instruction
            a8
        };
        assert_eq!(
            aa.alias(
                &c,
                &MemoryLocation::precise(a8, 8),
                &MemoryLocation::precise(a8b, 8)
            ),
            AliasResult::MustAlias
        );
    }

    #[test]
    fn same_dynamic_index_with_field_offsets() {
        // p[i].re vs p[i].im for a 16-byte complex struct: no alias.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::I64], None);
        let p = b.arg(0);
        let i = b.arg(1);
        let re = b.gep_scaled(p, i, 16, 0);
        let im = b.gep_scaled(p, i, 16, 8);
        b.store(Ty::F64, Value::const_f64(0.0), re);
        b.store(Ty::F64, Value::const_f64(0.0), im);
        b.ret(None);
        b.finish();
        let mut aa = BasicAA::new();
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(re, 8),
                &MemoryLocation::precise(im, 8)
            ),
            AliasResult::NoAlias
        );
    }

    #[test]
    fn different_dynamic_indices_may_alias() {
        // p[i] vs p[j]: may alias.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::I64, Ty::I64], None);
        let p = b.arg(0);
        let pi = b.gep_scaled(p, b.arg(1), 8, 0);
        let pj = b.gep_scaled(p, b.arg(2), 8, 0);
        b.store(Ty::I64, Value::ConstInt(0), pi);
        b.store(Ty::I64, Value::ConstInt(0), pj);
        b.ret(None);
        b.finish();
        let mut aa = BasicAA::new();
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(pi, 8),
                &MemoryLocation::precise(pj, 8)
            ),
            AliasResult::MayAlias
        );
    }

    #[test]
    fn noalias_args_do_not_alias() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::Ptr], None);
        b.set_noalias(0, true);
        let p = b.arg(0);
        let q = b.arg(1);
        b.store(Ty::I64, Value::ConstInt(0), p);
        b.store(Ty::I64, Value::ConstInt(0), q);
        b.ret(None);
        b.finish();
        let mut aa = BasicAA::new();
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(p, 8),
                &MemoryLocation::precise(q, 8)
            ),
            AliasResult::NoAlias
        );
    }

    #[test]
    fn plain_args_may_alias() {
        let (m, _, _) = two_allocas();
        let mut aa = BasicAA::new();
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(Value::Arg(0), 8),
                &MemoryLocation::precise(Value::Arg(1), 8)
            ),
            AliasResult::MayAlias
        );
    }

    #[test]
    fn two_loaded_pointers_may_alias() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let l1 = b.load(Ty::Ptr, p);
        let p8 = b.gep(p, 8);
        let l2 = b.load(Ty::Ptr, p8);
        b.store(Ty::I64, Value::ConstInt(0), l1);
        b.store(Ty::I64, Value::ConstInt(0), l2);
        b.ret(None);
        b.finish();
        let mut aa = BasicAA::new();
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(l1, 8),
                &MemoryLocation::precise(l2, 8)
            ),
            AliasResult::MayAlias
        );
    }

    #[test]
    fn whole_object_same_base_zero_delta_is_must() {
        let (m, x, _) = two_allocas();
        let mut aa = BasicAA::new();
        // x+0 whole-object vs x+8 precise: may alias (unknown extent).
        let c = ctx(&m);
        assert_eq!(
            aa.alias(
                &c,
                &MemoryLocation::whole(x),
                &MemoryLocation::precise(x, 8)
            ),
            AliasResult::MustAlias // same pointer, zero delta
        );
    }
}
