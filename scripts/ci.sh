#!/usr/bin/env sh
# Tier-1 gate (see README.md "CI / tier-1 gate"): offline release build,
# full test suite, formatting, and lints with warnings denied. Run from
# the repo root; exits non-zero on the first failure.
set -eux

cargo build --release --offline
cargo test -q --offline
# The differential suite is the equivalence gate for the two interpreter
# modes (tree-walk reference vs. pre-decoded executor); run it by name so
# a filtered `cargo test` invocation can never silently skip it.
cargo test -q --offline --test differential_interp
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
