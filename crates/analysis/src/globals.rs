//! `GlobalsAA`: module-level reasoning about globals whose address is
//! never taken. A pointer of unknown provenance (loaded from memory,
//! returned by a call, passed as an argument) cannot point at a global
//! whose address never escapes into such channels.

use crate::aa::{AliasAnalysis, QueryCtx};
use crate::location::{AliasResult, MemoryLocation};
use crate::pointer::{decompose, PtrBase};
use oraql_ir::inst::Inst;
use oraql_ir::module::{GlobalId, Module};
use oraql_ir::value::Value;
use std::collections::HashSet;

/// Address-taken analysis over a module's globals, computed once and
/// cached (sound under our transformations, which never introduce new
/// escapes).
pub struct GlobalsAA {
    address_taken: HashSet<GlobalId>,
    answered: u64,
}

/// Computes the set of globals whose address escapes: stored as a value,
/// passed to any call, returned, or merged through phi/select.
pub fn address_taken_globals(m: &Module) -> HashSet<GlobalId> {
    let mut taken = HashSet::new();
    for f in &m.funcs {
        for id in f.live_insts() {
            let mut check = |v: Value| {
                if let Value::Global(g) = v {
                    taken.insert(g);
                }
            };
            match f.inst(id) {
                // Using the address as a *stored value* lets it escape.
                Inst::Store { value, .. } => check(*value),
                Inst::Call { args, .. } => args.iter().copied().for_each(&mut check),
                Inst::Ret { val: Some(v) } => check(*v),
                Inst::Phi { incoming, .. } => incoming.iter().for_each(|(_, v)| check(*v)),
                Inst::Select { t, f: fv, .. } => {
                    check(*t);
                    check(*fv);
                }
                _ => {}
            }
        }
    }
    taken
}

impl GlobalsAA {
    /// Builds the analysis for `m` (computes address-taken information).
    pub fn new(m: &Module) -> Self {
        GlobalsAA {
            address_taken: address_taken_globals(m),
            answered: 0,
        }
    }

    /// Is the address of `g` taken anywhere in the module?
    pub fn is_address_taken(&self, g: GlobalId) -> bool {
        self.address_taken.contains(&g)
    }
}

impl AliasAnalysis for GlobalsAA {
    fn name(&self) -> &'static str {
        "GlobalsAA"
    }

    fn alias(&mut self, ctx: &QueryCtx<'_>, a: &MemoryLocation, b: &MemoryLocation) -> AliasResult {
        let f = ctx.module.func(ctx.func);
        let ba = decompose(f, a.ptr).base;
        let bb = decompose(f, b.ptr).base;
        let pair = |g: PtrBase, o: PtrBase| -> bool {
            // A non-address-taken global vs a pointer that must have come
            // through memory/calls/arguments: no alias.
            match g {
                PtrBase::Global(gid) if !self.address_taken.contains(&gid) => matches!(
                    o,
                    PtrBase::LoadResult(_) | PtrBase::CallResult(_) | PtrBase::Arg { .. }
                ),
                _ => false,
            }
        };
        if pair(ba, bb) || pair(bb, ba) {
            self.answered += 1;
            return AliasResult::NoAlias;
        }
        AliasResult::MayAlias
    }

    fn stats(&self) -> Vec<(String, u64)> {
        vec![("answered".into(), self.answered)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::module::FunctionId;
    use oraql_ir::Ty;

    /// Module with one quiet global and one escaping global.
    fn setup() -> (Module, Value, Value) {
        let mut m = Module::new("t");
        let quiet = m.add_global("quiet", 64, vec![], false);
        let loud = m.add_global("loud", 64, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        // loud escapes: its address is stored through the argument.
        b.store(Ty::Ptr, Value::Global(loud), b.arg(0));
        // quiet is only accessed directly.
        b.store(Ty::I64, Value::ConstInt(1), Value::Global(quiet));
        b.ret(None);
        b.finish();
        (m, Value::Global(quiet), Value::Global(loud))
    }

    #[test]
    fn quiet_global_vs_arg_no_alias() {
        let (m, quiet, _) = setup();
        let mut aa = GlobalsAA::new(&m);
        let ctx = QueryCtx {
            module: &m,
            func: FunctionId(0),
            pass: "t",
        };
        assert_eq!(
            aa.alias(
                &ctx,
                &MemoryLocation::precise(quiet, 8),
                &MemoryLocation::precise(Value::Arg(0), 8)
            ),
            AliasResult::NoAlias
        );
    }

    #[test]
    fn escaped_global_vs_arg_may_alias() {
        let (m, _, loud) = setup();
        let mut aa = GlobalsAA::new(&m);
        let ctx = QueryCtx {
            module: &m,
            func: FunctionId(0),
            pass: "t",
        };
        assert_eq!(
            aa.alias(
                &ctx,
                &MemoryLocation::precise(loud, 8),
                &MemoryLocation::precise(Value::Arg(0), 8)
            ),
            AliasResult::MayAlias
        );
    }

    #[test]
    fn address_taken_computation() {
        let (m, quiet, loud) = setup();
        let aa = GlobalsAA::new(&m);
        let Value::Global(q) = quiet else {
            unreachable!()
        };
        let Value::Global(l) = loud else {
            unreachable!()
        };
        assert!(!aa.is_address_taken(q));
        assert!(aa.is_address_taken(l));
    }

    #[test]
    fn global_vs_global_defers_to_basicaa() {
        let (m, quiet, loud) = setup();
        let mut aa = GlobalsAA::new(&m);
        let ctx = QueryCtx {
            module: &m,
            func: FunctionId(0),
            pass: "t",
        };
        // GlobalsAA does not handle global-vs-global; BasicAA does.
        assert_eq!(
            aa.alias(
                &ctx,
                &MemoryLocation::precise(quiet, 8),
                &MemoryLocation::precise(loud, 8)
            ),
            AliasResult::MayAlias
        );
    }
}
