#!/usr/bin/env sh
# Verdict-server benchmark: sustained lookups/s at 1/4/8 concurrent
# clients against a populated in-process daemon, plus the cold-vs-warm
# suite replay through `--server` (the warm pass answers every probe
# remotely with zero compiles). Writes JSON to BENCH_served.json in the
# repo root; override with ORAQL_BENCH_OUT.
set -eu
cd "$(dirname "$0")/.."

# Cargo runs benches with the package directory as cwd, so anchor the
# default output at the repo root via an absolute path.
ORAQL_BENCH_OUT="${ORAQL_BENCH_OUT:-$(pwd)/BENCH_served.json}" \
    cargo bench --offline -p oraql-bench --bench served_lookups
