//! Loop-invariant code motion: hoists invariant pure expressions and —
//! when the alias-analysis chain can prove no store in the loop clobbers
//! them — invariant loads into the loop preheader.

use crate::manager::{Pass, PassCx};
use oraql_analysis::domtree::DomTree;
use oraql_analysis::location::MemoryLocation;
use oraql_analysis::loops::{Loop, LoopForest};
use oraql_ir::inst::{BinOp, Inst, InstId};
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::value::{BlockId, Value};
use std::collections::HashSet;

/// The pass.
pub struct Licm;

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "LICM"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let dt = DomTree::build(m.func(fid));
        let forest = LoopForest::build(m.func(fid), &dt);
        // Innermost loops first: hoisting into an inner preheader (which
        // lives in the outer loop) lets the outer loop hoist further.
        let mut order: Vec<usize> = (0..forest.loops.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(forest.loops[i].depth));
        let mut hoisted_loads = 0u64;
        let mut hoisted_exprs = 0u64;
        for li in order {
            let l = forest.loops[li].clone();
            let Some(pre) = forest.preheader(m.func(fid), &l) else {
                continue;
            };
            let (loads, exprs) = hoist_loop(m, fid, cx, &dt, &l, pre);
            hoisted_loads += loads;
            hoisted_exprs += exprs;
        }
        cx.stat("LICM", "loads hoisted or sunk", hoisted_loads);
        cx.stat("LICM", "expressions hoisted", hoisted_exprs);
    }
}

/// Is `v` invariant w.r.t. the loop, given the set of loop-defined
/// instructions still inside the loop?
fn is_invariant(v: Value, in_loop: &HashSet<InstId>) -> bool {
    match v {
        Value::Inst(i) => !in_loop.contains(&i),
        _ => true,
    }
}

/// Safe-to-speculate pure instruction (no traps, no memory access)?
fn speculatable_pure(inst: &Inst) -> bool {
    match inst {
        Inst::Bin { op, rhs, .. } => match op {
            BinOp::Div | BinOp::Rem => matches!(rhs.as_int(), Some(c) if c != 0),
            _ => true,
        },
        Inst::Cmp { .. } | Inst::Select { .. } | Inst::Cast { .. } | Inst::Gep { .. } => true,
        _ => false,
    }
}

fn hoist_loop(
    m: &mut Module,
    fid: FunctionId,
    cx: &mut PassCx<'_>,
    dt: &DomTree,
    l: &Loop,
    pre: BlockId,
) -> (u64, u64) {
    let mut hoisted_loads = 0u64;
    let mut hoisted_exprs = 0u64;

    // Memory writers inside the loop (stores, calls, memcpys).
    let writers: Vec<InstId> = {
        let f = m.func(fid);
        l.blocks
            .iter()
            .flat_map(|bb| f.blocks[bb.0 as usize].insts.iter().copied())
            .filter(|&id| f.inst(id).writes_memory())
            .collect()
    };

    // Instructions currently defined inside the loop.
    let mut in_loop: HashSet<InstId> = {
        let f = m.func(fid);
        l.blocks
            .iter()
            .flat_map(|bb| f.blocks[bb.0 as usize].insts.iter().copied())
            .collect()
    };

    // Iterate to a fixed point: hoisting one instruction can make others
    // invariant.
    loop {
        let mut moved_any = false;
        // Snapshot in block-position order so dependencies move first.
        let candidates: Vec<InstId> = {
            let f = m.func(fid);
            let mut v: Vec<InstId> = Vec::new();
            for &bb in dt.rpo() {
                if !l.blocks.contains(&bb) {
                    continue;
                }
                v.extend(f.blocks[bb.0 as usize].insts.iter().copied());
            }
            v
        };
        for id in candidates {
            if !in_loop.contains(&id) {
                continue;
            }
            let inst = m.func(fid).inst(id).clone();
            match &inst {
                i if speculatable_pure(i) => {
                    let mut inv = true;
                    i.for_each_operand(|v| inv &= is_invariant(v, &in_loop));
                    if inv {
                        m.func_mut(fid).move_inst_before_terminator(id, pre);
                        in_loop.remove(&id);
                        hoisted_exprs += 1;
                        moved_any = true;
                    }
                }
                Inst::Load { ptr, .. } => {
                    if !is_invariant(*ptr, &in_loop) {
                        continue;
                    }
                    // The load must execute on every iteration so the
                    // preheader execution observes the same memory.
                    let bb = m.func(fid).block_of(id);
                    if !l.latches.iter().all(|&latch| dt.dominates(bb, latch)) {
                        continue;
                    }
                    let loc = MemoryLocation::of_access(m.func(fid), id).expect("load");
                    let clobbered = writers
                        .iter()
                        .filter(|w| !matches!(m.func(fid).inst(**w), Inst::Removed))
                        .any(|&w| cx.aa.may_clobber(m, fid, w, &loc));
                    if !clobbered {
                        m.func_mut(fid).move_inst_before_terminator(id, pre);
                        in_loop.remove(&id);
                        hoisted_loads += 1;
                        moved_any = true;
                    }
                }
                _ => {}
            }
        }
        if !moved_any {
            break;
        }
    }
    debug_assert!(oraql_ir::verify::verify_function(m, fid).is_ok());
    (hoisted_loads, hoisted_exprs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use oraql_analysis::basic::BasicAA;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::Ty;
    use oraql_vm::Interpreter;

    fn run_licm(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            Licm.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    #[test]
    fn invariant_load_hoisted_when_no_alias() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let k = b.alloca(8, "k");
        let out = b.alloca(8 * 10, "out");
        b.store(Ty::I64, Value::ConstInt(7), k);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(10), |b, i| {
            let c = b.load(Ty::I64, k); // invariant; stores hit `out` only
            let v = b.mul(c, i);
            let a = b.gep_scaled(out, i, 8, 0);
            b.store(Ty::I64, v, a);
        });
        let a9 = b.gep(out, 72);
        let l = b.load(Ty::I64, a9);
        b.print("{}", vec![l]);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        let stats = run_licm(&mut m);
        assert_eq!(stats.get("LICM", "loads hoisted or sunk"), 1);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
        assert!(after.stats.loads < before.stats.loads);
    }

    #[test]
    fn may_aliased_load_not_hoisted() {
        // p and q are plain args: the store through q may clobber *p.
        let mut m = Module::new("t");
        let work = {
            let mut b = FunctionBuilder::new(&mut m, "work", vec![Ty::Ptr, Ty::Ptr], None);
            let p = b.arg(0);
            let q = b.arg(1);
            b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |b, i| {
                let c = b.load(Ty::I64, p); // NOT invariant: q may be p
                let v = b.add(c, Value::ConstInt(1));
                b.store(Ty::I64, v, q);
                let _ = i;
            });
            let l = b.load(Ty::I64, p);
            b.print("{}", vec![l]);
            b.ret(None);
            b.finish()
        };
        let g = m.add_global("cell", 8, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.call(work, vec![Value::Global(g), Value::Global(g)], None);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, "4\n");
        let stats = run_licm(&mut m);
        assert_eq!(stats.get("LICM", "loads hoisted or sunk"), 0);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(after.stdout, "4\n");
    }

    #[test]
    fn invariant_arithmetic_hoisted() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![Ty::I64], None);
        let n = b.arg(0);
        let out = b.alloca(80, "out");
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(10), |b, i| {
            let k = b.mul(n, Value::ConstInt(3)); // invariant
            let v = b.add(k, i);
            let a = b.gep_scaled(out, i, 8, 0);
            b.store(Ty::I64, v, a);
        });
        b.ret(None);
        b.finish();
        let stats = run_licm(&mut m);
        assert!(stats.get("LICM", "expressions hoisted") >= 1);
    }

    #[test]
    fn division_by_loop_variant_not_hoisted() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![Ty::I64], None);
        let n = b.arg(0);
        let out = b.alloca(80, "out");
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(10), |b, i| {
            // Division by a non-constant must not be speculated into the
            // preheader (n could be 0 and the loop could be dead).
            let q = b.div(Value::ConstInt(100), n);
            let a = b.gep_scaled(out, i, 8, 0);
            b.store(Ty::I64, q, a);
        });
        b.ret(None);
        let id = b.finish();
        run_licm(&mut m);
        // The div must still be inside the loop body (block 2).
        let f = m.func(id);
        let div = f
            .live_insts()
            .find(|&i| matches!(f.inst(i), Inst::Bin { op: BinOp::Div, .. }))
            .unwrap();
        assert!(f.block_of(div) != Function::ENTRY);
    }

    use oraql_ir::module::Function;

    #[test]
    fn restrict_args_allow_hoisting() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "work", vec![Ty::Ptr, Ty::Ptr], None);
        b.set_noalias(0, true);
        b.set_noalias(1, true);
        let p = b.arg(0);
        let q = b.arg(1);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |b, i| {
            let c = b.load(Ty::I64, p);
            let v = b.add(c, i);
            let a = b.gep_scaled(q, i, 8, 0);
            b.store(Ty::I64, v, a);
        });
        b.ret(None);
        b.finish();
        let stats = run_licm(&mut m);
        assert_eq!(stats.get("LICM", "loads hoisted or sunk"), 1);
    }
}
