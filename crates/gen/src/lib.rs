//! # oraql-gen — seeded aliasing workloads with ground truth by construction
//!
//! The paper validates ORAQL on proxy apps whose true alias relations
//! are unknown — soundness rests entirely on output verification. This
//! crate closes the loop from the other side: it *generates* workloads
//! whose alias relations are known **by construction**, so every final
//! driver verdict can be cross-checked against a label map (the
//! soundness gate in `oraql::truth`).
//!
//! Pieces:
//!
//! * [`plan::GenPlan`] — the `seed=…,cases=…,motifs=…,per=…` corpus
//!   description; parse/render round-trips and the rendered string is
//!   the durable name of the corpus.
//! * [`motifs`] — five aliasing motif families modelled on the paper's
//!   benchmark observations (outlined OpenMP captures, AoS/SoA strided
//!   fields, CSR gathers over type-punned buffers, halo-exchange rank
//!   buffers, and the minimal "red square" pair), each emitting opaque-
//!   pointer workers through `oraql-ir`'s builder and recording a
//!   [`oraql::truth::Label`] for every interesting pair.
//! * [`compose`] — samples motifs into whole deterministic cases named
//!   `gen:<plan>#<index>`; the name alone reconstructs the case.
//! * [`corpus`] — materializes a plan as a directory of driver-ready
//!   `.conf` files plus a manifest, byte-identical per plan.
//!
//! The labelling discipline that keeps the gate sound — `Must` only on
//! pairs with a constructed observable hazard, `No` only on provably
//! disjoint byte ranges — is documented at the top of [`motifs`].

pub mod compose;
pub mod corpus;
pub mod motifs;
pub mod plan;

pub use compose::{case_name, compose, parse_name, resolve, suite, GenCase};
pub use corpus::{config_text, manifest_text, write_corpus, CorpusSummary};
pub use plan::{GenPlan, Motif};

#[cfg(test)]
mod tests {
    use super::*;
    use oraql::driver::{Driver, DriverOptions};
    use oraql::truth::{GroundTruth, Label};
    use std::sync::Arc;

    fn all_motifs_plan(cases: u32) -> GenPlan {
        GenPlan::parse(&format!("seed=42,cases={cases}")).unwrap()
    }

    #[test]
    fn modules_are_deterministic_and_verify() {
        let plan = all_motifs_plan(10);
        for index in 0..plan.cases {
            let g = compose(&plan, index);
            let m1 = (g.case.build)();
            let m2 = (g.case.build)();
            oraql_ir::verify::verify_module(&m1).expect("generated module verifies");
            assert_eq!(
                oraql_ir::printer::module_str(&m1),
                oraql_ir::printer::module_str(&m2),
                "case {index} must rebuild identically"
            );
        }
    }

    #[test]
    fn names_round_trip() {
        let plan = GenPlan::parse("seed=7,cases=5,motifs=red+halo,per=2").unwrap();
        for index in 0..plan.cases {
            let name = case_name(&plan, index);
            let (p2, i2) = parse_name(&name).expect("name parses");
            assert_eq!((p2, i2), (plan.clone(), index));
            let g = resolve(&name).expect("name resolves");
            assert_eq!(g.case.name, name);
            assert!(!g.truth.is_empty());
        }
        assert!(parse_name("gen:seed=7,cases=5,motifs=red,per=2#5").is_none());
        assert!(parse_name("mixed").is_none());
        assert!(parse_name("gen:bogus=1#0").is_none());
    }

    #[test]
    fn every_motif_family_is_exercised_and_labelled() {
        let plan = all_motifs_plan(40);
        let mut seen = std::collections::BTreeSet::new();
        let mut totals = (0, 0, 0);
        for index in 0..plan.cases {
            let g = compose(&plan, index);
            seen.extend(g.motifs.iter().copied());
            let (no, may, must) = g.truth.counts();
            totals.0 += no;
            totals.1 += may;
            totals.2 += must;
        }
        assert_eq!(seen.len(), Motif::ALL.len(), "sampler covers all motifs");
        assert!(totals.0 > 0 && totals.1 > 0 && totals.2 > 0, "{totals:?}");
    }

    #[test]
    fn gated_driver_runs_clean_on_generated_cases() {
        let plan = all_motifs_plan(6);
        for index in 0..plan.cases {
            let g = compose(&plan, index);
            let opts = DriverOptions {
                ground_truth: Some(Arc::new(g.truth)),
                ..Default::default()
            };
            let res = Driver::run(&g.case, opts).expect("gated run succeeds");
            let t = res.truth.expect("gate report present");
            assert!(t.clean(), "case {index}: {t}");
            assert!(t.checked > 0, "case {index} checked no labelled pairs");
        }
    }

    #[test]
    fn mislabelled_pair_trips_the_gate() {
        // Find a case whose truth holds a No pair that the driver keeps
        // optimistic, then flip that single label to Must: the gate has
        // to fail the run even though the program output is fine.
        let plan = GenPlan::parse("seed=42,cases=4,motifs=red,per=1").unwrap();
        let mut tripped = false;
        for index in 0..plan.cases {
            let g = compose(&plan, index);
            let no_pairs: Vec<_> = g.truth.pairs().filter(|p| p.label == Label::No).collect();
            if no_pairs.is_empty() {
                continue;
            }
            let mut bad = GroundTruth::new();
            for p in &no_pairs {
                bad.insert(&p.case, &p.func, p.a, p.b, Label::Must);
            }
            let opts = DriverOptions {
                ground_truth: Some(Arc::new(bad)),
                ..Default::default()
            };
            match Driver::run(&g.case, opts) {
                Err(oraql::driver::DriverError::SoundnessViolation(msg)) => {
                    assert!(msg.contains("must"), "{msg}");
                    tripped = true;
                    break;
                }
                Err(e) => panic!("expected SoundnessViolation, got {e}"),
                Ok(_) => panic!("expected SoundnessViolation, run passed"),
            }
        }
        assert!(tripped, "no disjoint red case found in 4 seeds");
    }

    #[test]
    fn corpus_files_are_byte_identical_across_writes() {
        let plan = GenPlan::parse("seed=9,cases=6,per=2").unwrap();
        let dir = std::env::temp_dir().join("oraql_gen_corpus_test");
        let _ = std::fs::remove_dir_all(&dir);
        let s1 = write_corpus(&plan, &dir).unwrap();
        let read = |d: &std::path::Path| {
            let mut all = Vec::new();
            let mut names: Vec<_> = std::fs::read_dir(d)
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            names.sort();
            for p in names {
                all.push((p.clone(), std::fs::read(p).unwrap()));
            }
            all
        };
        let first = read(&dir);
        let s2 = write_corpus(&plan, &dir).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(first, read(&dir));
        assert_eq!(first.len(), 7, "6 cases + MANIFEST");
        let manifest = manifest_text(&plan);
        assert!(manifest.contains(&format!("plan = {}", plan.render())));
        assert!(manifest.contains("case_00005.conf"));
        // Each config names a resolvable case.
        for (path, bytes) in &first {
            if path.extension().is_some_and(|e| e == "conf") {
                let text = String::from_utf8(bytes.clone()).unwrap();
                let cfg = oraql::config::Config::parse(&text).unwrap();
                assert!(resolve(&cfg.benchmark).is_some(), "{}", cfg.benchmark);
                assert!(cfg.soundness_gate);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
