#!/usr/bin/env sh
# Cold-vs-warm suite benchmark for the persistent verdict store.
#
# Runs every registered workload configuration twice against one
# oraql-store journal — a cold pass populating it and a warm pass
# answering every probe from it — and writes per-case and total wall
# clock plus the warm/cold ratio as JSON. Output path defaults to
# BENCH_store.json in the repo root; override with ORAQL_BENCH_OUT.
set -eu
cd "$(dirname "$0")/.."

# Cargo runs benches with the package directory as cwd, so anchor the
# default output at the repo root via an absolute path.
ORAQL_BENCH_OUT="${ORAQL_BENCH_OUT:-$(pwd)/BENCH_store.json}" \
    cargo bench --offline -p oraql-bench --bench store_warm
