//! LLVM `-stats` analogue: named counters grouped by pass.

use std::collections::BTreeMap;

/// A registry of `(pass, statistic) -> count` counters collected during
//  one compilation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    counters: BTreeMap<(String, String), u64>,
}

impl Stats {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, pass: &str, stat: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self
            .counters
            .entry((pass.to_owned(), stat.to_owned()))
            .or_insert(0) += n;
    }

    /// Increments a counter by one.
    pub fn bump(&mut self, pass: &str, stat: &str) {
        self.add(pass, stat, 1);
    }

    /// Reads a counter (0 when never touched).
    pub fn get(&self, pass: &str, stat: &str) -> u64 {
        self.counters
            .get(&(pass.to_owned(), stat.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// Sets a counter to an absolute value (used for end-of-compilation
    /// figures like machine-instruction counts).
    pub fn set(&mut self, pass: &str, stat: &str, n: u64) {
        self.counters.insert((pass.to_owned(), stat.to_owned()), n);
    }

    /// Iterates all counters in a stable (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|((p, s), &v)| (p.as_str(), s.as_str(), v))
    }

    /// Renders the registry like `-stats` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (p, s, v) in self.iter() {
            out.push_str(&format!("{v:>12} {p} - {s}\n"));
        }
        out
    }

    /// Side-by-side diff of two compilations' statistics, returning
    /// `(pass, stat, original, other, delta%)` rows for counters that
    /// differ (the paper's Fig. 6 shape).
    pub fn diff<'a>(&'a self, other: &'a Stats) -> Vec<(String, String, u64, u64, f64)> {
        let mut keys: Vec<&(String, String)> = self.counters.keys().collect();
        for k in other.counters.keys() {
            if !self.counters.contains_key(k) {
                keys.push(k);
            }
        }
        keys.sort();
        keys.dedup();
        let mut rows = Vec::new();
        for k in keys {
            let a = self.counters.get(k).copied().unwrap_or(0);
            let b = other.counters.get(k).copied().unwrap_or(0);
            if a != b {
                let delta = if a == 0 {
                    100.0
                } else {
                    (b as f64 - a as f64) / a as f64 * 100.0
                };
                rows.push((k.0.clone(), k.1.clone(), a, b, delta));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.add("GVN", "loads deleted", 3);
        s.bump("GVN", "loads deleted");
        assert_eq!(s.get("GVN", "loads deleted"), 4);
        assert_eq!(s.get("DSE", "stores deleted"), 0);
    }

    #[test]
    fn zero_adds_are_ignored() {
        let mut s = Stats::new();
        s.add("X", "y", 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn diff_reports_changes() {
        let mut a = Stats::new();
        a.add("LICM", "loads hoisted or sunk", 70);
        a.add("GVN", "loads deleted", 45);
        let mut b = Stats::new();
        b.add("LICM", "loads hoisted or sunk", 961);
        b.add("GVN", "loads deleted", 45);
        b.add("DSE", "stores deleted", 98);
        let rows = a.diff(&b);
        assert_eq!(rows.len(), 2);
        let licm = rows.iter().find(|r| r.0 == "LICM").unwrap();
        assert_eq!(licm.2, 70);
        assert_eq!(licm.3, 961);
        assert!((licm.4 - 1272.857).abs() < 0.01);
        let dse = rows.iter().find(|r| r.0 == "DSE").unwrap();
        assert_eq!(dse.4, 100.0);
    }

    #[test]
    fn render_is_stable() {
        let mut s = Stats::new();
        s.add("b", "y", 2);
        s.add("a", "x", 1);
        let r = s.render();
        let ax = r.find("a - x").unwrap();
        let by = r.find("b - y").unwrap();
        assert!(ax < by);
    }
}
