(function() {
    const implementors = Object.fromEntries([["oraql_vm",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"enum\" href=\"oraql_vm/memory/enum.MemError.html\" title=\"enum oraql_vm::memory::MemError\">MemError</a>&gt; for <a class=\"enum\" href=\"oraql_vm/interp/enum.RuntimeError.html\" title=\"enum oraql_vm::interp::RuntimeError\">RuntimeError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[417]}