/root/repo/target/release/examples/ips_probe-5f22d919354185f8.d: crates/bench/examples/ips_probe.rs

/root/repo/target/release/examples/ips_probe-5f22d919354185f8: crates/bench/examples/ips_probe.rs

crates/bench/examples/ips_probe.rs:
