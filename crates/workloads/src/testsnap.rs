//! TestSNAP — proxy for the SNAP force calculation in LAMMPS.
//!
//! Four configurations, as in the paper's evaluation (§V-A):
//!
//! * **sequential C++**: the bispectrum kernels (`compute_ui`,
//!   `compute_yi`, `compute_duidrj`, `compute_deidrj`) run through the
//!   `SNA` object's data-pointer abstraction. Fully optimistic.
//! * **OpenMP**: `compute_deidrj` is outlined into a parallel region;
//!   the `this` object carries a data pointer *into itself* and two
//!   aliased array views, producing the four pessimistic queries the
//!   paper pinpoints (two `this`-vs-`dptr`, one `dptr`-vs-`dptr`, one
//!   lane-access pair) — all first issued by GVN's clobber walks.
//! * **Kokkos / CUDA**: 44 device kernels launched from the host;
//!   ORAQL restricted to the device compilation. Fully optimistic; a
//!   handful of kernels change their static register/stack properties
//!   (Fig. 7).
//! * **Fortran (manual LTO)**: one module containing everything,
//!   probed as a whole; aliasing hazards concentrated in the *setup*
//!   stage (the paper's 5% end-to-end win that does not move the FOM).

use crate::toolkit::*;
use oraql::compile::Scope;
use oraql::TestCase;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::module::Module;
use oraql_ir::value::Value;
use oraql_ir::Ty;

/// Number of atoms (elements per array) in the miniature problem.
const N: i64 = 32;
/// Number of force iterations (`-ns`).
const STEPS: i64 = 8;

fn snap_arrays() -> Vec<(&'static str, u64)> {
    let b = 8 * N as u64;
    vec![
        ("x", b),
        ("y", b),
        ("z", b),
        ("ulist_re", b),
        ("ulist_im", b),
        ("ylist_re", b),
        ("ylist_im", b),
        ("dulist", b),
        ("beta", b),
        ("fx", b),
        ("fy", b),
        ("fz", b),
    ]
}

fn emit_compute_ui(
    m: &mut Module,
    ctx: &Ctx,
    src: &str,
    reload: bool,
) -> oraql_ir::module::FunctionId {
    let mut b = FunctionBuilder::new(m, "compute_ui", vec![Ty::Ptr], None);
    b.set_src_file(src);
    b.set_loc(src, 120, 5);
    let cp = b.arg(0);
    // ulist_re[i] = sqrt(|x[i] * 0.5|) + y[i], etc. Data pointers are
    // loaded into locals before the loops, as the tuned C++ does — the
    // per-element math dominates, as in the real SNAP kernels.
    let emit = if reload {
        axpy_reload_loop
    } else {
        axpy_math_loop
    };
    emit(
        &mut b,
        ctx,
        cp,
        "x",
        "y",
        "ulist_re",
        0.5,
        Value::ConstInt(0),
        Value::ConstInt(N),
    );
    emit(
        &mut b,
        ctx,
        cp,
        "y",
        "z",
        "ulist_im",
        0.25,
        Value::ConstInt(0),
        Value::ConstInt(N),
    );
    b.ret(None);
    b.finish()
}

fn emit_compute_yi(
    m: &mut Module,
    ctx: &Ctx,
    src: &str,
    reload: bool,
) -> oraql_ir::module::FunctionId {
    let mut b = FunctionBuilder::new(m, "compute_yi", vec![Ty::Ptr], None);
    b.set_src_file(src);
    b.set_loc(src, 260, 9);
    let cp = b.arg(0);
    let emit = if reload {
        axpy_reload_loop
    } else {
        axpy_math_loop
    };
    emit(
        &mut b,
        ctx,
        cp,
        "ulist_re",
        "beta",
        "ylist_re",
        1.5,
        Value::ConstInt(0),
        Value::ConstInt(N),
    );
    emit(
        &mut b,
        ctx,
        cp,
        "ulist_im",
        "beta",
        "ylist_im",
        -0.5,
        Value::ConstInt(0),
        Value::ConstInt(N),
    );
    b.ret(None);
    b.finish()
}

fn emit_compute_duidrj(
    m: &mut Module,
    ctx: &Ctx,
    src: &str,
    reload: bool,
) -> oraql_ir::module::FunctionId {
    let mut b = FunctionBuilder::new(m, "compute_duidrj", vec![Ty::Ptr], None);
    b.set_src_file(src);
    b.set_loc(src, 410, 3);
    let cp = b.arg(0);
    let emit = if reload {
        axpy_reload_loop
    } else {
        axpy_math_loop
    };
    emit(
        &mut b,
        ctx,
        cp,
        "ylist_re",
        "ulist_im",
        "dulist",
        2.0,
        Value::ConstInt(0),
        Value::ConstInt(N),
    );
    b.ret(None);
    b.finish()
}

/// The force kernel body shared by the sequential and outlined variants:
/// `f{x,y,z}[i] += dulist[i] * ylist_{re,im}[i]` over `[lo, hi)`.
fn deidrj_body(b: &mut FunctionBuilder<'_>, ctx: &Ctx, cp: Value, lo: Value, hi: Value) {
    let tag = ctx.tag_data;
    // Data pointers hoisted into locals, as the tuned kernel does.
    let du = dptr(b, ctx, cp, "dulist");
    let yre = dptr(b, ctx, cp, "ylist_re");
    let yim = dptr(b, ctx, cp, "ylist_im");
    let fx = dptr(b, ctx, cp, "fx");
    let fy = dptr(b, ctx, cp, "fy");
    let fz = dptr(b, ctx, cp, "fz");
    b.counted_loop(lo, hi, |b, i| {
        let dui = b.gep_scaled(du, i, 8, 0);
        let duv = b.load_tbaa(Ty::F64, dui, tag);
        let yrei = b.gep_scaled(yre, i, 8, 0);
        let yrev = b.load_tbaa(Ty::F64, yrei, tag);
        let yimi = b.gep_scaled(yim, i, 8, 0);
        let yimv = b.load_tbaa(Ty::F64, yimi, tag);
        // The SNAP force math is heavily transcendental.
        let px0 = b.fmul(duv, yrev);
        let apx = b.call_external("fabs", vec![px0], Some(Ty::F64)).unwrap();
        let px = b.call_external("sqrt", vec![apx], Some(Ty::F64)).unwrap();
        let py = b.fmul(duv, yimv);
        let pz = b.fadd(yrev, yimv);
        for (arr, v) in [(fx, px), (fy, py), (fz, pz)] {
            let ai = b.gep_scaled(arr, i, 8, 0);
            let cur = b.load_tbaa(Ty::F64, ai, tag);
            let s = b.fadd(cur, v);
            b.store_tbaa(Ty::F64, s, ai, tag);
        }
    });
}

fn emit_epilogue(b: &mut FunctionBuilder<'_>, ctx: &Ctx) {
    checksum(b, ctx, "fx", N, "fx");
    checksum(b, ctx, "fy", N, "fy");
    checksum(b, ctx, "fz", N, "fz");
    b.print("RMS force error = {}", vec![Value::const_f64(1.92e-7)]);
    timing_epilogue(b, "msec/atomstep");
}

fn emit_setup(b: &mut FunctionBuilder<'_>, ctx: &Ctx) {
    fill_array(b, ctx, "x", N, 0.1, 0.01);
    fill_array(b, ctx, "y", N, 0.2, 0.02);
    fill_array(b, ctx, "z", N, 0.3, 0.03);
    fill_array(b, ctx, "beta", N, 1.0, 0.001);
    fill_array(b, ctx, "fx", N, 0.0, 0.0);
    fill_array(b, ctx, "fy", N, 0.0, 0.0);
    fill_array(b, ctx, "fz", N, 0.0, 0.0);
    fill_array(b, ctx, "dulist", N, 0.0, 0.0);
    fill_array(b, ctx, "ulist_re", N, 0.0, 0.0);
    fill_array(b, ctx, "ulist_im", N, 0.0, 0.0);
    fill_array(b, ctx, "ylist_re", N, 0.0, 0.0);
    fill_array(b, ctx, "ylist_im", N, 0.0, 0.0);
}

/// Sequential C++ configuration.
pub fn build_seq() -> Module {
    let mut m = Module::new("testsnap-seq");
    let ctx = make_ctx(&mut m, "sna", &snap_arrays(), &[]);
    let ui = emit_compute_ui(&mut m, &ctx, "sna.cpp", false);
    let yi = emit_compute_yi(&mut m, &ctx, "sna.cpp", false);
    let du = emit_compute_duidrj(&mut m, &ctx, "sna.cpp", false);
    let de = {
        let mut b = FunctionBuilder::new(&mut m, "compute_deidrj", vec![Ty::Ptr], None);
        b.set_src_file("sna.cpp");
        b.set_loc("sna.cpp", 600, 1);
        let cp = b.arg(0);
        deidrj_body(&mut b, &ctx, cp, Value::ConstInt(0), Value::ConstInt(N));
        b.ret(None);
        b.finish()
    };
    let mut b = main_builder(&mut m, "main.cpp");
    init_ctx(&mut b, &ctx);
    emit_setup(&mut b, &ctx);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(STEPS), |b, _| {
        for f in [ui, yi, du, de] {
            call_kernel(b, f, &ctx);
        }
    });
    emit_epilogue(&mut b, &ctx);
    b.ret(None);
    b.finish();
    m
}

/// OpenMP configuration: `compute_deidrj` outlined; four hazards in the
/// outlined region (paper Fig. 3).
pub fn build_omp() -> Module {
    let mut m = Module::new("testsnap-omp");
    // The `this` object gains: two fields inside itself targeted by data
    // pointers, and an aliased view of ylist_im.
    let arrays = snap_arrays();
    let ctx = make_ctx_with_fields(
        &mut m,
        "sna",
        &arrays,
        &[("yim_view", "ylist_im", 0), ("du_view", "dulist", 0)],
        &[("fld0_ptr", 0), ("fld1_ptr", 8)],
        16,
    );
    let ui = emit_compute_ui(&mut m, &ctx, "sna.cpp", true);
    let yi = emit_compute_yi(&mut m, &ctx, "sna.cpp", true);
    let du = emit_compute_duidrj(&mut m, &ctx, "sna.cpp", true);
    // Outlined parallel region of compute_deidrj.
    let threads = 4u32;
    let outlined = {
        let mut b = outlined_worker(&mut m, ".omp_outlined._debug__.6", "sna.cpp");
        let tid = b.arg(0);
        let cp = b.arg(1);
        let tag = ctx.tag_data;
        // ---- the four hazards (executed by thread 0 only) ----
        let zero = b.cmp(
            oraql_ir::inst::CmpPred::Eq,
            Ty::I64,
            tid,
            Value::ConstInt(0),
        );
        let hz = b.new_block();
        let rest = b.new_block();
        b.cond_br(zero, hz, rest);
        b.switch_to(hz);
        {
            let fields = ctx.fields_base();
            // Hazard 1 & 2: `this`-field accesses vs data pointers that
            // point back into `this` (the paper's `%this` vs `dptr`).
            for (k, slot) in [(0i64, "fld0_ptr"), (1, "fld1_ptr")] {
                b.set_loc("sna.cpp", 560 + k as u32, 17);
                let fld = b.gep(cp, fields + 8 * k);
                let x1 = b.load_tbaa(Ty::F64, fld, tag);
                let w = dptr(&mut b, &ctx, cp, slot);
                let bump = b.fadd(x1, Value::const_f64(0.5));
                b.store_tbaa(Ty::F64, bump, w, tag);
                let x2 = b.load_tbaa(Ty::F64, fld, tag);
                let s = b.fadd(x1, x2);
                // Fold into the force output so the miscompile is seen.
                let fxp = dptr(&mut b, &ctx, cp, "fx");
                let cur = b.load_tbaa(Ty::F64, fxp, tag);
                let ns = b.fadd(cur, s);
                b.store_tbaa(Ty::F64, ns, fxp, tag);
            }
            // Hazard 3: two SNAcomplex pointers loaded from different
            // dptr slots that target the same array.
            b.set_loc("sna.cpp", 609, 60);
            let acc = dptr(&mut b, &ctx, cp, "fy");
            hazard_sandwich(&mut b, &ctx, cp, "ylist_im", "yim_view", 2, acc);
            // Hazard 4: loop-carried lane accesses (re/im fields).
            b.set_loc("sna.cpp", 614, 46);
            hazard_sandwich(&mut b, &ctx, cp, "dulist", "du_view", 5, acc);
        }
        b.br(rest);
        b.switch_to(rest);
        // ---- the real force loop, chunked by thread ----
        // The OpenMP frontend's outlining re-materializes the captured
        // `this` pointers on every access (the indirection the paper
        // blames for the extra queries — and the reason the optimistic
        // OpenMP build executes ~8% fewer instructions).
        let (lo, hi) = chunk_bounds(&mut b, tid, N, threads as i64);
        let tag = ctx.tag_data;
        b.counted_loop(lo, hi, |b, i| {
            let du = dptr(b, &ctx, cp, "dulist");
            let yre = dptr(b, &ctx, cp, "ylist_re");
            let yim = dptr(b, &ctx, cp, "ylist_im");
            let fx = dptr(b, &ctx, cp, "fx");
            let fy = dptr(b, &ctx, cp, "fy");
            let fz = dptr(b, &ctx, cp, "fz");
            let dui = b.gep_scaled(du, i, 8, 0);
            let duv = b.load_tbaa(Ty::F64, dui, tag);
            let yrei = b.gep_scaled(yre, i, 8, 0);
            let yrev = b.load_tbaa(Ty::F64, yrei, tag);
            let px0 = b.fmul(duv, yrev);
            let apx = b.call_external("fabs", vec![px0], Some(Ty::F64)).unwrap();
            let px = b.call_external("sqrt", vec![apx], Some(Ty::F64)).unwrap();
            let fxi = b.gep_scaled(fx, i, 8, 0);
            let cx = b.load_tbaa(Ty::F64, fxi, tag);
            let sx = b.fadd(cx, px);
            b.store_tbaa(Ty::F64, sx, fxi, tag);
            // The y-list elements are re-read after each force store
            // (the outlined abstraction's access pattern): every reload
            // is pinned conservatively by the preceding may-aliasing
            // store, and merged by GVN only under optimism — the
            // paper's ~8% instruction reduction.
            let duv2i = b.gep_scaled(du, i, 8, 0);
            let duv2 = b.load_tbaa(Ty::F64, duv2i, tag);
            let yimi = b.gep_scaled(yim, i, 8, 0);
            let yimv = b.load_tbaa(Ty::F64, yimi, tag);
            let py = b.fmul(duv2, yimv);
            let fyi = b.gep_scaled(fy, i, 8, 0);
            let cy = b.load_tbaa(Ty::F64, fyi, tag);
            let sy = b.fadd(cy, py);
            b.store_tbaa(Ty::F64, sy, fyi, tag);
            let yre2i = b.gep_scaled(yre, i, 8, 0);
            let yrev2 = b.load_tbaa(Ty::F64, yre2i, tag);
            let yim2i = b.gep_scaled(yim, i, 8, 0);
            let yimv2 = b.load_tbaa(Ty::F64, yim2i, tag);
            let pz = b.fadd(yrev2, yimv2);
            let fzi = b.gep_scaled(fz, i, 8, 0);
            let cz = b.load_tbaa(Ty::F64, fzi, tag);
            let sz = b.fadd(cz, pz);
            b.store_tbaa(Ty::F64, sz, fzi, tag);
        });
        b.ret(None);
        b.finish()
    };
    let mut b = main_builder(&mut m, "main.cpp");
    init_ctx(&mut b, &ctx);
    emit_setup(&mut b, &ctx);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(STEPS), |b, _| {
        for f in [ui, yi, du] {
            call_kernel(b, f, &ctx);
        }
        b.parallel_region(outlined, vec![Value::Global(ctx.global)], threads);
    });
    emit_epilogue(&mut b, &ctx);
    b.ret(None);
    b.finish();
    m
}

/// Kokkos/CUDA configuration: 44 device kernels; ORAQL scoped to the
/// device compilation.
pub fn build_kokkos() -> Module {
    let mut m = Module::new("testsnap-kokkos");
    let ctx = make_ctx(&mut m, "sna", &snap_arrays(), &[]);
    let mut kernels = Vec::new();
    // 44 kernels as in Fig. 7. Most are trivial element-wise functors;
    // seven carry redundant-load patterns whose optimization changes
    // their register/stack static properties.
    for k in 0..44u32 {
        let mut b = device_kernel(&mut m, &format!("kokkos_kernel_{k}"), "sna.cpp");
        b.set_loc("sna.cpp", 700 + k, 1);
        let gid = b.arg(0);
        let cp = b.arg(1);
        let tag = ctx.tag_data;
        let src = ["ulist_re", "ulist_im", "ylist_re", "ylist_im"][k as usize % 4];
        let dst = ["dulist", "fx", "fy", "fz"][k as usize % 4];
        let sp = dptr(&mut b, &ctx, cp, src);
        let dp = dptr(&mut b, &ctx, cp, dst);
        let si = b.gep_scaled(sp, gid, 8, 0);
        let di = b.gep_scaled(dp, gid, 8, 0);
        if k % 6 == 0 && k < 36 {
            // Six "redundant load" functors of varying width: many loads
            // of the same element, each followed by a store through the
            // *other* opaque pointer (a conservative clobber barrier),
            // with every loaded value kept live until the final combine.
            // Conservatively: N distinct loads with long live ranges,
            // register spills, N kept stores. Optimistically: one load,
            // one live range, the overwritten stores dead — registers,
            // stack frame and machine instructions shrink (Fig. 7).
            // The heavy path is taken by one work item in 32, so the
            // *kernel time* barely moves — only the static properties
            // do, matching the paper's observation.
            let reps = 18 + (k as i64 / 6) * 4; // 18..38: varied deltas
            let rm = b.rem(gid, Value::ConstInt(32));
            let rare = b.cmp(oraql_ir::inst::CmpPred::Eq, Ty::I64, rm, Value::ConstInt(0));
            let heavy_bb = b.new_block();
            let done = b.new_block();
            b.cond_br(rare, heavy_bb, done);
            b.switch_to(heavy_bb);
            let mut vals = Vec::new();
            for r in 0..reps {
                let v = b.load_tbaa(Ty::F64, si, tag);
                let w = b.fmul(v, Value::const_f64(1.0 + r as f64));
                b.store_tbaa(Ty::F64, w, di, tag);
                vals.push(v);
            }
            let mut acc = Value::const_f64(0.0);
            for v in vals {
                acc = b.fadd(acc, v);
            }
            let cur = b.load_tbaa(Ty::F64, di, tag);
            let s = b.fadd(cur, acc);
            b.store_tbaa(Ty::F64, s, di, tag);
            b.br(done);
            b.switch_to(done);
            let v = b.load_tbaa(Ty::F64, si, tag);
            let cur = b.load_tbaa(Ty::F64, di, tag);
            let s = b.fadd(cur, v);
            b.store_tbaa(Ty::F64, s, di, tag);
        } else if k == 36 || k == 42 {
            // Two "hoist" functors: a small inner loop whose invariant
            // loads are pinned by the store conservatively. Optimism
            // lets LICM hoist them — *extending* their live ranges
            // across the loop and increasing register pressure (the
            // paper's kernels with +14.3%/+10.7% registers).
            for r in 0..6i64 {
                let p = b.gep(si, 8 * (r % 2));
                let v0 = b.load_tbaa(Ty::F64, p, tag);
                b.store_tbaa(Ty::F64, v0, di, tag);
            }
            b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |b, j| {
                let mut acc = Value::const_f64(0.0);
                for r in 0..6i64 {
                    let p = b.gep(si, 8 * (r % 2));
                    let v = b.load_tbaa(Ty::F64, p, tag);
                    let w = b.fmul(v, Value::const_f64(1.5 + r as f64));
                    acc = b.fadd(acc, w);
                }
                let dj = b.gep_scaled(di, j, 0, 0);
                let cur = b.load_tbaa(Ty::F64, dj, tag);
                let s = b.fadd(cur, acc);
                b.store_tbaa(Ty::F64, s, dj, tag);
            });
        } else {
            let v = b.load_tbaa(Ty::F64, si, tag);
            let w = b.fmul(v, Value::const_f64(0.125));
            let cur = b.load_tbaa(Ty::F64, di, tag);
            let s = b.fadd(cur, w);
            b.store_tbaa(Ty::F64, s, di, tag);
        }
        b.ret(None);
        kernels.push(b.finish());
    }
    let mut b = main_builder(&mut m, "main.cpp");
    init_ctx(&mut b, &ctx);
    emit_setup(&mut b, &ctx);
    for f in kernels {
        b.kernel_launch(f, vec![Value::Global(ctx.global)], N as u32);
    }
    emit_epilogue(&mut b, &ctx);
    b.ret(None);
    b.finish();
    m
}

/// Fortran configuration (manual LTO: everything in one probed module;
/// hazards concentrated in the setup stage).
pub fn build_fortran() -> Module {
    let mut m = Module::new("testsnap-fortran");
    let mut aliases: Vec<(String, String, i64)> = Vec::new();
    for i in 0..12 {
        aliases.push((format!("setup_r{i}"), "beta".into(), 8 * (i % 8)));
        aliases.push((format!("setup_w{i}"), "beta".into(), 8 * (i % 8)));
    }
    let alias_refs: Vec<(&str, &str, i64)> = aliases
        .iter()
        .map(|(a, b, o)| (a.as_str(), b.as_str(), *o))
        .collect();
    let mut ctx = make_ctx(&mut m, "sna", &snap_arrays(), &alias_refs);
    // The "fir-dev" LLVM/Flang of the paper's era emitted no TBAA
    // metadata — which is exactly why its baseline could not hoist the
    // descriptor loads and the optimistic build exploded LICM's
    // statistics (+1272% hoisted loads in the paper's Fig. 6). Model
    // that by tagging every access with the root (compatible with
    // everything = no strict-aliasing information).
    ctx.tag_data = oraql_ir::TbaaTag::ROOT;
    ctx.tag_ptr = oraql_ir::TbaaTag::ROOT;
    // Setup stage: array initialization with planted aliasing (the
    // LLVM/Flang experiments located the aliasing cost in setup).
    let setup = {
        let mut b = FunctionBuilder::new(&mut m, "snap_setup_", vec![Ty::Ptr], None);
        b.set_src_file("sna.f90");
        let cp = b.arg(0);
        let acc = dptr(&mut b, &ctx, cp, "fx");
        for i in 0..12i64 {
            b.set_loc("sna.f90", 40 + i as u32, 7);
            let r = format!("setup_r{i}");
            let w = format!("setup_w{i}");
            hazard_sandwich(&mut b, &ctx, cp, &r, &w, 0, acc);
        }
        // Plus plain initialization work through dptrs.
        axpy_loop(
            &mut b,
            &ctx,
            cp,
            "x",
            "y",
            "ulist_re",
            1.0,
            Value::ConstInt(0),
            Value::ConstInt(N),
        );
        b.ret(None);
        b.finish()
    };
    // Fortran kernels: the descriptor (dope vector) is consulted on
    // every access — per-iteration pointer loads, like the IR flang
    // emitted. With no TBAA, only optimistic answers let LICM hoist
    // them (the paper's signature Fortran effect).
    let fortran_kernel =
        |m: &mut Module, name: &str, line: u32, specs: &[(&str, &str, &str, f64)]| {
            let mut b = FunctionBuilder::new(m, name, vec![Ty::Ptr], None);
            b.set_src_file("sna.f90");
            b.set_loc("sna.f90", line, 7);
            let cp = b.arg(0);
            for (a, bn, o, scale) in specs {
                axpy_loop_ex(
                    &mut b,
                    &ctx,
                    cp,
                    a,
                    bn,
                    o,
                    *scale,
                    Value::ConstInt(0),
                    Value::ConstInt(N),
                    PtrMode::PerIteration,
                    true,
                );
            }
            b.ret(None);
            b.finish()
        };
    let ui = fortran_kernel(
        &mut m,
        "compute_ui_",
        120,
        &[("x", "y", "ulist_re", 0.5), ("y", "z", "ulist_im", 0.25)],
    );
    let yi = fortran_kernel(
        &mut m,
        "compute_yi_",
        260,
        &[
            ("ulist_re", "beta", "ylist_re", 1.5),
            ("ulist_im", "beta", "ylist_im", -0.5),
        ],
    );
    let du = fortran_kernel(
        &mut m,
        "compute_duidrj_",
        410,
        &[("ylist_re", "ulist_im", "dulist", 2.0)],
    );
    let de = {
        let mut b = FunctionBuilder::new(&mut m, "compute_deidrj_", vec![Ty::Ptr], None);
        b.set_src_file("sna.f90");
        let cp = b.arg(0);
        // Fortran math library calls (legacy flang libm).
        let tag = ctx.tag_data;
        let du_ = dptr(&mut b, &ctx, cp, "dulist");
        let fz = dptr(&mut b, &ctx, cp, "fz");
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(N), |b, i| {
            let dui = b.gep_scaled(du_, i, 8, 0);
            let v = b.load_tbaa(Ty::F64, dui, tag);
            let absd = b.call_external("fabs", vec![v], Some(Ty::F64)).unwrap();
            let r = b.call_external("sqrt", vec![absd], Some(Ty::F64)).unwrap();
            let fzi = b.gep_scaled(fz, i, 8, 0);
            let cur = b.load_tbaa(Ty::F64, fzi, tag);
            let s = b.fadd(cur, r);
            b.store_tbaa(Ty::F64, s, fzi, tag);
        });
        deidrj_body(&mut b, &ctx, cp, Value::ConstInt(0), Value::ConstInt(N));
        b.ret(None);
        b.finish()
    };
    let mut b = main_builder(&mut m, "sna.f90");
    init_ctx(&mut b, &ctx);
    emit_setup(&mut b, &ctx);
    call_kernel(&mut b, setup, &ctx);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(STEPS), |b, _| {
        for f in [ui, yi, du, de] {
            call_kernel(b, f, &ctx);
        }
    });
    emit_epilogue(&mut b, &ctx);
    b.ret(None);
    b.finish();
    m
}

/// The four TestSNAP test cases.
pub fn cases() -> Vec<TestCase> {
    let mut seq = TestCase::new("testsnap", build_seq);
    seq.scope = Scope::files(vec!["sna.cpp".into()]);
    seq.ignore_patterns = standard_ignore_patterns();

    let mut omp = TestCase::new("testsnap_omp", build_omp);
    omp.scope = Scope::files(vec!["sna.cpp".into()]);
    omp.ignore_patterns = standard_ignore_patterns();

    let mut kokkos = TestCase::new("testsnap_kokkos", build_kokkos);
    kokkos.scope = Scope::target("device");
    kokkos.ignore_patterns = standard_ignore_patterns();

    let mut fortran = TestCase::new("testsnap_fortran", build_fortran);
    fortran.scope = Scope::everything(); // manual LTO: the whole module
    fortran.ignore_patterns = standard_ignore_patterns();

    vec![seq, omp, kokkos, fortran]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn all_variants_build_verify_and_run() {
        for (name, build) in [
            ("seq", build_seq as fn() -> Module),
            ("omp", build_omp),
            ("kokkos", build_kokkos),
            ("fortran", build_fortran),
        ] {
            let m = build();
            oraql_ir::verify::assert_valid(&m);
            let out = Interpreter::run_main(&m).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                out.stdout.contains("checksum(fx)="),
                "{name}: {}",
                out.stdout
            );
            assert!(out.stdout.contains("Runtime: "), "{name}");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = oraql_ir::printer::module_str(&build_omp());
        let b = oraql_ir::printer::module_str(&build_omp());
        assert_eq!(a, b);
    }

    #[test]
    fn kokkos_has_44_device_kernels() {
        let m = build_kokkos();
        let n = m.funcs_for_target(oraql_ir::Target::Device).count();
        assert_eq!(n, 44);
    }

    #[test]
    fn omp_runs_parallel_region() {
        let m = build_omp();
        let out = Interpreter::run_main(&m).unwrap();
        assert!(out.stats.launches >= STEPS as u64);
    }
}
