//! MiniFE — Mantevo implicit unstructured finite-element proxy, in the
//! "optimized" OpenMP configuration (paper §V-F).
//!
//! The headline statistic: SLP vectorization (+33% vector instructions)
//! on the unrolled row-pair updates of the sparse matrix-vector kernel,
//! blocked conservatively by the opaque matrix/vector pointers and
//! unlocked by optimism. A non-trivial number of pessimistic queries
//! comes from overlapping row views in the assembly stage.

use crate::toolkit::*;
use oraql::compile::Scope;
use oraql::TestCase;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::module::Module;
use oraql_ir::value::Value;
use oraql_ir::Ty;

/// Rows in the miniature system.
const ROWS: i64 = 32;
/// Hazard views in the assembly stage.
const HAZARDS: i64 = 6;

fn build() -> Module {
    let mut m = Module::new("minife");
    let bytes = 8 * ROWS as u64;
    let mut aliases = Vec::new();
    for h in 0..HAZARDS {
        aliases.push((format!("row_r{h}"), "rhs".to_owned(), 8 * (h % ROWS)));
        aliases.push((format!("row_w{h}"), "rhs".to_owned(), 8 * (h % ROWS)));
    }
    let alias_refs: Vec<(&str, &str, i64)> = aliases
        .iter()
        .map(|(a, b, o)| (a.as_str(), b.as_str(), *o))
        .collect();
    let ctx = make_ctx(
        &mut m,
        "fe",
        &[("mat", bytes), ("x", bytes), ("y", bytes), ("rhs", bytes)],
        &alias_refs,
    );

    // SpMV-ish kernel with unrolled pair updates: y[2k] and y[2k+1]
    // computed from adjacent mat/x entries — SLP lanes. The loads and
    // stores go through dptrs, so lane independence needs (optimistic)
    // alias answers.
    let spmv = {
        let mut b = FunctionBuilder::new(&mut m, "matvec_std", vec![Ty::I64, Ty::Ptr], None);
        b.set_outlined(true);
        b.set_src_file("main");
        b.set_loc("main", 210, 5);
        let tid = b.arg(0);
        let cp = b.arg(1);
        let tag = ctx.tag_data;
        let pairs = ROWS / 2;
        let (lo, hi) = chunk_bounds(&mut b, tid, pairs, 4);
        let mat = dptr(&mut b, &ctx, cp, "mat");
        let x = dptr(&mut b, &ctx, cp, "x");
        let y = dptr(&mut b, &ctx, cp, "y");
        b.counted_loop(lo, hi, |b, k| {
            // Base pointers of the pair (2k).
            let row = b.mul(k, Value::ConstInt(2));
            let mrow = b.gep_scaled(mat, row, 8, 0);
            let xrow = b.gep_scaled(x, row, 8, 0);
            let yrow = b.gep_scaled(y, row, 8, 0);
            // Unrolled lanes: y[2k+j] = mat[2k+j] * x[2k+j], j = 0, 1.
            for j in 0..2i64 {
                let mj = b.gep(mrow, 8 * j);
                let mv = b.load_tbaa(Ty::F64, mj, tag);
                let xj = b.gep(xrow, 8 * j);
                let xv = b.load_tbaa(Ty::F64, xj, tag);
                let p = b.fmul(mv, xv);
                let yj = b.gep(yrow, 8 * j);
                b.store_tbaa(Ty::F64, p, yj, tag);
            }
        });
        b.ret(None);
        b.finish()
    };

    // Assembly stage with overlapping row views (pessimistic queries).
    let assemble = {
        let mut b = FunctionBuilder::new(&mut m, "assemble_FE_data", vec![Ty::Ptr], None);
        b.set_src_file("main");
        b.set_loc("main", 90, 3);
        let cp = b.arg(0);
        // The hazard results flow into rhs[0]; rhs feeds the matrix
        // assembly below, which feeds the checksummed y — a wrong
        // forwarding is observable.
        let acc = dptr(&mut b, &ctx, cp, "rhs");
        for h in 0..HAZARDS {
            b.set_loc("main", 100 + h as u32, 9);
            let r = format!("row_r{h}");
            let w = format!("row_w{h}");
            hazard_sandwich(&mut b, &ctx, cp, &r, &w, 0, acc);
        }
        axpy_loop_ex(
            &mut b,
            &ctx,
            cp,
            "rhs",
            "x",
            "mat",
            1.25,
            Value::ConstInt(0),
            Value::ConstInt(ROWS),
            PtrMode::Hoisted,
            true,
        );
        b.ret(None);
        b.finish()
    };

    let mut b = main_builder(&mut m, "driver");
    init_ctx(&mut b, &ctx);
    fill_array(&mut b, &ctx, "mat", ROWS, 2.0, 0.125);
    fill_array(&mut b, &ctx, "x", ROWS, 1.0, 0.25);
    fill_array(&mut b, &ctx, "y", ROWS, 0.0, 0.0);
    fill_array(&mut b, &ctx, "rhs", ROWS, 0.5, 0.01);
    b.call(assemble, vec![Value::Global(ctx.global)], None);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(3), |b, _| {
        b.parallel_region(spmv, vec![Value::Global(ctx.global)], 4);
    });
    checksum(&mut b, &ctx, "y", ROWS, "final_resid");
    timing_epilogue(&mut b, "MFLOPS");
    b.ret(None);
    b.finish();
    m
}

/// The MiniFE test case.
pub fn cases() -> Vec<TestCase> {
    let mut c = TestCase::new("minife", build);
    c.scope = Scope::files(vec!["main".into()]);
    c.ignore_patterns = standard_ignore_patterns();
    vec![c]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn builds_and_runs() {
        let m = build();
        oraql_ir::verify::assert_valid(&m);
        let out = Interpreter::run_main(&m).unwrap();
        assert!(
            out.stdout.contains("checksum(final_resid)="),
            "{}",
            out.stdout
        );
    }
}
