//! AMG — algebraic-multigrid proxy (AMG2013 / miniVite shape): CSR
//! neighbor arrays walked through indirect loads, with the value buffer
//! additionally visible through a type-punned integer view.
//!
//! The aliasing story this models: solver packages keep one raw
//! allocation and hand out `double*` and `int*` views of it (workspace
//! reuse), so the conservative chain cannot separate the column array,
//! the value array and the punned bookkeeping view — every smoother
//! iteration re-queries the same opaque pointer pairs. The punned view
//! genuinely overlaps the value buffer (a planted hazard); the CSR
//! gather itself is safely optimistic.

use crate::toolkit::*;
use oraql::compile::Scope;
use oraql::TestCase;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::module::Module;
use oraql_ir::value::Value;
use oraql_ir::Ty;

/// Matrix rows in the miniature problem.
const ROWS: i64 = 16;
/// Nonzeros per row.
const NNZ_PER_ROW: i64 = 2;

fn build() -> Module {
    let mut m = Module::new("amg");
    let nnz = ROWS * NNZ_PER_ROW;
    let ctx = make_ctx(
        &mut m,
        "amg",
        &[
            ("cols", 8 * nnz as u64),
            ("vals", 8 * nnz as u64),
            ("diag", 8 * ROWS as u64),
            ("out", 8 * ROWS as u64),
        ],
        // The punned bookkeeping view: an integer window over the first
        // value-buffer cells — the workspace-reuse hazard.
        &[("punned", "vals", 0)],
    );

    // The punned refresh: read the workspace header through the integer
    // view, bump a marker through the double view, re-read. A wrong
    // no-alias between the two views forwards the first read across the
    // store and changes the printed header sum.
    let refresh = {
        let mut b = FunctionBuilder::new(&mut m, "hypre_RefreshWorkspace", vec![Ty::Ptr], None);
        b.set_src_file("amg");
        b.set_loc("amg", 41, 5);
        let cp = b.arg(0);
        let pv = dptr(&mut b, &ctx, cp, "punned");
        let vv = dptr(&mut b, &ctx, cp, "vals");
        let h1 = b.load(Ty::I64, pv);
        b.store(Ty::F64, Value::const_f64(3.5), vv);
        let h2 = b.load(Ty::I64, pv); // must observe the punned store
        let s = b.add(h1, h2);
        b.print("workspace header {}", vec![s]);
        b.ret(None);
        b.finish()
    };

    // CSR smoother sweep: out[r] = diag[r] * sum(vals[cols[k]]) over the
    // row's nonzeros. All four pointers are opaque dptr loads, so the
    // gather's safety rests on (correct) optimistic answers.
    let smooth = {
        let mut b = FunctionBuilder::new(&mut m, "hypre_CSRRelax", vec![Ty::Ptr], None);
        b.set_src_file("amg");
        b.set_loc("amg", 87, 5);
        let cp = b.arg(0);
        let tag = ctx.tag_data;
        let cols = dptr(&mut b, &ctx, cp, "cols");
        let vals = dptr(&mut b, &ctx, cp, "vals");
        let diag = dptr(&mut b, &ctx, cp, "diag");
        let out = dptr(&mut b, &ctx, cp, "out");
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(ROWS), |b, r| {
            let mut acc = Value::const_f64(0.0);
            for k in 0..NNZ_PER_ROW {
                let cg = b.gep_scaled(cols, r, 8 * NNZ_PER_ROW, 8 * k);
                let c = b.load(Ty::I64, cg);
                let vg = b.gep_scaled(vals, c, 8, 0);
                let v = b.load_tbaa(Ty::F64, vg, tag);
                acc = b.fadd(acc, v);
            }
            let dg = b.gep_scaled(diag, r, 8, 0);
            let d = b.load_tbaa(Ty::F64, dg, tag);
            let prod = b.fmul(acc, d);
            let og = b.gep_scaled(out, r, 8, 0);
            b.store_tbaa(Ty::F64, prod, og, tag);
        });
        b.ret(None);
        b.finish()
    };

    let mut b = main_builder(&mut m, "amg_main");
    init_ctx(&mut b, &ctx);
    // Column indices: a fixed in-range walk (r*3+k mod nnz) stored as
    // integers; values and diagonal as the usual f64 fill patterns.
    let cols_g = Value::Global(ctx.backing("cols"));
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(nnz), |b, i| {
        let three = b.mul(i, Value::ConstInt(3));
        let c = b.rem(three, Value::ConstInt(nnz));
        let cg = b.gep_scaled(cols_g, i, 8, 0);
        b.store(Ty::I64, c, cg);
    });
    fill_array(&mut b, &ctx, "vals", nnz, 1.0, 0.125);
    fill_array(&mut b, &ctx, "diag", ROWS, 0.5, 0.0625);
    fill_array(&mut b, &ctx, "out", ROWS, 0.0, 0.0);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(3), |b, _| {
        b.call(refresh, vec![Value::Global(ctx.global)], None);
        b.call(smooth, vec![Value::Global(ctx.global)], None);
    });
    checksum(&mut b, &ctx, "out", ROWS, "relaxed");
    timing_epilogue(&mut b, "rows/s");
    b.ret(None);
    b.finish();
    m
}

/// The AMG CSR test case.
pub fn cases() -> Vec<TestCase> {
    let mut c = TestCase::new("amg_csr", build);
    c.scope = Scope::files(vec!["amg".into()]);
    c.ignore_patterns = standard_ignore_patterns();
    vec![c]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn builds_and_runs() {
        let m = build();
        oraql_ir::verify::assert_valid(&m);
        let out = Interpreter::run_main(&m).unwrap();
        assert!(out.stdout.contains("checksum(relaxed)="), "{}", out.stdout);
        assert!(out.stdout.contains("workspace header"), "{}", out.stdout);
    }

    #[test]
    fn punned_hazard_is_observable() {
        // The refresh kernel's printed header must reflect the punned
        // store: forwarding h1 into h2 would print 2*h1 instead.
        let m = build();
        let out = Interpreter::run_main(&m).unwrap();
        let lines: Vec<&str> = out
            .stdout
            .lines()
            .filter(|l| l.starts_with("workspace header"))
            .collect();
        assert_eq!(lines.len(), 3);
        // vals[0] starts at 1.0 and is overwritten with 3.5; the second
        // and third iterations read back 3.5's bits for both loads.
        assert_ne!(lines[0], lines[1]);
        assert_eq!(lines[1], lines[2]);
    }
}
