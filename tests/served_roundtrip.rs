//! End-to-end coverage for the verdict server (`oraql-served`) as the
//! driver's third cache tier: warm replay through the daemon, many
//! concurrent tenants, graceful fallback when the daemon is down, and
//! recovery after a kill mid-append. Also pins the wire protocol to the
//! worked example in `docs/PROTOCOL.md` so code and docs cannot drift.

use std::path::PathBuf;
use std::sync::Arc;

use oraql::{Driver, DriverOptions, DriverResult, Store};
use oraql_served::{Client, Server, ServerConfig};
use oraql_workloads as workloads;

/// Fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("oraql_served_it_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn data(&self) -> PathBuf {
        self.0.join("data")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_with(name: &str, opts: DriverOptions) -> DriverResult {
    let case = workloads::find_case(name).expect(name);
    Driver::run(&case, opts).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn run_with_server(name: &str, client: &Arc<Client>) -> DriverResult {
    run_with(
        name,
        DriverOptions {
            server: Some(Arc::clone(client)),
            ..Default::default()
        },
    )
}

fn assert_same_result(name: &str, a: &DriverResult, b: &DriverResult) {
    assert_eq!(a.decisions, b.decisions, "{name}");
    assert_eq!(a.fully_optimistic, b.fully_optimistic, "{name}");
    assert_eq!(a.oraql, b.oraql, "{name}");
    assert_eq!(a.no_alias_original, b.no_alias_original, "{name}");
    assert_eq!(a.no_alias_oraql, b.no_alias_oraql, "{name}");
    assert_eq!(a.final_run.stdout, b.final_run.stdout, "{name}");
}

/// A cold run writes its verdicts through to the daemon; a fresh driver
/// process (fresh caches, fresh client, no local store) then replays
/// the whole search from the server tier alone — zero probe compiles,
/// byte-identical decisions.
#[test]
fn warm_run_through_server_is_compile_free() {
    let scratch = Scratch::new("warm");
    let server = Server::start(&ServerConfig::new(scratch.data()), "127.0.0.1:0").unwrap();

    let cold_client = Arc::new(Client::new(&server.addr()));
    let cold = run_with_server("testsnap_omp", &cold_client);
    assert!(!cold.fully_optimistic);
    assert!(cold.effort.tests_run > 0);
    assert!(cold_client.stats().appends > 0, "{}", cold_client.stats());
    assert_eq!(cold.failures.server_down, 0, "{:?}", cold.failures);

    // Fresh client == fresh tenant: nothing local, everything remote.
    let warm_client = Arc::new(Client::new(&server.addr()));
    let warm = run_with_server("testsnap_omp", &warm_client);
    assert_same_result("testsnap_omp", &cold, &warm);
    assert_eq!(warm.effort.tests_run, 0, "{:?}", warm.effort);
    assert_eq!(warm.effort.compiles, 0, "{:?}", warm.effort);
    assert!(warm.effort.tests_server > 0, "{:?}", warm.effort);
    let cs = warm_client.stats();
    assert!(cs.hits > 0, "{cs}");
    assert_eq!(cs.io_errors, 0, "{cs}");

    server.shutdown().unwrap();
}

/// Many tenants, one corpus: concurrent drivers (each with its own
/// connection) populate the same daemon — including two racing runs of
/// the *same* case — and every later warm pass is compile-free and
/// identical to the cold result.
#[test]
fn concurrent_tenants_build_one_shared_corpus() {
    let names = ["testsnap", "testsnap_omp", "gridmini"];
    let scratch = Scratch::new("tenants");
    let server = Server::start(&ServerConfig::new(scratch.data()), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Cold: one thread per case, plus a second racer on the first case.
    let mut cold: Vec<(String, DriverResult)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for name in names.iter().chain([&names[0]]) {
            let addr = addr.clone();
            handles.push(s.spawn(move || {
                let client = Arc::new(Client::new(&addr));
                (name.to_string(), run_with_server(name, &client))
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // The racing duplicate of names[0] must agree with its twin: shared
    // server state never changes a verdict, only who pays for it.
    let racer = cold.pop().unwrap();
    let twin = cold.iter().find(|(n, _)| *n == racer.0).unwrap();
    assert_same_result(&racer.0, &twin.1, &racer.1);

    for (name, cold) in &cold {
        let client = Arc::new(Client::new(&addr));
        let warm = run_with_server(name, &client);
        assert_same_result(name, cold, &warm);
        assert_eq!(warm.effort.tests_run, 0, "{name}: {:?}", warm.effort);
        assert_eq!(warm.effort.compiles, 0, "{name}: {:?}", warm.effort);
    }

    server.shutdown().unwrap();
}

/// A dead daemon must never fail a probe: with a local store attached,
/// the run classifies the outage (`server_down`), falls back to the
/// local tiers, and converges to the same result as a server-less run.
#[test]
fn dead_server_falls_back_to_local_store() {
    // An address nothing listens on: bind an ephemeral port, note it,
    // drop the listener.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let scratch = Scratch::new("dead");
    let store = Arc::new(Store::open(scratch.0.join("verdicts.journal")).unwrap());
    let client = Arc::new(Client::new(&dead_addr));

    let degraded = run_with(
        "testsnap",
        DriverOptions {
            store: Some(Arc::clone(&store)),
            server: Some(Arc::clone(&client)),
            ..Default::default()
        },
    );
    assert!(degraded.failures.server_down > 0, "{:?}", degraded.failures);
    assert_eq!(degraded.effort.tests_server, 0, "{:?}", degraded.effort);
    let cs = client.stats();
    assert!(cs.io_errors > 0, "{cs}");
    // The circuit breaker turned most of the outage into fast-fails
    // instead of per-probe connect attempts.
    assert!(cs.fast_fails > 0, "{cs}");

    // The degraded run still found exactly what a server-less run finds.
    let plain = run_with("testsnap", DriverOptions::default());
    assert_same_result("testsnap", &plain, &degraded);
    // An outage never consumes sandbox retries or quarantines probes.
    assert_eq!(degraded.failures.quarantined, 0, "{:?}", degraded.failures);

    // And the local store absorbed the run: a warm local pass is
    // compile-free even though the server never answered.
    store.sync().unwrap();
    let warm = run_with(
        "testsnap",
        DriverOptions {
            store: Some(Arc::clone(&store)),
            ..Default::default()
        },
    );
    assert_same_result("testsnap", &plain, &warm);
    assert_eq!(warm.effort.compiles, 0, "{:?}", warm.effort);
}

/// SIGKILL mid-append: after a populated daemon dies leaving a torn
/// half-record at a shard journal's tail, a restarted daemon must drop
/// exactly the torn tail (visible in STATS), keep every acked verdict,
/// and serve a compile-free warm replay.
#[test]
fn killed_mid_append_server_recovers() {
    let scratch = Scratch::new("kill");
    let config = ServerConfig::new(scratch.data());
    let server = Server::start(&config, "127.0.0.1:0").unwrap();
    let client = Arc::new(Client::new(&server.addr()));
    let cold = run_with_server("gridmini", &client);
    client.sync().unwrap();
    server.shutdown().unwrap();

    // A kill mid-append leaves a record header whose payload never made
    // it to disk. Forge exactly that at the tail of shard 0.
    let shard0 = scratch.data().join("shard-00.journal");
    let mut bytes = std::fs::read(&shard0).unwrap();
    assert!(!bytes.is_empty());
    bytes.extend_from_slice(&[1u8]); // tag
    bytes.extend_from_slice(&200u32.to_le_bytes()); // payload length…
    bytes.extend_from_slice(&[0xab, 0xcd]); // …but only 2 bytes follow
    std::fs::write(&shard0, &bytes).unwrap();

    let server = Server::start(&config, "127.0.0.1:0").unwrap();
    let client = Arc::new(Client::new(&server.addr()));
    let stats = client.server_stats().unwrap();
    assert!(stats.contains("1 torn dropped"), "{stats}");

    let warm = run_with_server("gridmini", &client);
    assert_same_result("gridmini", &cold, &warm);
    assert_eq!(warm.effort.tests_run, 0, "{:?}", warm.effort);
    assert_eq!(warm.effort.compiles, 0, "{:?}", warm.effort);

    server.shutdown().unwrap();
}

/// Drift check: the worked hex example in `docs/PROTOCOL.md` must be
/// exactly what the protocol module puts on the wire, and every op and
/// status byte must be documented.
#[test]
fn protocol_docs_match_the_wire() {
    use oraql_served::protocol::{Op, Request, Response, Status, VERSION};

    let doc_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc_path.display()));

    // The worked example: `request:` / `response:` lines of hex bytes.
    // (The framing section reuses the same prefixes for field diagrams,
    // so keep only the candidate whose every token parses as hex.)
    let hex_line = |prefix: &str| -> Vec<u8> {
        doc.lines()
            .filter_map(|l| l.trim().strip_prefix(prefix))
            .find_map(|rest| {
                rest.split_whitespace()
                    .map(|t| u8::from_str_radix(t, 16).ok())
                    .collect::<Option<Vec<u8>>>()
                    .filter(|bytes| !bytes.is_empty())
            })
            .unwrap_or_else(|| panic!("no `{prefix}` hex line in PROTOCOL.md worked example"))
    };
    let req = Request::GetDec {
        key: 0x0123_4567_89ab_cdef,
    };
    assert_eq!(
        hex_line("request:"),
        req.encode(0x42),
        "documented request frame drifted"
    );
    let resp = Response::Verdict {
        pass: true,
        unique: 42,
    };
    assert_eq!(
        hex_line("response:"),
        resp.encode(0x42),
        "documented response frame drifted"
    );

    // Every op byte and status byte appears in the doc's tables.
    for op in [
        Op::Ping,
        Op::GetDec,
        Op::GetExe,
        Op::PutDec,
        Op::PutExe,
        Op::GetRefs,
        Op::PutRefs,
        Op::Stats,
        Op::Sync,
        Op::Compact,
        Op::Metrics,
    ] {
        let byte = format!("`0x{:02x}`", op as u8);
        assert!(
            doc.contains(&byte),
            "op byte {byte} missing from PROTOCOL.md"
        );
        let name = format!("{op:?}");
        assert!(
            doc.contains(&name),
            "op name {name} missing from PROTOCOL.md"
        );
    }
    for status in [
        Status::Ok,
        Status::NotFound,
        Status::BadFrame,
        Status::BadOp,
        Status::BadVersion,
        Status::Io,
        Status::Busy,
    ] {
        let byte = format!("`0x{:02x}`", status as u8);
        assert!(
            doc.contains(&byte),
            "status byte {byte} missing from PROTOCOL.md"
        );
        assert!(
            doc.contains(status.as_str()),
            "status name {} missing from PROTOCOL.md",
            status.as_str()
        );
    }
    assert!(
        doc.contains(&format!("version byte is `{VERSION}`")),
        "documented protocol version drifted"
    );
}
