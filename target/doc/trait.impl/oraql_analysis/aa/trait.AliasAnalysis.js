(function() {
    const implementors = Object.fromEntries([["oraql",[["impl <a class=\"trait\" href=\"oraql_analysis/aa/trait.AliasAnalysis.html\" title=\"trait oraql_analysis::aa::AliasAnalysis\">AliasAnalysis</a> for <a class=\"struct\" href=\"oraql/pass/struct.OraqlAA.html\" title=\"struct oraql::pass::OraqlAA\">OraqlAA</a>",0]]],["oraql",[["impl AliasAnalysis for <a class=\"struct\" href=\"oraql/pass/struct.OraqlAA.html\" title=\"struct oraql::pass::OraqlAA\">OraqlAA</a>",0]]],["oraql_analysis",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[275,151,22]}