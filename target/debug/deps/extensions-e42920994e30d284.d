/root/repo/target/debug/deps/extensions-e42920994e30d284.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-e42920994e30d284.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
