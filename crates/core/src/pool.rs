//! Bounded worker pool for parallel probing (std-only concurrency).
//!
//! The probing driver (paper §IV-B) spends almost all of its time in
//! compile-and-run probe cycles that are independent of each other:
//! sibling probes inside one bisection step, and probes of different
//! [`crate::driver::TestCase`]s in a suite. [`WorkerPool`] is the shared
//! execution substrate for both — a fixed set of `std::thread` workers
//! draining a single job queue, so a `--jobs N` budget bounds the total
//! probe concurrency of a whole suite run no matter how many drivers
//! feed it.
//!
//! # Concurrency contract
//!
//! * Jobs are opaque `FnOnce() + Send` closures; they must not block on
//!   other pool jobs (probe jobs never do — each one is a self-contained
//!   compile + execute + verify cycle), otherwise the bounded pool can
//!   deadlock.
//! * Submission order is preserved per queue, but completion order is
//!   unspecified; consumers synchronize through the channel they pass
//!   into their job (see `Driver::probe_speculative`).
//! * [`CancelToken`] is advisory: a job observes it *before* starting
//!   expensive work. A job already past that check runs to completion;
//!   cancellation then merely means nobody consumes its result (the
//!   shared verdict cache still keeps the work from being wasted).
//! * A job that panics takes down only its own worker thread: the pool
//!   detects the unwind and spawns a replacement, so the configured
//!   `--jobs` width survives any number of misbehaving probes. The
//!   panicked job's result channel is dropped, which its consumer
//!   observes as a disconnect (see `Driver::wait_probe`). Counted in
//!   [`WorkerPool::panics`] / [`WorkerPool::respawns`].
//! * Dropping the pool closes the queue and joins every worker
//!   (replacements included), so all borrowed-free (`'static`) state
//!   captured by pending jobs is released deterministically.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{
    atomic::{AtomicBool, AtomicU64, Ordering},
    Arc, Mutex, MutexGuard, OnceLock,
};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Registry handles, resolved once. The queue-depth gauge tracks
/// submitted-but-not-yet-dequeued jobs across every pool in the
/// process (suite runs share one pool, so that is the number that
/// matters for sizing `--jobs`).
struct PoolMetrics {
    queue_depth: &'static oraql_obs::Gauge,
    submitted: &'static oraql_obs::Counter,
    panics: &'static oraql_obs::Counter,
    respawns: &'static oraql_obs::Counter,
}

fn metrics() -> &'static PoolMetrics {
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = oraql_obs::global();
        PoolMetrics {
            queue_depth: r.gauge("oraql_pool_queue_depth"),
            submitted: r.counter("oraql_pool_jobs_submitted_total"),
            panics: r.counter("oraql_pool_panics_total"),
            respawns: r.counter("oraql_pool_respawns_total"),
        }
    })
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Advisory cancellation flag shared between a submitter and a queued
/// job. See the module docs for the exact semantics.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Requests cancellation; queued-but-unstarted jobs will be skipped.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// State shared between the pool handle and every worker thread.
struct Shared {
    rx: Mutex<Receiver<Job>>,
    /// Live worker handles. Respawned workers push here, so `Drop` must
    /// keep popping until empty rather than iterate a snapshot.
    handles: Mutex<Vec<JoinHandle<()>>>,
    panics: AtomicU64,
    respawns: AtomicU64,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

/// A fixed-size pool of worker threads draining one job queue.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    shared: Arc<Shared>,
    width: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.width)
            .field("panics", &self.panics())
            .finish()
    }
}

/// Armed for the lifetime of a worker thread; if the thread unwinds
/// out of a panicking job, `Drop` spawns a replacement so the pool
/// keeps its configured width.
struct RespawnGuard(Arc<Shared>);

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return; // clean exit: the queue was closed
        }
        self.0.panics.fetch_add(1, Ordering::Relaxed);
        metrics().panics.inc();
        if self.0.shutdown.load(Ordering::Acquire) {
            return; // pool is being dropped; no point replacing
        }
        // This runs during unwind, so it must not panic (that would
        // abort the process). A failed spawn just leaves the pool one
        // worker short — still functional as long as one survives.
        if spawn_worker(&self.0).is_ok() {
            self.0.respawns.fetch_add(1, Ordering::Relaxed);
            metrics().respawns.inc();
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>) -> std::io::Result<()> {
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let s = Arc::clone(shared);
    let h = std::thread::Builder::new()
        .name(format!("oraql-probe-{id}"))
        .spawn(move || {
            let _guard = RespawnGuard(Arc::clone(&s));
            worker_loop(&s.rx);
        })?;
    lock_ignore_poison(&shared.handles).push(h);
    Ok(())
}

impl WorkerPool {
    /// Spawns `jobs` worker threads (at least one).
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let (tx, rx) = channel::<Job>();
        let shared = Arc::new(Shared {
            rx: Mutex::new(rx),
            handles: Mutex::new(Vec::with_capacity(jobs)),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        for _ in 0..jobs {
            spawn_worker(&shared).expect("spawn pool worker");
        }
        WorkerPool {
            tx: Some(tx),
            shared,
            width: jobs,
        }
    }

    /// Number of worker threads the pool maintains.
    pub fn workers(&self) -> usize {
        self.width
    }

    /// How many jobs have panicked (and unwound a worker) so far.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// How many replacement workers were spawned after panics. Normally
    /// equals [`WorkerPool::panics`]; lags it only if a respawn itself
    /// failed (thread exhaustion) or the panic raced pool shutdown.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Enqueues a job. Panics if called after the pool was shut down
    /// (impossible through the public API — shutdown happens in `Drop`).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        // The receiver lives in `shared`, which we hold, so the channel
        // outlives any worker crash: send cannot fail while the pool
        // itself is alive.
        metrics().submitted.inc();
        metrics().queue_depth.inc();
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("pool queue alive");
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only while dequeuing, never while
        // running a job. A panicked sibling may have poisoned the
        // mutex; the receiver state is still sound, so keep draining.
        let job = lock_ignore_poison(rx).recv();
        match job {
            Ok(job) => {
                metrics().queue_depth.dec();
                job();
            }
            Err(_) => return, // queue closed: pool is shutting down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(self.tx.take()); // close the queue
                              // Joining a panicked worker returns only after its unwind — and
                              // thus its respawn push — completes, so popping until empty
                              // also collects every replacement worker.
        loop {
            let h = lock_ignore_poison(&self.shared.handles).pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The panic/respawn counters are bumped during the dying thread's
    /// unwind, which can lag the replacement worker picking up the next
    /// job — so tests await them instead of asserting immediately.
    fn await_counts(pool: &WorkerPool, panics: u64, respawns: u64) {
        for _ in 0..5_000 {
            if pool.panics() == panics && pool.respawns() == respawns {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!((pool.panics(), pool.respawns()), (panics, respawns));
    }

    #[test]
    fn runs_all_jobs_bounded() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let hits = Arc::new(AtomicU64::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        for _ in 0..64 {
            rx.recv().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn cancelled_jobs_are_skipped() {
        let pool = WorkerPool::new(1);
        let token = CancelToken::default();
        token.cancel();
        let ran = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel();
        let t = token.clone();
        let r = Arc::clone(&ran);
        pool.submit(move || {
            if !t.is_cancelled() {
                r.store(true, Ordering::SeqCst);
            }
            let _ = tx.send(());
        });
        rx.recv().unwrap();
        assert!(!ran.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_joins_workers() {
        let hits = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..8 {
                let hits = Arc::clone(&hits);
                pool.submit(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits for the queue to drain
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_requested_workers_still_works() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = channel();
        pool.submit(move || {
            let _ = tx.send(7u8);
        });
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn panicking_job_respawns_worker() {
        oraql_faults::quiet_injected_panics();
        // Width 1: if the panicked worker were not replaced, the second
        // job could never run and recv() below would hang forever.
        let pool = WorkerPool::new(1);
        let (ptx, prx) = channel();
        pool.submit(move || {
            let _ = ptx.send(());
            std::panic::panic_any(oraql_faults::InjectedPanic("pool test"));
        });
        prx.recv().unwrap();
        let (tx, rx) = channel();
        pool.submit(move || {
            let _ = tx.send(42u8);
        });
        assert_eq!(rx.recv().unwrap(), 42);
        await_counts(&pool, 1, 1);
    }

    #[test]
    fn pool_survives_repeated_panics() {
        oraql_faults::quiet_injected_panics();
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        for i in 0..16u64 {
            let tx = tx.clone();
            pool.submit(move || {
                let _ = tx.send(i);
                if i % 3 == 0 {
                    std::panic::panic_any(oraql_faults::InjectedPanic("chaos"));
                }
            });
        }
        let mut got: Vec<u64> = (0..16).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        await_counts(&pool, 6, 6); // panics at i = 0, 3, 6, 9, 12, 15
    }

    #[test]
    fn drop_after_panic_does_not_hang() {
        oraql_faults::quiet_injected_panics();
        let pool = WorkerPool::new(2);
        pool.submit(|| std::panic::panic_any(oraql_faults::InjectedPanic("late")));
        drop(pool); // must join the replacement worker too
    }
}
