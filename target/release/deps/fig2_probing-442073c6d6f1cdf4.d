/root/repo/target/release/deps/fig2_probing-442073c6d6f1cdf4.d: crates/bench/benches/fig2_probing.rs

/root/repo/target/release/deps/fig2_probing-442073c6d6f1cdf4: crates/bench/benches/fig2_probing.rs

crates/bench/benches/fig2_probing.rs:
