/root/repo/target/debug/examples/decode_cost-e85edf18bf918fcc.d: crates/bench/examples/decode_cost.rs Cargo.toml

/root/repo/target/debug/examples/libdecode_cost-e85edf18bf918fcc.rmeta: crates/bench/examples/decode_cost.rs Cargo.toml

crates/bench/examples/decode_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
