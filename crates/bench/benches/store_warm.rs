//! Cold-vs-warm suite benchmark for the persistent verdict store.
//!
//! Runs every registered workload configuration twice against one
//! `oraql-store` journal: a *cold* pass over an empty store (every
//! probe compiles and executes, populating the journal) and a *warm*
//! pass over the reopened journal (every probe answered from the
//! persistent decisions-digest tier without compiling). Per-case and
//! total wall clock, the warm/cold ratio, and the store's own stats
//! are written as JSON to `$ORAQL_BENCH_OUT` (default
//! `BENCH_store.json` in the working directory).
//!
//! Not a criterion bench: the JSON artifact is the point, and each
//! pass is a full driver run, not a microbenchmark.

use std::sync::Arc;
use std::time::Instant;

use oraql::{Driver, DriverOptions, Store};

fn run_pass(store: &Arc<Store>, label: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for info in &oraql_workloads::CASE_INFOS {
        let case = oraql_workloads::find_case(info.name).expect("registered");
        let t = Instant::now();
        let r = Driver::run(
            &case,
            DriverOptions {
                store: Some(Arc::clone(store)),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if label == "warm" {
            assert_eq!(
                r.effort.tests_run, 0,
                "{}: warm pass compiled probes: {:?}",
                info.name, r.effort
            );
        }
        rows.push((info.name.to_owned(), ms));
    }
    rows
}

fn main() {
    let dir = std::env::temp_dir().join(format!("oraql_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let journal = dir.join("verdicts.journal");

    let store = Arc::new(Store::open(&journal).expect("open cold store"));
    let cold = run_pass(&store, "cold");
    store.sync().expect("sync journal");
    let cold_stats = store.stats();
    let journal_bytes = std::fs::metadata(&journal).expect("journal").len();
    drop(store);

    let store = Arc::new(Store::open(&journal).expect("reopen store"));
    let warm = run_pass(&store, "warm");
    let warm_stats = store.stats();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    let mut rows = Vec::new();
    let (mut cold_total, mut warm_total) = (0.0f64, 0.0f64);
    for ((name, cold_ms), (_, warm_ms)) in cold.iter().zip(&warm) {
        let ratio = warm_ms / cold_ms;
        println!("{name:22} {cold_ms:>10.1} ms cold  {warm_ms:>10.1} ms warm  ({ratio:>5.3}x)");
        rows.push(format!(
            "    {{\"case\": \"{name}\", \"cold_ms\": {cold_ms:.2}, \"warm_ms\": {warm_ms:.2}, \
             \"ratio\": {ratio:.4}}}"
        ));
        cold_total += cold_ms;
        warm_total += warm_ms;
    }
    let ratio = warm_total / cold_total;
    println!(
        "total: {cold_total:.1} ms cold, {warm_total:.1} ms warm, warm/cold = {ratio:.3} \
         ({} cases, {journal_bytes} journal bytes)",
        cold.len()
    );
    println!("cold store: {cold_stats}");
    println!("warm store: {warm_stats}");

    let json = format!(
        "{{\n  \"bench\": \"store_warm\",\n  \"cases_total\": {},\n  \
         \"cold_total_ms\": {:.2},\n  \"warm_total_ms\": {:.2},\n  \
         \"warm_cold_ratio\": {:.4},\n  \"journal_bytes\": {},\n  \
         \"cold_appends\": {},\n  \"warm_hits\": {},\n  \"warm_misses\": {},\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        cold.len(),
        cold_total,
        warm_total,
        ratio,
        journal_bytes,
        cold_stats.appends,
        warm_stats.hits(),
        warm_stats.misses,
        rows.join(",\n")
    );
    let out = std::env::var("ORAQL_BENCH_OUT").unwrap_or_else(|_| "BENCH_store.json".into());
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
