/root/repo/target/debug/deps/micro-499876b83db5b33b.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-499876b83db5b33b: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
