//! Inclusion-based (Andersen-style) interprocedural points-to analysis,
//! standing in for LLVM's `CFLAndersAA`. Field-insensitive,
//! flow-insensitive, context-insensitive; solved with a worklist.

use crate::aa::{AliasAnalysis, QueryCtx};
use crate::constraints::{extract, Constraint, ConstraintSystem, NodeId, ObjId};
use crate::location::{AliasResult, MemoryLocation};
use oraql_ir::module::Module;
use std::collections::{BTreeSet, HashSet};

/// The solved Andersen points-to relation plus the AA adapter.
pub struct AndersenAA {
    sys: ConstraintSystem,
    /// Points-to sets, indexed by node id.
    pts: Vec<BTreeSet<ObjId>>,
    answered: u64,
}

impl AndersenAA {
    /// Extracts constraints from `m` and solves them.
    pub fn new(m: &Module) -> Self {
        let sys = extract(m);
        let pts = solve(&sys);
        AndersenAA {
            sys,
            pts,
            answered: 0,
        }
    }

    /// The points-to set of a pointer value, if it has a node.
    pub fn points_to(
        &self,
        f: oraql_ir::module::FunctionId,
        v: oraql_ir::value::Value,
    ) -> Option<&BTreeSet<ObjId>> {
        self.sys.node_of(f, v).map(|n| &self.pts[n as usize])
    }

    /// Immutable access to the constraint system (for diagnostics).
    pub fn system(&self) -> &ConstraintSystem {
        &self.sys
    }
}

/// Solves the constraint system with the standard worklist algorithm.
pub fn solve(sys: &ConstraintSystem) -> Vec<BTreeSet<ObjId>> {
    let n = sys.num_nodes();
    let mut pts: Vec<BTreeSet<ObjId>> = vec![BTreeSet::new(); n];
    // Copy edges: succs[x] = nodes whose pts include pts[x].
    let mut succs: Vec<HashSet<NodeId>> = vec![HashSet::new(); n];
    // Complex constraints indexed by the pointer node they dereference.
    let mut loads_at: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut stores_at: Vec<Vec<NodeId>> = vec![Vec::new(); n];

    let mut worklist: Vec<NodeId> = Vec::new();
    for c in &sys.constraints {
        match *c {
            Constraint::AddrOf { lhs, obj } => {
                if pts[lhs as usize].insert(obj) {
                    worklist.push(lhs);
                }
            }
            Constraint::Copy { lhs, rhs } => {
                succs[rhs as usize].insert(lhs);
            }
            Constraint::Load { lhs, ptr } => loads_at[ptr as usize].push(lhs),
            Constraint::Store { ptr, rhs } => stores_at[ptr as usize].push(rhs),
        }
    }
    // Seed propagation along pre-existing copy edges.
    for x in 0..n as NodeId {
        if !pts[x as usize].is_empty() {
            worklist.push(x);
        }
    }

    while let Some(x) = worklist.pop() {
        // Dereference-based edges implied by the current pts of x.
        let objs: Vec<ObjId> = pts[x as usize].iter().copied().collect();
        for o in objs {
            let content = sys.content_node[o as usize];
            for &lhs in &loads_at[x as usize] {
                // lhs ⊇ content
                if succs[content as usize].insert(lhs) {
                    let add: Vec<ObjId> = pts[content as usize].iter().copied().collect();
                    let mut grew = false;
                    for o2 in add {
                        grew |= pts[lhs as usize].insert(o2);
                    }
                    if grew {
                        worklist.push(lhs);
                    }
                }
            }
            for &rhs in &stores_at[x as usize] {
                // content ⊇ rhs
                if succs[rhs as usize].insert(content) {
                    let add: Vec<ObjId> = pts[rhs as usize].iter().copied().collect();
                    let mut grew = false;
                    for o2 in add {
                        grew |= pts[content as usize].insert(o2);
                    }
                    if grew {
                        worklist.push(content);
                    }
                }
            }
        }
        // Plain copy propagation.
        let targets: Vec<NodeId> = succs[x as usize].iter().copied().collect();
        let src: Vec<ObjId> = pts[x as usize].iter().copied().collect();
        for t in targets {
            let mut grew = false;
            for &o in &src {
                grew |= pts[t as usize].insert(o);
            }
            if grew {
                worklist.push(t);
            }
        }
    }
    pts
}

impl AliasAnalysis for AndersenAA {
    fn name(&self) -> &'static str {
        "AndersenAA"
    }

    fn alias(&mut self, ctx: &QueryCtx<'_>, a: &MemoryLocation, b: &MemoryLocation) -> AliasResult {
        let (Some(na), Some(nb)) = (
            self.sys.node_of(ctx.func, a.ptr),
            self.sys.node_of(ctx.func, b.ptr),
        ) else {
            // Values created after extraction (by passes): walk to the
            // underlying base and retry once.
            let f = ctx.module.func(ctx.func);
            let base_a = crate::pointer::decompose(f, a.ptr);
            let base_b = crate::pointer::decompose(f, b.ptr);
            let to_val = |base: &crate::pointer::PtrBase| match *base {
                crate::pointer::PtrBase::Alloca(i)
                | crate::pointer::PtrBase::LoadResult(i)
                | crate::pointer::PtrBase::CallResult(i)
                | crate::pointer::PtrBase::Merge(i) => Some(oraql_ir::value::Value::Inst(i)),
                crate::pointer::PtrBase::Arg { index, .. } => {
                    Some(oraql_ir::value::Value::Arg(index))
                }
                crate::pointer::PtrBase::Global(g) => Some(oraql_ir::value::Value::Global(g)),
                crate::pointer::PtrBase::Unknown => None,
            };
            match (
                to_val(&base_a.base).and_then(|v| self.sys.node_of(ctx.func, v)),
                to_val(&base_b.base).and_then(|v| self.sys.node_of(ctx.func, v)),
            ) {
                (Some(na), Some(nb)) => return self.decide(na, nb),
                _ => return AliasResult::MayAlias,
            }
        };
        self.decide(na, nb)
    }

    fn stats(&self) -> Vec<(String, u64)> {
        vec![
            ("answered".into(), self.answered),
            ("nodes".into(), self.sys.num_nodes() as u64),
            ("objects".into(), self.sys.objects.len() as u64),
        ]
    }
}

impl AndersenAA {
    fn decide(&mut self, na: NodeId, nb: NodeId) -> AliasResult {
        let pa = &self.pts[na as usize];
        let pb = &self.pts[nb as usize];
        let u = self.sys.universal_obj;
        if pa.is_empty() || pb.is_empty() || pa.contains(&u) || pb.contains(&u) {
            return AliasResult::MayAlias;
        }
        if pa.intersection(pb).next().is_none() {
            self.answered += 1;
            AliasResult::NoAlias
        } else {
            AliasResult::MayAlias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::module::FunctionId;
    use oraql_ir::value::Value;
    use oraql_ir::Ty;

    fn ctx(m: &Module) -> QueryCtx<'_> {
        QueryCtx {
            module: m,
            func: FunctionId(0),
            pass: "t",
        }
    }

    #[test]
    fn pointers_loaded_from_disjoint_slots_no_alias() {
        // x and y stored into distinct slots, loaded back: the loads
        // cannot alias each other (BasicAA cannot see this, Andersen can).
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let sx = b.alloca(8, "sx");
        let sy = b.alloca(8, "sy");
        let x = b.alloca(64, "x");
        let y = b.alloca(64, "y");
        b.store(Ty::Ptr, x, sx);
        b.store(Ty::Ptr, y, sy);
        let lx = b.load(Ty::Ptr, sx);
        let ly = b.load(Ty::Ptr, sy);
        b.store(Ty::I64, Value::ConstInt(0), lx);
        b.store(Ty::I64, Value::ConstInt(0), ly);
        b.ret(None);
        b.finish();
        let mut aa = AndersenAA::new(&m);
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(lx, 8),
                &MemoryLocation::precise(ly, 8)
            ),
            AliasResult::NoAlias
        );
    }

    #[test]
    fn pointers_through_same_slot_may_alias() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let s = b.alloca(8, "s");
        let x = b.alloca(64, "x");
        let y = b.alloca(64, "y");
        b.store(Ty::Ptr, x, s);
        b.store(Ty::Ptr, y, s);
        let l1 = b.load(Ty::Ptr, s);
        let l2 = b.load(Ty::Ptr, s);
        b.store(Ty::I64, Value::ConstInt(0), l1);
        b.store(Ty::I64, Value::ConstInt(0), l2);
        b.ret(None);
        b.finish();
        let mut aa = AndersenAA::new(&m);
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(l1, 8),
                &MemoryLocation::precise(l2, 8)
            ),
            AliasResult::MayAlias
        );
    }

    #[test]
    fn interprocedural_arg_flow() {
        // main passes x to callee's p and y to q; inside callee p/q do
        // not alias.
        let mut m = Module::new("t");
        let callee =
            oraql_ir::builder::declare_function(&mut m, "callee", vec![Ty::Ptr, Ty::Ptr], None);
        {
            let f = m.func_mut(callee);
            f.push_inst(
                oraql_ir::module::Function::ENTRY,
                oraql_ir::inst::Inst::Store {
                    ptr: Value::Arg(0),
                    value: Value::ConstInt(1),
                    ty: Ty::I64,
                    meta: Default::default(),
                },
                None,
            );
            f.push_inst(
                oraql_ir::module::Function::ENTRY,
                oraql_ir::inst::Inst::Ret { val: None },
                None,
            );
        }
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(64, "x");
        let y = b.alloca(64, "y");
        b.call(callee, vec![x, y], None);
        b.ret(None);
        b.finish();
        let mut aa = AndersenAA::new(&m);
        let c = QueryCtx {
            module: &m,
            func: callee,
            pass: "t",
        };
        assert_eq!(
            aa.alias(
                &c,
                &MemoryLocation::precise(Value::Arg(0), 8),
                &MemoryLocation::precise(Value::Arg(1), 8)
            ),
            AliasResult::NoAlias
        );
    }

    #[test]
    fn aliased_args_detected() {
        // main passes x to BOTH params: they may alias inside callee.
        let mut m = Module::new("t");
        let callee =
            oraql_ir::builder::declare_function(&mut m, "callee2", vec![Ty::Ptr, Ty::Ptr], None);
        {
            let f = m.func_mut(callee);
            f.push_inst(
                oraql_ir::module::Function::ENTRY,
                oraql_ir::inst::Inst::Ret { val: None },
                None,
            );
        }
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(64, "x");
        b.call(callee, vec![x, x], None);
        b.ret(None);
        b.finish();
        let mut aa = AndersenAA::new(&m);
        let c = QueryCtx {
            module: &m,
            func: callee,
            pass: "t",
        };
        assert_eq!(
            aa.alias(
                &c,
                &MemoryLocation::precise(Value::Arg(0), 8),
                &MemoryLocation::precise(Value::Arg(1), 8)
            ),
            AliasResult::MayAlias
        );
    }

    #[test]
    fn root_params_are_unknown() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "root", vec![Ty::Ptr, Ty::Ptr], None);
        b.store(Ty::I64, Value::ConstInt(0), b.arg(0));
        b.store(Ty::I64, Value::ConstInt(0), b.arg(1));
        b.ret(None);
        b.finish();
        let mut aa = AndersenAA::new(&m);
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(Value::Arg(0), 8),
                &MemoryLocation::precise(Value::Arg(1), 8)
            ),
            AliasResult::MayAlias
        );
    }

    #[test]
    fn gep_inherits_base_points_to() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(64, "x");
        let y = b.alloca(64, "y");
        let gx = b.gep(x, 8);
        b.store(Ty::I64, Value::ConstInt(0), gx);
        b.store(Ty::I64, Value::ConstInt(0), y);
        b.ret(None);
        b.finish();
        let mut aa = AndersenAA::new(&m);
        assert_eq!(
            aa.alias(
                &ctx(&m),
                &MemoryLocation::precise(gx, 8),
                &MemoryLocation::precise(y, 8)
            ),
            AliasResult::NoAlias
        );
    }
}
