//! Shared constraint extraction for the points-to analyses
//! ([`crate::andersen`] and [`crate::steens`]).
//!
//! The module is walked once; every pointer-typed SSA value gets a node,
//! every alloca/global an abstract object, and the instruction stream is
//! translated into the four classic constraint forms (address-of, copy,
//! load, store). Interprocedural flow is modelled by copy constraints
//! between call arguments and parameters (with the implicit leading
//! thread-id of parallel regions and kernels accounted for) and between
//! return values and call results.

use oraql_ir::inst::{CallKind, CastKind, FuncRef, Inst, InstId};
use oraql_ir::module::{FunctionId, GlobalId, Module};
use oraql_ir::types::Ty;
use oraql_ir::value::Value;
use std::collections::HashMap;

/// An abstract memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbsObj {
    /// A stack allocation, identified by function and instruction.
    Alloca(FunctionId, InstId),
    /// A module global.
    Global(GlobalId),
    /// The unknown object: externally supplied memory, int-to-ptr
    /// results, everything we cannot identify.
    Universal,
}

/// A node in the points-to graph. `Content(o)` holds the pointer values
/// stored *inside* object `o` (field-insensitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKey {
    /// A pointer-typed SSA value in a function.
    Val(FunctionId, Value),
    /// A function parameter (same as `Val(f, Arg(i))`, kept distinct for
    /// clarity when wiring calls).
    Param(FunctionId, u32),
    /// The merged return value of a function.
    Ret(FunctionId),
    /// The pointer content of an abstract object.
    Content(AbsObj),
    /// The node whose points-to set is `{Universal}`.
    UniversalSrc,
}

/// Dense node id.
pub type NodeId = u32;
/// Dense object id.
pub type ObjId = u32;

/// One points-to constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// `pts(lhs) ⊇ {obj}`.
    AddrOf { lhs: NodeId, obj: ObjId },
    /// `pts(lhs) ⊇ pts(rhs)`.
    Copy { lhs: NodeId, rhs: NodeId },
    /// `pts(lhs) ⊇ pts(content(o))` for each `o ∈ pts(ptr)`.
    Load { lhs: NodeId, ptr: NodeId },
    /// `pts(content(o)) ⊇ pts(rhs)` for each `o ∈ pts(ptr)`.
    Store { ptr: NodeId, rhs: NodeId },
}

/// The extracted constraint system.
pub struct ConstraintSystem {
    /// All constraints.
    pub constraints: Vec<Constraint>,
    /// Node table: key -> dense id.
    pub nodes: HashMap<NodeKey, NodeId>,
    /// Object table: object -> dense id (index into `objects`).
    pub objects: Vec<AbsObj>,
    /// Content node of each object, indexed by `ObjId`.
    pub content_node: Vec<NodeId>,
    /// Dense id of [`AbsObj::Universal`].
    pub universal_obj: ObjId,
    /// Node whose points-to set is exactly `{Universal}`.
    pub universal_src: NodeId,
}

impl ConstraintSystem {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Looks up the node of a pointer value in `f`, if one was created
    /// during extraction (values created later by passes have none).
    pub fn node_of(&self, f: FunctionId, v: Value) -> Option<NodeId> {
        match v {
            // Globals are function-independent.
            Value::Global(_) => self.nodes.get(&NodeKey::Val(FunctionId(u32::MAX), v)),
            _ => self.nodes.get(&NodeKey::Val(f, v)),
        }
        .copied()
    }
}

struct Extractor {
    sys: ConstraintSystem,
    obj_ids: HashMap<AbsObj, ObjId>,
}

impl Extractor {
    fn node(&mut self, key: NodeKey) -> NodeId {
        let next = self.sys.nodes.len() as NodeId;
        *self.sys.nodes.entry(key).or_insert(next)
    }

    fn obj(&mut self, o: AbsObj) -> ObjId {
        if let Some(&id) = self.obj_ids.get(&o) {
            return id;
        }
        let id = self.sys.objects.len() as ObjId;
        self.sys.objects.push(o);
        self.obj_ids.insert(o, id);
        let content = self.node(NodeKey::Content(o));
        self.sys.content_node.push(content);
        id
    }

    /// Node of a value used as a pointer operand.
    fn val_node(&mut self, f: FunctionId, v: Value) -> NodeId {
        match v {
            Value::Global(g) => {
                // One node per global address, shared across functions.
                let key = NodeKey::Val(FunctionId(u32::MAX), Value::Global(g));
                let n = self.node(key);
                let o = self.obj(AbsObj::Global(g));
                self.sys
                    .constraints
                    .push(Constraint::AddrOf { lhs: n, obj: o });
                n
            }
            Value::ConstInt(_) | Value::ConstFloat(_) | Value::Undef => {
                // A constant used as a pointer: unknown target.
                self.sys.universal_src
            }
            _ => self.node(NodeKey::Val(f, v)),
        }
    }
}

/// Extracts the points-to constraint system of a whole module.
pub fn extract(m: &Module) -> ConstraintSystem {
    let mut ex = Extractor {
        sys: ConstraintSystem {
            constraints: Vec::new(),
            nodes: HashMap::new(),
            objects: Vec::new(),
            content_node: Vec::new(),
            universal_obj: 0,
            universal_src: 0,
        },
        obj_ids: HashMap::new(),
    };
    // Seed the universal object and its source node. The universal
    // object's content points back at the universal object, so loads
    // through unknown pointers stay unknown.
    ex.sys.universal_src = ex.node(NodeKey::UniversalSrc);
    let uobj = ex.obj(AbsObj::Universal);
    ex.sys.universal_obj = uobj;
    let usrc = ex.sys.universal_src;
    ex.sys.constraints.push(Constraint::AddrOf {
        lhs: usrc,
        obj: uobj,
    });
    let ucontent = ex.sys.content_node[uobj as usize];
    ex.sys.constraints.push(Constraint::AddrOf {
        lhs: ucontent,
        obj: uobj,
    });

    // Which functions have internal callers (called directly, as a
    // parallel region, or as a kernel)? Pointer params of uncalled
    // ("root") functions are externally supplied: universal.
    let mut has_caller = vec![false; m.funcs.len()];
    for f in &m.funcs {
        for id in f.live_insts() {
            if let Inst::Call {
                callee: FuncRef::Internal(c),
                ..
            } = f.inst(id)
            {
                has_caller[c.0 as usize] = true;
            }
        }
    }

    for (fi, f) in m.funcs.iter().enumerate() {
        let fid = FunctionId(fi as u32);
        // Parameters are the same nodes as their Arg values.
        for (pi, p) in f.params.iter().enumerate() {
            if p.ty == Ty::Ptr {
                let pnode = ex.node(NodeKey::Val(fid, Value::Arg(pi as u32)));
                if !has_caller[fi] {
                    ex.sys.constraints.push(Constraint::Copy {
                        lhs: pnode,
                        rhs: usrc,
                    });
                }
            }
        }

        for id in f.live_insts() {
            match f.inst(id) {
                Inst::Alloca { .. } => {
                    let n = ex.node(NodeKey::Val(fid, Value::Inst(id)));
                    let o = ex.obj(AbsObj::Alloca(fid, id));
                    ex.sys
                        .constraints
                        .push(Constraint::AddrOf { lhs: n, obj: o });
                }
                Inst::Gep { base, .. } => {
                    let n = ex.node(NodeKey::Val(fid, Value::Inst(id)));
                    let b = ex.val_node(fid, *base);
                    ex.sys.constraints.push(Constraint::Copy { lhs: n, rhs: b });
                }
                Inst::Load { ptr, ty, .. } if *ty == Ty::Ptr => {
                    let n = ex.node(NodeKey::Val(fid, Value::Inst(id)));
                    let p = ex.val_node(fid, *ptr);
                    ex.sys.constraints.push(Constraint::Load { lhs: n, ptr: p });
                }
                Inst::Store { ptr, value, ty, .. } if *ty == Ty::Ptr => {
                    let p = ex.val_node(fid, *ptr);
                    let v = ex.val_node(fid, *value);
                    ex.sys
                        .constraints
                        .push(Constraint::Store { ptr: p, rhs: v });
                }
                Inst::Phi { ty, incoming } if *ty == Ty::Ptr => {
                    let n = ex.node(NodeKey::Val(fid, Value::Inst(id)));
                    for (_, v) in incoming {
                        let s = ex.val_node(fid, *v);
                        ex.sys.constraints.push(Constraint::Copy { lhs: n, rhs: s });
                    }
                }
                Inst::Select { t, f: fv, ty, .. } if *ty == Ty::Ptr => {
                    let n = ex.node(NodeKey::Val(fid, Value::Inst(id)));
                    for v in [t, fv] {
                        let s = ex.val_node(fid, *v);
                        ex.sys.constraints.push(Constraint::Copy { lhs: n, rhs: s });
                    }
                }
                Inst::Cast { kind, val, to } if *to == Ty::Ptr => {
                    let n = ex.node(NodeKey::Val(fid, Value::Inst(id)));
                    let rhs = match kind {
                        // int-to-ptr: unknown provenance.
                        CastKind::IntToPtr => usrc,
                        _ => ex.val_node(fid, *val),
                    };
                    ex.sys.constraints.push(Constraint::Copy { lhs: n, rhs });
                }
                Inst::Memcpy { dst, src, .. } => {
                    // `*dst ⊇ *src` via a temporary.
                    let d = ex.val_node(fid, *dst);
                    let s = ex.val_node(fid, *src);
                    let tmp = ex.node(NodeKey::Val(fid, Value::Inst(id)));
                    ex.sys
                        .constraints
                        .push(Constraint::Load { lhs: tmp, ptr: s });
                    ex.sys
                        .constraints
                        .push(Constraint::Store { ptr: d, rhs: tmp });
                }
                Inst::Call {
                    callee,
                    args,
                    ret,
                    kind,
                } => match callee {
                    FuncRef::Internal(c) => {
                        let callee_f = m.func(*c);
                        let shift = match kind {
                            CallKind::Plain => 0usize,
                            _ => 1usize,
                        };
                        for (ai, a) in args.iter().enumerate() {
                            let pidx = ai + shift;
                            if callee_f
                                .params
                                .get(pidx)
                                .map(|p| p.ty == Ty::Ptr)
                                .unwrap_or(false)
                            {
                                let pn = ex.node(NodeKey::Val(*c, Value::Arg(pidx as u32)));
                                let an = ex.val_node(fid, *a);
                                ex.sys
                                    .constraints
                                    .push(Constraint::Copy { lhs: pn, rhs: an });
                            }
                        }
                        if *ret == Some(Ty::Ptr) {
                            let n = ex.node(NodeKey::Val(fid, Value::Inst(id)));
                            let rn = ex.node(NodeKey::Ret(*c));
                            ex.sys
                                .constraints
                                .push(Constraint::Copy { lhs: n, rhs: rn });
                        }
                    }
                    FuncRef::External(_) => {
                        // Externals may retain/return unknown pointers.
                        for a in args {
                            if matches!(a, Value::Inst(_) | Value::Arg(_) | Value::Global(_)) {
                                // Only pointer-ish operands matter; since
                                // we cannot see the external's behaviour,
                                // flood the contents of whatever the
                                // argument may point at.
                                let an = ex.val_node(fid, *a);
                                ex.sys
                                    .constraints
                                    .push(Constraint::Store { ptr: an, rhs: usrc });
                            }
                        }
                        if *ret == Some(Ty::Ptr) {
                            let n = ex.node(NodeKey::Val(fid, Value::Inst(id)));
                            ex.sys
                                .constraints
                                .push(Constraint::Copy { lhs: n, rhs: usrc });
                        }
                    }
                },
                Inst::Ret { val: Some(v) } if f.ret == Some(Ty::Ptr) => {
                    let rn = ex.node(NodeKey::Ret(fid));
                    let vn = ex.val_node(fid, *v);
                    ex.sys
                        .constraints
                        .push(Constraint::Copy { lhs: rn, rhs: vn });
                }
                _ => {}
            }
        }
    }

    ex.sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;

    #[test]
    fn extracts_basic_constraints() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let a = b.alloca(8, "slot");
        let x = b.alloca(64, "x");
        b.store(Ty::Ptr, x, a); // *slot = x
        let l = b.load(Ty::Ptr, a); // l = *slot
        b.store(Ty::I64, Value::ConstInt(1), l);
        b.ret(None);
        b.finish();
        let sys = extract(&m);
        // Two allocas + universal object.
        assert_eq!(sys.objects.len(), 3);
        let addrs = sys
            .constraints
            .iter()
            .filter(|c| matches!(c, Constraint::AddrOf { .. }))
            .count();
        // Universal (2 seeds) + two allocas.
        assert_eq!(addrs, 4);
        assert!(sys
            .constraints
            .iter()
            .any(|c| matches!(c, Constraint::Load { .. })));
        assert!(sys
            .constraints
            .iter()
            .any(|c| matches!(c, Constraint::Store { .. })));
    }

    #[test]
    fn root_function_ptr_params_are_universal() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "root", vec![Ty::Ptr], None);
        b.store(Ty::I64, Value::ConstInt(0), b.arg(0));
        b.ret(None);
        b.finish();
        let sys = extract(&m);
        let pnode = sys.node_of(FunctionId(0), Value::Arg(0)).unwrap();
        assert!(sys.constraints.iter().any(|c| matches!(
            c,
            Constraint::Copy { lhs, rhs } if *lhs == pnode && *rhs == sys.universal_src
        )));
    }

    #[test]
    fn call_wires_args_to_params() {
        let mut m = Module::new("t");
        let callee = oraql_ir::builder::declare_function(&mut m, "callee", vec![Ty::Ptr], None);
        {
            let f = m.func_mut(callee);
            f.push_inst(
                oraql_ir::module::Function::ENTRY,
                Inst::Ret { val: None },
                None,
            );
        }
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(8, "x");
        b.call(callee, vec![x], None);
        b.ret(None);
        let main = b.finish();
        let sys = extract(&m);
        let arg_node = sys.node_of(main, x).unwrap();
        let param_node = sys.node_of(callee, Value::Arg(0)).unwrap();
        assert!(sys.constraints.iter().any(|c| matches!(
            c,
            Constraint::Copy { lhs, rhs } if *lhs == param_node && *rhs == arg_node
        )));
        // callee has a caller, so its param is not universal.
        assert!(!sys.constraints.iter().any(|c| matches!(
            c,
            Constraint::Copy { lhs, rhs } if *lhs == param_node && *rhs == sys.universal_src
        )));
    }
}
