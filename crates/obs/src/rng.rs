//! The repo's one splitmix64.
//!
//! Three harnesses grew their own copy of this mixer — the fault
//! injector's plan decisions, the property-test generator under
//! `tests/common`, and ad-hoc shuffles — and a fourth (the workload
//! generator `oraql-gen`) would have made the drift problem worse:
//! seeds are part of persisted artifacts (fault-plan specs, gen-plan
//! strings, manifest files), so two subtly different mixers silently
//! break "same seed, same behaviour" across tools. This module is the
//! single definition; everything else delegates.
//!
//! `oraql-obs` hosts it because it is the one crate every harness
//! already depends on and it has no dependencies of its own.

/// SplitMix64 — the tiny, high-quality, endian/platform independent
/// mixer (Steele et al.). Pure function: same input, same output,
/// everywhere.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded splitmix64 stream: the stateful face of [`splitmix64`],
/// shared by the property tests (`tests/common::Gen` re-exports it)
/// and the workload generator.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Starts a stream at `seed`. Two streams with the same seed yield
    /// identical sequences. The state is pre-advanced by one gamma so
    /// the stream is byte-compatible with the original `tests/common`
    /// generator this module absorbed — seeds baked into existing
    /// tests keep producing the exact cases they were tuned on.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`; `hi > lo` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` on `num` out of every `den` draws, in expectation.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// A uniformly drawn element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    pub fn bools(&mut self, len_lo: usize, len_hi: usize) -> Vec<bool> {
        let n = self.range_usize(len_lo, len_hi);
        (0..n).map(|_| self.bool()).collect()
    }

    /// A string of chars drawn from `alphabet`.
    pub fn string(&mut self, alphabet: &str, len_lo: usize, len_hi: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = self.range_usize(len_lo, len_hi);
        (0..n)
            .map(|_| chars[self.range_usize(0, chars.len())])
            .collect()
    }

    /// Deterministic in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = Gen::new(42);
        let mut b = Gen::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Gen::new(43);
        assert_ne!(Gen::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn stream_matches_raw_mixer() {
        // The stream is exactly "counter mode" over `splitmix64`, so a
        // seed's n-th draw can be reproduced without the struct.
        let seed = 0xfeed_beefu64;
        let mut g = Gen::new(seed);
        for n in 1..=16u64 {
            let raw = splitmix64(seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(n)));
            assert_eq!(g.next_u64(), raw);
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut g = Gen::new(7);
        for _ in 0..1000 {
            let v = g.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = g.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn chance_rate_is_roughly_right() {
        let mut g = Gen::new(1);
        let fired = (0..8000).filter(|_| g.chance(1, 8)).count();
        // 1/8 of 8000 = 1000; splitmix64 mixes well, allow ±20%.
        assert!((800..=1200).contains(&fired), "{fired}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Gen::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 should actually move something");
    }
}
