/root/repo/target/debug/deps/differential_interp-87fe6d552394def3.d: tests/differential_interp.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential_interp-87fe6d552394def3.rmeta: tests/differential_interp.rs tests/common/mod.rs Cargo.toml

tests/differential_interp.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
