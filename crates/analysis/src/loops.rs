//! Natural-loop detection over the dominator tree.

use crate::domtree::DomTree;
use oraql_ir::cfg;
use oraql_ir::module::Function;
use oraql_ir::value::BlockId;
use std::collections::HashSet;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Source blocks of the back edges.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<BlockId>,
    /// Index of the enclosing loop in the forest, if nested.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
}

/// All natural loops of a function, ordered outer-before-inner.
pub struct LoopForest {
    /// The loops; indices are referenced by [`Loop::parent`].
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects loops in `f` using dominance (`dt` must belong to `f`).
    pub fn build(f: &Function, dt: &DomTree) -> Self {
        // Find back edges: n -> h where h dominates n.
        let mut raw: Vec<(BlockId, Vec<BlockId>)> = Vec::new(); // (header, latches)
        for bi in 0..f.blocks.len() {
            let n = BlockId(bi as u32);
            for s in cfg::successors(f, n) {
                if dt.dominates(s, n) {
                    match raw.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(n),
                        None => raw.push((s, vec![n])),
                    }
                }
            }
        }

        // Compute loop bodies: backward flood from latches, stopping at
        // the header.
        let preds = cfg::predecessors(f);
        let mut loops: Vec<Loop> = raw
            .into_iter()
            .map(|(header, latches)| {
                let mut blocks: HashSet<BlockId> = HashSet::new();
                blocks.insert(header);
                let mut stack: Vec<BlockId> = latches.clone();
                while let Some(b) = stack.pop() {
                    if blocks.insert(b) {
                        for &p in &preds[b.0 as usize] {
                            stack.push(p);
                        }
                    }
                }
                Loop {
                    header,
                    latches,
                    blocks,
                    parent: None,
                    depth: 1,
                }
            })
            .collect();

        // Order outer loops first (larger bodies first), then nest.
        loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
        for i in 0..loops.len() {
            // The innermost enclosing loop is the smallest loop (latest in
            // the sorted order) containing this header, other than itself.
            let header = loops[i].header;
            let mut parent: Option<usize> = None;
            for (j, cand) in loops.iter().enumerate() {
                if j == i || !cand.blocks.contains(&header) {
                    continue;
                }
                if cand.blocks.len() <= loops[i].blocks.len() {
                    continue;
                }
                parent = match parent {
                    None => Some(j),
                    Some(p) if cand.blocks.len() < loops[p].blocks.len() => Some(j),
                    p => p,
                };
            }
            loops[i].parent = parent;
        }
        for i in 0..loops.len() {
            let mut d = 1;
            let mut p = loops[i].parent;
            while let Some(j) = p {
                d += 1;
                p = loops[j].parent;
            }
            loops[i].depth = d;
        }

        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.blocks.contains(&b))
            .max_by_key(|l| l.depth)
    }

    /// The unique preheader of a loop: the single predecessor of the
    /// header outside the loop. `None` when there are several (LICM then
    /// skips the loop).
    pub fn preheader(&self, f: &Function, l: &Loop) -> Option<BlockId> {
        let preds = cfg::predecessors(f);
        let outside: Vec<BlockId> = preds[l.header.0 as usize]
            .iter()
            .copied()
            .filter(|p| !l.blocks.contains(p))
            .collect();
        match outside.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Blocks outside the loop reachable directly from inside (exits).
    pub fn exit_blocks(&self, f: &Function, l: &Loop) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &b in &l.blocks {
            for s in cfg::successors(f, b) {
                if !l.blocks.contains(&s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, Ty, Value};

    #[test]
    fn single_loop_detected() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "l", vec![Ty::Ptr], None);
        let p = b.arg(0);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(8), |b, i| {
            let addr = b.gep_scaled(p, i, 8, 0);
            b.store(Ty::I64, i, addr);
        });
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dt = DomTree::build(f);
        let forest = LoopForest::build(f, &dt);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.depth, 1);
        assert!(l.blocks.contains(&BlockId(2)));
        assert!(!l.blocks.contains(&BlockId(3)));
        assert_eq!(forest.preheader(f, l), Some(Function::ENTRY));
        assert_eq!(forest.exit_blocks(f, l), vec![BlockId(3)]);
    }

    #[test]
    fn nested_loops() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "n", vec![Ty::Ptr], None);
        let p = b.arg(0);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |b, i| {
            b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |b, j| {
                let x = b.mul(i, Value::ConstInt(4));
                let idx = b.add(x, j);
                let addr = b.gep_scaled(p, idx, 8, 0);
                b.store(Ty::I64, idx, addr);
            });
        });
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dt = DomTree::build(f);
        let forest = LoopForest::build(f, &dt);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loops.iter().find(|l| l.depth == 1).unwrap();
        let inner = forest.loops.iter().find(|l| l.depth == 2).unwrap();
        assert!(outer.blocks.len() > inner.blocks.len());
        assert!(outer.blocks.contains(&inner.header));
        assert_eq!(
            inner.parent.map(|i| forest.loops[i].header),
            Some(outer.header)
        );
    }

    #[test]
    fn no_loops_in_straightline() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "s", vec![], None);
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dt = DomTree::build(f);
        let forest = LoopForest::build(f, &dt);
        assert!(forest.loops.is_empty());
        assert!(forest.innermost_containing(Function::ENTRY).is_none());
    }

    #[test]
    fn innermost_containing_picks_deepest() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "n", vec![Ty::Ptr], None);
        let p = b.arg(0);
        let mut inner_body = None;
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |b, _| {
            b.counted_loop(Value::ConstInt(0), Value::ConstInt(4), |b, j| {
                inner_body = Some(b.current_block());
                let addr = b.gep_scaled(p, j, 8, 0);
                b.store(Ty::I64, j, addr);
            });
        });
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dt = DomTree::build(f);
        let forest = LoopForest::build(f, &dt);
        let l = forest.innermost_containing(inner_body.unwrap()).unwrap();
        assert_eq!(l.depth, 2);
    }
}
