//! Runtime values.

use oraql_ir::types::Ty;

/// A value held in a virtual register during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum RtVal {
    /// Integer (all integer widths are held sign-extended in 64 bits;
    /// truncation happens at stores and explicit `Trunc` casts).
    I(i64),
    /// 64-bit float (F32 values are held widened).
    F(f64),
    /// Pointer (byte address in the VM's flat address space).
    P(u64),
    /// Integer vector.
    VI(Vec<i64>),
    /// Float vector.
    VF(Vec<f64>),
}

impl RtVal {
    /// Integer content, or an error string.
    pub fn as_i(&self) -> Result<i64, String> {
        match self {
            RtVal::I(x) => Ok(*x),
            other => Err(format!("expected int, got {other:?}")),
        }
    }

    /// Float content.
    pub fn as_f(&self) -> Result<f64, String> {
        match self {
            RtVal::F(x) => Ok(*x),
            other => Err(format!("expected float, got {other:?}")),
        }
    }

    /// Pointer content.
    pub fn as_p(&self) -> Result<u64, String> {
        match self {
            RtVal::P(x) => Ok(*x),
            other => Err(format!("expected pointer, got {other:?}")),
        }
    }

    /// The zero/default value of a type (used for undef materialization
    /// in tests; the interpreter proper traps on undef reads).
    pub fn zero_of(ty: Ty) -> RtVal {
        match ty {
            Ty::F32 | Ty::F64 => RtVal::F(0.0),
            Ty::Ptr => RtVal::P(0),
            Ty::VecI64(n) => RtVal::VI(vec![0; n as usize]),
            Ty::VecF64(n) => RtVal::VF(vec![0.0; n as usize]),
            _ => RtVal::I(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(RtVal::I(3).as_i().unwrap(), 3);
        assert_eq!(RtVal::F(2.5).as_f().unwrap(), 2.5);
        assert_eq!(RtVal::P(0x1000).as_p().unwrap(), 0x1000);
        assert!(RtVal::I(3).as_f().is_err());
        assert!(RtVal::F(1.0).as_p().is_err());
    }

    #[test]
    fn zeros() {
        assert_eq!(RtVal::zero_of(Ty::I64), RtVal::I(0));
        assert_eq!(RtVal::zero_of(Ty::VecF64(4)), RtVal::VF(vec![0.0; 4]));
    }
}
