/root/repo/target/debug/deps/fig7_kernel_props-a8d67d613f9a8530.d: crates/bench/benches/fig7_kernel_props.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_kernel_props-a8d67d613f9a8530.rmeta: crates/bench/benches/fig7_kernel_props.rs Cargo.toml

crates/bench/benches/fig7_kernel_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
