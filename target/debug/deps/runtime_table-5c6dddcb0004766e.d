/root/repo/target/debug/deps/runtime_table-5c6dddcb0004766e.d: crates/bench/benches/runtime_table.rs

/root/repo/target/debug/deps/runtime_table-5c6dddcb0004766e: crates/bench/benches/runtime_table.rs

crates/bench/benches/runtime_table.rs:
