//! Loop deletion: removes loops that have become observably dead —
//! no side effects inside, no values used outside. This typically fires
//! after GVN/DSE have (with good alias information) gutted a loop's
//! stores, reproducing the paper's Quicksilver observation
//! (`# deleted loops` 2 → 55 under ORAQL).

use crate::manager::{Pass, PassCx};
use oraql_analysis::domtree::DomTree;
use oraql_analysis::loops::{Loop, LoopForest};
use oraql_ir::inst::{Inst, InstId};
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::value::BlockId;
use std::collections::HashSet;

/// The pass.
pub struct LoopDeletion;

impl Pass for LoopDeletion {
    fn name(&self) -> &'static str {
        "loop deletion"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let mut deleted = 0u64;
        // Recompute the forest after each deletion (block sets change).
        loop {
            let dt = DomTree::build(m.func(fid));
            let forest = LoopForest::build(m.func(fid), &dt);
            let mut deleted_one = false;
            for l in &forest.loops {
                if try_delete(m, fid, &forest, l) {
                    deleted += 1;
                    deleted_one = true;
                    break;
                }
            }
            if !deleted_one {
                break;
            }
        }
        cx.stat("loop deletion", "deleted loops", deleted);
    }
}

fn try_delete(m: &mut Module, fid: FunctionId, forest: &LoopForest, l: &Loop) -> bool {
    let f = m.func(fid);
    let Some(pre) = forest.preheader(f, l) else {
        return false;
    };
    let exits = forest.exit_blocks(f, l);
    let [exit] = exits.as_slice() else {
        return false;
    };
    let exit = *exit;

    // The exit block must not have phis (they would need incoming-edge
    // surgery) and must not be the header of an enclosing structure we
    // would confuse; requiring no phis is enough for our builder shapes.
    if f.blocks[exit.0 as usize]
        .insts
        .iter()
        .any(|&i| matches!(f.inst(i), Inst::Phi { .. }))
    {
        return false;
    }

    // No side effects inside the loop.
    let loop_insts: Vec<InstId> = l
        .blocks
        .iter()
        .flat_map(|bb| f.blocks[bb.0 as usize].insts.iter().copied())
        .collect();
    for &id in &loop_insts {
        match f.inst(id) {
            Inst::Store { .. } | Inst::Call { .. } | Inst::Print { .. } | Inst::Memcpy { .. } => {
                return false
            }
            _ => {}
        }
    }

    // No value defined inside the loop used outside it.
    let defined: HashSet<InstId> = loop_insts.iter().copied().collect();
    for bi in 0..f.blocks.len() {
        let bb = BlockId(bi as u32);
        if l.blocks.contains(&bb) {
            continue;
        }
        for &id in &f.blocks[bi].insts {
            let mut uses_loop_val = false;
            f.inst(id).for_each_operand(|v| {
                if let oraql_ir::value::Value::Inst(d) = v {
                    uses_loop_val |= defined.contains(&d);
                }
            });
            if uses_loop_val {
                return false;
            }
        }
    }

    // Delete: retarget the preheader around the loop, then gut the loop
    // blocks (they become unreachable stubs branching to the exit, which
    // keeps the CFG well-formed; the exit has no phis so its predecessor
    // list does not matter).
    let fm = m.func_mut(fid);
    let header = l.header;
    if let Some(t) = fm.terminator(pre) {
        match fm.inst_mut(t) {
            Inst::Br { target } if *target == header => *target = exit,
            Inst::CondBr {
                then_bb, else_bb, ..
            } => {
                if *then_bb == header {
                    *then_bb = exit;
                }
                if *else_bb == header {
                    *else_bb = exit;
                }
            }
            _ => return false,
        }
    } else {
        return false;
    }
    for &id in &loop_insts {
        fm.remove_inst(id);
    }
    for &bb in &l.blocks {
        fm.push_inst(bb, Inst::Br { target: exit }, None);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Ty, Value};
    use oraql_vm::Interpreter;

    fn run_pass(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            LoopDeletion.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    #[test]
    fn dead_loop_deleted() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(1000), |b, i| {
            let x = b.mul(i, i);
            let _ = b.add(x, Value::ConstInt(1)); // unused, pure
        });
        b.print("done", vec![]);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        let stats = run_pass(&mut m);
        assert_eq!(stats.get("loop deletion", "deleted loops"), 1);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
        assert!(after.stats.host_insts < before.stats.host_insts / 10);
    }

    #[test]
    fn loop_with_store_kept() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 8, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(10), |b, i| {
            b.store(Ty::I64, i, Value::Global(g));
        });
        let l = b.load(Ty::I64, Value::Global(g));
        b.print("{}", vec![l]);
        b.ret(None);
        b.finish();
        let stats = run_pass(&mut m);
        assert_eq!(stats.get("loop deletion", "deleted loops"), 0);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "9\n");
    }

    #[test]
    fn loop_whose_value_is_used_kept() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let iv = b.counted_loop(Value::ConstInt(0), Value::ConstInt(10), |_, _| {});
        // The induction value is observed after the loop.
        b.print("{}", vec![iv]);
        b.ret(None);
        b.finish();
        let stats = run_pass(&mut m);
        assert_eq!(stats.get("loop deletion", "deleted loops"), 0);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "10\n");
    }

    #[test]
    fn nested_dead_loops_all_deleted() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(50), |b, _| {
            b.counted_loop(Value::ConstInt(0), Value::ConstInt(50), |b, j| {
                let _ = b.mul(j, j);
            });
        });
        b.print("x", vec![]);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        let stats = run_pass(&mut m);
        // The outer loop (with the inner nest inside it) is dead as a
        // whole; deleting it takes the inner loop with it.
        assert!(stats.get("loop deletion", "deleted loops") >= 1);
        let out = Interpreter::run_main(&m).unwrap();
        assert_eq!(out.stdout, "x\n");
        // 2500 iterations of work are gone.
        assert!(out.stats.host_insts < before.stats.host_insts / 100);
    }
}
