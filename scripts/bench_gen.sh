#!/usr/bin/env sh
# Workload-generator benchmark (see docs/ARCHITECTURE.md §10).
#
# Composes the acceptance corpus (1000 seeded cases across all five
# motif families) and measures raw generation throughput plus the gated
# end-to-end suite wall clock at jobs 1 and jobs 4, asserting zero
# soundness violations along the way. Output path defaults to
# BENCH_gen.json in the repo root; override with ORAQL_BENCH_OUT.
set -eu
cd "$(dirname "$0")/.."

# Cargo runs benches with the package directory as cwd, so anchor the
# default output at the repo root via an absolute path.
ORAQL_BENCH_OUT="${ORAQL_BENCH_OUT:-$(pwd)/BENCH_gen.json}" \
    cargo bench --offline -p oraql-bench --bench gen_corpus
