//! Metadata attached to instructions and functions: source locations,
//! TBAA type tags, alias scopes and compilation targets.
//!
//! These correspond to the LLVM concepts the paper's analyses consume:
//! `!tbaa`, `!alias.scope`/`!noalias`, debug locations, and the
//! host/device split used for offload compilation (Section IV-E).

use crate::interner::StrId;

/// A source location (`file:line:col`), resolved against the module's
/// string interner. The ORAQL report (paper Fig. 3) prints these for
/// pessimistically answered queries when present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SrcLoc {
    /// Interned file name.
    pub file: StrId,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

/// A node in the TBAA type tree. Tag 0 is the root ("omnipotent char"):
/// it is compatible with everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TbaaTag(pub u32);

impl TbaaTag {
    /// The root tag, compatible with every other tag.
    pub const ROOT: TbaaTag = TbaaTag(0);
}

/// An alias scope. Accesses can be members of scopes and can declare a
/// `noalias` set of scopes they are known not to alias with — the IR-level
/// encoding `restrict` lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScopeId(pub u32);

/// Compilation target of a function. Offload programming models compile
/// one source into host and device parts; ORAQL can be restricted to one
/// of them via the `-opt-aa-target` analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Target {
    /// CPU-side code.
    #[default]
    Host,
    /// Accelerator-side code (CUDA / OpenMP-offload analogue).
    Device,
}

impl Target {
    /// Canonical lowercase name, used for `target=<substring>` matching.
    pub fn name(self) -> &'static str {
        match self {
            Target::Host => "host",
            Target::Device => "device",
        }
    }
}

/// Per-access metadata carried by loads, stores and memcpys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessMeta {
    /// TBAA type tag of the access, if any.
    pub tbaa: Option<TbaaTag>,
    /// Scopes this access is a member of.
    pub scopes: Vec<ScopeId>,
    /// Scopes this access is known not to alias.
    pub noalias: Vec<ScopeId>,
}

impl AccessMeta {
    /// Metadata with only a TBAA tag.
    pub fn tbaa(tag: TbaaTag) -> Self {
        AccessMeta {
            tbaa: Some(tag),
            ..Default::default()
        }
    }

    /// True when no metadata is attached at all.
    pub fn is_empty(&self) -> bool {
        self.tbaa.is_none() && self.scopes.is_empty() && self.noalias.is_empty()
    }
}

/// Module-level TBAA type tree: `parent[tag] = parent tag`, with the root
/// being its own parent.
#[derive(Debug, Clone, Default)]
pub struct TbaaTree {
    parents: Vec<u32>,
    names: Vec<String>,
}

impl TbaaTree {
    /// Creates a tree containing only the root tag.
    pub fn new() -> Self {
        TbaaTree {
            parents: vec![0],
            names: vec!["root".to_owned()],
        }
    }

    /// Adds a new tag under `parent` and returns it.
    pub fn add(&mut self, name: &str, parent: TbaaTag) -> TbaaTag {
        assert!((parent.0 as usize) < self.parents.len(), "unknown parent");
        let id = TbaaTag(self.parents.len() as u32);
        self.parents.push(parent.0);
        self.names.push(name.to_owned());
        id
    }

    /// Human-readable name of a tag.
    pub fn name(&self, tag: TbaaTag) -> &str {
        &self.names[tag.0 as usize]
    }

    /// True if `anc` is `tag` or an ancestor of `tag`.
    pub fn is_ancestor_or_self(&self, anc: TbaaTag, tag: TbaaTag) -> bool {
        let mut cur = tag.0;
        loop {
            if cur == anc.0 {
                return true;
            }
            let p = self.parents[cur as usize];
            if p == cur {
                return false;
            }
            cur = p;
        }
    }

    /// TBAA compatibility: two tags may refer to the same memory iff one
    /// is an ancestor of the other (LLVM's rule for scalar TBAA nodes).
    pub fn compatible(&self, a: TbaaTag, b: TbaaTag) -> bool {
        self.is_ancestor_or_self(a, b) || self.is_ancestor_or_self(b, a)
    }

    /// Number of tags including the root.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Always false: the root tag exists from construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tbaa_tree_compatibility() {
        let mut t = TbaaTree::new();
        let any = TbaaTag::ROOT;
        let int = t.add("int", any);
        let flt = t.add("double", any);
        let ptr = t.add("any pointer", any);
        let dptr = t.add("double*", ptr);

        assert!(t.compatible(int, int));
        assert!(t.compatible(any, int));
        assert!(t.compatible(int, any));
        assert!(!t.compatible(int, flt));
        assert!(t.compatible(ptr, dptr));
        assert!(!t.compatible(dptr, flt));
    }

    #[test]
    fn tbaa_names() {
        let mut t = TbaaTree::new();
        let int = t.add("int", TbaaTag::ROOT);
        assert_eq!(t.name(int), "int");
        assert_eq!(t.name(TbaaTag::ROOT), "root");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn access_meta_emptiness() {
        assert!(AccessMeta::default().is_empty());
        assert!(!AccessMeta::tbaa(TbaaTag::ROOT).is_empty());
    }

    #[test]
    fn target_names() {
        assert_eq!(Target::Host.name(), "host");
        assert_eq!(Target::Device.name(), "device");
    }
}
