/root/repo/target/debug/deps/oraql_bench-83c113f48d181683.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liboraql_bench-83c113f48d181683.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
