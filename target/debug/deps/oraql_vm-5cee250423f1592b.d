/root/repo/target/debug/deps/oraql_vm-5cee250423f1592b.d: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs Cargo.toml

/root/repo/target/debug/deps/liboraql_vm-5cee250423f1592b.rmeta: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/decode.rs:
crates/vm/src/interp.rs:
crates/vm/src/machine.rs:
crates/vm/src/memory.rs:
crates/vm/src/rtval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
