//! Quicksilver — proxy for the Mercury Monte Carlo transport code
//! (paper §V-D): branchy control flow and many small latency-bound
//! loads. Fully optimistic; the headline effect is in the *statistics*:
//! with (almost) perfect alias information DSE deletes the tally
//! scratch stores, whole bookkeeping loops die (2 → 55 deleted loops in
//! the paper), and GVN removes hundreds of redundant facet loads.

use crate::toolkit::*;
use oraql::compile::Scope;
use oraql::TestCase;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::inst::CmpPred;
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::value::Value;
use oraql_ir::Ty;

/// Particles tracked.
const PARTICLES: i64 = 24;
/// Facet-table entries.
const FACETS: i64 = 32;
/// Number of bookkeeping (scratch-tally) kernels.
const SCRATCH_KERNELS: usize = 8;

fn build() -> Module {
    let mut m = Module::new("quicksilver");
    let ctx = make_ctx(
        &mut m,
        "qs",
        &[
            ("px", 8 * PARTICLES as u64),
            ("pe", 8 * PARTICLES as u64),
            ("facets", 8 * FACETS as u64),
            ("tally", 8 * PARTICLES as u64),
        ],
        &[],
    );

    // The segment-tracking kernel: branchy, redundant facet loads that
    // GVN can only merge with optimistic answers.
    let track = {
        let mut b = FunctionBuilder::new(&mut m, "cycle_tracking", vec![Ty::I64, Ty::Ptr], None);
        b.set_outlined(true);
        b.set_src_file("CycleTracking");
        b.set_loc("CycleTracking", 210, 7);
        let tid = b.arg(0);
        let cp = b.arg(1);
        let tag = ctx.tag_data;
        let threads = 4i64;
        let (lo, hi) = chunk_bounds(&mut b, tid, PARTICLES, threads);
        b.counted_loop(lo, hi, |b, i| {
            let px = dptr(b, &ctx, cp, "px");
            let pe = dptr(b, &ctx, cp, "pe");
            let facets = dptr(b, &ctx, cp, "facets");
            let tally = dptr(b, &ctx, cp, "tally");
            let pxi = b.gep_scaled(px, i, 8, 0);
            let x = b.load_tbaa(Ty::F64, pxi, tag);
            let fi = b.rem(i, Value::ConstInt(FACETS));
            let fpi = b.gep_scaled(facets, fi, 8, 0);
            // Redundant loads of the same facet interleaved with tally
            // stores: conservatively pinned, optimistically merged.
            let f1 = b.load_tbaa(Ty::F64, fpi, tag);
            let ti = b.gep_scaled(tally, i, 8, 0);
            let sig = b.fmul(x, f1);
            let neg = b.fmul(sig, Value::const_f64(-0.125));
            let d1 = b.call_external("exp", vec![neg], Some(Ty::F64)).unwrap();
            b.store_tbaa(Ty::F64, d1, ti, tag);
            let f2 = b.load_tbaa(Ty::F64, fpi, tag);
            let pei = b.gep_scaled(pe, i, 8, 0);
            let e = b.load_tbaa(Ty::F64, pei, tag);
            let d2 = b.fmul(e, f2);
            // Branchy absorption/scatter decision.
            let c = b.cmp(CmpPred::Gt, Ty::F64, f2, Value::const_f64(1.0));
            let absorb = b.new_block();
            let scatter = b.new_block();
            let join = b.new_block();
            b.cond_br(c, absorb, scatter);
            b.switch_to(absorb);
            let ax = b.fmul(x, Value::const_f64(0.5));
            b.store_tbaa(Ty::F64, ax, pxi, tag);
            b.br(join);
            b.switch_to(scatter);
            let sx = b.fadd(x, Value::const_f64(0.125));
            b.store_tbaa(Ty::F64, sx, pxi, tag);
            b.br(join);
            b.switch_to(join);
            // Post-branch segment bookkeeping: the facet and tally are
            // re-loaded after the px store. Only GVN's dominance-based
            // walk (with optimistic answers past the branchy stores) can
            // merge these with the loads above.
            let f3 = b.load_tbaa(Ty::F64, fpi, tag);
            let e2 = b.load_tbaa(Ty::F64, pei, tag);
            let d3 = b.fmul(e2, f3);
            let both = b.fadd(d2, d3);
            let cur = b.load_tbaa(Ty::F64, ti, tag);
            let s = b.fadd(cur, both);
            b.store_tbaa(Ty::F64, s, ti, tag);
        });
        b.ret(None);
        b.finish()
    };

    // Bookkeeping kernels: fill a function-local scratch tally whose
    // pointer escapes into a local slot (so only (almost) perfect alias
    // information can prove the stores dead and delete the loops).
    let esc = escape_helper(&mut m);
    let mut scratch_kernels: Vec<FunctionId> = Vec::new();
    for k in 0..SCRATCH_KERNELS {
        let mut b = FunctionBuilder::new(&mut m, &format!("coral_tally_{k}"), vec![Ty::Ptr], None);
        b.set_src_file("CycleTracking");
        b.set_loc("CycleTracking", 400 + k as u32, 3);
        let cp = b.arg(0);
        let tag = ctx.tag_data;
        let scratch = b.alloca(8 * PARTICLES as u64, "scratch_tally");
        // Register the buffer with the (empty) bookkeeping API: the
        // address escapes, so BasicAA can no longer separate it from
        // the opaque dptr loads below — only (almost) perfect alias
        // information proves the tally stores dead.
        b.call(esc, vec![scratch], None);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(PARTICLES), |b, i| {
            let pe = dptr(b, &ctx, cp, "pe");
            let pei = b.gep_scaled(pe, i, 8, 0);
            let e = b.load_tbaa(Ty::F64, pei, tag);
            let w = b.fmul(e, Value::const_f64(0.25 + k as f64));
            let si = b.gep_scaled(scratch, i, 8, 0);
            b.store_tbaa(Ty::F64, w, si, tag); // never read anywhere
        });
        b.ret(None);
        scratch_kernels.push(b.finish());
    }

    let mut b = main_builder(&mut m, "main.cc");
    init_ctx(&mut b, &ctx);
    fill_array(&mut b, &ctx, "px", PARTICLES, 1.0, 0.1);
    fill_array(&mut b, &ctx, "pe", PARTICLES, 2.0, 0.05);
    fill_array(&mut b, &ctx, "facets", FACETS, 0.75, 0.02);
    fill_array(&mut b, &ctx, "tally", PARTICLES, 0.0, 0.0);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(2), |b, _| {
        b.parallel_region(track, vec![Value::Global(ctx.global)], 4);
        for &k in &scratch_kernels {
            call_kernel(b, k, &ctx);
        }
    });
    checksum(&mut b, &ctx, "tally", PARTICLES, "tally");
    checksum(&mut b, &ctx, "px", PARTICLES, "px");
    timing_epilogue(&mut b, "segments/s");
    b.ret(None);
    b.finish();
    m
}

/// The Quicksilver test case (manual LTO: whole module probed).
pub fn cases() -> Vec<TestCase> {
    let mut c = TestCase::new("quicksilver", build);
    c.scope = Scope::everything();
    c.ignore_patterns = standard_ignore_patterns();
    vec![c]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn builds_and_runs() {
        let m = build();
        oraql_ir::verify::assert_valid(&m);
        let out = Interpreter::run_main(&m).unwrap();
        assert!(out.stdout.contains("checksum(tally)="), "{}", out.stdout);
        assert!(out.stats.launches >= 2);
    }

    #[test]
    fn scratch_loops_survive_baseline_compilation() {
        // Conservatively the scratch stores must NOT be deleted (the
        // escaped pointer blinds the chain) — the instruction count of a
        // run must include the scratch work.
        let m = build();
        let out = Interpreter::run_main(&m).unwrap();
        // 8 kernels x 24 iterations x 2 cycles of real work.
        assert!(out.stats.stores > (SCRATCH_KERNELS as u64) * PARTICLES as u64);
    }
}
