//! Minimal offline stand-in for the `criterion` bench harness.
//!
//! The build environment is hermetic (no registry access), so the real
//! `criterion` crate cannot be resolved. This shim implements exactly
//! the API surface the `oraql-bench` targets use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by straightforward wall-clock sampling: each
//! benchmark runs one warm-up sample plus `sample_size` measured
//! samples and prints min/median/mean per iteration.
//!
//! The numbers are honest but unsophisticated (no outlier rejection, no
//! statistical regression); they exist so `cargo bench` keeps producing
//! the paper-figure tables and rough timings without network access.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup; only a tag here, every variant
/// behaves like per-iteration setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handle passed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on a fresh `setup()` value each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_samples(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up, also used to pick an iteration count that keeps each
    // sample around a few milliseconds without exploding total time.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<48} min {:>12} median {:>12} mean {:>12} ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples.len(),
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Top-level harness handle; one per `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_samples(id.as_ref(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_samples(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
