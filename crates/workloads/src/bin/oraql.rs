//! The ORAQL command-line driver.
//!
//! ```text
//! oraql --list
//! oraql --benchmark <name> [--strategy chunked|frequency] [--dump]
//!       [--jobs N] [--trace <file.jsonl>] [--interp decoded|tree]
//!       [--speculate-depth N] [--no-cross-case-dedup]
//!       [--store <journal>] [--no-store]
//!       [--server <addr>] [--no-server]
//!       [--fault-plan <spec>] [--probe-deadline-ms N]
//!       [--emit-sequence <file>]            # save the final decisions
//! oraql --benchmark <name> --replay <seq>   # compile+run a saved
//!                                           # sequence (or @file)
//! oraql --config <file>
//! oraql --all [--jobs N]
//! oraql trace --probes <trace.jsonl> [--spans <spans.jsonl>] ...
//! oraql gen --plan <spec> [--out DIR] [--run] ...
//! ```
//!
//! Runs the probing workflow on one (or all) of the registered proxy
//! benchmarks and prints the Fig. 4-style query statistics, the probing
//! effort, and (with `--dump`) the Fig. 3-style pessimistic-query
//! report.
//!
//! `--jobs N` (default 1) bounds the probe concurrency: `1` is the
//! sequential driver with byte-for-byte identical output to earlier
//! versions; `N > 1` probes speculatively and, with `--all`, runs up to
//! `N` benchmarks at once sharing one verdict cache. `--trace` writes
//! one JSONL event per probe answer and prints a per-case summary
//! table.
//!
//! `--speculate-depth N` (default 1) sizes the speculation DAG at
//! `--jobs > 1`: `0` disables speculation (shared caches only), `1`
//! speculates bisection siblings, `>= 2` additionally enqueues
//! grandchild hint probes derived from each possible parent outcome,
//! cancelling the subtrees the parent's answer invalidates.
//! `--no-cross-case-dedup` turns off the suite-global probe dedup
//! (in-flight digest claims plus the content-addressed executable
//! tier) that lets identical compiles across cases be paid for once.
//! Config keys `speculate_depth =` / `cross_case_dedup =` do the same;
//! the CLI wins. Neither affects `--jobs 1`, which stays byte-for-byte
//! identical to the sequential driver.
//!
//! `--store <journal>` attaches the crash-safe persistent verdict store
//! (`oraql-store`): probe verdicts are journaled across runs, so a warm
//! re-run answers probes without compiling. A `store = <path>` config
//! key does the same; `--no-store` overrides both.
//!
//! `--server <addr>` (host:port or `unix:<path>`) attaches the shared
//! verdict server (`oraql-served`) as a third cache tier behind the
//! local store: lookups that miss every local tier ask the daemon, and
//! computed verdicts are written through so concurrent drivers share
//! one probe corpus. If the daemon is unreachable the client's circuit
//! breaker fast-fails and the run falls back to the local tiers — a
//! dead server never fails a probe. A `server = <addr>` config key does
//! the same; `--no-server` overrides both.
//!
//! `--fault-plan <spec>` (e.g. `seed=42,vm-trap=1/16,compile-panic=1/32`)
//! arms the deterministic fault injector on the probe path — chaos
//! testing for the probe sandbox. Failed probes retry and then degrade
//! to pessimistic may-alias; counters are reported per run and a fault
//! summary is printed at exit. `--probe-deadline-ms N` puts each probe
//! attempt under a wall-clock watchdog (0 disables). Config keys
//! `fault_plan =` / `probe_deadline_ms =` do the same; the CLI wins.
//!
//! `--metrics-out <path>` writes the process-wide metrics registry
//! (counters, gauges, latency histograms from driver, VM, worker pool,
//! store, and server client) as a Prometheus-style exposition at exit
//! and prints an additive `--- metrics ---` summary section rendered
//! from the same snapshot. `--spans-out <path>` enables span tracing:
//! one JSONL line per `case > probe > compile|vm|verify|store|server`
//! span. Config keys `metrics_out =` / `spans_out =` do the same; the
//! CLI wins. Both are off by default, so default output is unchanged.
//!
//! `oraql trace` is the offline analyzer: it recomputes the Fig. 2 /
//! Fig. 4 / Fig. 6 tables, the cache-tier funnel, per-case latency
//! quantiles, and a span self-time profile from those JSONL artifacts
//! (see `oraql trace --help`).
//!
//! `oraql gen` materializes and runs seeded aliasing corpora with
//! ground truth by construction (`oraql-gen`; see `oraql gen --help`).
//! Generated case names (`gen:<plan>#<index>`) are first-class
//! benchmark names everywhere a registered name is accepted —
//! `--benchmark`, configs, `--replay` — and carry their label map: the
//! driver cross-checks every final verdict against it (the soundness
//! gate) unless `--no-gate` or `soundness_gate = false` disables it.

use oraql::config::Config;
use oraql::report::{render_report, render_trace_summary, DumpFlags};
use oraql::trace::TraceSink;
use oraql::{Driver, DriverOptions, DriverResult, Strategy, TestCase};
use oraql_workloads as workloads;

fn usage() -> ! {
    eprintln!(
        "usage: oraql --list\n       \
         oraql --benchmark <name> [--strategy chunked|frequency] [--dump] [--max-tests N]\n                \
         [--jobs N] [--trace <file.jsonl>] [--interp decoded|tree]\n                \
         [--speculate-depth N] [--no-cross-case-dedup]\n                \
         [--store <journal>] [--no-store]\n                \
         [--server <addr>] [--no-server]\n                \
         [--fault-plan <spec>] [--probe-deadline-ms N]\n                \
         [--metrics-out <file.prom>] [--spans-out <file.jsonl>]\n       \
         oraql --config <file>\n       \
         oraql --all [--jobs N]\n       \
         oraql trace --probes <trace.jsonl> [--spans <spans.jsonl>] [--help]\n       \
         oraql gen --plan <spec> [--out <dir>] [--run] [--no-gate] [--help]"
    );
    std::process::exit(2)
}

/// Fetches the value of `flag` or exits with a one-line error.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            eprintln!("missing value for {flag}");
            std::process::exit(2)
        }
    }
}

/// Fetches and parses the value of `flag` or exits with a one-line
/// error naming the flag and the expected shape.
fn parsed_flag<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str, want: &str) -> T {
    let v = flag_value(args, i, flag);
    match v.parse() {
        Ok(x) => x,
        Err(_) => {
            eprintln!("bad {flag} {v:?}: expected {want}");
            std::process::exit(2)
        }
    }
}

/// Compiles and runs one benchmark with a fixed decision sequence (the
/// paper's "program compiled with (almost) perfect alias information").
fn replay(name: &str, seq_arg: &str, interp: oraql_vm::InterpMode) -> i32 {
    let Some((case, _)) = prepare_case(name, None) else {
        eprintln!("unknown benchmark {name:?}; try --list");
        return 2;
    };
    let decisions = match oraql::Decisions::from_arg(seq_arg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bad sequence: {e}");
            return 2;
        }
    };
    let compiled = oraql::compile::compile(
        &*case.build,
        &oraql::compile::CompileOptions::with_oraql(decisions, case.scope.clone()),
    );
    let Some(main) = compiled.module.find_func("main") else {
        eprintln!("{name}: module has no main function");
        return 1;
    };
    let mut interp = oraql_vm::Interpreter::new(&compiled.module)
        .with_fuel(case.fuel)
        .with_mode(interp);
    match interp.run(main, vec![]) {
        Ok(_) => {
            print!("{}", interp.stdout());
            let Some(oraql_state) = compiled.oraql.as_ref() else {
                eprintln!("{name}: compile attached no ORAQL pass state");
                return 1;
            };
            let st = oraql_state.lock();
            eprintln!(
                "[oraql] replay: {} optimistic / {} pessimistic unique queries, {} insts",
                st.stats.unique_optimistic,
                st.stats.unique_pessimistic,
                interp.stats().total_insts()
            );
            0
        }
        Err(e) => {
            eprintln!("[oraql] replay failed: {e}");
            1
        }
    }
}

/// Looks up a registered case — or reconstructs a generated one from
/// its `gen:<plan>#<index>` name, together with its ground-truth label
/// map — and applies config-file overrides.
fn prepare_case(
    name: &str,
    cfg: Option<&Config>,
) -> Option<(TestCase, Option<std::sync::Arc<oraql::GroundTruth>>)> {
    let (mut case, truth) = match workloads::find_case(name) {
        Some(c) => (c, None),
        None => {
            let g = oraql_gen::resolve(name)?;
            (g.case, Some(std::sync::Arc::new(g.truth)))
        }
    };
    if let Some(cfg) = cfg {
        // Config overrides the registry defaults.
        if cfg.scope != oraql::compile::Scope::everything() {
            case.scope = cfg.scope.clone();
        }
        if !cfg.ignore.is_empty() {
            case.ignore_patterns = cfg.ignore.clone();
        }
        case.extra_references = cfg.references.clone();
        case.fuel = cfg.fuel;
        case.use_cfl = cfg.use_cfl;
    }
    Some((case, truth))
}

/// Prints one driver result in the report format; returns the exit code.
fn print_result(
    name: &str,
    r: &DriverResult,
    jobs: usize,
    dump: bool,
    emit_sequence: Option<&str>,
) -> i32 {
    let info = workloads::find_info(name);
    println!("== {name} ==");
    if let Some(i) = info {
        println!(
            "benchmark: {} | model: {} | files: {}",
            i.benchmark, i.model, i.source_files
        );
    }
    println!(
        "fully optimistic: {} | final sequence: {}",
        r.fully_optimistic,
        truncate(&r.decisions.render(), 72)
    );
    println!(
        "opt queries: {} unique / {} cached | pess queries: {} unique / {} cached",
        r.oraql.unique_optimistic,
        r.oraql.cached_optimistic,
        r.oraql.unique_pessimistic,
        r.oraql.cached_pessimistic
    );
    println!(
        "no-alias results: {} -> {} ({:+.1}%)",
        r.no_alias_original,
        r.no_alias_oraql,
        r.no_alias_delta_percent()
    );
    println!(
        "probing: {} compiles, {} tests run, {} cached, {} deduced",
        r.effort.compiles, r.effort.tests_run, r.effort.tests_cached, r.effort.tests_deduced
    );
    if jobs > 1 {
        // Extra parallel-mode counters; kept off the jobs=1 path so
        // sequential reports stay byte-identical to earlier versions.
        println!(
            "parallel: {} dec-cached ({} in-flight joins), {} speculative launched, \
             {} hints, {} cancelled, {} wasted",
            r.effort.tests_dec_cached,
            r.effort.inflight_joins,
            r.effort.spec_launched,
            r.effort.spec_hints,
            r.effort.spec_cancelled,
            r.effort.spec_wasted
        );
    }
    if !r.failures.is_quiet() {
        // Sandbox events only happen under injected faults or genuine
        // probe crashes; the line is omitted on healthy runs so their
        // output stays byte-identical to earlier versions.
        let f = &r.failures;
        println!(
            "sandbox: {} panics, {} deadlines, {} vm errors, {} mismatches, \
             {} store-corrupt, {} server-down, {} server-busy | {} retries, \
             {} quarantined to may-alias",
            f.panics,
            f.deadlines,
            f.vm_errors,
            f.output_mismatches,
            f.store_corrupt,
            f.server_down,
            f.server_busy,
            f.retries,
            f.quarantined
        );
    }
    println!(
        "executed instructions: {} -> {} | host cycles: {} -> {} | device cycles: {} -> {}",
        r.baseline_run.stats.total_insts(),
        r.final_run.stats.total_insts(),
        r.baseline_run.stats.host_cycles,
        r.final_run.stats.host_cycles,
        r.baseline_run.stats.device_cycles,
        r.final_run.stats.device_cycles,
    );
    if let Some(t) = &r.truth {
        // Only generated cases carry a label map; the line is absent on
        // registry benchmarks so their reports stay byte-identical.
        println!("ground truth: {t}");
    }
    if let Some(path) = emit_sequence {
        match std::fs::write(path, r.decisions.render()) {
            Ok(()) => println!("final sequence written to {path} (replay with --replay @{path})"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    if dump {
        println!("--- pessimistic query report ---");
        let text = render_report(
            &r.final_module,
            &r.queries,
            DumpFlags::pessimistic_only(),
            &r.pass_trace,
        );
        if text.is_empty() {
            println!("(no pessimistic queries)");
        } else {
            print!("{text}");
        }
    }
    0
}

fn run_one(
    name: &str,
    mut opts: DriverOptions,
    dump: bool,
    cfg: Option<&Config>,
    emit_sequence: Option<&str>,
    gate: bool,
) -> i32 {
    let Some((case, truth)) = prepare_case(name, cfg) else {
        eprintln!("unknown benchmark {name:?}; try --list");
        return 2;
    };
    if gate {
        opts.ground_truth = truth;
    }
    let jobs = opts.jobs;
    match Driver::run(&case, opts) {
        Ok(r) => print_result(name, &r, jobs, dump, emit_sequence),
        Err(e) => {
            eprintln!("{name}: driver failed: {e}");
            1
        }
    }
}

/// `--all`: every registered benchmark, sequential at `--jobs 1` and a
/// bounded-concurrency suite (shared verdict cache + speculation pool)
/// otherwise. Reports are printed in registry order either way.
fn run_all(opts: &DriverOptions, dump: bool, cfg: Option<&Config>) -> i32 {
    let cases: Vec<TestCase> = workloads::CASE_INFOS
        .iter()
        .filter_map(|info| prepare_case(info.name, cfg).map(|(c, _)| c))
        .collect();
    let results = oraql::run_suite(&cases, opts);
    let mut worst = 0;
    for (case, result) in cases.iter().zip(&results) {
        match result {
            Ok(r) => {
                worst = worst.max(print_result(&case.name, r, opts.jobs, dump, None));
            }
            Err(e) => {
                eprintln!("{}: driver failed: {e}", case.name);
                worst = worst.max(1);
            }
        }
        println!();
    }
    worst
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `oraql trace ...`: the offline analyzer over a run's JSONL
    // artifacts; no driver machinery is touched.
    if args.first().map(String::as_str) == Some("trace") {
        std::process::exit(workloads::analyze::run_cli(&args[1..]));
    }
    // `oraql gen ...`: the corpus generator / soundness-gate harness.
    if args.first().map(String::as_str) == Some("gen") {
        std::process::exit(workloads::gencli::run_cli(&args[1..]));
    }
    let mut benchmark: Option<String> = None;
    let mut config: Option<Config> = None;
    let mut opts = DriverOptions::default();
    let mut dump = false;
    let mut all = false;
    let mut emit_sequence: Option<String> = None;
    let mut replay_seq: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut store_path: Option<String> = None;
    let mut no_store = false;
    let mut server_addr: Option<String> = None;
    let mut no_server = false;
    let mut fault_plan: Option<String> = None;
    let mut probe_deadline_ms: Option<u64> = None;
    let mut metrics_out: Option<String> = None;
    let mut spans_out: Option<String> = None;
    let mut no_gate = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let flag = flag.as_str();
        match flag {
            "--list" => {
                for info in workloads::CASE_INFOS
                    .iter()
                    .chain(workloads::EXTRA_CASE_INFOS.iter())
                {
                    println!("{:20} {} ({})", info.name, info.benchmark, info.model);
                }
                return;
            }
            "--all" => all = true,
            "--dump" => dump = true,
            "--no-gate" => no_gate = true,
            "--benchmark" | "-b" => benchmark = Some(flag_value(&args, &mut i, flag)),
            "--strategy" | "-s" => {
                let v = flag_value(&args, &mut i, flag);
                opts.strategy = Strategy::parse(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2)
                });
            }
            "--emit-sequence" => emit_sequence = Some(flag_value(&args, &mut i, flag)),
            "--replay" => replay_seq = Some(flag_value(&args, &mut i, flag)),
            "--max-tests" => {
                opts.max_tests = parsed_flag(&args, &mut i, flag, "an integer probe budget");
            }
            "--jobs" | "-j" => {
                opts.jobs = parsed_flag(&args, &mut i, flag, "an integer >= 1");
                if opts.jobs < 1 {
                    eprintln!("bad {flag}: expected an integer >= 1");
                    std::process::exit(2)
                }
            }
            "--speculate-depth" => {
                opts.speculate_depth = parsed_flag(&args, &mut i, flag, "an integer depth");
            }
            "--no-cross-case-dedup" => opts.cross_case_dedup = false,
            "--trace" => trace_path = Some(flag_value(&args, &mut i, flag)),
            "--store" => store_path = Some(flag_value(&args, &mut i, flag)),
            "--no-store" => no_store = true,
            "--server" => server_addr = Some(flag_value(&args, &mut i, flag)),
            "--no-server" => no_server = true,
            "--fault-plan" => fault_plan = Some(flag_value(&args, &mut i, flag)),
            "--metrics-out" => metrics_out = Some(flag_value(&args, &mut i, flag)),
            "--spans-out" => spans_out = Some(flag_value(&args, &mut i, flag)),
            "--probe-deadline-ms" => {
                probe_deadline_ms = Some(parsed_flag(&args, &mut i, flag, "a millisecond count"));
            }
            "--interp" => {
                let v = flag_value(&args, &mut i, flag);
                opts.interp = oraql_vm::InterpMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("bad --interp {v:?}: expected decoded|tree");
                    std::process::exit(2)
                });
            }
            "--config" | "-c" => {
                let path = flag_value(&args, &mut i, flag);
                let cfg = Config::load(&path).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2)
                });
                opts.strategy = cfg.strategy;
                opts.max_tests = cfg.max_tests;
                opts.interp = cfg.interp;
                opts.speculate_depth = cfg.speculate_depth;
                opts.cross_case_dedup = cfg.cross_case_dedup;
                benchmark = Some(cfg.benchmark.clone());
                dump |= cfg.dump;
                config = Some(cfg);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    opts.trace_passes = dump;
    let sink = trace_path.as_deref().map(|p| {
        TraceSink::to_file(p).unwrap_or_else(|e| {
            eprintln!("cannot open trace file {p}: {e}");
            std::process::exit(2)
        })
    });
    opts.trace = sink.clone();

    // CLI --metrics-out / --spans-out win over the config keys. The
    // span sink streams to its file as spans close; the metrics
    // exposition is written once at exit.
    let metrics_out = metrics_out.or_else(|| config.as_ref().and_then(|c| c.metrics_out.clone()));
    let spans_out = spans_out.or_else(|| config.as_ref().and_then(|c| c.spans_out.clone()));
    let spans = spans_out.as_deref().map(|p| {
        oraql_obs::SpanSink::to_file(std::path::Path::new(p)).unwrap_or_else(|e| {
            eprintln!("cannot open spans file {p}: {e}");
            std::process::exit(2)
        })
    });
    opts.spans = spans.clone();
    // Registry baseline, so the printed section reflects this run even
    // if the process (e.g. under a test harness) did earlier work.
    let snap0 = oraql_obs::global().snapshot();

    // CLI --store wins over the config's `store =` key; --no-store
    // disables both.
    let store_path = if no_store {
        None
    } else {
        store_path.or_else(|| config.as_ref().and_then(|c| c.store.clone()))
    };
    let store = store_path.as_deref().map(|p| match oraql::Store::open(p) {
        Ok(s) => std::sync::Arc::new(s),
        Err(e) => {
            eprintln!("cannot open verdict store {p}: {e}");
            std::process::exit(2)
        }
    });
    opts.store = store.clone();

    // CLI --server wins over the config's `server =` key; --no-server
    // disables both. Dialing is lazy, so a dead daemon costs nothing
    // until the first probe misses every local tier.
    let server_addr = if no_server {
        None
    } else {
        server_addr.or_else(|| config.as_ref().and_then(|c| c.server.clone()))
    };
    let server = server_addr
        .as_deref()
        .map(|addr| std::sync::Arc::new(oraql::served::Client::new(addr)));
    opts.server = server.clone();

    // CLI --fault-plan / --probe-deadline-ms win over the config keys.
    let fault_plan = fault_plan.or_else(|| config.as_ref().and_then(|c| c.fault_plan.clone()));
    let injector = fault_plan.as_deref().map(|spec| {
        let plan = oraql::FaultPlan::parse(spec).unwrap_or_else(|e| {
            eprintln!("bad --fault-plan: {e}");
            std::process::exit(2)
        });
        // Injected panics are expected noise under a fault plan; keep
        // their backtrace banners off stderr.
        oraql::faults::quiet_injected_panics();
        std::sync::Arc::new(oraql::FaultInjector::new(plan))
    });
    opts.faults = injector.clone();
    opts.probe_deadline = probe_deadline_ms
        .or_else(|| config.as_ref().map(|c| c.probe_deadline_ms))
        .filter(|&ms| ms > 0)
        .map(std::time::Duration::from_millis);

    // `--no-gate` wins over the config's `soundness_gate` key (default
    // on). The gate only ever has labels to check on generated cases.
    let gate = !no_gate && config.as_ref().is_none_or(|c| c.soundness_gate);

    let code = if let (Some(name), Some(seq)) = (&benchmark, &replay_seq) {
        replay(name, seq, opts.interp)
    } else if all {
        run_all(&opts, dump, config.as_ref())
    } else if let Some(name) = benchmark {
        run_one(
            &name,
            opts.clone(),
            dump,
            config.as_ref(),
            emit_sequence.as_deref(),
            gate,
        )
    } else {
        usage()
    };

    if let (Some(sink), Some(path)) = (&sink, &trace_path) {
        let dropped = sink.flush();
        if dropped > 0 {
            eprintln!("warning: {dropped} probe trace lines lost writing {path}");
        }
        println!("--- probe trace summary ({path}) ---");
        print!("{}", render_trace_summary(&sink.events()));
    }
    if let (Some(store), Some(path)) = (&store, &store_path) {
        let _ = store.sync();
        println!("--- verdict store ({path}) ---");
        println!("store: {}", store.stats());
    }
    if let (Some(server), Some(addr)) = (&server, &server_addr) {
        println!("--- verdict server ({addr}) ---");
        println!("client: {}", server.stats());
    }
    if let (Some(inj), Some(spec)) = (&injector, &fault_plan) {
        println!("--- fault injection ({spec}) ---");
        for (site, occurrences, fired) in inj.summary() {
            println!(
                "{:20} {occurrences:>8} drawn {fired:>8} fired",
                site.as_str()
            );
        }
        println!("total faults fired: {}", inj.total_fired());
    }
    if let (Some(spans), Some(path)) = (&spans, &spans_out) {
        let dropped = spans.flush();
        if dropped > 0 {
            eprintln!("warning: {dropped} span lines lost writing {path}");
        }
        println!("--- spans ({path}) ---");
        println!("spans recorded: {}", spans.events().len());
    }
    if let Some(path) = &metrics_out {
        let snap = oraql_obs::global().snapshot();
        if let Err(e) = std::fs::write(path, snap.render()) {
            eprintln!("cannot write metrics file {path}: {e}");
        }
        println!("--- metrics ({path}) ---");
        print!("{}", render_metrics_section(&snap.delta(&snap0)));
    }
    std::process::exit(code);
}

/// The end-of-run metrics summary, rendered purely from a registry
/// snapshot delta — the human-readable face of the same numbers the
/// exposition file carries.
fn render_metrics_section(d: &oraql_obs::Snapshot) -> String {
    let c = |name: &str| d.counters.get(name).copied().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "probes: {} total | executed {} exe-cache {} dec-cache {} store {} server {} deduced {} faulted {}\n",
        c("oraql_driver_probes_total"),
        c("oraql_driver_probe_executed_total"),
        c("oraql_driver_probe_exe_cache_total"),
        c("oraql_driver_probe_dec_cache_total"),
        c("oraql_driver_probe_store_total"),
        c("oraql_driver_probe_server_total"),
        c("oraql_driver_probe_deduced_total"),
        c("oraql_driver_probe_faulted_total"),
    ));
    out.push_str(&format!(
        "funnel: dec-cache {} -> store-dec {} -> server-dec {} -> compile {} -> exe-cache {} -> store-exe {} -> server-exe {} -> vm {}\n",
        c("oraql_driver_funnel_dec_cache_hits_total"),
        c("oraql_driver_funnel_store_dec_hits_total"),
        c("oraql_driver_funnel_server_dec_hits_total"),
        c("oraql_driver_funnel_compiles_total"),
        c("oraql_driver_funnel_exe_cache_hits_total"),
        c("oraql_driver_funnel_store_exe_hits_total"),
        c("oraql_driver_funnel_server_exe_hits_total"),
        c("oraql_driver_funnel_vm_runs_total"),
    ));
    out.push_str(&format!(
        "speculation: {} launched, {} hints, {} cancelled, {} wasted | dedup: {} in-flight joins, {} content-exe hits\n",
        c("oraql_driver_speculation_launched_total"),
        c("oraql_driver_speculation_hints_total"),
        c("oraql_driver_speculation_cancelled_total"),
        c("oraql_driver_speculation_wasted_total"),
        c("oraql_driver_funnel_inflight_joins_total"),
        c("oraql_driver_funnel_content_exe_hits_total"),
    ));
    out.push_str(&format!(
        "vm: {} runs, {} insts, {} fuel refunds, {} decode lowerings\n",
        c("oraql_vm_runs_total"),
        c("oraql_vm_insts_total"),
        c("oraql_vm_fuel_refunds_total"),
        c("oraql_vm_decode_lowerings_total"),
    ));
    out.push_str(&format!(
        "pool: {} jobs, {} panics, {} respawns | store: {} appends, {} fsyncs | retries {} quarantined {}\n",
        c("oraql_pool_jobs_submitted_total"),
        c("oraql_pool_panics_total"),
        c("oraql_pool_respawns_total"),
        c("oraql_store_appends_total"),
        c("oraql_store_fsyncs_total"),
        c("oraql_driver_retries_total"),
        c("oraql_driver_quarantined_total"),
    ));
    if let Some(h) = d.histograms.get("oraql_driver_probe_micros") {
        out.push_str(&format!(
            "probe latency (µs): p50 {} p90 {} p99 {} mean {:.1} ({} samples)\n",
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.mean(),
            h.count
        ));
    }
    out
}
