/root/repo/target/debug/deps/fig3_report-5d20f9fbf3104bec.d: crates/bench/benches/fig3_report.rs

/root/repo/target/debug/deps/fig3_report-5d20f9fbf3104bec: crates/bench/benches/fig3_report.rs

crates/bench/benches/fig3_report.rs:
