//! Type-based alias analysis: two accesses whose TBAA tags lie on
//! unrelated branches of the type tree cannot alias (C/C++ strict
//! aliasing rules, LLVM's `TypeBasedAA`).

use crate::aa::{AliasAnalysis, QueryCtx};
use crate::location::{AliasResult, MemoryLocation};

/// TBAA over the module's type-tag tree.
#[derive(Default)]
pub struct TypeBasedAA {
    answered: u64,
}

impl TypeBasedAA {
    /// Creates the analysis.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AliasAnalysis for TypeBasedAA {
    fn name(&self) -> &'static str {
        "TypeBasedAA"
    }

    fn alias(&mut self, ctx: &QueryCtx<'_>, a: &MemoryLocation, b: &MemoryLocation) -> AliasResult {
        match (a.tbaa, b.tbaa) {
            (Some(ta), Some(tb)) if !ctx.module.tbaa.compatible(ta, tb) => {
                self.answered += 1;
                AliasResult::NoAlias
            }
            _ => AliasResult::MayAlias,
        }
    }

    fn stats(&self) -> Vec<(String, u64)> {
        vec![("answered".into(), self.answered)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::module::FunctionId;
    use oraql_ir::value::Value;
    use oraql_ir::{Module, TbaaTag};

    fn setup() -> (Module, TbaaTag, TbaaTag, TbaaTag) {
        let mut m = Module::new("t");
        let int = m.tbaa.add("int", TbaaTag::ROOT);
        let dbl = m.tbaa.add("double", TbaaTag::ROOT);
        let anyp = m.tbaa.add("any pointer", TbaaTag::ROOT);
        (m, int, dbl, anyp)
    }

    fn loc(tag: Option<TbaaTag>, arg: u32) -> MemoryLocation {
        let mut l = MemoryLocation::precise(Value::Arg(arg), 8);
        l.tbaa = tag;
        l
    }

    #[test]
    fn incompatible_tags_no_alias() {
        let (m, int, dbl, _) = setup();
        let mut aa = TypeBasedAA::new();
        let ctx = QueryCtx {
            module: &m,
            func: FunctionId(0),
            pass: "t",
        };
        assert_eq!(
            aa.alias(&ctx, &loc(Some(int), 0), &loc(Some(dbl), 1)),
            AliasResult::NoAlias
        );
    }

    #[test]
    fn compatible_or_missing_tags_defer() {
        let (m, int, _, anyp) = setup();
        let mut aa = TypeBasedAA::new();
        let ctx = QueryCtx {
            module: &m,
            func: FunctionId(0),
            pass: "t",
        };
        // Same tag: may alias (defer).
        assert_eq!(
            aa.alias(&ctx, &loc(Some(int), 0), &loc(Some(int), 1)),
            AliasResult::MayAlias
        );
        // Missing tag on one side: defer.
        assert_eq!(
            aa.alias(&ctx, &loc(None, 0), &loc(Some(anyp), 1)),
            AliasResult::MayAlias
        );
        // Root is compatible with everything.
        assert_eq!(
            aa.alias(&ctx, &loc(Some(TbaaTag::ROOT), 0), &loc(Some(int), 1)),
            AliasResult::MayAlias
        );
    }
}
