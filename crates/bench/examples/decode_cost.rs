//! Where does a short decoded-mode run spend its time? Splits a few
//! representative workloads into decode-all cost, interpreter
//! construction (global memory init), and cold vs. warm run time per
//! mode. Useful when tuning `decode_function` against small modules.

use oraql_vm::{InterpMode, Interpreter};
use std::time::Instant;

fn main() {
    for name in ["xsbench", "testsnap", "lulesh"] {
        let case = oraql_workloads::find_case(name).unwrap();
        let compiled =
            oraql::compile::compile(&*case.build, &oraql::compile::CompileOptions::baseline());
        let m = &compiled.module;
        let statics: usize = m.funcs.iter().map(|f| f.insts.len()).sum();
        let gbytes: u64 = m.globals.iter().map(|g| g.size).sum();
        // Time a full decode of every function via a throwaway run in
        // each mode, plus decode_function directly.
        let t = Instant::now();
        let mut total = 0usize;
        for _ in 0..20 {
            let bases = oraql_vm::memory::global_layout(m);
            for f in &m.funcs {
                let d = oraql_vm::decode::decode_function(m, f, &bases);
                total += d.blocks.len();
            }
        }
        let dec_us = t.elapsed().as_secs_f64() * 1e6 / 20.0;
        // Interpreter construction alone (memory init dominates).
        let t = Instant::now();
        for _ in 0..20 {
            let i = Interpreter::new(m).with_fuel(case.fuel);
            std::hint::black_box(&i);
        }
        let new_us = t.elapsed().as_secs_f64() * 1e6 / 20.0;
        for mode in [InterpMode::TreeWalk, InterpMode::Decoded] {
            let main = m.find_func("main").unwrap();
            let t = Instant::now();
            for _ in 0..20 {
                let mut i = Interpreter::new(m).with_fuel(case.fuel).with_mode(mode);
                i.run(main, vec![]).unwrap();
            }
            let us = t.elapsed().as_secs_f64() * 1e6 / 20.0;
            // Second run on the same interpreter: decode cache + memory
            // already warm, so this isolates pure execution.
            let mut i = Interpreter::new(m).with_fuel(case.fuel).with_mode(mode);
            i.run(main, vec![]).unwrap();
            let t = Instant::now();
            for _ in 0..20 {
                i.run(main, vec![]).unwrap();
            }
            let warm_us = t.elapsed().as_secs_f64() * 1e6 / 20.0;
            println!(
                "{name:10} {mode:?}: {us:.0} us/run, {warm_us:.0} us warm ({statics} static insts)"
            );
        }
        println!("{name:10} decode-all: {dec_us:.0} us ({total} blocks), new: {new_us:.0} us, globals: {gbytes} bytes");
    }
}
