/root/repo/target/release/deps/oraql-12877f6128f38d07.d: crates/workloads/src/bin/oraql.rs

/root/repo/target/release/deps/oraql-12877f6128f38d07: crates/workloads/src/bin/oraql.rs

crates/workloads/src/bin/oraql.rs:
