//! The "compiler": builds the conservative alias-analysis chain, appends
//! the ORAQL pass as the last resort, runs the standard optimization
//! pipeline and collects the statistics the evaluation reports.

use crate::pass::{OraqlAA, OraqlShared};
use crate::sequence::Decisions;
use oraql_analysis::andersen::AndersenAA;
use oraql_analysis::basic::BasicAA;
use oraql_analysis::globals::GlobalsAA;
use oraql_analysis::scoped::ScopedNoAliasAA;
use oraql_analysis::steens::SteensgaardAA;
use oraql_analysis::tbaa::TypeBasedAA;
use oraql_analysis::AAManager;
use oraql_ir::meta::Target;
use oraql_ir::module::{Function, Module};
use oraql_passes::{standard_pipeline, Stats};

/// Restriction of the ORAQL pass to parts of a compilation (§IV-E).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scope {
    /// Only answer queries in functions from these source files
    /// (`None` = all files).
    pub files: Option<Vec<String>>,
    /// Only answer queries in functions whose target name contains this
    /// substring (the `-opt-aa-target=<target-sub-string>` analogue).
    pub target: Option<String>,
}

impl Scope {
    /// No restriction.
    pub fn everything() -> Self {
        Scope::default()
    }

    /// Restrict to functions from the given source files.
    pub fn files(files: Vec<String>) -> Self {
        Scope {
            files: Some(files),
            target: None,
        }
    }

    /// Restrict to a compilation target by substring.
    pub fn target(sub: &str) -> Self {
        Scope {
            files: None,
            target: Some(sub.to_owned()),
        }
    }

    /// Does the scope cover function `f` of module `m`?
    pub fn contains(&self, m: &Module, f: &Function) -> bool {
        if let Some(files) = &self.files {
            let Some(src) = f.src_file else {
                return false;
            };
            let name = m.strings.resolve(src);
            if !files.iter().any(|want| name == want) {
                return false;
            }
        }
        if let Some(sub) = &self.target {
            if !f.target.name().contains(sub.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Options controlling one compilation.
#[derive(Clone)]
pub struct CompileOptions {
    /// Install the ORAQL pass with these decisions and scope.
    pub oraql: Option<(Decisions, Scope)>,
    /// Additionally register the CFL-style points-to analyses
    /// (Steensgaard + Andersen). Off by default, mirroring LLVM 14's
    /// default pipeline where the CFL analyses are disabled.
    pub use_cfl: bool,
    /// Record `-debug-pass=Executions`-style trace lines.
    pub trace_passes: bool,
    /// Verify IR after every pass (slow; tests enable it).
    pub verify_each: bool,
    /// Conservative analyses whose answers are *blocked* (treated as
    /// may-alias) — the paper's §VIII proposal for categorizing the
    /// effect of already-known queries.
    pub suppress: Vec<String>,
    /// What the ORAQL pass's optimistic answers mean (§VIII).
    pub optimism: crate::pass::OptimismKind,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            oraql: None,
            use_cfl: false,
            trace_passes: false,
            verify_each: false,
            suppress: Vec::new(),
            optimism: crate::pass::OptimismKind::NoAlias,
        }
    }
}

impl CompileOptions {
    /// Baseline compile (no ORAQL pass).
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Compile with the ORAQL pass installed.
    pub fn with_oraql(decisions: Decisions, scope: Scope) -> Self {
        CompileOptions {
            oraql: Some((decisions, scope)),
            ..Self::default()
        }
    }
}

/// Result of one compilation.
pub struct Compiled {
    /// The optimized module (run it with `oraql_vm::Interpreter`).
    pub module: Module,
    /// Pass statistics (`-stats` analogue), including machine-level
    /// counters appended after lowering.
    pub stats: Stats,
    /// Total no-alias answers across the whole analysis chain
    /// (the paper's "# No-Alias Results" column).
    pub no_alias_total: u64,
    /// Total alias queries issued.
    pub total_queries: u64,
    /// Handle to the ORAQL pass state, when installed.
    pub oraql: Option<OraqlShared>,
    /// Pass-execution trace when requested.
    pub pass_trace: Vec<String>,
}

/// Builds the conservative chain used by every compilation.
pub fn conservative_chain(m: &Module, use_cfl: bool) -> AAManager {
    let mut aa = AAManager::new();
    aa.add(Box::new(BasicAA::new()));
    aa.add(Box::new(ScopedNoAliasAA::new()));
    aa.add(Box::new(TypeBasedAA::new()));
    aa.add(Box::new(GlobalsAA::new(m)));
    if use_cfl {
        aa.add(Box::new(SteensgaardAA::new(m)));
        aa.add(Box::new(AndersenAA::new(m)));
    }
    aa
}

/// Compiles a freshly built module under the given options.
pub fn compile(build: &dyn Fn() -> Module, opts: &CompileOptions) -> Compiled {
    let mut module = build();
    let mut aa = conservative_chain(&module, opts.use_cfl);
    aa.suppressed = opts.suppress.iter().cloned().collect();
    let oraql = opts.oraql.as_ref().map(|(decisions, scope)| {
        let shared = crate::pass::new_shared_with(decisions.clone(), scope.clone(), opts.optimism);
        aa.add(Box::new(OraqlAA::new(shared.clone())));
        shared
    });

    let mut stats = Stats::new();
    let mut pm = standard_pipeline();
    pm.trace_executions = opts.trace_passes;
    pm.verify_each = opts.verify_each;
    pm.run(&mut module, &mut aa, &mut stats);

    // Machine-level statistics (asm printer / register allocation).
    for target in [Target::Host, Target::Device] {
        let insts = oraql_vm::machine::module_machine_insts(&module, target);
        let spills = oraql_vm::machine::module_spills(&module, target);
        if insts > 0 {
            stats.set(
                "asm printer",
                &format!("machine instructions generated ({})", target.name()),
                insts,
            );
            stats.set(
                "register allocation",
                &format!("register spills inserted ({})", target.name()),
                spills,
            );
        }
    }
    // Propagate AA-chain statistics into the registry.
    for (k, v) in aa.stats() {
        stats.set("alias analysis", &k, v);
    }
    stats.set("alias analysis", "no-alias results", aa.no_alias_total());
    stats.set("alias analysis", "total queries", aa.total_queries);

    Compiled {
        no_alias_total: aa.no_alias_total(),
        total_queries: aa.total_queries,
        module,
        stats,
        oraql,
        pass_trace: pm.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Ty, Value};
    use oraql_vm::Interpreter;

    /// p/q arrive aliased at runtime but look may-aliasing statically.
    fn trap_module() -> Module {
        let mut m = Module::new("t");
        let work = {
            let mut b = FunctionBuilder::new(&mut m, "work", vec![Ty::Ptr, Ty::Ptr], None);
            b.set_src_file("kernel.c");
            let p = b.arg(0);
            let q = b.arg(1);
            let l1 = b.load(Ty::I64, p);
            b.store(Ty::I64, Value::ConstInt(7), q);
            let l2 = b.load(Ty::I64, p);
            let s = b.add(l1, l2);
            b.print("{}", vec![s]);
            b.ret(None);
            b.finish()
        };
        let g = m.add_global("cell", 8, vec![1, 0, 0, 0, 0, 0, 0, 0], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.set_src_file("main.c");
        b.call(work, vec![Value::Global(g), Value::Global(g)], None);
        b.ret(None);
        b.finish();
        m
    }

    #[test]
    fn baseline_compile_preserves_semantics() {
        let c = compile(&trap_module, &CompileOptions::baseline());
        let out = Interpreter::run_main(&c.module).unwrap();
        assert_eq!(out.stdout, "8\n"); // 1 + 7
        assert!(c.oraql.is_none());
        assert!(c.total_queries > 0);
    }

    #[test]
    fn full_optimism_miscompiles_the_trap() {
        let c = compile(
            &trap_module,
            &CompileOptions::with_oraql(Decisions::all_optimistic(), Scope::everything()),
        );
        let out = Interpreter::run_main(&c.module).unwrap();
        // GVN forwarded the first load over the aliasing store.
        assert_eq!(out.stdout, "2\n"); // wrong: 1 + 1
        let st = c.oraql.unwrap();
        assert!(st.lock().stats.unique_optimistic > 0);
    }

    #[test]
    fn pessimistic_oraql_matches_baseline() {
        let c = compile(
            &trap_module,
            &CompileOptions::with_oraql(Decisions::all_pessimistic(), Scope::everything()),
        );
        let out = Interpreter::run_main(&c.module).unwrap();
        assert_eq!(out.stdout, "8\n");
        let st = c.oraql.unwrap();
        let stats = st.lock().stats;
        assert!(stats.unique_pessimistic > 0);
        assert_eq!(stats.unique_optimistic, 0);
    }

    #[test]
    fn scope_restricts_answers() {
        // Scope to a file that does not contain the dangerous function.
        let c = compile(
            &trap_module,
            &CompileOptions::with_oraql(
                Decisions::all_optimistic(),
                Scope::files(vec!["main.c".into()]),
            ),
        );
        let out = Interpreter::run_main(&c.module).unwrap();
        assert_eq!(out.stdout, "8\n"); // kernel.c untouched: correct
        let st = c.oraql.unwrap();
        assert!(st.lock().stats.out_of_scope > 0);
    }

    #[test]
    fn oraql_raises_no_alias_total() {
        let base = compile(&trap_module, &CompileOptions::baseline());
        let opt = compile(
            &trap_module,
            &CompileOptions::with_oraql(Decisions::all_optimistic(), Scope::everything()),
        );
        assert!(opt.no_alias_total > base.no_alias_total);
    }

    #[test]
    fn cfl_chain_compiles() {
        let opts = CompileOptions {
            use_cfl: true,
            verify_each: true,
            ..CompileOptions::default()
        };
        let c = compile(&trap_module, &opts);
        let out = Interpreter::run_main(&c.module).unwrap();
        assert_eq!(out.stdout, "8\n");
    }

    #[test]
    fn trace_records_pass_executions() {
        let opts = CompileOptions {
            trace_passes: true,
            ..CompileOptions::default()
        };
        let c = compile(&trap_module, &opts);
        assert!(c
            .pass_trace
            .iter()
            .any(|l| l.contains("Executing Pass 'GVN'")));
    }
}
