//! Probe-sandbox overhead benchmark.
//!
//! The hardened probe path wraps every attempt in `catch_unwind` (plus
//! an injector draw when a fault plan is armed, plus a watchdog thread
//! when a deadline is set). This bench quantifies what that costs on
//! *healthy* runs by driving the full workload suite three ways:
//!
//! * `faultfree` — the sandbox's fast path: no plan, no deadline. This
//!   is the configuration directly comparable to the pre-sandbox
//!   driver (whose suite wall clock is recorded as `cold_total_ms` in
//!   `BENCH_store.json`, written before the sandbox existed).
//! * `quiet_plan` — a fault plan armed whose rates are all zero: every
//!   attempt pays the injector draws but no fault ever fires.
//! * `deadline` — a generous watchdog deadline armed: every attempt
//!   runs on its own watchdog thread.
//!
//! Writes `$ORAQL_BENCH_OUT` (default `BENCH_faults.json`): the three
//! totals, the quiet-plan/fault-free ratio, and — when a prior
//! `BENCH_store.json` is readable — the fault-free total against that
//! pre-sandbox recording. Not a criterion bench: the JSON artifact is
//! the point, and each pass is a full driver-suite run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use oraql::{Driver, DriverOptions, FaultInjector, FaultPlan};

fn run_suite_pass(opts_for: impl Fn() -> DriverOptions, label: &str) -> f64 {
    let t = Instant::now();
    for info in &oraql_workloads::CASE_INFOS {
        let case = oraql_workloads::find_case(info.name).expect("registered");
        let r = Driver::run(&case, opts_for()).unwrap_or_else(|e| panic!("{}: {e}", info.name));
        assert!(
            r.failures.is_quiet(),
            "{label}/{}: healthy pass saw sandbox events: {:?}",
            info.name,
            r.failures
        );
    }
    t.elapsed().as_secs_f64() * 1e3
}

/// Pulls `"key": <number>` out of a flat JSON artifact (std-only).
fn json_number(src: &str, key: &str) -> Option<f64> {
    let at = src.find(&format!("\"{key}\""))?;
    let rest = &src[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let out = std::env::var("ORAQL_BENCH_OUT").unwrap_or_else(|_| "BENCH_faults.json".into());

    // Warm-up: touch every case once so lazy module construction and
    // allocator growth land outside the measured passes.
    let _ = run_suite_pass(DriverOptions::default, "warmup");

    let faultfree = run_suite_pass(DriverOptions::default, "faultfree");
    let quiet_plan = run_suite_pass(
        || DriverOptions {
            faults: Some(Arc::new(FaultInjector::new(FaultPlan::quiet(42)))),
            ..Default::default()
        },
        "quiet_plan",
    );
    let deadline = run_suite_pass(
        || DriverOptions {
            probe_deadline: Some(Duration::from_secs(30)),
            ..Default::default()
        },
        "deadline",
    );

    let quiet_ratio = quiet_plan / faultfree;
    let deadline_ratio = deadline / faultfree;
    println!("fault-free suite:  {faultfree:>9.1} ms");
    println!("quiet plan armed:  {quiet_plan:>9.1} ms ({quiet_ratio:.3}x)");
    println!("watchdog deadline: {deadline:>9.1} ms ({deadline_ratio:.3}x)");

    // Pre-sandbox reference: the cold suite total recorded by the
    // store_warm bench before the sandbox landed. Same workloads, same
    // sequential driver, one extra store write-through tier (so the
    // comparison is conservative against us). Cargo runs benches from
    // the package directory, so resolve it next to our own output.
    let store_json = std::path::Path::new(&out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .map(|d| d.join("BENCH_store.json"))
        .unwrap_or_else(|| "BENCH_store.json".into());
    let prior = std::fs::read_to_string(&store_json)
        .ok()
        .and_then(|s| json_number(&s, "cold_total_ms"));
    let (prior_ms, overhead) = match prior {
        Some(p) => {
            let o = faultfree / p;
            println!("pre-sandbox cold reference: {p:.1} ms -> sandbox overhead {o:.3}x");
            (format!("{p:.2}"), format!("{o:.4}"))
        }
        None => {
            println!("pre-sandbox cold reference: BENCH_store.json not found");
            ("null".into(), "null".into())
        }
    };

    let json = format!(
        "{{\n  \"bench\": \"faults_overhead\",\n  \"cases_total\": {},\n  \
         \"faultfree_total_ms\": {faultfree:.2},\n  \
         \"quiet_plan_total_ms\": {quiet_plan:.2},\n  \
         \"deadline_total_ms\": {deadline:.2},\n  \
         \"quiet_plan_ratio\": {quiet_ratio:.4},\n  \
         \"deadline_ratio\": {deadline_ratio:.4},\n  \
         \"prior_cold_total_ms\": {prior_ms},\n  \
         \"sandbox_overhead_vs_prior\": {overhead}\n}}\n",
        oraql_workloads::CASE_INFOS.len()
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
