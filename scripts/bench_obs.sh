#!/usr/bin/env sh
# Observability overhead benchmark (see docs/OPERATIONS.md § Monitoring).
#
# Drives the full 16-config workload suite uninstrumented and fully
# instrumented (probe trace + span trace streaming to files + metrics
# registry), asserts the overhead ratio stays within the 1.05x budget,
# and verifies the `oraql trace --fig2` replay matches the in-run
# summary byte-for-byte. Writes JSON to BENCH_obs.json in the repo
# root; override with ORAQL_BENCH_OUT.
set -eu
cd "$(dirname "$0")/.."

# Cargo runs benches with the package directory as cwd, so anchor the
# default output at the repo root via an absolute path.
ORAQL_BENCH_OUT="${ORAQL_BENCH_OUT:-$(pwd)/BENCH_obs.json}" \
    cargo bench --offline -p oraql-bench --bench obs_overhead
