//! Differential testing of the two interpreter modes.
//!
//! The pre-decoded executor ([`oraql_vm::decode`]) must be observably
//! identical to the tree-walk reference: same return value / error,
//! byte-identical stdout, identical [`ExecStats`] — on well-formed
//! programs, on malformed-but-type-checked IR, and under any fuel
//! budget. These tests pin that contract three ways:
//!
//! 1. randomized programs (loops/phis, branches, calls, parallel
//!    regions, floats, externals) from the deterministic generator in
//!    `common`, at several fuel budgets including mid-block exhaustion;
//! 2. all sixteen registered workload configurations, both the raw
//!    module and the baseline-compiled one;
//! 3. hand-mutilated IR reproducing every robustness fix of this
//!    change: out-of-range instruction ids (as operands and in block
//!    lists), executed `Removed` placeholders, branches to missing
//!    blocks, phi edge/entry violations, bad string and global ids, and
//!    calls to missing functions — all must report `BadProgram`
//!    identically in both modes instead of panicking.

mod common;

use common::Gen;
use oraql_suite::ir::builder::FunctionBuilder;
use oraql_suite::ir::inst::{FuncRef, Inst, InstId};
use oraql_suite::ir::interner::StrId;
use oraql_suite::ir::{BlockId, GlobalId, Module, Ty, Value};
use oraql_suite::oraql::compile::{compile, CompileOptions};
use oraql_suite::vm::{lower_function, ExecStats, InterpMode, Interpreter, RtVal, RuntimeError};
use oraql_suite::workloads;

type Observed = (Result<Option<RtVal>, RuntimeError>, String, ExecStats);

fn run_mode(m: &Module, mode: InterpMode, fuel: u64) -> Observed {
    let main = m.find_func("main").expect("module has a main");
    let mut interp = Interpreter::new(m).with_fuel(fuel).with_mode(mode);
    let result = interp.run(main, vec![]);
    (result, interp.stdout().to_owned(), interp.stats())
}

/// Runs `m` in both modes and asserts the full observable behaviour
/// matches; returns the (shared) observation for extra assertions.
fn assert_modes_agree(m: &Module, fuel: u64, ctx: &str) -> Observed {
    let tree = run_mode(m, InterpMode::TreeWalk, fuel);
    let dec = run_mode(m, InterpMode::Decoded, fuel);
    assert_eq!(tree.0, dec.0, "{ctx}: result/error mismatch");
    assert_eq!(tree.1, dec.1, "{ctx}: stdout mismatch");
    assert_eq!(tree.2, dec.2, "{ctx}: ExecStats mismatch");
    dec
}

// ---- randomized programs ----------------------------------------------

/// One step of a generated kernel body (same op family as
/// `prop_pipeline`, plus branchy steps so phis and `select` get
/// exercised outside the loop header).
#[derive(Debug, Clone)]
enum Step {
    StoreConst {
        dst: usize,
        off: u8,
        val: i8,
    },
    LoadPrint {
        src: usize,
        off: u8,
    },
    Combine {
        dst: usize,
        a: usize,
        b: usize,
    },
    Copy {
        dst: usize,
        src: usize,
    },
    /// Diamond: branch on `slots[src][0] < k`, merge with a phi, print.
    Diamond {
        src: usize,
        k: i8,
    },
    /// `print(sqrt(float(slots[src][0])))` — float + external coverage.
    FloatExt {
        src: usize,
    },
    /// `print(select(slots[a][0] < slots[b][0], a0, b0))`.
    SelectMin {
        a: usize,
        b: usize,
    },
}

fn random_step(g: &mut Gen) -> Step {
    match g.range_u64(0, 7) {
        0 => Step::StoreConst {
            dst: g.range_usize(0, 4),
            off: g.range_u64(0, 3) as u8,
            val: g.next_u64() as i8,
        },
        1 => Step::LoadPrint {
            src: g.range_usize(0, 4),
            off: g.range_u64(0, 3) as u8,
        },
        2 => Step::Combine {
            dst: g.range_usize(0, 4),
            a: g.range_usize(0, 4),
            b: g.range_usize(0, 4),
        },
        3 => Step::Copy {
            dst: g.range_usize(0, 4),
            src: g.range_usize(0, 4),
        },
        4 => Step::Diamond {
            src: g.range_usize(0, 4),
            k: g.next_u64() as i8,
        },
        5 => Step::FloatExt {
            src: g.range_usize(0, 4),
        },
        _ => Step::SelectMin {
            a: g.range_usize(0, 4),
            b: g.range_usize(0, 4),
        },
    }
}

fn emit_step(b: &mut FunctionBuilder, slots: &[Value], step: &Step) {
    use oraql_suite::ir::inst::CmpPred;
    match *step {
        Step::StoreConst { dst, off, val } => {
            let p = b.gep(slots[dst], 8 * off as i64);
            b.store(Ty::I64, Value::ConstInt(val as i64), p);
        }
        Step::LoadPrint { src, off } => {
            let p = b.gep(slots[src], 8 * off as i64);
            let v = b.load(Ty::I64, p);
            b.print("{}", vec![v]);
        }
        Step::Combine { dst, a, b: bb } => {
            let pa = b.gep(slots[a], 0);
            let va = b.load(Ty::I64, pa);
            let pb = b.gep(slots[bb], 8);
            let vb = b.load(Ty::I64, pb);
            let s = b.add(va, vb);
            let pd = b.gep(slots[dst], 16);
            b.store(Ty::I64, s, pd);
        }
        Step::Copy { dst, src } => {
            b.memcpy(slots[dst], slots[src], Value::ConstInt(16));
        }
        Step::Diamond { src, k } => {
            let p = b.gep(slots[src], 0);
            let v = b.load(Ty::I64, p);
            let c = b.cmp(CmpPred::Lt, Ty::I64, v, Value::ConstInt(k as i64));
            let then_bb = b.new_block();
            let else_bb = b.new_block();
            let merge = b.new_block();
            b.cond_br(c, then_bb, else_bb);
            b.switch_to(then_bb);
            let t = b.add(v, Value::ConstInt(1));
            b.br(merge);
            b.switch_to(else_bb);
            let e = b.mul(v, Value::ConstInt(3));
            b.br(merge);
            b.switch_to(merge);
            let phi = b.phi(Ty::I64, vec![(then_bb, t), (else_bb, e)]);
            b.print("d{}", vec![phi]);
        }
        Step::FloatExt { src } => {
            let p = b.gep(slots[src], 0);
            let v = b.load(Ty::I64, p);
            let f = b.si_to_fp(v);
            let sq = b.fmul(f, f);
            let r = b.call_external("sqrt", vec![sq], Some(Ty::F64)).unwrap();
            b.print("f{}", vec![r]);
        }
        Step::SelectMin { a, b: bb } => {
            let pa = b.gep(slots[a], 0);
            let va = b.load(Ty::I64, pa);
            let pb = b.gep(slots[bb], 0);
            let vb = b.load(Ty::I64, pb);
            let c = b.cmp(CmpPred::Lt, Ty::I64, va, vb);
            let m = b.select(Ty::I64, c, va, vb);
            b.print("m{}", vec![m]);
        }
    }
}

/// Four 32-byte global buffers, a kernel over opaque (possibly
/// aliasing) pointer parameters, run in a parallel region so call-kind
/// dispatch and per-thread stats are covered too.
fn build_random_program(steps: &[Step], wiring: [u8; 4], loop_trip: u8, threads: u32) -> Module {
    let mut m = Module::new("diff");
    let kern = {
        // Parallel regions pass the thread id as implicit leading arg.
        let mut b = FunctionBuilder::new(&mut m, "kernel", vec![Ty::I64, Ty::Ptr, Ty::Ptr], None);
        let slots: Vec<Value> = vec![b.arg(1), b.arg(2), b.arg(1), b.arg(2)];
        if loop_trip > 0 {
            b.counted_loop(
                Value::ConstInt(0),
                Value::ConstInt(loop_trip as i64),
                |b, _| {
                    for s in steps {
                        emit_step(b, &slots, s);
                    }
                },
            );
        } else {
            for s in steps {
                emit_step(&mut b, &slots, s);
            }
        }
        b.ret(None);
        b.finish()
    };
    let g = m.add_global("buffers", 4 * 32, vec![], false);
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    for i in 0..16i64 {
        let p = b.gep(Value::Global(g), 8 * i);
        b.store(Ty::I64, Value::ConstInt(i * 5 + 2), p);
    }
    let args: Vec<Value> = wiring
        .iter()
        .take(2)
        .map(|&w| b.gep(Value::Global(g), 32 * (w as i64 % 4)))
        .collect();
    if threads > 1 {
        b.parallel_region(kern, args, threads);
    } else {
        let mut full = vec![Value::ConstInt(0)];
        full.extend(args);
        b.call(kern, full, None);
    }
    // Final state dump so silent divergence is visible.
    for i in 0..16i64 {
        let p = b.gep(Value::Global(g), 8 * i);
        let v = b.load(Ty::I64, p);
        b.print("{}", vec![v]);
    }
    b.ret(None);
    b.finish();
    m
}

/// Random programs agree in both modes, at a generous budget and at
/// tiny budgets that exhaust fuel mid-block, mid-phi-batch and
/// mid-segment.
#[test]
fn fuzz_differential_random_programs() {
    for seed in 0..48u64 {
        let mut g = Gen::new(seed);
        let n = g.range_usize(1, 10);
        let steps: Vec<Step> = (0..n).map(|_| random_step(&mut g)).collect();
        let wiring = [g.range_u64(0, 4) as u8, g.range_u64(0, 4) as u8, 0, 0];
        let loop_trip = g.range_u64(0, 4) as u8;
        let threads = g.range_u64(1, 4) as u32;
        let m = build_random_program(&steps, wiring, loop_trip, threads);
        for fuel in [1_000_000u64, 23, 7] {
            let _ = assert_modes_agree(&m, fuel, &format!("seed {seed} fuel {fuel}"));
        }
    }
}

/// Fuel-exhaustion boundary sweep on one looping program: every budget
/// in a contiguous range, so the batched per-segment accounting of the
/// decoded mode is checked at every possible cut point.
#[test]
fn fuel_boundary_sweep() {
    let mut g = Gen::new(0xf0e1);
    let steps: Vec<Step> = (0..6).map(|_| random_step(&mut g)).collect();
    let m = build_random_program(&steps, [0, 1, 2, 3], 3, 2);
    for fuel in 0..300u64 {
        let _ = assert_modes_agree(&m, fuel, &format!("fuel {fuel}"));
    }
}

// ---- workload configurations ------------------------------------------

/// All sixteen registered workload configurations execute identically
/// in both modes — raw and baseline-compiled.
#[test]
fn workloads_differential_all_configs() {
    for info in &workloads::CASE_INFOS {
        let case = workloads::find_case(info.name).expect("registered case");
        let raw = (case.build)();
        let _ = assert_modes_agree(&raw, case.fuel, &format!("{} (raw)", info.name));
        let compiled = compile(&*case.build, &CompileOptions::baseline());
        let _ = assert_modes_agree(
            &compiled.module,
            case.fuel,
            &format!("{} (baseline-compiled)", info.name),
        );
    }
}

// ---- malformed-but-type-checked IR ------------------------------------

/// A minimal well-formed module to mutilate: main stores, adds, prints,
/// and returns. Returns the module and the ids of its instructions in
/// emission order.
fn well_formed() -> (Module, Vec<InstId>) {
    let mut m = Module::new("mal");
    let g = m.add_global("g", 16, vec![], false);
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    b.store(Ty::I64, Value::ConstInt(7), Value::Global(g)); // 0
    let v = b.load(Ty::I64, Value::Global(g)); // 1
    let s = b.add(v, Value::ConstInt(1)); // 2
    b.print("{}", vec![s]); // 3
    b.ret(None); // 4
    let fid = b.finish();
    let ids = (0..m.func(fid).insts.len() as u32).map(InstId).collect();
    (m, ids)
}

fn expect_bad_program(m: &Module, ctx: &str) {
    let (result, _, _) = assert_modes_agree(m, 1_000_000, ctx);
    match result {
        Err(RuntimeError::BadProgram(_)) => {}
        other => panic!("{ctx}: expected BadProgram, got {other:?}"),
    }
}

/// Out-of-range instruction id used as an operand (the `eval` panic
/// this change fixes) traps as `BadProgram` in both modes.
#[test]
fn bad_inst_id_operand_traps() {
    let (mut m, ids) = well_formed();
    let fid = m.find_func("main").unwrap();
    if let Inst::Print { args, .. } = &mut m.func_mut(fid).insts[ids[3].0 as usize].inst {
        args[0] = Value::Inst(InstId(999));
    } else {
        panic!("expected print");
    }
    expect_bad_program(&m, "bad operand id");
}

/// Out-of-range instruction id in a block's instruction list.
#[test]
fn bad_inst_id_in_block_list_traps() {
    let (mut m, _) = well_formed();
    let fid = m.find_func("main").unwrap();
    m.func_mut(fid).blocks[0].insts.insert(2, InstId(999));
    expect_bad_program(&m, "bad block-list id");
}

/// An executed `Removed` placeholder traps instead of panicking.
#[test]
fn removed_instruction_traps() {
    let (mut m, ids) = well_formed();
    let fid = m.find_func("main").unwrap();
    m.func_mut(fid).insts[ids[0].0 as usize].inst = Inst::Removed;
    expect_bad_program(&m, "executed Removed");
}

/// Branch to a block id the function does not have.
#[test]
fn branch_to_missing_block_traps() {
    let (mut m, ids) = well_formed();
    let fid = m.find_func("main").unwrap();
    m.func_mut(fid).insts[ids[4].0 as usize].inst = Inst::Br {
        target: BlockId(99),
    };
    expect_bad_program(&m, "missing block");
}

/// A phi whose incoming list lacks the edge actually taken.
#[test]
fn phi_missing_edge_traps() {
    let mut m = Module::new("mal");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let bb1 = b.new_block();
    b.br(bb1);
    b.switch_to(bb1);
    // Incoming only from bb1 itself — never from the entry block.
    let p = b.phi(Ty::I64, vec![(bb1, Value::ConstInt(1))]);
    b.print("{}", vec![p]);
    b.ret(None);
    b.finish();
    expect_bad_program(&m, "phi missing edge");
}

/// A phi in the entry block of a called function has no incoming edge.
#[test]
fn phi_in_entry_block_traps() {
    let mut m = Module::new("mal");
    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    let p = b.phi(Ty::I64, vec![(BlockId(0), Value::ConstInt(1))]);
    b.print("{}", vec![p]);
    b.ret(None);
    b.finish();
    expect_bad_program(&m, "phi in entry");
}

/// Print with an out-of-range format-string id.
#[test]
fn bad_string_id_traps() {
    let (mut m, ids) = well_formed();
    let fid = m.find_func("main").unwrap();
    if let Inst::Print { fmt, .. } = &mut m.func_mut(fid).insts[ids[3].0 as usize].inst {
        *fmt = StrId(999);
    } else {
        panic!("expected print");
    }
    expect_bad_program(&m, "bad string id");
}

/// An operand naming a global the module does not have.
#[test]
fn bad_global_id_traps() {
    let (mut m, ids) = well_formed();
    let fid = m.find_func("main").unwrap();
    if let Inst::Store { ptr, .. } = &mut m.func_mut(fid).insts[ids[0].0 as usize].inst {
        *ptr = Value::Global(GlobalId(99));
    } else {
        panic!("expected store");
    }
    expect_bad_program(&m, "bad global id");
}

/// Calls to missing internal functions and unresolvable external
/// symbols trap identically.
#[test]
fn bad_callee_traps() {
    let (mut m, ids) = well_formed();
    let fid = m.find_func("main").unwrap();
    m.func_mut(fid).insts[ids[3].0 as usize].inst = Inst::Call {
        callee: FuncRef::Internal(oraql_suite::ir::module::FunctionId(99)),
        args: vec![],
        ret: None,
        kind: oraql_suite::ir::inst::CallKind::Plain,
    };
    expect_bad_program(&m, "missing internal callee");

    let (mut m, ids) = well_formed();
    let fid = m.find_func("main").unwrap();
    m.func_mut(fid).insts[ids[3].0 as usize].inst = Inst::Call {
        callee: FuncRef::External(StrId(999)),
        args: vec![],
        ret: None,
        kind: oraql_suite::ir::inst::CallKind::Plain,
    };
    expect_bad_program(&m, "bad external symbol id");
}

/// Malformed IR also fails machine lowering with an error — the spill
/// and operand-indexing paths in `machine.rs` must not panic either.
#[test]
fn machine_lowering_rejects_malformed_ir() {
    let (mut m, ids) = well_formed();
    let fid = m.find_func("main").unwrap();
    if let Inst::Print { args, .. } = &mut m.func_mut(fid).insts[ids[3].0 as usize].inst {
        args[0] = Value::Inst(InstId(999));
    } else {
        panic!("expected print");
    }
    assert!(lower_function(&m, fid, None).is_err(), "bad operand id");

    let (mut m, _) = well_formed();
    let fid = m.find_func("main").unwrap();
    m.func_mut(fid).blocks[0].insts.insert(2, InstId(999));
    assert!(lower_function(&m, fid, None).is_err(), "bad block-list id");

    // Well-formed modules still lower, including under register
    // pressure that forces spills.
    let (m, _) = well_formed();
    let fid = m.find_func("main").unwrap();
    assert!(lower_function(&m, fid, None).is_ok());
    assert!(lower_function(&m, fid, Some(1)).is_ok());
}
