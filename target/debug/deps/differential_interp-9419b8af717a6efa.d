/root/repo/target/debug/deps/differential_interp-9419b8af717a6efa.d: tests/differential_interp.rs tests/common/mod.rs

/root/repo/target/debug/deps/differential_interp-9419b8af717a6efa: tests/differential_interp.rs tests/common/mod.rs

tests/differential_interp.rs:
tests/common/mod.rs:
