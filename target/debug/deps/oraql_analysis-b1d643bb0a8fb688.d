/root/repo/target/debug/deps/oraql_analysis-b1d643bb0a8fb688.d: crates/analysis/src/lib.rs crates/analysis/src/aa.rs crates/analysis/src/aaeval.rs crates/analysis/src/andersen.rs crates/analysis/src/basic.rs crates/analysis/src/constraints.rs crates/analysis/src/domtree.rs crates/analysis/src/globals.rs crates/analysis/src/location.rs crates/analysis/src/loops.rs crates/analysis/src/memssa.rs crates/analysis/src/pointer.rs crates/analysis/src/scoped.rs crates/analysis/src/steens.rs crates/analysis/src/tbaa.rs Cargo.toml

/root/repo/target/debug/deps/liboraql_analysis-b1d643bb0a8fb688.rmeta: crates/analysis/src/lib.rs crates/analysis/src/aa.rs crates/analysis/src/aaeval.rs crates/analysis/src/andersen.rs crates/analysis/src/basic.rs crates/analysis/src/constraints.rs crates/analysis/src/domtree.rs crates/analysis/src/globals.rs crates/analysis/src/location.rs crates/analysis/src/loops.rs crates/analysis/src/memssa.rs crates/analysis/src/pointer.rs crates/analysis/src/scoped.rs crates/analysis/src/steens.rs crates/analysis/src/tbaa.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/aa.rs:
crates/analysis/src/aaeval.rs:
crates/analysis/src/andersen.rs:
crates/analysis/src/basic.rs:
crates/analysis/src/constraints.rs:
crates/analysis/src/domtree.rs:
crates/analysis/src/globals.rs:
crates/analysis/src/location.rs:
crates/analysis/src/loops.rs:
crates/analysis/src/memssa.rs:
crates/analysis/src/pointer.rs:
crates/analysis/src/scoped.rs:
crates/analysis/src/steens.rs:
crates/analysis/src/tbaa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
