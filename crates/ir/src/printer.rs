//! Textual IR printer, LLVM-flavoured. Used in reports, debugging and
//! golden tests. There is deliberately no parser: modules are built
//! programmatically (workload generators / builder API).

use crate::inst::{CallKind, FuncRef, GepOffset, Inst, InstId};
use crate::module::{Function, FunctionId, Module};
use crate::value::{BlockId, Value};
use std::fmt::Write as _;

/// Renders a value like `%12`, `%arg0`, `@g`, `42`, `3.5`.
pub fn value_str(v: Value, m: &Module) -> String {
    match v {
        Value::Inst(i) => format!("%{}", i.0),
        Value::Arg(a) => format!("%arg{a}"),
        Value::Global(g) => format!("@{}", m.global(g).name),
        Value::ConstInt(c) => format!("{c}"),
        Value::ConstFloat(bits) => format!("{:?}", f64::from_bits(bits)),
        Value::Undef => "undef".to_owned(),
    }
}

/// Renders one instruction (without trailing newline).
pub fn inst_str(f: &Function, m: &Module, id: InstId) -> String {
    let v = |x: Value| value_str(x, m);
    let mut s = String::new();
    let inst = f.inst(id);
    if inst.result_ty().is_some() {
        let _ = write!(s, "%{} = ", id.0);
    }
    match inst {
        Inst::Alloca { size, name } => {
            let _ = write!(s, "alloca {size} ; {}", m.strings.resolve(*name));
        }
        Inst::Load { ptr, ty, meta } => {
            let _ = write!(s, "load {ty}, ptr {}", v(*ptr));
            if let Some(t) = meta.tbaa {
                let _ = write!(s, ", !tbaa {}", m.tbaa.name(t));
            }
        }
        Inst::Store {
            ptr,
            value,
            ty,
            meta,
        } => {
            let _ = write!(s, "store {ty} {}, ptr {}", v(*value), v(*ptr));
            if let Some(t) = meta.tbaa {
                let _ = write!(s, ", !tbaa {}", m.tbaa.name(t));
            }
        }
        Inst::Gep { base, offset } => match offset {
            GepOffset::Const(c) => {
                let _ = write!(s, "gep ptr {}, {c}", v(*base));
            }
            GepOffset::Scaled { index, scale, add } => {
                let _ = write!(s, "gep ptr {}, {} x {scale} + {add}", v(*base), v(*index));
            }
        },
        Inst::Bin { op, ty, lhs, rhs } => {
            let _ = write!(s, "{op:?} {ty} {}, {}", v(*lhs), v(*rhs));
        }
        Inst::Cmp { pred, ty, lhs, rhs } => {
            let _ = write!(s, "cmp {pred:?} {ty} {}, {}", v(*lhs), v(*rhs));
        }
        Inst::Select { cond, t, f: fv, ty } => {
            let _ = write!(s, "select {ty} {}, {}, {}", v(*cond), v(*t), v(*fv));
        }
        Inst::Cast { kind, val, to } => {
            let _ = write!(s, "cast {kind:?} {} to {to}", v(*val));
        }
        Inst::Call {
            callee, args, kind, ..
        } => {
            let name = match callee {
                FuncRef::Internal(fid) => m.func(*fid).name.clone(),
                FuncRef::External(sym) => m.strings.resolve(*sym).to_owned(),
            };
            let prefix = match kind {
                CallKind::Plain => "call",
                CallKind::ParallelRegion { .. } => "parallel_call",
                CallKind::KernelLaunch { .. } => "kernel_launch",
            };
            let args: Vec<_> = args.iter().map(|&a| v(a)).collect();
            let _ = write!(s, "{prefix} @{name}({})", args.join(", "));
            if let CallKind::ParallelRegion { threads } = kind {
                let _ = write!(s, " threads({threads})");
            }
            if let CallKind::KernelLaunch { items } = kind {
                let _ = write!(s, " items({items})");
            }
        }
        Inst::Ret { val } => match val {
            Some(x) => {
                let _ = write!(s, "ret {}", v(*x));
            }
            None => {
                let _ = write!(s, "ret void");
            }
        },
        Inst::Br { target } => {
            let _ = write!(s, "br bb{}", target.0);
        }
        Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            let _ = write!(s, "condbr {}, bb{}, bb{}", v(*cond), then_bb.0, else_bb.0);
        }
        Inst::Phi { ty, incoming } => {
            let parts: Vec<_> = incoming
                .iter()
                .map(|(bb, val)| format!("[bb{}: {}]", bb.0, v(*val)))
                .collect();
            let _ = write!(s, "phi {ty} {}", parts.join(", "));
        }
        Inst::Print { fmt, args } => {
            let args: Vec<_> = args.iter().map(|&a| v(a)).collect();
            let _ = write!(
                s,
                "print {:?}({})",
                m.strings.resolve(*fmt),
                args.join(", ")
            );
        }
        Inst::Memcpy {
            dst, src, bytes, ..
        } => {
            let _ = write!(s, "memcpy ptr {}, ptr {}, {}", v(*dst), v(*src), v(*bytes));
        }
        Inst::Removed => {
            let _ = write!(s, "<removed>");
        }
    }
    if let Some(loc) = f.loc(id) {
        let _ = write!(
            s,
            " ; {}:{}:{}",
            m.strings.resolve(loc.file),
            loc.line,
            loc.col
        );
    }
    s
}

/// Renders a whole function.
pub fn function_str(m: &Module, id: FunctionId) -> String {
    let f = m.func(id);
    let mut s = String::new();
    let params: Vec<_> = f
        .params
        .iter()
        .map(|p| {
            format!(
                "{}{} %{}",
                p.ty,
                if p.noalias { " noalias" } else { "" },
                p.name
            )
        })
        .collect();
    let ret = f
        .ret
        .map(|t| t.to_string())
        .unwrap_or_else(|| "void".into());
    let _ = writeln!(
        s,
        "define {} @{}({}) target({}){} {{",
        ret,
        f.name,
        params.join(", "),
        f.target.name(),
        if f.outlined { " outlined" } else { "" },
    );
    for (bi, block) in f.blocks.iter().enumerate() {
        let _ = writeln!(s, "bb{bi}:");
        for &iid in &block.insts {
            let _ = writeln!(s, "  {}", inst_str(f, m, iid));
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders a whole module.
pub fn module_str(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "; module {}", m.name);
    for g in &m.globals {
        let _ = writeln!(
            s,
            "@{} = {} global [{} bytes]",
            g.name,
            if g.constant { "constant" } else { "mutable" },
            g.size
        );
    }
    for i in 0..m.funcs.len() {
        let _ = writeln!(s);
        s.push_str(&function_str(m, FunctionId(i as u32)));
    }
    s
}

/// Renders the block label of a block id.
pub fn block_str(bb: BlockId) -> String {
    format!("bb{}", bb.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Ty;

    #[test]
    fn prints_function() {
        let mut m = Module::new("t");
        let g = m.add_global("tbl", 64, vec![], true);
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], Some(Ty::F64));
        let p = b.arg(0);
        let x = b.load(Ty::F64, p);
        let addr = b.gep(Value::Global(g), 8);
        b.store(Ty::F64, x, addr);
        b.ret(Some(x));
        let id = b.finish();
        let text = function_str(&m, id);
        assert!(text.contains("define f64 @f(ptr %arg0)"), "{text}");
        assert!(text.contains("load f64, ptr %arg0"), "{text}");
        assert!(text.contains("@tbl"), "{text}");
        let mtext = module_str(&m);
        assert!(mtext.contains("constant global [64 bytes]"), "{mtext}");
    }

    use crate::value::Value;

    #[test]
    fn prints_source_locations() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr], None);
        b.set_loc("sna.cpp", 609, 60);
        let p = b.arg(0);
        b.load(Ty::F64, p);
        b.ret(None);
        let id = b.finish();
        let text = function_str(&m, id);
        assert!(text.contains("sna.cpp:609:60"), "{text}");
    }
}
