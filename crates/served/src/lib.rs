//! # oraql-served — the alias oracle as a service
//!
//! PR 3's journal made probe verdicts durable for one process; this
//! crate makes them **shared**. A long-lived daemon owns the verdict
//! corpus as sharded [`oraql_store`] journals and serves lookups /
//! accepts appends from many concurrent clients over a length-prefixed
//! binary protocol on a TCP or Unix-domain socket — the "compile farm"
//! deployment the ROADMAP names: one oracle, many drivers, each probe
//! verdict paid for once anywhere and replayed everywhere.
//!
//! Three modules, layered:
//!
//! * [`protocol`] — pure wire format: framing, ops, status codes
//!   (human-readable spec in `docs/PROTOCOL.md`);
//! * [`server`] — the daemon: sharded journals, a read-mostly index so
//!   lookups never touch disk, group fsync, thread-per-connection
//!   serving (operational guide in `docs/OPERATIONS.md`);
//! * [`client`] — the blocking client the driver embeds as its third
//!   cache tier, with timeouts and a circuit breaker so a dead server
//!   degrades to the local store instead of stalling probes.
//!
//! # Concurrency contract (crate-wide summary)
//!
//! Every public type states its own contract; the shape is: [`server::Server`]
//! and [`client::Client`] are `Send + Sync`, shareable via `Arc` from
//! any number of threads; [`net::Conn`] is single-owner; [`protocol`]
//! is stateless. No lock in this crate is ever held across a blocking
//! socket call on another connection, and no cross-shard lock exists,
//! so the system cannot deadlock on its own locks.
//!
//! Everything is std-only: `TcpListener`/`UnixListener`, `std::thread`,
//! `std::sync` — no external dependencies, mirroring the rest of the
//! workspace.

pub mod client;
pub mod net;
pub mod protocol;
pub mod server;

pub use client::{backoff_delay, Client, ClientError, ClientOptions, ClientStats};
pub use net::Addr;
pub use server::{CrashMode, Server, ServerConfig, ServerOptions};
