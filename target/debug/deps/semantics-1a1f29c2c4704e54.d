/root/repo/target/debug/deps/semantics-1a1f29c2c4704e54.d: crates/vm/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-1a1f29c2c4704e54.rmeta: crates/vm/tests/semantics.rs Cargo.toml

crates/vm/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
