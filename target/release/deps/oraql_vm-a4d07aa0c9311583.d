/root/repo/target/release/deps/oraql_vm-a4d07aa0c9311583.d: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

/root/repo/target/release/deps/liboraql_vm-a4d07aa0c9311583.rlib: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

/root/repo/target/release/deps/liboraql_vm-a4d07aa0c9311583.rmeta: crates/vm/src/lib.rs crates/vm/src/decode.rs crates/vm/src/interp.rs crates/vm/src/machine.rs crates/vm/src/memory.rs crates/vm/src/rtval.rs

crates/vm/src/lib.rs:
crates/vm/src/decode.rs:
crates/vm/src/interp.rs:
crates/vm/src/machine.rs:
crates/vm/src/memory.rs:
crates/vm/src/rtval.rs:
