//! Ground-truth alias labels and the corpus soundness gate.
//!
//! Generated workloads (`oraql-gen`) know, **by construction**, the
//! alias relation of the pointer pairs they emit: a composer wires
//! worker-function arguments to concrete byte ranges of module globals,
//! so "do these two pointers alias?" is a question about integer
//! intervals, not about analysis. This module is the driver-side
//! consumer of that knowledge: a [`GroundTruth`] map attached to
//! [`crate::DriverOptions`] makes the driver cross-check every final
//! verdict against the labels after the normal verification step, and
//! fail loudly — [`crate::DriverError::SoundnessViolation`] — if the
//! probing workflow ever *kept* an optimistic answer on a pair labelled
//! as genuinely aliasing.
//!
//! # The invariant being gated
//!
//! ORAQL's safety argument is observational: a wrong no-alias answer is
//! acceptable only while it does not change program output. The
//! generator therefore only labels a pair [`Label::Must`] when it has
//! also emitted an *observable hazard* on that pair (a load / store /
//! load sandwich whose printed value diverges under wrong forwarding).
//! For such pairs the bisection must always end pessimistic — under any
//! job count, speculation depth, cache tier, or injected fault, because
//! every degradation path in the driver (quarantine, retry, deduction)
//! moves answers toward may-alias, never away from it. The gate turns
//! that argument into a machine-checked per-case invariant: an
//! optimistic final verdict on a `Must` pair is a driver bug (or a
//! mislabelled generator motif) and fails the case.
//!
//! Pairs labelled [`Label::No`] are the payoff side: the gate counts
//! how many of them the driver actually answered optimistically
//! (`optimism_confirmed`) versus left pessimistic (`missed_optimism`).
//! [`Label::May`] marks pairs whose relation is data- or
//! thread-dependent; they can never violate the gate.
//!
//! # Keying
//!
//! Labels are keyed exactly like the ORAQL pass's own decision cache:
//! the *unordered* pair of pointer SSA values within a named function
//! (location sizes ignored), plus the case name so one merged map can
//! gate a whole suite run. Queries on values the generator did not
//! label (e.g. pointers materialized by later passes) are counted as
//! `unchecked` and never fail the gate.

use crate::pass::{OptimismKind, UniqueQuery};
use oraql_ir::module::Module;
use oraql_ir::value::Value;
use std::collections::HashMap;

/// A ground-truth alias label for one pointer pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The pair's accesses are disjoint on every execution; an
    /// optimistic answer is genuinely correct.
    No,
    /// The relation is data- or thread-dependent (e.g. indirection
    /// through runtime indices); either answer may be observationally
    /// fine.
    May,
    /// The pair genuinely aliases **and** the generator emitted an
    /// observable hazard on it: a kept optimistic answer is a soundness
    /// violation.
    Must,
}

impl Label {
    /// Stable lowercase name (manifest / report vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            Label::No => "no",
            Label::May => "may",
            Label::Must => "must",
        }
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One labelled pointer pair, as stored (canonical value order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledPair {
    /// Case the label belongs to (suite maps are merged across cases).
    pub case: String,
    /// Function containing the pair.
    pub func: String,
    /// Smaller pointer value of the unordered pair.
    pub a: Value,
    /// Larger pointer value.
    pub b: Value,
    /// The relation, by construction.
    pub label: Label,
}

/// A map of ground-truth labels, keyed like the ORAQL decision cache:
/// `(case, function name, unordered value pair)`.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    labels: HashMap<(String, String, Value, Value), Label>,
}

fn canon(a: Value, b: Value) -> (Value, Value) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl GroundTruth {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a label for the unordered pair `(a, b)` in `func` of
    /// `case`. Later inserts overwrite earlier ones.
    pub fn insert(&mut self, case: &str, func: &str, a: Value, b: Value, label: Label) {
        let (a, b) = canon(a, b);
        self.labels
            .insert((case.to_owned(), func.to_owned(), a, b), label);
    }

    /// Looks up the label for an unordered pair.
    pub fn lookup(&self, case: &str, func: &str, a: Value, b: Value) -> Option<Label> {
        let (a, b) = canon(a, b);
        self.labels
            .get(&(case.to_owned(), func.to_owned(), a, b))
            .copied()
    }

    /// Absorbs all labels of `other` (suite runs merge per-case maps).
    pub fn merge(&mut self, other: GroundTruth) {
        self.labels.extend(other.labels);
    }

    /// Number of labelled pairs.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates the stored labels (test and tooling access).
    pub fn pairs(&self) -> impl Iterator<Item = LabeledPair> + '_ {
        self.labels
            .iter()
            .map(|((case, func, a, b), label)| LabeledPair {
                case: case.clone(),
                func: func.clone(),
                a: *a,
                b: *b,
                label: *label,
            })
    }

    /// How many pairs carry each label, as `(no, may, must)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for label in self.labels.values() {
            match label {
                Label::No => c.0 += 1,
                Label::May => c.1 += 1,
                Label::Must => c.2 += 1,
            }
        }
        c
    }

    /// Cross-checks the final verdicts of one case against the labels.
    ///
    /// `queries` are the unique queries of the **final** compilation
    /// (the verdicts the driver is committing to); `module` resolves
    /// their function ids to names. Violations are collected, not
    /// panicked on — the driver turns a non-empty list into
    /// [`crate::DriverError::SoundnessViolation`].
    pub fn check(
        &self,
        case: &str,
        module: &Module,
        queries: &[UniqueQuery],
        optimism: OptimismKind,
    ) -> TruthReport {
        let mut r = TruthReport::default();
        for q in queries {
            let func = &module.func(q.func).name;
            let Some(label) = self.lookup(case, func, q.a.ptr, q.b.ptr) else {
                r.unchecked += 1;
                continue;
            };
            r.checked += 1;
            // Which label contradicts a *kept* optimistic answer depends
            // on what optimism means for this case (§VIII extension):
            // optimistic-NoAlias is wrong on a genuinely-aliasing pair,
            // optimistic-MustAlias is wrong on a genuinely-disjoint one.
            let violating = match optimism {
                OptimismKind::NoAlias => Label::Must,
                OptimismKind::MustAlias => Label::No,
            };
            match (q.optimistic, label) {
                (true, l) if l == violating => r.violations.push(Violation {
                    case: case.to_owned(),
                    func: func.clone(),
                    a: q.a.ptr,
                    b: q.b.ptr,
                    label,
                    pass: q.pass.clone(),
                    index: q.index,
                }),
                (true, Label::May) => r.optimism_on_may += 1,
                (true, _) => r.optimism_confirmed += 1,
                (false, l) if l == violating => r.pessimism_held += 1,
                (false, Label::May) => r.pessimism_on_may += 1,
                (false, _) => r.missed_optimism += 1,
            }
        }
        r
    }
}

/// One gate failure: a kept optimistic answer on a pair whose label
/// says the optimism is genuinely wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub case: String,
    pub func: String,
    pub a: Value,
    pub b: Value,
    pub label: Label,
    /// Pass that issued the query's first occurrence.
    pub pass: String,
    /// Position in the decision sequence.
    pub index: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: optimistic verdict on {}-labelled pair {:?} / {:?} in {} (pass {}, index {})",
            self.case, self.label, self.a, self.b, self.func, self.pass, self.index
        )
    }
}

/// What the gate saw for one case (also a report column source).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TruthReport {
    /// Final-verdict queries that had a label.
    pub checked: u64,
    /// Final-verdict queries with no label (pairs the generator did not
    /// construct, e.g. pass-materialized pointers). Never a failure.
    pub unchecked: u64,
    /// Optimistic verdicts on pairs labelled safe for optimism — the
    /// generator's "payoff" pairs the driver actually cashed in.
    pub optimism_confirmed: u64,
    /// Pessimistic verdicts on violating-labelled pairs: the red
    /// squares the verification loop correctly pinned.
    pub pessimism_held: u64,
    /// Pessimistic verdicts on pairs that were safe to answer
    /// optimistically (cost, not a bug: bisection is locally maximal,
    /// and faults quarantine toward pessimism).
    pub missed_optimism: u64,
    /// Optimistic verdicts on `May`-labelled (data-dependent) pairs.
    pub optimism_on_may: u64,
    /// Pessimistic verdicts on `May`-labelled pairs.
    pub pessimism_on_may: u64,
    /// Kept optimistic answers on violating-labelled pairs. Any entry
    /// here fails the case with `DriverError::SoundnessViolation`.
    pub violations: Vec<Violation>,
}

impl TruthReport {
    /// True when the gate passed (possibly vacuously).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another case's report into a suite total (violations are
    /// concatenated, counters added).
    pub fn absorb(&mut self, other: &TruthReport) {
        self.checked += other.checked;
        self.unchecked += other.unchecked;
        self.optimism_confirmed += other.optimism_confirmed;
        self.pessimism_held += other.pessimism_held;
        self.missed_optimism += other.missed_optimism;
        self.optimism_on_may += other.optimism_on_may;
        self.pessimism_on_may += other.pessimism_on_may;
        self.violations.extend(other.violations.iter().cloned());
    }

    /// One-line failure description for `DriverError::SoundnessViolation`.
    pub fn describe_violations(&self) -> String {
        let mut s = format!("{} ground-truth violation(s):", self.violations.len());
        for v in &self.violations {
            s.push_str("\n  ");
            s.push_str(&v.to_string());
        }
        s
    }
}

impl std::fmt::Display for TruthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} checked ({} optimism confirmed, {} pinned, {} missed, {} may) | {} unchecked | {} violations",
            self.checked,
            self.optimism_confirmed,
            self.pessimism_held,
            self.missed_optimism,
            self.optimism_on_may + self.pessimism_on_may,
            self.unchecked,
            self.violations.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_analysis::location::{LocationSize, MemoryLocation};
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::types::Ty;
    use oraql_ir::Module;

    fn loc(v: Value) -> MemoryLocation {
        MemoryLocation {
            ptr: v,
            size: LocationSize::Precise(8),
            tbaa: None,
            scopes: Vec::new(),
            noalias: Vec::new(),
        }
    }

    fn query(func: u32, a: Value, b: Value, optimistic: bool) -> UniqueQuery {
        UniqueQuery {
            func: oraql_ir::module::FunctionId(func),
            a: loc(a),
            b: loc(b),
            optimistic,
            pass: "gvn".into(),
            index: 0,
            cached_hits: 0,
        }
    }

    fn module_with_one_func() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "w", vec![Ty::Ptr, Ty::Ptr], None);
        b.ret(None);
        b.finish();
        m
    }

    #[test]
    fn lookup_is_order_independent() {
        let mut gt = GroundTruth::new();
        gt.insert("c", "w", Value::Arg(1), Value::Arg(0), Label::Must);
        assert_eq!(
            gt.lookup("c", "w", Value::Arg(0), Value::Arg(1)),
            Some(Label::Must)
        );
        assert_eq!(
            gt.lookup("c", "w", Value::Arg(1), Value::Arg(0)),
            Some(Label::Must)
        );
        assert_eq!(gt.lookup("c", "x", Value::Arg(0), Value::Arg(1)), None);
        assert_eq!(gt.lookup("d", "w", Value::Arg(0), Value::Arg(1)), None);
    }

    #[test]
    fn gate_flags_optimism_on_must_only() {
        let m = module_with_one_func();
        let mut gt = GroundTruth::new();
        gt.insert("c", "w", Value::Arg(0), Value::Arg(1), Label::Must);
        // Pessimistic on a must pair: the gate held.
        let r = gt.check(
            "c",
            &m,
            &[query(0, Value::Arg(0), Value::Arg(1), false)],
            OptimismKind::NoAlias,
        );
        assert!(r.clean());
        assert_eq!(r.pessimism_held, 1);
        // Optimistic on the same pair: violation.
        let r = gt.check(
            "c",
            &m,
            &[query(0, Value::Arg(1), Value::Arg(0), true)],
            OptimismKind::NoAlias,
        );
        assert_eq!(r.violations.len(), 1);
        assert!(!r.clean());
        assert!(r.describe_violations().contains("must-labelled"));
    }

    #[test]
    fn gate_respects_optimism_kind() {
        let m = module_with_one_func();
        let mut gt = GroundTruth::new();
        gt.insert("c", "w", Value::Arg(0), Value::Arg(1), Label::No);
        // Under NoAlias optimism, optimistic-on-No is the confirmed payoff…
        let r = gt.check(
            "c",
            &m,
            &[query(0, Value::Arg(0), Value::Arg(1), true)],
            OptimismKind::NoAlias,
        );
        assert!(r.clean());
        assert_eq!(r.optimism_confirmed, 1);
        // …but under MustAlias optimism the same verdict is a violation.
        let r = gt.check(
            "c",
            &m,
            &[query(0, Value::Arg(0), Value::Arg(1), true)],
            OptimismKind::MustAlias,
        );
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn may_and_unlabelled_never_violate() {
        let m = module_with_one_func();
        let mut gt = GroundTruth::new();
        gt.insert("c", "w", Value::Arg(0), Value::Arg(1), Label::May);
        let r = gt.check(
            "c",
            &m,
            &[
                query(0, Value::Arg(0), Value::Arg(1), true),
                query(0, Value::Arg(0), Value::Arg(1), false),
                query(0, Value::Arg(0), Value::ConstInt(0), true),
            ],
            OptimismKind::NoAlias,
        );
        assert!(r.clean());
        assert_eq!(r.optimism_on_may, 1);
        assert_eq!(r.pessimism_on_may, 1);
        assert_eq!(r.unchecked, 1);
    }

    #[test]
    fn merge_and_absorb_accumulate() {
        let mut a = GroundTruth::new();
        a.insert("c1", "w", Value::Arg(0), Value::Arg(1), Label::No);
        let mut b = GroundTruth::new();
        b.insert("c2", "w", Value::Arg(0), Value::Arg(1), Label::Must);
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.counts(), (1, 0, 1));
        assert_eq!(a.pairs().count(), 2);

        let mut total = TruthReport::default();
        let one = TruthReport {
            checked: 3,
            optimism_confirmed: 2,
            pessimism_held: 1,
            ..Default::default()
        };
        total.absorb(&one);
        total.absorb(&one);
        assert_eq!(total.checked, 6);
        assert_eq!(total.optimism_confirmed, 4);
        assert!(total.clean());
    }
}
