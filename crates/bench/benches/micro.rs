//! Microbenchmarks of the infrastructure itself (not a paper figure):
//! alias-query throughput per analysis, points-to solving, MemorySSA
//! clobber walks, IR interpretation, and the verifier. These bound the
//! cost of one probing iteration and justify the driver's design
//! (executable-hash caching, deduction).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oraql_analysis::andersen::AndersenAA;
use oraql_analysis::basic::BasicAA;
use oraql_analysis::location::MemoryLocation;
use oraql_analysis::memssa::MemorySsa;
use oraql_analysis::steens::SteensgaardAA;
use oraql_analysis::AAManager;
use oraql_ir::module::FunctionId;
use oraql_ir::Module;
use oraql_vm::Interpreter;

fn big_module() -> Module {
    let case = oraql_workloads::find_case("lulesh_mpi").unwrap();
    (case.build)()
}

fn bench_aa(c: &mut Criterion) {
    let m = big_module();
    let f = m.find_func("CalcEnergyForElems").expect("kernel present");
    let func = m.func(f);
    // Collect some access locations to query pairwise.
    let locs: Vec<MemoryLocation> = func
        .live_insts()
        .filter_map(|id| MemoryLocation::of_access(func, id))
        .take(24)
        .collect();

    let mut g = c.benchmark_group("alias-analysis");
    g.bench_function("BasicAA/pairwise-24-locs", |b| {
        b.iter_batched(
            || {
                let mut aa = AAManager::new();
                aa.add(Box::new(BasicAA::new()));
                aa
            },
            |mut aa| {
                let mut n = 0u32;
                for x in &locs {
                    for y in &locs {
                        if aa.alias(&m, f, x, y) == oraql_analysis::AliasResult::NoAlias {
                            n += 1;
                        }
                    }
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("Steensgaard/build", |b| b.iter(|| SteensgaardAA::new(&m)));
    g.bench_function("Andersen/build+solve", |b| b.iter(|| AndersenAA::new(&m)));
    g.bench_function("MemorySSA/build-per-function", |b| {
        b.iter(|| {
            (0..m.funcs.len())
                .map(|i| MemorySsa::build(m.func(FunctionId(i as u32))).num_defs())
                .sum::<usize>()
        })
    });
    g.finish();
}

fn bench_pipeline_and_vm(c: &mut Criterion) {
    let case = oraql_workloads::find_case("testsnap").unwrap();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.bench_function("standard-pipeline/testsnap", |b| {
        b.iter(|| {
            oraql::compile::compile(&*case.build, &oraql::compile::CompileOptions::baseline())
        })
    });
    g.finish();

    let compiled =
        oraql::compile::compile(&*case.build, &oraql::compile::CompileOptions::baseline());
    let mut g = c.benchmark_group("vm");
    g.bench_function("interpret/testsnap", |b| {
        b.iter(|| Interpreter::run_main(&compiled.module).unwrap())
    });
    g.finish();

    // Verifier throughput on realistic output.
    let out = Interpreter::run_main(&compiled.module).unwrap();
    let verifier = oraql::Verifier::new(
        vec![out.stdout.clone()],
        &oraql_workloads::toolkit::standard_ignore_patterns(),
    );
    let mut g = c.benchmark_group("verify");
    g.bench_function("check/testsnap-output", |b| {
        b.iter(|| verifier.check(&out.stdout).is_ok())
    });
    g.finish();
}

criterion_group!(benches, bench_aa, bench_pipeline_and_vm);
criterion_main!(benches);
