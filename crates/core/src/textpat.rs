//! A miniature text-pattern matcher used by the verification harness to
//! ignore volatile parts of program output (the paper uses regular
//! expressions for this; `regex` is outside our dependency budget and
//! the verification needs only these forms).
//!
//! Pattern syntax (matched against one whole line):
//! * literal characters match themselves,
//! * `<int>` matches an optionally-signed decimal integer,
//! * `<float>` matches a decimal number with optional sign, fraction
//!   and exponent,
//! * `<any>` matches any (possibly empty) run of characters, lazily,
//! * `<word>` matches a maximal run of non-space characters.

/// A parsed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    parts: Vec<Part>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Part {
    Lit(String),
    Int,
    Float,
    Any,
    Word,
}

impl Pattern {
    /// Parses a pattern string.
    pub fn parse(src: &str) -> Pattern {
        let mut parts = Vec::new();
        let mut lit = String::new();
        let mut rest = src;
        while !rest.is_empty() {
            let matched = [
                ("<int>", Part::Int),
                ("<float>", Part::Float),
                ("<any>", Part::Any),
                ("<word>", Part::Word),
            ]
            .into_iter()
            .find(|(tag, _)| rest.starts_with(tag));
            match matched {
                Some((tag, part)) => {
                    if !lit.is_empty() {
                        parts.push(Part::Lit(std::mem::take(&mut lit)));
                    }
                    parts.push(part);
                    rest = &rest[tag.len()..];
                }
                None => {
                    let mut chars = rest.chars();
                    lit.push(chars.next().unwrap());
                    rest = chars.as_str();
                }
            }
        }
        if !lit.is_empty() {
            parts.push(Part::Lit(lit));
        }
        Pattern { parts }
    }

    /// Does the whole `line` match this pattern?
    pub fn matches(&self, line: &str) -> bool {
        matches_from(&self.parts, line)
    }
}

fn eat_int(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut i = 0;
    if i < b.len() && (b[i] == b'-' || b[i] == b'+') {
        i += 1;
    }
    let digits_start = i;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    (i > digits_start).then_some(i)
}

fn eat_float(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut i = eat_int(s)?;
    if i < b.len() && b[i] == b'.' {
        i += 1;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        if let Some(n) = eat_int(&s[i + 1..]) {
            i += 1 + n;
        }
    }
    Some(i)
}

fn matches_from(parts: &[Part], s: &str) -> bool {
    match parts.split_first() {
        None => s.is_empty(),
        Some((Part::Lit(l), rest)) => s
            .strip_prefix(l.as_str())
            .map(|tail| matches_from(rest, tail))
            .unwrap_or(false),
        Some((Part::Int, rest)) => eat_int(s)
            .map(|n| matches_from(rest, &s[n..]))
            .unwrap_or(false),
        Some((Part::Float, rest)) => eat_float(s)
            .map(|n| matches_from(rest, &s[n..]))
            .unwrap_or(false),
        Some((Part::Word, rest)) => {
            let n = s.find(|c: char| c.is_whitespace()).unwrap_or(s.len());
            n > 0 && matches_from(rest, &s[n..])
        }
        Some((Part::Any, rest)) => {
            // Lazy: try every split point.
            (0..=s.len())
                .filter(|&i| s.is_char_boundary(i))
                .any(|i| matches_from(rest, &s[i..]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals() {
        let p = Pattern::parse("hello world");
        assert!(p.matches("hello world"));
        assert!(!p.matches("hello worlds"));
        assert!(!p.matches("hello"));
    }

    #[test]
    fn ints_and_floats() {
        let p = Pattern::parse("grind time = <float> ms");
        assert!(p.matches("grind time = 12.5 ms"));
        assert!(p.matches("grind time = -3 ms"));
        assert!(p.matches("grind time = 1.2e-4 ms"));
        assert!(!p.matches("grind time = fast ms"));

        let q = Pattern::parse("rank <int> done");
        assert!(q.matches("rank 12 done"));
        assert!(!q.matches("rank 1.5 done"));
    }

    #[test]
    fn any_and_word() {
        let p = Pattern::parse("Runtime:<any>s");
        assert!(p.matches("Runtime: 12.5 seconds"));
        assert!(p.matches("Runtime:s"));
        assert!(!p.matches("Walltime: 12.5 seconds"));

        let w = Pattern::parse("<word> cycles");
        assert!(w.matches("123456 cycles"));
        assert!(!w.matches(" cycles"));
    }

    #[test]
    fn full_line_anchoring() {
        let p = Pattern::parse("x = <int>");
        assert!(!p.matches("x = 5 extra"));
        assert!(!p.matches("prefix x = 5"));
    }

    #[test]
    fn float_does_not_eat_trailing_dot_garbage() {
        let p = Pattern::parse("<float>!");
        assert!(p.matches("3.25!"));
        assert!(p.matches("3.!")); // "3." is a valid partial float
        assert!(!p.matches("!"));
    }
}
