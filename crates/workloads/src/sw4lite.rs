//! SW4lite — seismic-wave proxy: halo exchange between a grid and its
//! rank communication buffers, followed by an outlined stencil sweep.
//!
//! The aliasing story: MPI codes pack boundary windows of the grid into
//! send buffers each step. The optimized single-rank path skips the
//! copy by pointing the "send buffer" straight at the grid edge
//! (zero-copy), so the pack kernel's source and destination — both
//! opaque pointers loaded from the rank context — genuinely overlap,
//! while the stencil's read grid and write grid stay disjoint. The
//! conservative chain can resolve neither; ORAQL must keep the packed
//! edge pessimistic and may keep the stencil optimistic.

use crate::toolkit::*;
use oraql::compile::Scope;
use oraql::TestCase;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::module::Module;
use oraql_ir::value::Value;
use oraql_ir::Ty;

/// Grid cells per rank.
const N: i64 = 16;
/// Halo width in cells.
const H: i64 = 2;
/// Byte offset of the edge window (the last `H` cells).
const EDGE: i64 = 8 * (N - H);

fn build() -> Module {
    let mut m = Module::new("sw4lite");
    let bytes = 8 * N as u64;
    let ctx = make_ctx(
        &mut m,
        "sw4",
        &[("grid", bytes), ("unew", bytes), ("recv", 8 * H as u64)],
        // Zero-copy send buffer: a planted view of the grid edge.
        &[("send", "grid", EDGE)],
    );

    // Halo pack: read the interior window, write the send buffer, with
    // an edge-cell probe bracketing the first copy — on the zero-copy
    // path the probe's read pointer and the send pointer alias, so a
    // wrong no-alias forwards the stale edge value into the printed sum.
    let pack = {
        let mut b = FunctionBuilder::new(&mut m, "packHalo", vec![Ty::Ptr], None);
        b.set_src_file("sw4lite");
        b.set_loc("sw4lite", 118, 5);
        let cp = b.arg(0);
        let tag = ctx.tag_data;
        let grid = dptr(&mut b, &ctx, cp, "grid");
        let send = dptr(&mut b, &ctx, cp, "send");
        let edge = b.gep(grid, EDGE);
        let e1 = b.load_tbaa(Ty::F64, edge, tag);
        b.store_tbaa(Ty::F64, Value::const_f64(9.25), send, tag);
        let e2 = b.load_tbaa(Ty::F64, edge, tag); // must observe zero-copy store
        let s = b.fadd(e1, e2);
        b.print("edge probe {}", vec![s]);
        b.counted_loop(Value::ConstInt(0), Value::ConstInt(H), |b, i| {
            let sg = b.gep_scaled(grid, i, 8, 8); // interior window [1, 1+H)
            let dg = b.gep_scaled(send, i, 8, 0);
            let v = b.load_tbaa(Ty::F64, sg, tag);
            b.store_tbaa(Ty::F64, v, dg, tag);
        });
        b.ret(None);
        b.finish()
    };

    // Outlined 3-point stencil over the interior: unew[i] from grid's
    // neighbors. Read and write grids are disjoint allocations — the
    // profitable optimism.
    let stencil = {
        let mut b = outlined_worker(&mut m, "rhs4th3fort", "sw4lite");
        b.set_loc("sw4lite", 233, 5);
        let tid = b.arg(0);
        let cp = b.arg(1);
        let tag = ctx.tag_data;
        let grid = dptr(&mut b, &ctx, cp, "grid");
        let unew = dptr(&mut b, &ctx, cp, "unew");
        let (lo, hi) = chunk_bounds(&mut b, tid, N - 2, 2);
        let lo1 = b.add(lo, Value::ConstInt(1));
        let hi1 = b.add(hi, Value::ConstInt(1));
        b.counted_loop(lo1, hi1, |b, i| {
            let gl = b.gep_scaled(grid, i, 8, -8);
            let gc = b.gep_scaled(grid, i, 8, 0);
            let gr = b.gep_scaled(grid, i, 8, 8);
            let a = b.load_tbaa(Ty::F64, gl, tag);
            let c = b.load_tbaa(Ty::F64, gc, tag);
            let r = b.load_tbaa(Ty::F64, gr, tag);
            let ac = b.fadd(a, c);
            let acr = b.fadd(ac, r);
            let scaled = b.fmul(acr, Value::const_f64(0.25));
            let ug = b.gep_scaled(unew, i, 8, 0);
            b.store_tbaa(Ty::F64, scaled, ug, tag);
        });
        b.ret(None);
        b.finish()
    };

    let mut b = main_builder(&mut m, "sw4_main");
    init_ctx(&mut b, &ctx);
    fill_array(&mut b, &ctx, "grid", N, 2.0, 0.5);
    fill_array(&mut b, &ctx, "unew", N, 0.0, 0.0);
    fill_array(&mut b, &ctx, "recv", H, 0.0, 0.0);
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(3), |b, _| {
        b.call(pack, vec![Value::Global(ctx.global)], None);
        b.parallel_region(stencil, vec![Value::Global(ctx.global)], 2);
    });
    checksum(&mut b, &ctx, "unew", N, "wavefield");
    timing_epilogue(&mut b, "pts/s");
    b.ret(None);
    b.finish();
    m
}

/// The SW4lite halo-exchange test case.
pub fn cases() -> Vec<TestCase> {
    let mut c = TestCase::new("sw4lite_halo", build);
    c.scope = Scope::files(vec!["sw4lite".into()]);
    c.ignore_patterns = standard_ignore_patterns();
    vec![c]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn builds_and_runs() {
        let m = build();
        oraql_ir::verify::assert_valid(&m);
        let out = Interpreter::run_main(&m).unwrap();
        assert!(
            out.stdout.contains("checksum(wavefield)="),
            "{}",
            out.stdout
        );
        assert!(out.stdout.contains("edge probe"), "{}", out.stdout);
    }
}
