/root/repo/target/debug/deps/fig3_report-4347b658cf142fdb.d: crates/bench/benches/fig3_report.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_report-4347b658cf142fdb.rmeta: crates/bench/benches/fig3_report.rs Cargo.toml

crates/bench/benches/fig3_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
