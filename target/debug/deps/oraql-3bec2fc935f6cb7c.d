/root/repo/target/debug/deps/oraql-3bec2fc935f6cb7c.d: crates/workloads/src/bin/oraql.rs

/root/repo/target/debug/deps/oraql-3bec2fc935f6cb7c: crates/workloads/src/bin/oraql.rs

crates/workloads/src/bin/oraql.rs:
