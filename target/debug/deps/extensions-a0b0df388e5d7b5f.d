/root/repo/target/debug/deps/extensions-a0b0df388e5d7b5f.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-a0b0df388e5d7b5f: tests/extensions.rs

tests/extensions.rs:
