/root/repo/target/debug/deps/prop_pipeline-a3ee4f880eb04122.d: tests/prop_pipeline.rs tests/common/mod.rs

/root/repo/target/debug/deps/prop_pipeline-a3ee4f880eb04122: tests/prop_pipeline.rs tests/common/mod.rs

tests/prop_pipeline.rs:
tests/common/mod.rs:
