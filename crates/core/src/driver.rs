//! The ORAQL probing driver (paper §IV-B), parallel edition.
//!
//! Workflow: compile and run with the ORAQL pass deactivated and verify
//! the reference behaviour; try answering *every* query optimistically
//! (the empty sequence); if that breaks verification, bisect with the
//! configured strategy to pin down the queries that must stay
//! pessimistic.
//!
//! # Probe execution and caching
//!
//! Every probe goes through one shared `ProbeEngine` per driver,
//! which answers it from (in order):
//!
//! 1. the **decisions-digest cache** — identical decision vectors skip
//!    even the recompile (parallel mode only, keyed by the case name
//!    plus [`Decisions::render`]);
//! 2. the **persistent verdict store** ([`oraql_store::Store`], when
//!    [`DriverOptions::store`] is set) — a write-through tier behind
//!    the in-memory caches: verdicts another *process* computed are
//!    reused, first by decisions digest (skipping the compile), then by
//!    executable hash (skipping the run);
//! 3. the **executable-hash cache** — bit-identical recompilations
//!    reuse the previous test verdict (the seed driver's cache, now a
//!    `Mutex<HashMap>` shared across all probing threads of a suite);
//! 4. an actual VM execution plus output verification.
//!
//! Every verdict that reaches the in-memory caches is also appended to
//! the store, and the accepted references are recorded under the case
//! salt — the keys are salted content hashes, so a changed workload,
//! verifier input, or fuel budget changes every key and stale entries
//! are simply never consulted. Store hits are traced as
//! [`ProbeKind::StoreHit`] and counted into the existing effort
//! counters (`tests_dec_cached` for compile-free answers, `tests_cached`
//! for run-free answers); the store's own [`oraql_store::StoreStats`]
//! record the persistent-tier economics.
//!
//! # Concurrency and determinism contract
//!
//! * With `jobs = 1` (the default) no worker pool exists, speculative
//!   handles are deferred, and the driver reproduces the sequential
//!   seed driver byte-for-byte: same probe order, same
//!   [`ProbeEffort`] counters, same final [`Decisions`].
//! * With `jobs > 1` the bisection strategies launch **speculative
//!   sibling probes** ([`Prober::probe_speculative`]) on a bounded
//!   [`WorkerPool`]; when the Fig. 2 deduction rule fires, the
//!   now-unneeded sibling is cancelled. In parallel mode every probe
//!   outcome is a pure function of the probed decision vector
//!   (compilation and the VM are deterministic, and cache hits report
//!   the freshly compiled unique-query count), so parallel runs are
//!   repeatable at any job count and decide the same queries as
//!   `jobs = 1`: the final decisions agree in
//!   [`Decisions::canonical`] form and all verification verdicts
//!   match. (Raw explicit vectors can differ in no-op trailing
//!   entries, because sequential mode preserves the seed driver's
//!   quirk of reporting the *first inserter's* unique count on an
//!   executable-cache hit.) Effort counters and cache-hit
//!   classifications may also differ — speculation executes extra
//!   probes — which is why Fig. 2/Fig. 4-style analysis should consume
//!   the probe trace ([`crate::trace`]) rather than raw counters.
//! * The test budget (`max_tests`) is accounted in executed tests; with
//!   speculation those include wasted probes, so budget-truncated runs
//!   are only guaranteed reproducible at `jobs = 1`.

use crate::compile::{compile, CompileOptions, Compiled, Scope};
use crate::pass::{OptimismKind, OraqlStats, UniqueQuery};
use crate::pool::{CancelToken, WorkerPool};
use crate::sequence::Decisions;
use crate::strategy::{ProbeOutcome, Prober, SpeculativeProbe, Strategy};
use crate::trace::{ProbeEvent, ProbeKind, TraceSink};
use crate::verify::{Mismatch, Verifier};
use oraql_ir::module::Module;
use oraql_passes::Stats;
use oraql_store::Store;
use oraql_vm::{InterpMode, Interpreter, RunOutcome};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// A benchmark handed to the driver: how to build the program, where
/// ORAQL may answer, and how to verify output.
pub struct TestCase {
    /// Benchmark name.
    pub name: String,
    /// Builds a fresh module (one "compilation" input). Must be
    /// deterministic: the driver compiles it many times, possibly from
    /// several probe threads at once.
    pub build: Arc<dyn Fn() -> Module + Send + Sync>,
    /// ORAQL scope restriction (files / target).
    pub scope: Scope,
    /// Ignore patterns for volatile output lines (see [`crate::textpat`]).
    pub ignore_patterns: Vec<String>,
    /// Extra acceptable reference outputs (the paper's multiple
    /// references for e.g. rank-dependent meshes).
    pub extra_references: Vec<String>,
    /// VM fuel per test run.
    pub fuel: u64,
    /// Register the CFL points-to analyses in the chain.
    pub use_cfl: bool,
    /// What optimistic answers mean (§VIII extension).
    pub optimism: crate::pass::OptimismKind,
}

impl TestCase {
    /// Convenience constructor with defaults.
    pub fn new(name: &str, build: impl Fn() -> Module + Send + Sync + 'static) -> Self {
        TestCase {
            name: name.to_owned(),
            build: Arc::new(build),
            scope: Scope::everything(),
            ignore_patterns: Vec::new(),
            extra_references: Vec::new(),
            fuel: oraql_vm::DEFAULT_FUEL,
            use_cfl: false,
            optimism: crate::pass::OptimismKind::NoAlias,
        }
    }
}

/// Driver options.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Bisection strategy.
    pub strategy: Strategy,
    /// Upper bound on executed tests (compiles still happen for cached
    /// verdicts).
    pub max_tests: u64,
    /// Record `-debug-pass=Executions` trace lines in the final compile.
    pub trace_passes: bool,
    /// Probe concurrency. `1` (the default) is the sequential seed
    /// driver; `N > 1` enables speculative sibling probes on an
    /// `N`-worker pool and the decisions-digest cache.
    pub jobs: usize,
    /// Probe-trace sink; every probe answer is recorded here.
    pub trace: Option<TraceSink>,
    /// Interpreter execution mode for every VM run the driver performs
    /// (baseline, probes, final). Both modes are observably identical —
    /// see `oraql_vm::decode` — so this only affects probe latency.
    pub interp: InterpMode,
    /// Persistent verdict store shared across processes (CLI:
    /// `--store <path>`). `None` (the default) keeps the seed behaviour:
    /// verdicts live and die with the process. With a store attached,
    /// cold runs write every verdict through, and warm runs answer
    /// probes without compiling — at *any* job count, including the
    /// sequential `jobs = 1` driver, whose probe order is a pure
    /// function of the answered outcomes and therefore replays
    /// identically from stored (pass, unique) pairs.
    pub store: Option<Arc<Store>>,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            strategy: Strategy::Chunked,
            max_tests: 4_096,
            trace_passes: false,
            jobs: 1,
            trace: None,
            interp: InterpMode::default(),
            store: None,
        }
    }
}

/// Probing effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeEffort {
    /// Compilations performed.
    pub compiles: u64,
    /// Tests actually executed (VM run + verification).
    pub tests_run: u64,
    /// Tests skipped because a bit-identical executable was seen before.
    pub tests_cached: u64,
    /// Tests skipped by the Fig. 2 deduction rule.
    pub tests_deduced: u64,
    /// Probes answered from the decisions-digest cache without even
    /// recompiling (parallel driver only).
    pub tests_dec_cached: u64,
    /// Speculative sibling probes launched on the worker pool.
    pub spec_launched: u64,
    /// Speculative probes cancelled before their verdict was consumed
    /// (the deduction rule or a passing parent made them unnecessary).
    pub spec_cancelled: u64,
}

/// Everything the driver learned about one benchmark.
pub struct DriverResult {
    /// Benchmark name.
    pub name: String,
    /// Did the fully-optimistic compile verify on the first try?
    pub fully_optimistic: bool,
    /// The final (locally maximal) decision source.
    pub decisions: Decisions,
    /// ORAQL query counters from the final compilation (Fig. 4 columns).
    pub oraql: OraqlStats,
    /// `# No-Alias Results` of the baseline compilation (Fig. 4
    /// "Original").
    pub no_alias_original: u64,
    /// `# No-Alias Results` of the final ORAQL compilation.
    pub no_alias_oraql: u64,
    /// Baseline pass statistics.
    pub baseline_stats: Stats,
    /// Final pass statistics.
    pub final_stats: Stats,
    /// Baseline execution (reference run).
    pub baseline_run: RunOutcome,
    /// Final execution.
    pub final_run: RunOutcome,
    /// Probing effort.
    pub effort: ProbeEffort,
    /// Unique queries of the final compilation (report input).
    pub queries: Vec<UniqueQuery>,
    /// The final optimized module.
    pub final_module: Module,
    /// Pass trace of the final compilation (when requested).
    pub pass_trace: Vec<String>,
}

impl DriverResult {
    /// Relative change of no-alias results, the Fig. 4 `Δ` column.
    pub fn no_alias_delta_percent(&self) -> f64 {
        if self.no_alias_original == 0 {
            return 0.0;
        }
        (self.no_alias_oraql as f64 - self.no_alias_original as f64) / self.no_alias_original as f64
            * 100.0
    }
}

/// Driver errors.
#[derive(Debug)]
pub enum DriverError {
    /// The baseline compile did not verify against itself (broken case).
    BaselineBroken(Mismatch),
    /// The final sequence failed verification (driver bug).
    FinalBroken(Mismatch),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::BaselineBroken(m) => write!(f, "baseline failed verification: {m}"),
            DriverError::FinalBroken(m) => write!(f, "final sequence failed verification: {m}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Thread-shared probe verdict caches. One instance may back a whole
/// suite run: the executable-hash key and the decisions digest are both
/// salted with the case name, so entries from different benchmarks
/// never collide even when their module text coincides (their verifier
/// references may differ).
#[derive(Debug, Default)]
pub struct VerdictCaches {
    /// executable hash -> (verdict, unique query count)
    exe: Mutex<HashMap<u64, (bool, u64)>>,
    /// decisions digest -> (verdict, unique query count)
    dec: Mutex<HashMap<u64, (bool, u64)>>,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl VerdictCaches {
    /// Entries in the executable-hash cache.
    pub fn exe_entries(&self) -> usize {
        lock_ignore_poison(&self.exe).len()
    }

    /// Entries in the decisions-digest cache.
    pub fn dec_entries(&self) -> usize {
        lock_ignore_poison(&self.dec).len()
    }
}

fn module_hash(salt: u64, m: &Module) -> u64 {
    let text = oraql_ir::printer::module_str(m);
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    text.hash(&mut h);
    h.finish()
}

fn decisions_digest(salt: u64, d: &Decisions) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    d.render().hash(&mut h);
    h.finish()
}

/// Cache-key salt identifying one case within shared caches: a probe
/// verdict is only transferable between probes that agree on the case
/// name *and* the accepted references — the verdict of a bit-identical
/// module under a different verifier is a different fact.
fn case_salt(case: &TestCase, references: &[String]) -> u64 {
    let mut h = DefaultHasher::new();
    case.name.hash(&mut h);
    references.hash(&mut h);
    case.ignore_patterns.hash(&mut h);
    case.fuel.hash(&mut h);
    h.finish()
}

/// The probe execution engine: everything needed to answer one probe,
/// shareable across the worker pool (`Sync`). The seed driver's
/// `compile_with` + `probe` logic lives here unchanged; the caches are
/// merely behind mutexes now.
struct ProbeEngine {
    case_name: String,
    salt: u64,
    build: Arc<dyn Fn() -> Module + Send + Sync>,
    scope: Scope,
    use_cfl: bool,
    optimism: OptimismKind,
    fuel: u64,
    interp: InterpMode,
    verifier: Verifier,
    /// Enables the decisions-digest cache (parallel mode only, so that
    /// `jobs = 1` reproduces seed effort counters exactly).
    use_dec_cache: bool,
    caches: Arc<VerdictCaches>,
    /// Persistent write-through tier behind the in-memory caches.
    /// Consulted at any job count: stored outcomes are pure functions
    /// of the probed decision vector, so replaying them cannot perturb
    /// the bisection path.
    store: Option<Arc<Store>>,
    effort: Mutex<ProbeEffort>,
    trace: Option<TraceSink>,
    trace_seq: AtomicU64,
}

impl ProbeEngine {
    fn effort(&self) -> MutexGuard<'_, ProbeEffort> {
        lock_ignore_poison(&self.effort)
    }

    fn trace_event(
        &self,
        digest: u64,
        kind: ProbeKind,
        pass: bool,
        unique: u64,
        speculative: bool,
        started: Instant,
    ) {
        if let Some(sink) = &self.trace {
            sink.record(ProbeEvent {
                case: self.case_name.clone(),
                seq: self.trace_seq.fetch_add(1, Ordering::Relaxed),
                digest,
                kind,
                pass,
                unique,
                speculative,
                wall_micros: started.elapsed().as_micros() as u64,
            });
        }
    }

    /// Answers one probe: decisions cache, compile, executable cache,
    /// then an actual execution. Safe to call from any thread.
    fn execute(&self, d: &Decisions, speculative: bool) -> ProbeOutcome {
        self.execute_inner(d, speculative, None)
            .expect("non-cancellable probe always completes")
    }

    /// [`ProbeEngine::execute`] with an advisory abort point: a
    /// cancelled speculative probe stops between the compile and the
    /// (usually much more expensive) test execution and returns `None`
    /// without recording a probe answer. The waiter recomputes inline
    /// in that case, so verdicts are never lost — only wasted work is.
    fn execute_inner(
        &self,
        d: &Decisions,
        speculative: bool,
        cancel: Option<&CancelToken>,
    ) -> Option<ProbeOutcome> {
        let started = Instant::now();
        let digest = decisions_digest(self.salt, d);
        if self.use_dec_cache {
            if let Some(&(pass, unique)) = lock_ignore_poison(&self.caches.dec).get(&digest) {
                self.effort().tests_dec_cached += 1;
                self.trace_event(
                    digest,
                    ProbeKind::DecisionCacheHit,
                    pass,
                    unique,
                    speculative,
                    started,
                );
                return Some(ProbeOutcome { pass, unique });
            }
        }
        if let Some(store) = &self.store {
            // Persistent decisions-digest tier: a previous process (or
            // an earlier case of this run) already answered this exact
            // decision vector — skip even the compile.
            if let Some((pass, unique)) = store.dec_verdict(digest) {
                self.effort().tests_dec_cached += 1;
                if self.use_dec_cache {
                    lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
                }
                self.trace_event(
                    digest,
                    ProbeKind::StoreHit,
                    pass,
                    unique,
                    speculative,
                    started,
                );
                return Some(ProbeOutcome { pass, unique });
            }
        }
        if cancel.is_some_and(|t| t.is_cancelled()) {
            return None;
        }
        self.effort().compiles += 1;
        let compiled = compile(
            &*self.build,
            &CompileOptions {
                oraql: Some((d.clone(), self.scope.clone())),
                use_cfl: self.use_cfl,
                optimism: self.optimism,
                ..CompileOptions::default()
            },
        );
        let unique = compiled
            .oraql
            .as_ref()
            .map(|s| s.lock().stats.unique())
            .unwrap_or(0);
        let h = module_hash(self.salt, &compiled.module);
        let hit = lock_ignore_poison(&self.caches.exe).get(&h).copied();
        if let Some((pass, cached_unique)) = hit {
            self.effort().tests_cached += 1;
            // Sequential mode preserves the seed driver's quirk of
            // reporting the unique count recorded when the verdict was
            // first cached. Parallel mode reports the freshly compiled
            // count instead: cache insertion order is
            // scheduling-dependent under speculation, and the fresh
            // count makes every probe outcome a pure function of the
            // probed decision vector — which is what keeps the
            // bisection path (and the final decisions) identical across
            // job counts.
            let unique = if self.use_dec_cache {
                unique
            } else {
                cached_unique
            };
            if self.use_dec_cache {
                lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
            }
            self.store_dec(digest, pass, unique);
            self.trace_event(
                digest,
                ProbeKind::ExeCacheHit,
                pass,
                unique,
                speculative,
                started,
            );
            return Some(ProbeOutcome { pass, unique });
        }
        if let Some(store) = &self.store {
            // Persistent executable-hash tier: a previous process ran
            // this exact executable — reuse its verdict, skip the run.
            if let Some((pass, stored_unique)) = store.exe_verdict(h) {
                self.effort().tests_cached += 1;
                lock_ignore_poison(&self.caches.exe).insert(h, (pass, stored_unique));
                // Same reporting rule as the in-memory hit above: the
                // stored unique count *is* the first inserter's count.
                let unique = if self.use_dec_cache {
                    unique
                } else {
                    stored_unique
                };
                if self.use_dec_cache {
                    lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
                }
                self.store_dec(digest, pass, unique);
                self.trace_event(
                    digest,
                    ProbeKind::StoreHit,
                    pass,
                    unique,
                    speculative,
                    started,
                );
                return Some(ProbeOutcome { pass, unique });
            }
        }
        if cancel.is_some_and(|t| t.is_cancelled()) {
            return None;
        }
        self.effort().tests_run += 1;
        let pass = match run_module(&compiled.module, self.fuel, self.interp) {
            Ok(run) => self.verifier.check(&run.stdout).is_ok(),
            Err(_) => false, // traps count as verification failures
        };
        lock_ignore_poison(&self.caches.exe).insert(h, (pass, unique));
        if self.use_dec_cache {
            lock_ignore_poison(&self.caches.dec).insert(digest, (pass, unique));
        }
        if let Some(store) = &self.store {
            let _ = store.record_exe(h, pass, unique);
        }
        self.store_dec(digest, pass, unique);
        self.trace_event(
            digest,
            ProbeKind::Executed,
            pass,
            unique,
            speculative,
            started,
        );
        Some(ProbeOutcome { pass, unique })
    }

    /// Write-through of the probe's *answered outcome* under its
    /// decisions digest, so a warm run replays the exact (pass, unique)
    /// pair this run reported — including the sequential exe-cache
    /// quirk. Store I/O errors are deliberately swallowed: a read-only
    /// or full disk degrades the store to a read tier, it never fails a
    /// probe.
    fn store_dec(&self, digest: u64, pass: bool, unique: u64) {
        if let Some(store) = &self.store {
            let _ = store.record_dec(digest, pass, unique);
        }
    }
}

/// A speculative probe in flight on the worker pool.
struct PendingProbe {
    rx: Receiver<ProbeOutcome>,
    token: CancelToken,
}

/// The probing driver.
pub struct Driver<'c> {
    case: &'c TestCase,
    opts: DriverOptions,
    engine: Arc<ProbeEngine>,
    pool: Option<Arc<WorkerPool>>,
    pending: HashMap<u64, PendingProbe>,
    next_ticket: u64,
}

impl<'c> Driver<'c> {
    /// Runs the full workflow on one case with private caches; a
    /// private worker pool is created when `opts.jobs > 1`.
    pub fn run(case: &'c TestCase, opts: DriverOptions) -> Result<DriverResult, DriverError> {
        let pool = (opts.jobs > 1).then(|| Arc::new(WorkerPool::new(opts.jobs)));
        Self::run_shared(case, opts, Arc::new(VerdictCaches::default()), pool)
    }

    /// [`Driver::run`] against caller-provided caches and worker pool,
    /// so a suite run shares both across benchmarks.
    pub fn run_shared(
        case: &'c TestCase,
        opts: DriverOptions,
        caches: Arc<VerdictCaches>,
        pool: Option<Arc<WorkerPool>>,
    ) -> Result<DriverResult, DriverError> {
        // Step 1: baseline (ORAQL deactivated) — produces the reference.
        let baseline = compile(&*case.build, &CompileOptions::baseline());
        let baseline_run = run_module(&baseline.module, case.fuel, opts.interp)
            .map_err(|e| DriverError::BaselineBroken(Mismatch::ExecutionFailed(e)))?;
        let mut references = vec![baseline_run.stdout.clone()];
        references.extend(case.extra_references.iter().cloned());
        let salt = case_salt(case, &references);
        if let Some(store) = &opts.store {
            // Record the accepted references under the case salt: a
            // warm reader can tell *what* a salt's verdicts were
            // verified against, and the record doubles as an integrity
            // anchor (same salt ⇒ same references, by construction).
            let _ = store.record_references(salt, &references);
        }
        let verifier = Verifier::new(references, &case.ignore_patterns);
        verifier
            .check(&baseline_run.stdout)
            .map_err(DriverError::BaselineBroken)?;

        let engine = Arc::new(ProbeEngine {
            case_name: case.name.clone(),
            salt,
            build: Arc::clone(&case.build),
            scope: case.scope.clone(),
            use_cfl: case.use_cfl,
            optimism: case.optimism,
            fuel: case.fuel,
            interp: opts.interp,
            verifier,
            use_dec_cache: opts.jobs > 1,
            caches,
            store: opts.store.clone(),
            effort: Mutex::new(ProbeEffort::default()),
            trace: opts.trace.clone(),
            trace_seq: AtomicU64::new(0),
        });
        let mut driver = Driver {
            case,
            opts,
            engine,
            pool,
            pending: HashMap::new(),
            next_ticket: 0,
        };

        // Step 2: the empty sequence — everything optimistic.
        let all_opt = Decisions::all_optimistic();
        let first = driver.probe(&all_opt);
        let (fully_optimistic, decisions) = if first.pass {
            (true, all_opt)
        } else {
            // Step 3: bisect.
            let d = driver.opts.strategy.solve(&mut driver);
            (false, d)
        };

        // Step 4: final compile + verification.
        let final_opts = CompileOptions {
            oraql: Some((decisions.clone(), case.scope.clone())),
            use_cfl: case.use_cfl,
            trace_passes: driver.opts.trace_passes,
            optimism: case.optimism,
            ..CompileOptions::default()
        };
        let finalc = compile(&*case.build, &final_opts);
        let final_run = run_module(&finalc.module, case.fuel, driver.opts.interp)
            .map_err(|e| DriverError::FinalBroken(Mismatch::ExecutionFailed(e)))?;
        driver
            .engine
            .verifier
            .check(&final_run.stdout)
            .map_err(DriverError::FinalBroken)?;

        if let Some(store) = &driver.opts.store {
            // Checkpoint the journal once per case: bounds the loss
            // window on power failure without paying a sync per probe.
            let _ = store.sync();
        }
        let effort = *driver.engine.effort();
        let shared = finalc.oraql.as_ref().expect("oraql installed");
        let st = shared.lock();
        Ok(DriverResult {
            name: case.name.clone(),
            fully_optimistic,
            decisions,
            oraql: st.stats,
            no_alias_original: baseline.no_alias_total,
            no_alias_oraql: finalc.no_alias_total,
            baseline_stats: baseline.stats,
            final_stats: finalc.stats.clone(),
            baseline_run,
            final_run,
            effort,
            queries: st.queries.clone(),
            final_module: finalc.module.clone(),
            pass_trace: finalc.pass_trace.clone(),
        })
    }

    /// Compiles with a fixed decision source, bypassing probe caching
    /// (used by tests and tooling that need the [`Compiled`] artifact).
    pub fn compile_with(&mut self, d: &Decisions) -> Compiled {
        self.engine.effort().compiles += 1;
        compile(
            &*self.case.build,
            &CompileOptions {
                oraql: Some((d.clone(), self.case.scope.clone())),
                use_cfl: self.case.use_cfl,
                optimism: self.case.optimism,
                ..CompileOptions::default()
            },
        )
    }
}

fn run_module(m: &Module, fuel: u64, mode: InterpMode) -> Result<RunOutcome, String> {
    let main = m.find_func("main").ok_or("no main")?;
    let mut interp = Interpreter::new(m).with_fuel(fuel).with_mode(mode);
    match interp.run(main, vec![]) {
        Ok(_) => Ok(RunOutcome {
            stdout: interp.stdout().to_owned(),
            stats: interp.stats(),
        }),
        Err(e) => Err(e.to_string()),
    }
}

impl Prober for Driver<'_> {
    fn probe(&mut self, d: &Decisions) -> ProbeOutcome {
        self.engine.execute(d, false)
    }

    fn budget_exceeded(&self) -> bool {
        self.engine.effort().tests_run >= self.opts.max_tests
    }

    fn note_deduced(&mut self) {
        self.engine.effort().tests_deduced += 1;
        self.engine
            .trace_event(0, ProbeKind::Deduced, false, 0, false, Instant::now());
    }

    fn probe_speculative(&mut self, d: &Decisions) -> SpeculativeProbe {
        let Some(pool) = &self.pool else {
            // Sequential mode: defer — the probe runs inline at the
            // wait site, preserving the seed driver's probe order.
            return SpeculativeProbe {
                decisions: d.clone(),
                ticket: None,
            };
        };
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let (tx, rx) = channel();
        let token = CancelToken::default();
        let engine = Arc::clone(&self.engine);
        let decisions = d.clone();
        let job_token = token.clone();
        self.engine.effort().spec_launched += 1;
        pool.submit(move || {
            if job_token.is_cancelled() {
                return;
            }
            if let Some(o) = engine.execute_inner(&decisions, true, Some(&job_token)) {
                let _ = tx.send(o);
            }
        });
        self.pending.insert(ticket, PendingProbe { rx, token });
        SpeculativeProbe {
            decisions: d.clone(),
            ticket: Some(ticket),
        }
    }

    fn wait_probe(&mut self, h: SpeculativeProbe) -> ProbeOutcome {
        match h.ticket.and_then(|t| self.pending.remove(&t)) {
            Some(p) => match p.rx.recv() {
                Ok(o) => o,
                // The job observed a (stale) cancellation or the pool is
                // shutting down; recompute inline — the caches make this
                // cheap if the work already happened.
                Err(_) => self.engine.execute(&h.decisions, false),
            },
            None => self.engine.execute(&h.decisions, false),
        }
    }

    fn cancel_probe(&mut self, h: SpeculativeProbe) {
        if let Some(p) = h.ticket.and_then(|t| self.pending.remove(&t)) {
            p.token.cancel();
            self.engine.effort().spec_cancelled += 1;
        }
    }
}

/// Runs several cases concurrently (one driver thread per case, all at
/// once) and returns results in input order. This is the driver-level
/// parallelism used by the Fig. 4 harness across the sixteen
/// configurations. With `opts.jobs > 1` all drivers share one verdict
/// cache and one speculative-probe pool; with `jobs = 1` each driver is
/// fully independent, matching the seed behaviour.
pub fn run_many(
    cases: &[TestCase],
    opts: &DriverOptions,
) -> Vec<Result<DriverResult, DriverError>> {
    let shared = (opts.jobs > 1).then(|| {
        (
            Arc::new(VerdictCaches::default()),
            Arc::new(WorkerPool::new(opts.jobs)),
        )
    });
    let mut results: Vec<Option<Result<DriverResult, DriverError>>> =
        (0..cases.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            let opts = opts.clone();
            let shared = shared.clone();
            handles.push((
                i,
                s.spawn(move || match shared {
                    Some((caches, pool)) => Driver::run_shared(case, opts, caches, Some(pool)),
                    None => Driver::run(case, opts),
                }),
            ));
        }
        for (i, h) in handles {
            results[i] = Some(h.join().expect("driver thread panicked"));
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// Runs a suite under a global probe-concurrency budget: at most
/// `opts.jobs` cases probe at any moment, all sharing one
/// [`VerdictCaches`] and one [`WorkerPool`] for speculative siblings.
/// With `jobs = 1` the cases run strictly sequentially, reproducing the
/// seed CLI's `--all` behaviour exactly. Results are in input order.
pub fn run_suite(
    cases: &[TestCase],
    opts: &DriverOptions,
) -> Vec<Result<DriverResult, DriverError>> {
    if opts.jobs <= 1 {
        return cases.iter().map(|c| Driver::run(c, opts.clone())).collect();
    }
    let caches = Arc::new(VerdictCaches::default());
    let pool = Arc::new(WorkerPool::new(opts.jobs));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<DriverResult, DriverError>>>> =
        (0..cases.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..opts.jobs.min(cases.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= cases.len() {
                    break;
                }
                let r = Driver::run_shared(
                    &cases[i],
                    opts.clone(),
                    Arc::clone(&caches),
                    Some(Arc::clone(&pool)),
                );
                *lock_ignore_poison(&results[i]) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, Ty, Value};

    /// A program with `danger` genuinely-aliasing pointer pairs (each in
    /// its own function, called with aliased arguments), `safe`
    /// non-aliasing pairs that still look may-aliasing to the
    /// conservative chain, and `inert` pairs whose answer no
    /// transformation acts on (these exercise the executable-hash
    /// cache).
    fn mixed_case(safe: usize, danger: usize, inert: usize) -> TestCase {
        TestCase::new("mixed", move || build_mixed(safe, danger, inert))
    }

    /// One opaque two-pointer kernel; `i` makes the name unique.
    fn add_worker(m: &mut Module, i: usize, kind: &str) -> oraql_ir::module::FunctionId {
        let mut b =
            FunctionBuilder::new(m, &format!("work_{kind}_{i}"), vec![Ty::Ptr, Ty::Ptr], None);
        b.set_src_file("kernel.c");
        let p = b.arg(0);
        let q = b.arg(1);
        if kind == "inert" {
            // A load the MemorySSA walk queries against the store, but
            // nothing is eliminable: decisions here do not change code.
            b.store(Ty::I64, Value::ConstInt(100), q);
            let l = b.load(Ty::I64, p);
            b.print("{}", vec![l]);
        } else {
            let l1 = b.load(Ty::I64, p);
            b.store(Ty::I64, Value::ConstInt(100), q);
            let l2 = b.load(Ty::I64, p); // stale if p==q answered no-alias
            let s = b.add(l1, l2);
            b.print("{}", vec![s]);
        }
        b.ret(None);
        b.finish()
    }

    fn build_mixed(safe: usize, danger: usize, inert: usize) -> Module {
        let mut m = Module::new("mixed");
        let workers_safe: Vec<_> = (0..safe).map(|i| add_worker(&mut m, i, "safe")).collect();
        let workers_danger: Vec<_> = (0..danger)
            .map(|i| add_worker(&mut m, i, "danger"))
            .collect();
        let workers_inert: Vec<_> = (0..inert).map(|i| add_worker(&mut m, i, "inert")).collect();
        let cells = 2 * (safe + danger + inert) + 2;
        let g = m.add_global("cells", 16 * cells as u64, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.set_src_file("main.c");
        let mut cell = 0i64;
        let mut fresh = |b: &mut FunctionBuilder| {
            let p = b.gep(Value::Global(g), 16 * cell);
            cell += 1;
            p
        };
        for w in workers_safe {
            let p = fresh(&mut b);
            let q = fresh(&mut b);
            b.store(Ty::I64, Value::ConstInt(5), p);
            b.call(w, vec![p, q], None);
        }
        for w in workers_danger {
            let p = fresh(&mut b);
            b.store(Ty::I64, Value::ConstInt(5), p);
            b.call(w, vec![p, p], None); // aliased!
        }
        for w in workers_inert {
            let p = fresh(&mut b);
            let q = fresh(&mut b);
            b.store(Ty::I64, Value::ConstInt(7), p);
            b.call(w, vec![p, q], None);
        }
        b.ret(None);
        b.finish();
        m
    }

    #[test]
    fn fully_optimistic_case_short_circuits() {
        let case = mixed_case(3, 0, 0);
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        assert!(r.fully_optimistic);
        assert_eq!(r.oraql.unique_pessimistic, 0);
        assert!(r.oraql.unique_optimistic > 0);
        assert!(r.no_alias_oraql > r.no_alias_original);
        assert_eq!(r.effort.tests_run, 1);
    }

    #[test]
    fn dangerous_queries_pinned_pessimistic() {
        let case = mixed_case(4, 1, 0);
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        assert!(!r.fully_optimistic);
        assert!(r.oraql.unique_pessimistic >= 1);
        assert!(
            r.oraql.unique_optimistic > r.oraql.unique_pessimistic,
            "most queries should stay optimistic: {:?}",
            r.oraql
        );
        // Output is verified inside the driver; also cross-check here.
        assert_eq!(r.baseline_run.stdout, r.final_run.stdout);
    }

    #[test]
    fn frequency_space_strategy_also_works() {
        let case = mixed_case(4, 1, 0);
        let r = Driver::run(
            &case,
            DriverOptions {
                strategy: Strategy::FrequencySpace,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.fully_optimistic);
        assert_eq!(r.baseline_run.stdout, r.final_run.stdout);
        assert!(r.oraql.unique_optimistic > 0);
    }

    #[test]
    fn hash_cache_kicks_in() {
        let case = mixed_case(4, 2, 4);
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        // Different sequences frequently produce identical executables
        // (decisions on queries that no transformation acts on).
        assert!(
            r.effort.tests_cached > 0,
            "expected cache hits: {:?}",
            r.effort
        );
        assert!(r.effort.compiles >= r.effort.tests_run + r.effort.tests_cached);
    }

    #[test]
    fn run_many_preserves_order() {
        let cases = vec![mixed_case(2, 0, 0), mixed_case(3, 1, 0)];
        let rs = run_many(&cases, &DriverOptions::default());
        assert_eq!(rs.len(), 2);
        assert!(rs[0].as_ref().unwrap().fully_optimistic);
        assert!(!rs[1].as_ref().unwrap().fully_optimistic);
    }

    #[test]
    fn parallel_driver_matches_sequential_decisions() {
        for strategy in [Strategy::Chunked, Strategy::FrequencySpace] {
            let case = mixed_case(4, 2, 2);
            let seq = Driver::run(
                &case,
                DriverOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            let par = Driver::run(
                &case,
                DriverOptions {
                    strategy,
                    jobs: 4,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(seq.decisions, par.decisions, "{strategy:?}");
            assert_eq!(seq.fully_optimistic, par.fully_optimistic);
            assert_eq!(seq.final_run.stdout, par.final_run.stdout);
            assert!(par.effort.spec_launched > 0, "speculation should engage");
        }
    }

    #[test]
    fn shared_verdict_cache_hit_under_concurrency() {
        // Inert pairs make many decision vectors compile bit-identically,
        // so concurrent probes must land in the shared executable cache.
        let case = mixed_case(3, 2, 5);
        let caches = Arc::new(VerdictCaches::default());
        let pool = Arc::new(WorkerPool::new(4));
        let r = Driver::run_shared(
            &case,
            DriverOptions {
                jobs: 4,
                ..Default::default()
            },
            Arc::clone(&caches),
            Some(pool),
        )
        .unwrap();
        assert!(!r.fully_optimistic);
        assert!(
            r.effort.tests_cached > 0,
            "expected shared-cache hits: {:?}",
            r.effort
        );
        assert!(caches.exe_entries() > 0);
        assert!(caches.dec_entries() > 0);
    }

    #[test]
    fn run_suite_sequential_equals_bounded_parallel() {
        let cases = vec![
            mixed_case(2, 0, 0),
            mixed_case(3, 1, 0),
            mixed_case(2, 1, 2),
        ];
        let seq = run_suite(&cases, &DriverOptions::default());
        let par = run_suite(
            &cases,
            &DriverOptions {
                jobs: 3,
                ..Default::default()
            },
        );
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.decisions, b.decisions);
            assert_eq!(a.final_run.stdout, b.final_run.stdout);
        }
    }

    #[test]
    fn warm_store_replays_sequential_run_without_compiles() {
        let dir = std::env::temp_dir().join(format!("oraql_driver_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.journal");

        let case = mixed_case(4, 2, 2);
        let store = Arc::new(Store::open(&path).unwrap());
        let cold = Driver::run(
            &case,
            DriverOptions {
                store: Some(Arc::clone(&store)),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cold.effort.tests_run > 0);
        assert!(store.stats().appends > 0, "{:?}", store.stats());
        drop(store);

        let store = Arc::new(Store::open(&path).unwrap());
        assert!(store.stats().recovered > 0);
        let warm = Driver::run(
            &case,
            DriverOptions {
                store: Some(Arc::clone(&store)),
                ..Default::default()
            },
        )
        .unwrap();
        // Every probe of the deterministic sequential run was answered
        // from the persistent decisions-digest tier: no compiles, no
        // tests, identical results.
        assert_eq!(warm.effort.tests_run, 0, "{:?}", warm.effort);
        assert_eq!(warm.effort.compiles, 0, "{:?}", warm.effort);
        assert!(warm.effort.tests_dec_cached > 0);
        assert_eq!(cold.decisions, warm.decisions);
        assert_eq!(cold.fully_optimistic, warm.fully_optimistic);
        assert_eq!(cold.final_run.stdout, warm.final_run.stdout);
        assert_eq!(cold.oraql, warm.oraql);
        assert!(store.stats().dec_hits > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_trace_records_all_probe_answers() {
        let sink = TraceSink::in_memory();
        let case = mixed_case(4, 1, 2);
        let r = Driver::run(
            &case,
            DriverOptions {
                trace: Some(sink.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let events = sink.events();
        let executed = events
            .iter()
            .filter(|e| e.kind == ProbeKind::Executed)
            .count() as u64;
        let cached = events
            .iter()
            .filter(|e| e.kind == ProbeKind::ExeCacheHit)
            .count() as u64;
        let deduced = events
            .iter()
            .filter(|e| e.kind == ProbeKind::Deduced)
            .count() as u64;
        assert_eq!(executed, r.effort.tests_run);
        assert_eq!(cached, r.effort.tests_cached);
        assert_eq!(deduced, r.effort.tests_deduced);
        // Sequential mode: per-case sequence numbers are contiguous.
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<_>>());
    }
}
