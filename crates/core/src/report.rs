//! Static impact identification (paper §IV-D): renders the queries the
//! ORAQL pass answered, in the Fig. 3 dump format, associating them with
//! the issuing pass, the containing function and source locations.
//! Also aggregates probe traces ([`crate::trace`]) into per-case effort
//! tables — the Fig. 2-style "how many tests did probing need" view.

use crate::pass::UniqueQuery;
use crate::trace::{ProbeEvent, ProbeKind};
use oraql_analysis::location::MemoryLocation;
use oraql_ir::module::Module;
use oraql_ir::printer;
use oraql_ir::value::Value;
use std::fmt::Write as _;

/// Which queries to dump — the four `-opt-aa-dump-*` flags. At least one
/// of each category must be set for output to appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumpFlags {
    /// Dump initial (non-cached) queries.
    pub first: bool,
    /// Dump queries that were later served from the cache (rendered via
    /// their `[Cached n]` annotation).
    pub cached: bool,
    /// Dump optimistically answered queries.
    pub optimistic: bool,
    /// Dump pessimistically answered queries.
    pub pessimistic: bool,
}

impl DumpFlags {
    /// The most common configuration: first pessimistic queries only
    /// (the "true aliases" worth inspecting).
    pub fn pessimistic_only() -> Self {
        DumpFlags {
            first: true,
            cached: true,
            optimistic: false,
            pessimistic: true,
        }
    }

    /// Everything.
    pub fn all() -> Self {
        DumpFlags {
            first: true,
            cached: true,
            optimistic: true,
            pessimistic: true,
        }
    }
}

fn describe_location(m: &Module, f: &oraql_ir::module::Function, loc: &MemoryLocation) -> String {
    let ptr = match loc.ptr {
        Value::Inst(id) => printer::inst_str(f, m, id),
        other => printer::value_str(other, m),
    };
    format!("{ptr} [{}]", loc.size)
}

fn src_of(f: &oraql_ir::module::Function, v: Value) -> Option<oraql_ir::SrcLoc> {
    match v {
        Value::Inst(id) => f.loc(id),
        _ => None,
    }
}

/// Renders one query in the Fig. 3 format.
pub fn render_query(m: &Module, q: &UniqueQuery) -> String {
    let f = m.func(q.func);
    let mut s = String::new();
    let kind = if q.optimistic {
        "Optimistic"
    } else {
        "Pessimistic"
    };
    let _ = writeln!(s, "[ORAQL] {kind} query [Cached {}]", q.cached_hits);
    let _ = writeln!(s, "[ORAQL]  - {}", describe_location(m, f, &q.a));
    let _ = writeln!(s, "[ORAQL]  - {}", describe_location(m, f, &q.b));
    let _ = writeln!(s, "[ORAQL] Scope: {}", f.name);
    for (tag, v) in [("LocA", q.a.ptr), ("LocB", q.b.ptr)] {
        if let Some(loc) = src_of(f, v) {
            let _ = writeln!(
                s,
                "[ORAQL] {tag}: {}:{}:{}",
                m.strings.resolve(loc.file),
                loc.line,
                loc.col
            );
        }
    }
    s
}

/// Renders the dump for a whole compilation, optionally interleaved with
/// the pass-execution trace lines (`-debug-pass=Executions` style), so
/// users can see which pass issued each initial query.
pub fn render_report(
    m: &Module,
    queries: &[UniqueQuery],
    flags: DumpFlags,
    pass_trace: &[String],
) -> String {
    let mut s = String::new();
    if !(flags.first || flags.cached) || !(flags.optimistic || flags.pessimistic) {
        return s; // one flag of each category is required (paper §IV-D)
    }
    let mut last_pass = String::new();
    for q in queries {
        let decision_selected =
            (q.optimistic && flags.optimistic) || (!q.optimistic && flags.pessimistic);
        let cache_selected = flags.first || (flags.cached && q.cached_hits > 0);
        if !decision_selected || !cache_selected {
            continue;
        }
        if q.pass != last_pass {
            // Find the matching trace line (pass *and* function), if
            // tracing was enabled.
            let fname = &m.func(q.func).name;
            let needle = format!("'{}' on Function '{}'", q.pass, fname);
            if let Some(line) = pass_trace.iter().find(|l| l.contains(&needle)) {
                let _ = writeln!(s, "[...] {line}");
            } else {
                let _ = writeln!(
                    s,
                    "[...] Executing Pass '{}' on Function '{}'...",
                    q.pass, fname
                );
            }
            last_pass = q.pass.clone();
        }
        s.push_str(&render_query(m, q));
    }
    s
}

/// Summarizes which passes issued how many (unique) queries — the data
/// behind the paper's per-pass breakdowns (e.g. Quicksilver: 61% from
/// memory SSA, 18% from GVN, ...).
pub fn queries_by_pass(queries: &[UniqueQuery]) -> Vec<(String, u64)> {
    let mut map: std::collections::BTreeMap<String, u64> = Default::default();
    for q in queries {
        *map.entry(q.pass.clone()).or_insert(0) += 1;
    }
    let mut v: Vec<(String, u64)> = map.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Aggregated view of one case's (or a whole trace's) probe events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// All probe answers (including deduced ones).
    pub probes: u64,
    /// Probes that compiled, ran and verified.
    pub executed: u64,
    /// Probes answered from the executable-hash cache.
    pub exe_cache_hits: u64,
    /// Probes answered from the decisions-digest cache.
    pub dec_cache_hits: u64,
    /// Probes answered from the persistent verdict store.
    pub store_hits: u64,
    /// Probes answered by the shared verdict server.
    pub server_hits: u64,
    /// Probes answered by the Fig. 2 deduction rule.
    pub deduced: u64,
    /// Probes that failed in the sandbox and degraded to may-alias.
    pub faulted: u64,
    /// Speculative probes cancelled after their compile already ran:
    /// pure waste, work the scheduler paid for and threw away.
    pub cancelled: u64,
    /// Probes launched speculatively for a bisection sibling.
    pub speculative: u64,
    /// Passing verdicts.
    pub passes: u64,
    /// Total wall time spent answering, in microseconds.
    pub wall_micros: u64,
    /// Largest unique-query count any probe observed.
    pub max_unique: u64,
}

impl TraceSummary {
    fn add(&mut self, e: &ProbeEvent) {
        self.probes += 1;
        match e.kind {
            ProbeKind::Executed => self.executed += 1,
            ProbeKind::ExeCacheHit => self.exe_cache_hits += 1,
            ProbeKind::DecisionCacheHit => self.dec_cache_hits += 1,
            ProbeKind::StoreHit => self.store_hits += 1,
            ProbeKind::ServerHit => self.server_hits += 1,
            ProbeKind::Deduced => self.deduced += 1,
            ProbeKind::Faulted => self.faulted += 1,
            ProbeKind::Cancelled => self.cancelled += 1,
        }
        if e.speculative {
            self.speculative += 1;
        }
        if e.pass {
            self.passes += 1;
        }
        self.wall_micros += e.wall_micros;
        self.max_unique = self.max_unique.max(e.unique);
    }
}

/// Aggregates a probe trace over all cases.
pub fn summarize_trace(events: &[ProbeEvent]) -> TraceSummary {
    let mut s = TraceSummary::default();
    for e in events {
        s.add(e);
    }
    s
}

/// Aggregates a probe trace per case, sorted by case name.
pub fn summarize_trace_by_case(events: &[ProbeEvent]) -> Vec<(String, TraceSummary)> {
    let mut map: std::collections::BTreeMap<String, TraceSummary> = Default::default();
    for e in events {
        map.entry(e.case.clone()).or_default().add(e);
    }
    map.into_iter().collect()
}

/// Renders the per-case probe-effort table plus a totals row — the
/// report path consuming the JSONL probe trace.
pub fn render_trace_summary(events: &[ProbeEvent]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<24} {:>7} {:>9} {:>9} {:>9} {:>7} {:>7} {:>8} {:>8} {:>7} {:>6} {:>10}",
        "case",
        "probes",
        "executed",
        "exe-cache",
        "dec-cache",
        "store",
        "server",
        "deduced",
        "faulted",
        "wasted",
        "spec",
        "wall(ms)"
    );
    let per_case = summarize_trace_by_case(events);
    for (name, t) in &per_case {
        let _ = writeln!(
            s,
            "{:<24} {:>7} {:>9} {:>9} {:>9} {:>7} {:>7} {:>8} {:>8} {:>7} {:>6} {:>10.1}",
            name,
            t.probes,
            t.executed,
            t.exe_cache_hits,
            t.dec_cache_hits,
            t.store_hits,
            t.server_hits,
            t.deduced,
            t.faulted,
            t.cancelled,
            t.speculative,
            t.wall_micros as f64 / 1000.0
        );
    }
    if per_case.len() > 1 {
        let t = summarize_trace(events);
        let _ = writeln!(
            s,
            "{:<24} {:>7} {:>9} {:>9} {:>9} {:>7} {:>7} {:>8} {:>8} {:>7} {:>6} {:>10.1}",
            "TOTAL",
            t.probes,
            t.executed,
            t.exe_cache_hits,
            t.dec_cache_hits,
            t.store_hits,
            t.server_hits,
            t.deduced,
            t.faulted,
            t.cancelled,
            t.speculative,
            t.wall_micros as f64 / 1000.0
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions, Scope};
    use crate::sequence::Decisions;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Ty, Value};

    fn compiled() -> (Module, Vec<UniqueQuery>, Vec<String>) {
        let build = || {
            let mut m = Module::new("t");
            let work = {
                // Mirrors the paper's TestSNAP shape: data pointers are
                // loaded from a context struct (`dptr` loads), so the
                // queried values are instructions with debug locations.
                let mut b = FunctionBuilder::new(&mut m, ".omp_outlined.", vec![Ty::Ptr], None);
                b.set_outlined(true);
                b.set_src_file("sna.cpp");
                let ctx = b.arg(0);
                b.set_loc("sna.cpp", 609, 60);
                let p = b.load(Ty::Ptr, ctx);
                b.set_loc("sna.cpp", 614, 46);
                let qslot = b.gep(ctx, 8);
                let q = b.load(Ty::Ptr, qslot);
                let l1 = b.load(Ty::F64, p);
                b.store(Ty::F64, Value::const_f64(1.0), q);
                let l2 = b.load(Ty::F64, p);
                let s = b.fadd(l1, l2);
                b.print("{}", vec![s]);
                b.ret(None);
                b.finish()
            };
            let g = m.add_global("buf", 16, vec![], false);
            let ctxg = m.add_global("ctx", 16, vec![], false);
            let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
            let p = b.gep(Value::Global(g), 0);
            b.store(Ty::F64, Value::const_f64(2.0), p);
            b.store(Ty::Ptr, p, Value::Global(ctxg));
            let slot2 = b.gep(Value::Global(ctxg), 8);
            b.store(Ty::Ptr, p, slot2);
            b.call(work, vec![Value::Global(ctxg)], None);
            b.ret(None);
            b.finish();
            m
        };
        let c = compile(
            &build,
            &CompileOptions {
                oraql: Some((Decisions::all_pessimistic(), Scope::everything())),
                trace_passes: true,
                ..CompileOptions::default()
            },
        );
        let st = c.oraql.unwrap();
        let queries = st.lock().queries.clone();
        (c.module, queries, c.pass_trace)
    }

    #[test]
    fn report_contains_fig3_elements() {
        let (m, queries, trace) = compiled();
        assert!(!queries.is_empty());
        let text = render_report(&m, &queries, DumpFlags::pessimistic_only(), &trace);
        assert!(text.contains("[ORAQL] Pessimistic query [Cached"), "{text}");
        assert!(text.contains("Scope: .omp_outlined."), "{text}");
        assert!(text.contains("Executing Pass"), "{text}");
        assert!(text.contains("sna.cpp:6"), "{text}");
    }

    #[test]
    fn flags_require_one_of_each_category() {
        let (m, queries, trace) = compiled();
        let none = DumpFlags {
            first: false,
            cached: false,
            optimistic: true,
            pessimistic: true,
        };
        assert!(render_report(&m, &queries, none, &trace).is_empty());
        let none2 = DumpFlags {
            first: true,
            cached: true,
            optimistic: false,
            pessimistic: false,
        };
        assert!(render_report(&m, &queries, none2, &trace).is_empty());
    }

    #[test]
    fn optimistic_filter_hides_pessimistic() {
        let (m, queries, trace) = compiled();
        let flags = DumpFlags {
            first: true,
            cached: true,
            optimistic: true,
            pessimistic: false,
        };
        let text = render_report(&m, &queries, flags, &trace);
        assert!(!text.contains("Pessimistic query"), "{text}");
    }

    #[test]
    fn per_pass_breakdown() {
        let (_, queries, _) = compiled();
        let by_pass = queries_by_pass(&queries);
        assert!(!by_pass.is_empty());
        let total: u64 = by_pass.iter().map(|(_, n)| n).sum();
        assert_eq!(total, queries.len() as u64);
    }

    fn trace_event(case: &str, kind: ProbeKind, pass: bool) -> ProbeEvent {
        ProbeEvent {
            case: case.into(),
            seq: 0,
            digest: 1,
            kind,
            pass,
            unique: 9,
            speculative: kind == ProbeKind::ExeCacheHit,
            wall_micros: 500,
        }
    }

    #[test]
    fn trace_summary_counts_kinds() {
        let events = vec![
            trace_event("a", ProbeKind::Executed, true),
            trace_event("a", ProbeKind::ExeCacheHit, false),
            trace_event("a", ProbeKind::Deduced, false),
            trace_event("b", ProbeKind::DecisionCacheHit, true),
            trace_event("b", ProbeKind::StoreHit, true),
            trace_event("b", ProbeKind::ServerHit, true),
            trace_event("b", ProbeKind::Faulted, false),
            trace_event("b", ProbeKind::Cancelled, false),
        ];
        let t = summarize_trace(&events);
        assert_eq!(t.probes, 8);
        assert_eq!(t.executed, 1);
        assert_eq!(t.exe_cache_hits, 1);
        assert_eq!(t.dec_cache_hits, 1);
        assert_eq!(t.store_hits, 1);
        assert_eq!(t.server_hits, 1);
        assert_eq!(t.deduced, 1);
        assert_eq!(t.faulted, 1);
        assert_eq!(t.cancelled, 1);
        assert_eq!(t.speculative, 1);
        assert_eq!(t.passes, 4);
        assert_eq!(t.max_unique, 9);
        let per_case = summarize_trace_by_case(&events);
        assert_eq!(per_case.len(), 2);
        assert_eq!(per_case[0].0, "a");
        assert_eq!(per_case[0].1.probes, 3);
        assert_eq!(per_case[1].1.server_hits, 1);
        let text = render_trace_summary(&events);
        assert!(text.contains("TOTAL"), "{text}");
        assert!(text.starts_with("case"), "{text}");
    }
}
