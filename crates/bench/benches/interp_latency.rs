//! Probe-latency microbenchmark for the two interpreter modes.
//!
//! Probing is execution-bound: every probe the driver cannot answer
//! from a cache is one full VM run, so interpreted instructions per
//! second bound the whole limit study's wall clock. This harness runs
//! every registered workload configuration (baseline-compiled, the
//! module shape probes actually execute) under both the tree-walk
//! reference and the pre-decoded executor, and writes the measured
//! per-run latency, instructions-per-second and speedup as JSON to
//! `$ORAQL_BENCH_OUT` (default `BENCH_interp.json` in the working
//! directory).
//!
//! Not a criterion bench: the JSON artifact is the point, and the
//! repeat count adapts to per-case runtime.

use oraql_vm::{InterpMode, Interpreter, RtVal, RuntimeError};
use std::time::Instant;

struct Measured {
    micros: f64,
    insts: u64,
}

fn run_once(
    m: &oraql_ir::Module,
    mode: InterpMode,
    fuel: u64,
) -> Result<(Option<RtVal>, u64), RuntimeError> {
    let main = m.find_func("main").expect("main");
    let mut interp = Interpreter::new(m).with_fuel(fuel).with_mode(mode);
    let r = interp.run(main, vec![])?;
    Ok((r, interp.stats().total_insts()))
}

/// Best-of-N wall time for both modes of one module, with tree/decoded
/// samples interleaved pairwise. The min estimator and the pairing both
/// guard against scheduler/frequency noise skewing one mode's samples;
/// N adapts so slow cases run a few times and fast ones enough to be
/// measurable. Each timed run constructs a fresh `Interpreter`, so
/// decode time is *included* in the decoded-mode numbers, exactly as a
/// driver probe pays it.
fn measure_pair(m: &oraql_ir::Module, fuel: u64) -> (Measured, Measured) {
    let (_, tree_insts) = run_once(m, InterpMode::TreeWalk, fuel).expect("workload executes");
    let (_, dec_insts) = run_once(m, InterpMode::Decoded, fuel).expect("workload executes");
    let probe = Instant::now();
    let _ = run_once(m, InterpMode::TreeWalk, fuel).expect("workload executes");
    let once = probe.elapsed().as_secs_f64();
    let reps = (0.5 / once.max(1e-6)).clamp(5.0, 40.0) as usize;
    let (mut tree_best, mut dec_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t = Instant::now();
        let _ = run_once(m, InterpMode::TreeWalk, fuel).expect("workload executes");
        tree_best = tree_best.min(t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        let _ = run_once(m, InterpMode::Decoded, fuel).expect("workload executes");
        dec_best = dec_best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    (
        Measured {
            micros: tree_best,
            insts: tree_insts,
        },
        Measured {
            micros: dec_best,
            insts: dec_insts,
        },
    )
}

fn main() {
    // `cargo bench -- --bench` etc. pass harness flags; ignore them.
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let (mut total_insts, mut total_tree_us, mut total_dec_us) = (0u64, 0.0f64, 0.0f64);
    for info in &oraql_workloads::CASE_INFOS {
        let case = oraql_workloads::find_case(info.name).expect("registered");
        let compiled =
            oraql::compile::compile(&*case.build, &oraql::compile::CompileOptions::baseline());
        let (tree, dec) = measure_pair(&compiled.module, case.fuel);
        assert_eq!(tree.insts, dec.insts, "{}: modes diverge", info.name);
        let speedup = tree.micros / dec.micros;
        let ips = |m: &Measured| m.insts as f64 / (m.micros / 1e6);
        println!(
            "{:22} {:>12.1} us tree  {:>12.1} us decoded  {:>5.2}x  ({} insts)",
            info.name, tree.micros, dec.micros, speedup, tree.insts
        );
        rows.push(format!(
            "    {{\"case\": \"{}\", \"insts\": {}, \"tree_us\": {:.1}, \"decoded_us\": {:.1}, \
             \"tree_ips\": {:.0}, \"decoded_ips\": {:.0}, \"speedup\": {:.3}}}",
            info.name,
            tree.insts,
            tree.micros,
            dec.micros,
            ips(&tree),
            ips(&dec),
            speedup
        ));
        speedups.push(speedup);
        total_insts += tree.insts;
        total_tree_us += tree.micros;
        total_dec_us += dec.micros;
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    // Total ips weights each case by its instruction count, i.e. the
    // aggregate rate at which the whole probe corpus is interpreted.
    let total_tree_ips = total_insts as f64 / (total_tree_us / 1e6);
    let total_dec_ips = total_insts as f64 / (total_dec_us / 1e6);
    let total_speedup = total_tree_us / total_dec_us;
    println!(
        "geomean speedup: {geomean:.2}x over {} cases",
        speedups.len()
    );
    println!(
        "total: {total_insts} insts, {:.1} M insts/s tree, {:.1} M insts/s decoded, {total_speedup:.2}x",
        total_tree_ips / 1e6,
        total_dec_ips / 1e6
    );

    let json = format!(
        "{{\n  \"bench\": \"interp_latency\",\n  \"modes\": [\"tree\", \"decoded\"],\n  \
         \"geomean_speedup\": {:.3},\n  \"total_insts\": {},\n  \"total_tree_ips\": {:.0},\n  \
         \"total_decoded_ips\": {:.0},\n  \"total_speedup\": {:.3},\n  \"cases\": [\n{}\n  ]\n}}\n",
        geomean,
        total_insts,
        total_tree_ips,
        total_dec_ips,
        total_speedup,
        rows.join(",\n")
    );
    let out = std::env::var("ORAQL_BENCH_OUT").unwrap_or_else(|_| "BENCH_interp.json".into());
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
