//! Shutdown accounting for the probe worker pool: the global
//! `oraql_pool_queue_depth` gauge must return exactly to its pre-pool
//! level on every teardown path — clean drains, rejected submits, and
//! workers dying mid-shutdown with jobs still queued (the drift bug:
//! stranded jobs used to keep their gauge increments forever).
//!
//! The gauge is process-global, so this suite lives in its own test
//! binary and runs everything from one `#[test]` to keep concurrent
//! pools from overlapping readings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;

use oraql::{SubmitError, WorkerPool};

fn depth() -> i64 {
    oraql_obs::global().gauge("oraql_pool_queue_depth").get()
}

/// Clean lifecycle: queued jobs all run, gauge returns to baseline.
fn clean_drop_drains_gauge() {
    let baseline = depth();
    let hits = Arc::new(AtomicU64::new(0));
    {
        let pool = WorkerPool::new(2);
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
    }
    assert_eq!(hits.load(Ordering::Relaxed), 16);
    assert_eq!(depth(), baseline, "gauge drifted across a clean drop");
}

/// A submit rejected by a closed pool must roll its gauge increment
/// back — the error path used to leak one count per rejected job.
fn rejected_submit_restores_gauge() {
    let baseline = depth();
    let pool = WorkerPool::new(1);
    pool.close();
    for _ in 0..8 {
        assert_eq!(
            pool.submit(|| unreachable!("closed pool must not run jobs")),
            Err(SubmitError)
        );
    }
    assert_eq!(depth(), baseline, "rejected submits leaked gauge counts");
    drop(pool);
    assert_eq!(depth(), baseline, "gauge drifted across drop");
}

/// The drift scenario proper: a width-1 pool whose only worker panics
/// during shutdown (so no replacement is spawned) strands the queued
/// jobs; `Drop` must drain them and release their gauge increments.
fn stranded_jobs_are_drained_on_drop() {
    oraql_faults::quiet_injected_panics();
    let baseline = depth();
    let pool = WorkerPool::new(1);
    let (started_tx, started_rx) = channel::<()>();
    let (gate_tx, gate_rx) = channel::<()>();
    pool.submit(move || {
        let _ = started_tx.send(());
        let _ = gate_rx.recv();
        std::panic::panic_any(oraql_faults::InjectedPanic("dies mid-shutdown"));
    })
    .unwrap();
    started_rx.recv().unwrap();
    // Jobs that will be stranded if the panic lands after shutdown
    // begins (and simply drained by the replacement worker if not —
    // the gauge must return to baseline either way).
    for _ in 0..8 {
        pool.submit(|| {}).unwrap();
    }
    let dropper = std::thread::spawn(move || drop(pool));
    // Give `Drop` time to set the shutdown flag before the worker dies.
    std::thread::sleep(std::time::Duration::from_millis(50));
    gate_tx.send(()).unwrap();
    dropper.join().unwrap();
    assert_eq!(depth(), baseline, "stranded jobs kept the gauge inflated");
}

#[test]
fn queue_depth_gauge_survives_every_teardown_path() {
    clean_drop_drains_gauge();
    rejected_submit_restores_gauge();
    stranded_jobs_are_drained_on_drop();
    assert_eq!(depth(), 0, "gauge must end the suite at zero");
}
