//! Benchmark configuration files for the CLI driver (the paper requires
//! "a configuration file that could be automatically generated from
//! common build, test, and profiling steps").
//!
//! Line-oriented `key = value` format; `#` starts a comment; repeatable
//! keys accumulate. Example:
//!
//! ```text
//! # TestSNAP, OpenMP configuration
//! benchmark = testsnap_omp
//! files = sna.cpp
//! strategy = chunked
//! ignore = Runtime: <float> cycles
//! ignore = grind time <float> ms
//! fuel = 500000000
//! max_tests = 4096
//! ```

use crate::compile::Scope;
use crate::strategy::Strategy;
use oraql_vm::InterpMode;

/// Parsed configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Benchmark name (resolved against a program registry by the CLI).
    pub benchmark: String,
    /// ORAQL scope.
    pub scope: Scope,
    /// Ignore patterns for the verifier.
    pub ignore: Vec<String>,
    /// Extra reference outputs (inline, `\n`-joined via repeated keys).
    pub references: Vec<String>,
    /// Bisection strategy.
    pub strategy: Strategy,
    /// VM fuel per test.
    pub fuel: u64,
    /// Test budget.
    pub max_tests: u64,
    /// Register the CFL points-to analyses.
    pub use_cfl: bool,
    /// Dump report after the run.
    pub dump: bool,
    /// Interpreter execution mode (`decoded` or `tree`).
    pub interp: InterpMode,
    /// Persistent verdict-store journal path (`store = <path>`; the
    /// CLI's `--no-store` overrides it).
    pub store: Option<String>,
    /// Verdict-server address (`server = host:port` or `server =
    /// unix:<path>`; the CLI's `--no-server` overrides it). Attaches
    /// `oraql-served` as a third cache tier behind the local store.
    pub server: Option<String>,
    /// Fault-injection plan spec (`fault_plan = seed=42,vm-trap=1/16`;
    /// see `oraql_faults::FaultPlan::parse`). Validated at parse time.
    pub fault_plan: Option<String>,
    /// Wall-clock watchdog per probe attempt, in milliseconds
    /// (`probe_deadline_ms = 2000`; 0 disables).
    pub probe_deadline_ms: u64,
    /// Metrics exposition output path (`metrics_out = <path>`; CLI
    /// flag `--metrics-out`). At the end of the run the registry
    /// snapshot is written there as Prometheus-style text.
    pub metrics_out: Option<String>,
    /// Span-trace output path (`spans_out = <path>`; CLI flag
    /// `--spans-out`). Enables span tracing; one JSONL line per span.
    pub spans_out: Option<String>,
    /// Speculation depth for the probe scheduler (`speculate_depth =
    /// 3`; CLI flag `--speculate-depth`). 0 disables speculation, 1
    /// speculates bisection siblings only, >= 2 adds grandchild hint
    /// probes. Ignored at `jobs = 1`.
    pub speculate_depth: u32,
    /// Cross-case probe dedup (`cross_case_dedup = false`; CLI flag
    /// `--no-cross-case-dedup`). On by default; only active when
    /// `jobs > 1`.
    pub cross_case_dedup: bool,
    /// Ground-truth soundness gate for generated (`gen:`) benchmarks
    /// (`soundness_gate = false` disables; CLI flag `--no-gate`). On by
    /// default; ignored for hand-written benchmarks, which have no
    /// labels to check against.
    pub soundness_gate: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            benchmark: String::new(),
            scope: Scope::everything(),
            ignore: Vec::new(),
            references: Vec::new(),
            strategy: Strategy::Chunked,
            fuel: oraql_vm::DEFAULT_FUEL,
            max_tests: 4_096,
            use_cfl: false,
            dump: false,
            interp: InterpMode::default(),
            store: None,
            server: None,
            fault_plan: None,
            probe_deadline_ms: 0,
            metrics_out: None,
            spans_out: None,
            speculate_depth: 1,
            cross_case_dedup: true,
            soundness_gate: true,
        }
    }
}

impl Config {
    /// Parses a configuration file's contents.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        for (ln, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "benchmark" => cfg.benchmark = value.to_owned(),
                "files" => {
                    let files: Vec<String> =
                        value.split(',').map(|s| s.trim().to_owned()).collect();
                    cfg.scope.files = Some(files);
                }
                "target" => cfg.scope.target = Some(value.to_owned()),
                "ignore" => cfg.ignore.push(value.to_owned()),
                "reference" => cfg.references.push(value.to_owned()),
                "strategy" => cfg.strategy = Strategy::parse(value)?,
                "fuel" => {
                    cfg.fuel = value
                        .parse()
                        .map_err(|e| format!("line {}: bad fuel: {e}", ln + 1))?
                }
                "max_tests" => {
                    cfg.max_tests = value
                        .parse()
                        .map_err(|e| format!("line {}: bad max_tests: {e}", ln + 1))?
                }
                "use_cfl" => {
                    cfg.use_cfl = value
                        .parse()
                        .map_err(|e| format!("line {}: bad use_cfl: {e}", ln + 1))?
                }
                "dump" => {
                    cfg.dump = value
                        .parse()
                        .map_err(|e| format!("line {}: bad dump: {e}", ln + 1))?
                }
                "interp" => {
                    cfg.interp = InterpMode::parse(value)
                        .ok_or_else(|| format!("line {}: bad interp: {value:?}", ln + 1))?
                }
                "store" => {
                    if value.is_empty() {
                        return Err(format!("line {}: store needs a path", ln + 1));
                    }
                    cfg.store = Some(value.to_owned());
                }
                "server" => {
                    if value.is_empty() {
                        return Err(format!("line {}: server needs an address", ln + 1));
                    }
                    cfg.server = Some(value.to_owned());
                }
                "fault_plan" => {
                    oraql_faults::FaultPlan::parse(value)
                        .map_err(|e| format!("line {}: {e}", ln + 1))?;
                    cfg.fault_plan = Some(value.to_owned());
                }
                "metrics_out" => {
                    if value.is_empty() {
                        return Err(format!("line {}: metrics_out needs a path", ln + 1));
                    }
                    cfg.metrics_out = Some(value.to_owned());
                }
                "spans_out" => {
                    if value.is_empty() {
                        return Err(format!("line {}: spans_out needs a path", ln + 1));
                    }
                    cfg.spans_out = Some(value.to_owned());
                }
                "probe_deadline_ms" => {
                    cfg.probe_deadline_ms = value
                        .parse()
                        .map_err(|e| format!("line {}: bad probe_deadline_ms: {e}", ln + 1))?
                }
                "speculate_depth" => {
                    cfg.speculate_depth = value
                        .parse()
                        .map_err(|e| format!("line {}: bad speculate_depth: {e}", ln + 1))?
                }
                "cross_case_dedup" => {
                    cfg.cross_case_dedup = value
                        .parse()
                        .map_err(|e| format!("line {}: bad cross_case_dedup: {e}", ln + 1))?
                }
                "soundness_gate" => {
                    cfg.soundness_gate = value
                        .parse()
                        .map_err(|e| format!("line {}: bad soundness_gate: {e}", ln + 1))?
                }
                other => return Err(format!("line {}: unknown key {other:?}", ln + 1)),
            }
        }
        if cfg.benchmark.is_empty() {
            return Err("missing `benchmark = <name>`".into());
        }
        Ok(cfg)
    }

    /// Loads and parses a configuration file.
    pub fn load(path: &str) -> Result<Config, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::parse(&src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            "# comment\n\
             benchmark = testsnap_omp\n\
             files = sna.cpp, util.cpp\n\
             target = host\n\
             strategy = frequency\n\
             ignore = Runtime: <float> cycles\n\
             ignore = rank <int> done\n\
             fuel = 1000\n\
             max_tests = 7\n\
             use_cfl = true\n\
             dump = true\n",
        )
        .unwrap();
        assert_eq!(cfg.benchmark, "testsnap_omp");
        assert_eq!(
            cfg.scope.files,
            Some(vec!["sna.cpp".to_owned(), "util.cpp".to_owned()])
        );
        assert_eq!(cfg.scope.target, Some("host".to_owned()));
        assert_eq!(cfg.strategy, Strategy::FrequencySpace);
        assert_eq!(cfg.ignore.len(), 2);
        assert_eq!(cfg.fuel, 1000);
        assert_eq!(cfg.max_tests, 7);
        assert!(cfg.use_cfl);
        assert!(cfg.dump);
    }

    #[test]
    fn defaults_are_sensible() {
        let cfg = Config::parse("benchmark = x\n").unwrap();
        assert_eq!(cfg.strategy, Strategy::Chunked);
        assert_eq!(cfg.scope, Scope::everything());
        assert!(!cfg.use_cfl);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Config::parse("").is_err()); // no benchmark
        assert!(Config::parse("benchmark = x\nwhat = y\n").is_err());
        assert!(Config::parse("benchmark = x\nfuel = lots\n").is_err());
        assert!(Config::parse("benchmark = x\nnonsense line\n").is_err());
        assert!(Config::parse("benchmark = x\nstore =\n").is_err());
        assert!(Config::parse("benchmark = x\nserver =\n").is_err());
        assert!(Config::parse("benchmark = x\nmetrics_out =\n").is_err());
        assert!(Config::parse("benchmark = x\nspans_out =\n").is_err());
    }

    #[test]
    fn parses_observability_paths() {
        let cfg = Config::parse(
            "benchmark = x\n\
             metrics_out = out/metrics.prom\n\
             spans_out = out/spans.jsonl\n",
        )
        .unwrap();
        assert_eq!(cfg.metrics_out.as_deref(), Some("out/metrics.prom"));
        assert_eq!(cfg.spans_out.as_deref(), Some("out/spans.jsonl"));
        let d = Config::parse("benchmark = x\n").unwrap();
        assert_eq!(d.metrics_out, None);
        assert_eq!(d.spans_out, None);
    }

    #[test]
    fn parses_store_path() {
        let cfg = Config::parse("benchmark = x\nstore = .oraql/verdicts.journal\n").unwrap();
        assert_eq!(cfg.store.as_deref(), Some(".oraql/verdicts.journal"));
        assert_eq!(Config::parse("benchmark = x\n").unwrap().store, None);
    }

    #[test]
    fn parses_server_address() {
        let cfg = Config::parse("benchmark = x\nserver = 127.0.0.1:7437\n").unwrap();
        assert_eq!(cfg.server.as_deref(), Some("127.0.0.1:7437"));
        let cfg = Config::parse("benchmark = x\nserver = unix:/run/oraql.sock\n").unwrap();
        assert_eq!(cfg.server.as_deref(), Some("unix:/run/oraql.sock"));
        assert_eq!(Config::parse("benchmark = x\n").unwrap().server, None);
    }

    #[test]
    fn parses_fault_plan_and_deadline() {
        let cfg = Config::parse(
            "benchmark = x\n\
             fault_plan = seed=9,vm-trap=1/8,compile-panic=1/16\n\
             probe_deadline_ms = 1500\n",
        )
        .unwrap();
        assert_eq!(
            cfg.fault_plan.as_deref(),
            Some("seed=9,vm-trap=1/8,compile-panic=1/16")
        );
        assert_eq!(cfg.probe_deadline_ms, 1500);
        let d = Config::parse("benchmark = x\n").unwrap();
        assert_eq!(d.fault_plan, None);
        assert_eq!(d.probe_deadline_ms, 0);
        // A malformed plan is rejected at parse time, not at run time.
        assert!(Config::parse("benchmark = x\nfault_plan = bogus-site=1/2\n").is_err());
        assert!(Config::parse("benchmark = x\nprobe_deadline_ms = soon\n").is_err());
    }

    #[test]
    fn parses_scheduler_knobs() {
        let cfg = Config::parse(
            "benchmark = x\n\
             speculate_depth = 3\n\
             cross_case_dedup = false\n",
        )
        .unwrap();
        assert_eq!(cfg.speculate_depth, 3);
        assert!(!cfg.cross_case_dedup);
        let d = Config::parse("benchmark = x\n").unwrap();
        assert_eq!(d.speculate_depth, 1);
        assert!(d.cross_case_dedup);
        assert!(Config::parse("benchmark = x\nspeculate_depth = deep\n").is_err());
        assert!(Config::parse("benchmark = x\ncross_case_dedup = maybe\n").is_err());
    }

    #[test]
    fn parses_soundness_gate() {
        let cfg = Config::parse("benchmark = x\nsoundness_gate = false\n").unwrap();
        assert!(!cfg.soundness_gate);
        assert!(Config::parse("benchmark = x\n").unwrap().soundness_gate);
        assert!(Config::parse("benchmark = x\nsoundness_gate = perhaps\n").is_err());
    }
}
