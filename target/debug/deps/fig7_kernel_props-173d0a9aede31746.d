/root/repo/target/debug/deps/fig7_kernel_props-173d0a9aede31746.d: crates/bench/benches/fig7_kernel_props.rs

/root/repo/target/debug/deps/fig7_kernel_props-173d0a9aede31746: crates/bench/benches/fig7_kernel_props.rs

crates/bench/benches/fig7_kernel_props.rs:
