/root/repo/target/debug/deps/oraql_passes-3ebce8ae49dc2f06.d: crates/passes/src/lib.rs crates/passes/src/dce.rs crates/passes/src/dse.rs crates/passes/src/earlycse.rs crates/passes/src/gvn.rs crates/passes/src/licm.rs crates/passes/src/loopdel.rs crates/passes/src/loopvec.rs crates/passes/src/manager.rs crates/passes/src/memcpyopt.rs crates/passes/src/memssa_prime.rs crates/passes/src/sink.rs crates/passes/src/slp.rs crates/passes/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/liboraql_passes-3ebce8ae49dc2f06.rmeta: crates/passes/src/lib.rs crates/passes/src/dce.rs crates/passes/src/dse.rs crates/passes/src/earlycse.rs crates/passes/src/gvn.rs crates/passes/src/licm.rs crates/passes/src/loopdel.rs crates/passes/src/loopvec.rs crates/passes/src/manager.rs crates/passes/src/memcpyopt.rs crates/passes/src/memssa_prime.rs crates/passes/src/sink.rs crates/passes/src/slp.rs crates/passes/src/stats.rs Cargo.toml

crates/passes/src/lib.rs:
crates/passes/src/dce.rs:
crates/passes/src/dse.rs:
crates/passes/src/earlycse.rs:
crates/passes/src/gvn.rs:
crates/passes/src/licm.rs:
crates/passes/src/loopdel.rs:
crates/passes/src/loopvec.rs:
crates/passes/src/manager.rs:
crates/passes/src/memcpyopt.rs:
crates/passes/src/memssa_prime.rs:
crates/passes/src/sink.rs:
crates/passes/src/slp.rs:
crates/passes/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
