/root/repo/target/debug/deps/runtime_table-f46a1be0fc79d242.d: crates/bench/benches/runtime_table.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_table-f46a1be0fc79d242.rmeta: crates/bench/benches/runtime_table.rs Cargo.toml

crates/bench/benches/runtime_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
