/root/repo/target/debug/deps/ablation-f35bf26b8b76b544.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-f35bf26b8b76b544: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
