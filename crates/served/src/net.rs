//! Transport abstraction: one address grammar and one connection type
//! over TCP and Unix-domain sockets, so the server, the embedded
//! client, and the CLI all speak through the same plumbing.
//!
//! # Concurrency contract
//!
//! [`Addr`] is plain data. A [`Conn`] wraps one socket and must be
//! owned by one thread at a time (frames interleaved by two writers are
//! garbage — see [`crate::protocol`]). A [`Listener`] may be cloned
//! with [`Listener::try_clone`] and accepted on from many threads
//! concurrently; the kernel hands each incoming connection to exactly
//! one acceptor.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A parsed server address: either a TCP `host:port` or a Unix-domain
/// socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// TCP endpoint, e.g. `127.0.0.1:7437`.
    Tcp(String),
    /// Unix-domain socket path, e.g. `/run/oraql/served.sock`.
    Unix(PathBuf),
}

impl Addr {
    /// Parses the address grammar used by `--server`, `--listen`, and
    /// the `server =` config key:
    ///
    /// * `unix:<path>` — Unix-domain socket (explicit);
    /// * anything containing a `/` — Unix-domain socket (a path);
    /// * otherwise — TCP `host:port`.
    pub fn parse(s: &str) -> Addr {
        if let Some(path) = s.strip_prefix("unix:") {
            Addr::Unix(PathBuf::from(path))
        } else if s.contains('/') {
            Addr::Unix(PathBuf::from(s))
        } else {
            Addr::Tcp(s.to_string())
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(hp) => write!(f, "{hp}"),
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// One accepted or dialed connection (either transport).
#[derive(Debug)]
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Dials `addr`, bounding the connection attempt by `timeout`
    /// (best effort: Unix-domain connects are effectively immediate and
    /// ignore it).
    pub fn connect(addr: &Addr, timeout: Duration) -> io::Result<Conn> {
        match addr {
            Addr::Tcp(hp) => {
                let sa = hp
                    .to_socket_addrs()?
                    .next()
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty address"))?;
                Ok(Conn::Tcp(TcpStream::connect_timeout(&sa, timeout)?))
            }
            #[cfg(unix)]
            Addr::Unix(p) => Ok(Conn::Unix(UnixStream::connect(p)?)),
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            )),
        }
    }

    /// Sets the read timeout (None = block forever). The server uses a
    /// short timeout so idle connection threads notice shutdown; the
    /// client uses it so a hung server cannot stall a probe.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Sets the write timeout (None = block forever).
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound listening socket (either transport).
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr`. For Unix-domain addresses a stale socket file from
    /// a previous (crashed) daemon is removed first — the journal locks
    /// protect the data, the socket file is just a rendezvous point.
    pub fn bind(addr: &Addr) -> io::Result<Listener> {
        match addr {
            Addr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp.as_str())?)),
            #[cfg(unix)]
            Addr::Unix(p) => {
                let _ = std::fs::remove_file(p);
                if let Some(dir) = p.parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)?;
                    }
                }
                Ok(Listener::Unix(UnixListener::bind(p)?))
            }
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are not available on this platform",
            )),
        }
    }

    /// The address this listener actually bound — for TCP this resolves
    /// `:0` to the kernel-assigned port, which is how in-process tests
    /// avoid port collisions.
    pub fn local_addr(&self) -> io::Result<Addr> {
        match self {
            Listener::Tcp(l) => Ok(Addr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(l) => {
                let sa = l.local_addr()?;
                let p = sa.as_pathname().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "unnamed unix socket")
                })?;
                Ok(Addr::Unix(p.to_path_buf()))
            }
        }
    }

    /// Clones the listener handle so several acceptor threads can share
    /// one bound socket.
    pub fn try_clone(&self) -> io::Result<Listener> {
        match self {
            Listener::Tcp(l) => Ok(Listener::Tcp(l.try_clone()?)),
            #[cfg(unix)]
            Listener::Unix(l) => Ok(Listener::Unix(l.try_clone()?)),
        }
    }

    /// Blocks until a peer connects and returns the connection.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => Ok(Conn::Tcp(l.accept()?.0)),
            #[cfg(unix)]
            Listener::Unix(l) => Ok(Conn::Unix(l.accept()?.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_grammar() {
        assert_eq!(
            Addr::parse("127.0.0.1:7437"),
            Addr::Tcp("127.0.0.1:7437".into())
        );
        assert_eq!(Addr::parse("localhost:0"), Addr::Tcp("localhost:0".into()));
        assert_eq!(
            Addr::parse("unix:/tmp/o.sock"),
            Addr::Unix(PathBuf::from("/tmp/o.sock"))
        );
        assert_eq!(
            Addr::parse("/tmp/o.sock"),
            Addr::Unix(PathBuf::from("/tmp/o.sock"))
        );
        assert_eq!(Addr::parse("unix:rel.sock"), Addr::Unix("rel.sock".into()));
        assert_eq!(Addr::parse("127.0.0.1:7437").to_string(), "127.0.0.1:7437");
        assert_eq!(Addr::parse("/tmp/o.sock").to_string(), "unix:/tmp/o.sock");
    }
}
