/root/repo/target/debug/deps/oraql_workloads-65054171c290db2e.d: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs

/root/repo/target/debug/deps/liboraql_workloads-65054171c290db2e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gridmini.rs crates/workloads/src/lulesh.rs crates/workloads/src/minife.rs crates/workloads/src/minigmg.rs crates/workloads/src/quicksilver.rs crates/workloads/src/testsnap.rs crates/workloads/src/toolkit.rs crates/workloads/src/xsbench.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gridmini.rs:
crates/workloads/src/lulesh.rs:
crates/workloads/src/minife.rs:
crates/workloads/src/minigmg.rs:
crates/workloads/src/quicksilver.rs:
crates/workloads/src/testsnap.rs:
crates/workloads/src/toolkit.rs:
crates/workloads/src/xsbench.rs:
