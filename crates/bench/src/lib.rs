//! Shared support for the benchmark harnesses that regenerate the
//! paper's tables and figures.
//!
//! Each bench target (`cargo bench -p oraql-bench --bench figN_...`)
//! prints the paper-shaped rows first, then runs a few Criterion
//! measurements of the machinery it exercised. Measured numbers are
//! recorded in `EXPERIMENTS.md`.

use oraql::{Driver, DriverOptions, DriverResult};
use oraql_workloads::{find_case, find_info, CaseInfo, CASE_INFOS};

/// Runs the full ORAQL workflow for one configuration.
pub fn run_config(name: &str) -> (CaseInfo, DriverResult) {
    let case = find_case(name).unwrap_or_else(|| panic!("unknown config {name}"));
    let info = find_info(name).expect("info");
    let r = Driver::run(&case, DriverOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
    (info, r)
}

/// Runs all sixteen configurations (sequentially; each driver is
/// internally deterministic).
pub fn run_all_configs() -> Vec<(CaseInfo, DriverResult)> {
    CASE_INFOS.iter().map(|i| run_config(i.name)).collect()
}

/// Formats a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Percentage delta, rendered like the paper (`+115.7%`).
pub fn pct(before: u64, after: u64) -> String {
    if before == 0 {
        return "n/a".into();
    }
    let d = (after as f64 - before as f64) / before as f64 * 100.0;
    format!("{d:+.1}%")
}

/// Prints a header followed by rows, with a separator line.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!(
        "{}",
        row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        println!("{}", row(r));
    }
}
