//! Property-style tests of individual components: decision sequences,
//! text patterns, the verifier, VM memory, alias-analysis symmetry,
//! dominators, and the bisection strategies. Randomized via the
//! deterministic generator in `common` (fixed seeds, reproducible).

mod common;

use common::Gen;
use oraql_suite::analysis::basic::BasicAA;
use oraql_suite::analysis::domtree::DomTree;
use oraql_suite::analysis::{AAManager, AliasResult, MemoryLocation};
use oraql_suite::ir::builder::FunctionBuilder;
use oraql_suite::ir::{Module, Ty, Value};
use oraql_suite::oraql::sequence::Decisions;
use oraql_suite::oraql::strategy::{chunked, frequency_space, ProbeOutcome, Prober};
use oraql_suite::oraql::textpat::Pattern;
use oraql_suite::oraql::Verifier;

const CASES: u64 = 64;

// ---------------------------------------------------------------- sequences

#[test]
fn decisions_render_parse_roundtrip() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let d = Decisions::Explicit {
            seq: g.bools(0, 64),
            tail: g.bool(),
        };
        let d2 = Decisions::parse(&d.render()).unwrap();
        for i in 0..96 {
            assert_eq!(d.decide(i), d2.decide(i), "seed {seed}, index {i}: {d:?}");
        }
    }
}

#[test]
fn class_decisions_roundtrip() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let n = g.range_usize(0, 6);
        let classes: Vec<(u64, u64)> = (0..n)
            .map(|_| (g.range_u64(1, 16), g.range_u64(0, 16)))
            .collect();
        let d = Decisions::PessimisticClasses(classes);
        let d2 = Decisions::parse(&d.render()).unwrap();
        for i in 0..256 {
            assert_eq!(d.decide(i), d2.decide(i), "seed {seed}, index {i}: {d:?}");
        }
    }
}

#[test]
fn pessimistic_count_matches_decide() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let d = Decisions::Explicit {
            seq: g.bools(0, 64),
            tail: true,
        };
        let n = g.range_u64(0, 96);
        let manual = (0..n).filter(|&i| !d.decide(i)).count() as u64;
        assert_eq!(d.pessimistic_count(n), manual, "seed {seed}: {d:?}");
    }
}

// ---------------------------------------------------------------- textpat

/// Replaces every digit run in `line` with `<int>`.
fn generalize(line: &str) -> String {
    let mut out = String::new();
    let mut in_num = false;
    for c in line.chars() {
        if c.is_ascii_digit() {
            if !in_num {
                out.push_str("<int>");
                in_num = true;
            }
        } else {
            in_num = false;
            out.push(c);
        }
    }
    out
}

#[test]
fn generalized_pattern_matches_original() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let line = format!(
            "{}{}{}",
            g.string("abcdefgz =:", 0, 12),
            g.range_u64(0, 1_000_000),
            g.string("abcdefgz =:", 0, 12)
        );
        let p = Pattern::parse(&generalize(&line));
        assert!(p.matches(&line), "seed {seed}: {line}");
    }
}

#[test]
fn literal_pattern_matches_only_itself() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let line = g.string("abcXYZ ", 1, 20);
        let other = g.string("abcXYZ ", 1, 20);
        let p = Pattern::parse(&line);
        assert!(p.matches(&line), "seed {seed}");
        assert_eq!(
            p.matches(&other),
            line == other,
            "seed {seed}: {line:?} vs {other:?}"
        );
    }
}

// ---------------------------------------------------------------- verifier

#[test]
fn verifier_accepts_identity_and_rejects_mutation() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let n = g.range_usize(1, 6);
        let lines: Vec<String> = (0..n)
            .map(|_| format!("{}={}", g.string("abcdefgh", 1, 8), g.range_u64(0, 10_000)))
            .collect();
        let reference = lines.join("\n") + "\n";
        let v = Verifier::exact(reference.clone());
        assert!(v.check(&reference).is_ok(), "seed {seed}");
        let victim = g.range_usize(0, lines.len());
        let mut mutated = lines.clone();
        mutated[victim] = format!("{}x", mutated[victim]);
        let bad = mutated.join("\n") + "\n";
        assert!(v.check(&bad).is_err(), "seed {seed}: {bad:?}");
    }
}

#[test]
fn ignore_patterns_excuse_only_matching_shapes() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let cycles_a = g.range_u64(0, 1_000_000);
        let cycles_b = g.range_u64(0, 1_000_000);
        let v = Verifier::new(
            vec![format!("ok\nRuntime: {cycles_a} cycles\n")],
            &["Runtime: <int> cycles".to_string()],
        );
        let ok_out = format!("ok\nRuntime: {cycles_b} cycles\n");
        assert!(v.check(&ok_out).is_ok(), "seed {seed}");
        // A shape change is not excused.
        assert!(
            v.check("ok\nRuntime: never cycles\n").is_err(),
            "seed {seed}"
        );
        // A change outside the volatile line is not excused.
        let bad_out = format!("no\nRuntime: {cycles_a} cycles\n");
        assert!(v.check(&bad_out).is_err(), "seed {seed}");
    }
}

// ---------------------------------------------------------------- memory

#[test]
fn vm_memory_roundtrips() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let len = g.range_usize(1, 64);
        let data: Vec<u8> = (0..len).map(|_| g.next_u64() as u8).collect();
        let gap = g.range_u64(0, 32);
        let mut m = Module::new("t");
        m.add_global("g", 128, vec![], false);
        let mut mem = oraql_suite::vm::memory::Memory::new(&m);
        let base = mem.global_base(0) + gap;
        if gap + data.len() as u64 <= 128 {
            mem.write(base, &data).unwrap();
            let mut back = vec![0u8; data.len()];
            mem.read(base, &mut back).unwrap();
            assert_eq!(data, back, "seed {seed}");
        } else {
            assert!(mem.write(base, &data).is_err(), "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------- alias analysis

/// Builds a function with a mix of pointer shapes and returns some
/// memory locations derived from its accesses.
fn location_zoo(offs: &[i64]) -> (Module, Vec<MemoryLocation>) {
    let mut m = Module::new("zoo");
    let g = m.add_global("g", 256, vec![], false);
    let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::Ptr], None);
    let mut ptrs = vec![Value::Arg(0), Value::Arg(1), Value::Global(g)];
    let a = b.alloca(128, "a");
    ptrs.push(a);
    for (i, &off) in offs.iter().enumerate() {
        let base = ptrs[i % ptrs.len()];
        let p = b.gep(base, off.rem_euclid(96));
        ptrs.push(p);
    }
    // Touch them all so the verifier is happy.
    let locs: Vec<MemoryLocation> = ptrs
        .iter()
        .map(|&p| MemoryLocation::precise(p, 8))
        .collect();
    for &p in &ptrs {
        b.store(Ty::I64, Value::ConstInt(1), p);
    }
    b.ret(None);
    b.finish();
    (m, locs)
}

fn random_offsets(g: &mut Gen, len_lo: usize, len_hi: usize) -> Vec<i64> {
    let n = g.range_usize(len_lo, len_hi);
    (0..n).map(|_| g.range_i64(-64, 64)).collect()
}

#[test]
fn alias_queries_are_symmetric() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let offs = random_offsets(&mut g, 1, 10);
        let (m, locs) = location_zoo(&offs);
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let f = oraql_suite::ir::FunctionId(0);
        for x in &locs {
            for y in &locs {
                let ab = aa.alias(&m, f, x, y);
                let ba = aa.alias(&m, f, y, x);
                assert_eq!(
                    ab, ba,
                    "seed {seed}: asymmetric for {:?} vs {:?}",
                    x.ptr, y.ptr
                );
            }
        }
    }
}

#[test]
fn identity_queries_are_must_alias() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let offs = random_offsets(&mut g, 1, 8);
        let (m, locs) = location_zoo(&offs);
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let f = oraql_suite::ir::FunctionId(0);
        for x in &locs {
            assert_eq!(
                aa.alias(&m, f, x, &x.clone()),
                AliasResult::MustAlias,
                "seed {seed}"
            );
        }
    }
}

// ---------------------------------------------------------------- dominators

#[test]
fn entry_dominates_every_reachable_block() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let splits = g.bools(1, 8);
        // Build a random chain of diamonds/straight segments.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::I1], None);
        for &diamond in &splits {
            if diamond {
                let t = b.new_block();
                let e = b.new_block();
                let j = b.new_block();
                let c = b.arg(0);
                b.cond_br(c, t, e);
                b.switch_to(t);
                b.br(j);
                b.switch_to(e);
                b.br(j);
                b.switch_to(j);
            } else {
                let n = b.new_block();
                b.br(n);
                b.switch_to(n);
            }
        }
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dt = DomTree::build(f);
        for &bb in dt.rpo() {
            assert!(
                dt.dominates(oraql_suite::ir::module::Function::ENTRY, bb),
                "seed {seed}"
            );
            // The idom, when present, strictly dominates.
            if let Some(d) = dt.idom(bb) {
                assert!(dt.dominates(d, bb), "seed {seed}");
                assert!(d != bb, "seed {seed}");
            }
        }
    }
}

// ---------------------------------------------------------------- strategies

struct Synthetic {
    dangerous: Vec<u64>,
    n: u64,
    tests: u64,
}

impl Prober for Synthetic {
    fn probe(&mut self, d: &Decisions) -> ProbeOutcome {
        self.tests += 1;
        ProbeOutcome {
            pass: self.dangerous.iter().all(|&i| !d.decide(i)),
            unique: self.n,
        }
    }
    fn budget_exceeded(&self) -> bool {
        self.tests > 50_000
    }
    fn note_deduced(&mut self) {}
}

#[test]
fn both_strategies_pin_all_dangerous_queries() {
    for seed in 0..48 {
        let mut g = Gen::new(seed);
        let k = g.range_usize(0, 12);
        let mut dangerous: Vec<u64> = (0..k).map(|_| g.range_u64(0, 200)).collect();
        dangerous.sort_unstable();
        dangerous.dedup();
        let n = 200 + g.range_u64(0, 56);
        for solve in [chunked as fn(&mut dyn Prober) -> Decisions, frequency_space] {
            let mut s = Synthetic {
                dangerous: dangerous.clone(),
                n,
                tests: 0,
            };
            let d = solve(&mut s);
            for &i in &dangerous {
                assert!(
                    !d.decide(i),
                    "seed {seed}: index {i} left optimistic: {d:?}"
                );
            }
            // Local maximality (sanity bound): the strategies should not
            // pessimize more than a small multiple of the dangerous set
            // plus bookkeeping.
            let pess = d.pessimistic_count(n);
            assert!(
                pess <= (dangerous.len() as u64) * 8 + 8,
                "seed {seed}: excessively pessimistic: {pess} for {} dangers",
                dangerous.len()
            );
        }
    }
}
