//! The wire-chaos capstone: a generated ground-truth corpus driven
//! through a live verdict server under the full network-fault matrix —
//! connection resets, torn and garbled frames, injected delays and
//! hangs, admission-control shedding (`BUSY`), and a simulated daemon
//! crash mid-run — with the PR 9 soundness gate armed the whole time.
//! The contract: chaos on the wire costs retries and fallbacks, never
//! verdicts. Every run must be byte-identical to the fault-free local
//! run, with zero soundness violations and zero missed optimism
//! beyond the baseline's.
//!
//! Also pins the fault-site table in `docs/ARCHITECTURE.md` §6 against
//! `oraql_faults::SITES`, so a new site cannot ship undocumented.

use std::sync::Arc;
use std::time::Duration;

use oraql_suite::gen::{suite, GenPlan};
use oraql_suite::oraql::faults::{FaultInjector, FaultPlan, FaultSite, Rate, SITES};
use oraql_suite::oraql::served::{Client, ClientOptions, CrashMode, Server, ServerOptions};
use oraql_suite::oraql::TestCase;
use oraql_suite::oraql::{run_suite, DriverOptions, DriverResult, TruthReport};

/// ≥256 cases, per the acceptance bar: every motif family, three
/// variants per case, fixed seed so the corpus (and hence the baseline
/// decisions) are pinned.
const PLAN: &str = "seed=77,cases=256,motifs=red+outlined+aos+csr+halo,per=3";

/// Fresh scratch directory, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("oraql_chaosnet_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs the corpus with the soundness gate armed, unwrapping any
/// driver error (a `SoundnessViolation` anywhere fails loudly here).
fn run_gated(
    cases: &[TestCase],
    truth: &oraql_suite::oraql::GroundTruth,
    mut opts: DriverOptions,
) -> (Vec<DriverResult>, TruthReport, u64) {
    opts.ground_truth = Some(Arc::new(truth.clone()));
    opts.jobs = 4;
    let mut total_truth = TruthReport::default();
    let mut server_busy = 0u64;
    let results: Vec<DriverResult> = cases
        .iter()
        .zip(run_suite(cases, &opts))
        .map(|(case, r)| {
            let r = r.unwrap_or_else(|e| panic!("{}: {e}", case.name));
            total_truth.absorb(r.truth.as_ref().expect("gate armed"));
            server_busy += r.failures.server_busy;
            r
        })
        .collect();
    (results, total_truth, server_busy)
}

/// Byte-level agreement on everything the driver decides.
fn assert_same_results(tag: &str, baseline: &[DriverResult], chaotic: &[DriverResult]) {
    assert_eq!(baseline.len(), chaotic.len());
    for (i, (a, b)) in baseline.iter().zip(chaotic).enumerate() {
        assert_eq!(
            a.decisions, b.decisions,
            "{tag}: case {i} decisions drifted"
        );
        assert_eq!(a.fully_optimistic, b.fully_optimistic, "{tag}: case {i}");
        assert_eq!(a.oraql, b.oraql, "{tag}: case {i}");
        assert_eq!(a.no_alias_original, b.no_alias_original, "{tag}: case {i}");
        assert_eq!(a.no_alias_oraql, b.no_alias_oraql, "{tag}: case {i}");
        assert_eq!(
            a.final_run.stdout, b.final_run.stdout,
            "{tag}: case {i} final output drifted"
        );
    }
}

/// The capstone matrix. One fault seed keeps the wire merely hostile,
/// one adds overload (a single admission slot, so `BUSY` shedding is
/// guaranteed at jobs 4), and one arms a simulated crash point that
/// takes the daemon down mid-run and leaves the driver on its local
/// fallback. All three must reproduce the fault-free run exactly.
#[test]
fn chaos_matrix_preserves_verdicts_byte_for_byte() {
    oraql_suite::oraql::faults::quiet_injected_panics();
    let plan = GenPlan::parse(PLAN).unwrap();
    let (cases, truth) = suite(&plan);
    assert!(cases.len() >= 256, "acceptance floor: got {}", cases.len());

    let (baseline, base_truth, _) = run_gated(&cases, &truth, DriverOptions::default());
    assert!(base_truth.clean(), "{}", base_truth.describe_violations());
    assert_eq!(
        base_truth.missed_optimism, 0,
        "fault-free baseline missed optimism"
    );
    assert!(base_truth.checked > 0 && base_truth.optimism_confirmed > 0);

    let mut total_retries = 0u64;
    let mut total_busy = 0u64;
    let mut saw_crash = false;
    for (fault_seed, overload, crash) in
        [(1u64, false, false), (42, true, false), (1337, false, true)]
    {
        let tag = format!("seed={fault_seed}");
        let scratch = Scratch::new(&tag);
        let mut fp = FaultPlan::quiet(fault_seed)
            .with_rate(FaultSite::ConnReset, Rate::new(1, 16))
            .with_rate(FaultSite::FrameTorn, Rate::new(1, 24))
            .with_rate(FaultSite::FrameGarble, Rate::new(1, 16))
            .with_rate(FaultSite::ResponseDelay, Rate::new(1, 8))
            .with_rate(FaultSite::ResponseHang, Rate::new(1, 512));
        if crash {
            fp = fp.with_rate(FaultSite::CrashPoint, Rate::new(1, 640));
        }
        let mut config = ServerOptions::new(&scratch.0);
        config.faults = Some(Arc::new(FaultInjector::new(fp)));
        config.crash_mode = CrashMode::Simulate;
        config.fault_hang = Duration::from_millis(200);
        if overload {
            config.max_inflight = 1;
            config.request_deadline = Duration::from_millis(1);
        }
        let server = Server::start(&config, "127.0.0.1:0").unwrap();

        let client = Arc::new(Client::with_options(
            &server.addr(),
            ClientOptions {
                timeout: Duration::from_millis(300),
                cooldown: Duration::from_millis(20),
                max_retries: 3,
                seed: fault_seed,
                ..ClientOptions::default()
            },
        ));
        let opts = DriverOptions {
            server: Some(Arc::clone(&client)),
            ..Default::default()
        };
        // Overload is a multi-tenant phenomenon: one client serializes
        // its requests over one connection, so a single driver can
        // never overrun the admission slot by itself. Noisy neighbor
        // tenants hold the slot (and its injected response delays)
        // while the driver's requests contend for admission.
        let stop_noise = std::sync::atomic::AtomicBool::new(false);
        let (chaotic, chaos_truth, server_busy) = std::thread::scope(|s| {
            let mut noise = Vec::new();
            if overload {
                for n in 0..3u64 {
                    let addr = server.addr();
                    let stop_noise = &stop_noise;
                    noise.push(s.spawn(move || {
                        let tenant = Client::with_options(
                            &addr,
                            ClientOptions {
                                timeout: Duration::from_millis(300),
                                cooldown: Duration::from_millis(5),
                                max_retries: 0,
                                seed: 0xb0b + n,
                                ..ClientOptions::default()
                            },
                        );
                        let mut k = n;
                        while !stop_noise.load(std::sync::atomic::Ordering::Relaxed) {
                            let _ = tenant.get_dec(k);
                            k = k.wrapping_add(3);
                        }
                    }));
                }
            }
            let out = run_gated(&cases, &truth, opts);
            stop_noise.store(true, std::sync::atomic::Ordering::Relaxed);
            for h in noise {
                h.join().unwrap();
            }
            out
        });

        // The heart of the matter: chaos cost effort, never verdicts.
        assert_same_results(&tag, &baseline, &chaotic);
        assert!(
            chaos_truth.clean(),
            "{tag}: {}",
            chaos_truth.describe_violations()
        );
        assert_eq!(
            chaos_truth.missed_optimism, base_truth.missed_optimism,
            "{tag}: wire faults may not cost optimism"
        );

        let cs = client.stats();
        total_retries += cs.retries;
        total_busy += cs.busy;
        if overload {
            assert!(
                cs.busy > 0 && server_busy > 0,
                "{tag}: single-slot server never shed at jobs 4 ({cs})"
            );
            assert!(server.shed_count() > 0, "{tag}");
        }
        if server.is_crashed() {
            saw_crash = true;
            // The simulated crash is recoverable exactly like a real
            // one: a fresh daemon over the same directory replays the
            // journals and serves what was acked before the lights
            // went out.
            let _ = server.shutdown();
            let reopened = Server::start(&ServerOptions::new(&scratch.0), "127.0.0.1:0").unwrap();
            if cs.appends > 0 {
                assert!(
                    reopened.indexed_records() > 0,
                    "{tag}: acked appends vanished across the crash restart"
                );
            }
            reopened.shutdown().unwrap();
        } else {
            let _ = server.shutdown();
        }
    }
    assert!(total_retries > 0, "the chaos matrix never forced a retry");
    assert!(total_busy > 0, "the chaos matrix never shed a request");
    assert!(
        saw_crash,
        "the crash-point seed never took the daemon down mid-run"
    );
}

/// Drift check: every fault site the injector knows must appear, by
/// its wire name, in the §6 failure-model table of
/// `docs/ARCHITECTURE.md`. New sites cannot ship undocumented.
#[test]
fn architecture_doc_lists_every_fault_site() {
    let doc_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/ARCHITECTURE.md");
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc_path.display()));
    let section = doc
        .split("## 6.")
        .nth(1)
        .and_then(|rest| rest.split("\n## ").next())
        .expect("ARCHITECTURE.md lost its §6 failure-model section");
    for site in SITES {
        let name = format!("`{}`", site.as_str());
        assert!(
            section.contains(&name),
            "fault site {name} missing from the §6 table in docs/ARCHITECTURE.md"
        );
    }
}
