/root/repo/target/debug/examples/annotation_tuning-330ac3a01f092d85.d: examples/annotation_tuning.rs

/root/repo/target/debug/examples/annotation_tuning-330ac3a01f092d85: examples/annotation_tuning.rs

examples/annotation_tuning.rs:
