//! The pass manager: runs a fixed pipeline of function passes, setting
//! the AA manager's `current_pass` before each so every alias query is
//! attributed to its issuer.

use crate::stats::Stats;
use oraql_analysis::AAManager;
use oraql_ir::module::{FunctionId, Module};

/// Shared context handed to every pass invocation.
pub struct PassCx<'a> {
    /// The alias-analysis chain (queries go through here).
    pub aa: &'a mut AAManager,
    /// The statistics registry.
    pub stats: &'a mut Stats,
}

impl PassCx<'_> {
    /// Shorthand for bumping a statistic of the current pass.
    pub fn stat(&mut self, pass: &str, stat: &str, n: u64) {
        self.stats.add(pass, stat, n);
    }
}

/// A function transformation (or analysis-priming) pass.
pub trait Pass {
    /// Name used for statistics and query attribution (mirrors LLVM's
    /// pass names where one exists).
    fn name(&self) -> &'static str;

    /// Processes one function.
    fn run(&mut self, m: &mut Module, f: FunctionId, cx: &mut PassCx<'_>);
}

/// Runs a sequence of passes over every function of a module.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// Verify IR after each pass (tests turn this on; costs time).
    pub verify_each: bool,
    /// Print pass executions like `-debug-pass=Executions`.
    pub trace_executions: bool,
    /// Collected trace lines when `trace_executions` is set.
    pub trace: Vec<String>,
}

impl PassManager {
    /// Creates a manager over the given pass list.
    pub fn new(passes: Vec<Box<dyn Pass>>) -> Self {
        PassManager {
            passes,
            verify_each: false,
            trace_executions: false,
            trace: Vec::new(),
        }
    }

    /// Runs the pipeline: for each pass, over each function, in order
    /// (pass-major, like LLVM's module-level CGSCC scheduling of our
    /// simple function passes).
    pub fn run(&mut self, m: &mut Module, aa: &mut AAManager, stats: &mut Stats) {
        for pass in &mut self.passes {
            for fi in 0..m.funcs.len() {
                let fid = FunctionId(fi as u32);
                aa.current_pass = pass.name().to_owned();
                if self.trace_executions {
                    self.trace.push(format!(
                        "Executing Pass '{}' on Function '{}'...",
                        pass.name(),
                        m.func(fid).name
                    ));
                }
                let mut cx = PassCx { aa, stats };
                pass.run(m, fid, &mut cx);
                if self.verify_each {
                    if let Err(e) = oraql_ir::verify::verify_function(m, fid) {
                        panic!("IR broken after pass {}: {e}", pass.name());
                    }
                }
            }
        }
        aa.current_pass.clear();
    }
}

/// The standard "O3-like" pipeline used by the ORAQL driver and the
/// benchmarks. Order mirrors the interplay the paper describes: memory
/// SSA priming first (it issues the bulk of queries), scalar cleanups,
/// loop transforms, vectorization, then late sinking. GVN and DSE run a
/// second time to pick up opportunities exposed by LICM.
pub fn standard_pipeline() -> PassManager {
    PassManager::new(vec![
        Box::new(crate::memssa_prime::MemorySsaPrime),
        Box::new(crate::earlycse::EarlyCSE),
        Box::new(crate::gvn::Gvn),
        Box::new(crate::memcpyopt::MemCpyOpt),
        Box::new(crate::licm::Licm),
        Box::new(crate::gvn::Gvn),
        Box::new(crate::dse::Dse),
        Box::new(crate::loopdel::LoopDeletion),
        Box::new(crate::loopvec::LoopVectorize),
        Box::new(crate::slp::SlpVectorize),
        Box::new(crate::sink::MachineSink),
        Box::new(crate::dce::Dce),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Ty, Value};

    struct CountingPass;
    impl Pass for CountingPass {
        fn name(&self) -> &'static str {
            "Counting"
        }
        fn run(&mut self, _m: &mut Module, _f: FunctionId, cx: &mut PassCx<'_>) {
            assert_eq!(cx.aa.current_pass, "Counting");
            cx.stat("Counting", "runs", 1);
        }
    }

    #[test]
    fn manager_attributes_and_counts() {
        let mut m = Module::new("t");
        for name in ["a", "b"] {
            let mut b = FunctionBuilder::new(&mut m, name, vec![], None);
            b.ret(None);
            b.finish();
        }
        let mut aa = AAManager::new();
        let mut stats = Stats::new();
        let mut pm = PassManager::new(vec![Box::new(CountingPass)]);
        pm.trace_executions = true;
        pm.run(&mut m, &mut aa, &mut stats);
        assert_eq!(stats.get("Counting", "runs"), 2);
        assert_eq!(pm.trace.len(), 2);
        assert!(pm.trace[0].contains("Executing Pass 'Counting' on Function 'a'"));
    }

    #[test]
    fn standard_pipeline_runs_on_trivial_module() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let x = b.alloca(8, "x");
        b.store(Ty::I64, Value::ConstInt(1), x);
        let v = b.load(Ty::I64, x);
        b.print("{}", vec![v]);
        b.ret(None);
        b.finish();
        let mut aa = AAManager::new();
        let mut stats = Stats::new();
        let mut pm = standard_pipeline();
        pm.verify_each = true;
        pm.run(&mut m, &mut aa, &mut stats);
        oraql_ir::verify::assert_valid(&m);
    }
}
