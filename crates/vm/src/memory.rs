//! Flat byte-addressable memory with a global segment and a downward
//! stack-like alloca region (restored on function return).

use oraql_ir::module::Module;

/// Base address of the global segment (nonzero so null stays invalid).
pub const GLOBAL_BASE: u64 = 0x1_0000;
/// Base address of the alloca region.
pub const STACK_BASE: u64 = 0x1000_0000;
/// Upper bound of the alloca region.
pub const STACK_LIMIT: u64 = 0x5000_0000;

/// Memory error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access outside any mapped segment.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
    },
    /// Stack (alloca region) exhausted.
    StackOverflow,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size } => {
                write!(f, "out-of-bounds access of {size} bytes at {addr:#x}")
            }
            MemError::StackOverflow => write!(f, "alloca region exhausted"),
        }
    }
}

/// Base address of each global of `m`, parallel to `Module::globals`
/// (each global 16-byte aligned). This layout is a pure function of the
/// module, which is what lets the pre-decoding stage resolve
/// `Value::Global` operands to immediate addresses once instead of per
/// execution.
pub fn global_layout(m: &Module) -> Vec<u64> {
    let mut bases = Vec::with_capacity(m.globals.len());
    let mut off = 0u64;
    for g in &m.globals {
        off = (off + 15) & !15;
        bases.push(GLOBAL_BASE + off);
        off += g.size;
    }
    bases
}

/// The VM's address space.
pub struct Memory {
    globals: Vec<u8>,
    stack: Vec<u8>,
    sp: u64,
    /// Base address of each global, parallel to `Module::globals`.
    global_bases: Vec<u64>,
}

impl Memory {
    /// Lays out all globals of `m` and initializes them.
    pub fn new(m: &Module) -> Self {
        let global_bases = global_layout(m);
        let mut globals = Vec::new();
        for (g, &base) in m.globals.iter().zip(&global_bases) {
            let start = (base - GLOBAL_BASE) as usize;
            globals.resize(start + g.size as usize, 0);
            let n = g.init.len().min(g.size as usize);
            globals[start..start + n].copy_from_slice(&g.init[..n]);
        }
        Memory {
            globals,
            stack: Vec::new(),
            sp: STACK_BASE,
            global_bases,
        }
    }

    /// Base address of global `i`.
    ///
    /// Panics on out-of-range indices; the interpreter goes through
    /// [`Memory::try_global_base`] so malformed IR traps instead.
    pub fn global_base(&self, i: usize) -> u64 {
        self.global_bases[i]
    }

    /// Checked variant of [`Memory::global_base`].
    pub fn try_global_base(&self, i: usize) -> Option<u64> {
        self.global_bases.get(i).copied()
    }

    /// All global base addresses, parallel to `Module::globals` (used
    /// by the pre-decoding stage to fold globals into immediates).
    pub fn global_bases(&self) -> &[u64] {
        &self.global_bases
    }

    /// Current stack pointer (save before a call, restore after).
    pub fn stack_mark(&self) -> u64 {
        self.sp
    }

    /// Restores the stack pointer to a previous mark.
    pub fn stack_release(&mut self, mark: u64) {
        self.sp = mark;
    }

    /// Allocates `size` bytes in the alloca region (16-byte aligned).
    pub fn alloca(&mut self, size: u64) -> Result<u64, MemError> {
        let aligned = (size + 15) & !15;
        if self.sp + aligned > STACK_LIMIT {
            return Err(MemError::StackOverflow);
        }
        let addr = self.sp;
        self.sp += aligned;
        let needed = (self.sp - STACK_BASE) as usize;
        if self.stack.len() < needed {
            self.stack.resize(needed, 0);
        }
        // Allocas are not guaranteed zeroed by C semantics, but giving
        // them a deterministic content keeps reruns bit-identical. We
        // zero the fresh region explicitly because stack_release + new
        // alloca may reuse bytes written by a previous frame.
        let start = (addr - STACK_BASE) as usize;
        self.stack[start..start + aligned as usize].fill(0);
        Ok(addr)
    }

    fn region(&self, addr: u64, size: u64) -> Result<(bool, usize), MemError> {
        if addr >= GLOBAL_BASE && addr + size <= GLOBAL_BASE + self.globals.len() as u64 {
            Ok((true, (addr - GLOBAL_BASE) as usize))
        } else if addr >= STACK_BASE && addr + size <= STACK_BASE + self.stack.len() as u64 {
            Ok((false, (addr - STACK_BASE) as usize))
        } else {
            Err(MemError::OutOfBounds { addr, size })
        }
    }

    /// Reads `buf.len()` bytes at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let (is_global, off) = self.region(addr, buf.len() as u64)?;
        let src = if is_global {
            &self.globals
        } else {
            &self.stack
        };
        buf.copy_from_slice(&src[off..off + buf.len()]);
        Ok(())
    }

    /// Writes `buf` at `addr`.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let (is_global, off) = self.region(addr, buf.len() as u64)?;
        let dst = if is_global {
            &mut self.globals
        } else {
            &mut self.stack
        };
        dst[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// `memcpy` within the VM address space (regions may not overlap in
    /// well-defined programs; we copy via a temporary so overlap behaves
    /// like `memmove`, keeping execution deterministic either way).
    pub fn copy(&mut self, dst: u64, src: u64, n: u64) -> Result<(), MemError> {
        let mut tmp = vec![0u8; n as usize];
        self.read(src, &mut tmp)?;
        self.write(dst, &tmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_with_global() -> Module {
        let mut m = Module::new("t");
        m.add_global("g", 16, vec![1, 2, 3, 4], false);
        m.add_global("h", 8, vec![], true);
        m
    }

    #[test]
    fn globals_initialized_and_aligned() {
        let m = module_with_global();
        let mem = Memory::new(&m);
        let g = mem.global_base(0);
        let h = mem.global_base(1);
        assert_eq!(g % 16, 0);
        assert_eq!(h % 16, 0);
        let mut buf = [0u8; 4];
        mem.read(g, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        // Tail is zero-filled.
        mem.read(g + 4, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn alloca_roundtrip_and_release() {
        let m = module_with_global();
        let mut mem = Memory::new(&m);
        let mark = mem.stack_mark();
        let a = mem.alloca(32).unwrap();
        mem.write(a, &[9; 32]).unwrap();
        let mut buf = [0u8; 32];
        mem.read(a, &mut buf).unwrap();
        assert_eq!(buf, [9; 32]);
        mem.stack_release(mark);
        // A new alloca reuses the region and is zeroed.
        let b = mem.alloca(32).unwrap();
        assert_eq!(a, b);
        mem.read(b, &mut buf).unwrap();
        assert_eq!(buf, [0; 32]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let m = module_with_global();
        let mem = Memory::new(&m);
        let mut buf = [0u8; 8];
        assert!(mem.read(0, &mut buf).is_err());
        assert!(mem.read(STACK_BASE, &mut buf).is_err()); // nothing allocated
                                                          // Straddling the end of the global segment.
        let g = mem.global_base(1);
        assert!(mem.read(g + 4, &mut buf).is_err());
    }

    #[test]
    fn copy_between_segments() {
        let m = module_with_global();
        let mut mem = Memory::new(&m);
        let a = mem.alloca(16).unwrap();
        mem.copy(a, mem.global_base(0), 4).unwrap();
        let mut buf = [0u8; 4];
        mem.read(a, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }
}
