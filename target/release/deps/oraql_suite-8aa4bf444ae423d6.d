/root/repo/target/release/deps/oraql_suite-8aa4bf444ae423d6.d: src/lib.rs

/root/repo/target/release/deps/liboraql_suite-8aa4bf444ae423d6.rlib: src/lib.rs

/root/repo/target/release/deps/liboraql_suite-8aa4bf444ae423d6.rmeta: src/lib.rs

src/lib.rs:
