/root/repo/target/debug/deps/pipeline_extra-235ef176defa4c86.d: crates/passes/tests/pipeline_extra.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_extra-235ef176defa4c86.rmeta: crates/passes/tests/pipeline_extra.rs Cargo.toml

crates/passes/tests/pipeline_extra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
