//! # oraql-faults — deterministic fault-injection plans
//!
//! ORAQL's safety story is "an optimistically wrong no-alias answer is
//! *caught* by the verification run" — which makes the probing driver
//! only as trustworthy as its behaviour when a probe misbehaves. This
//! crate provides the chaos side of that bargain: a **seeded,
//! deterministic fault plan** that the driver threads through its probe
//! path (see `oraql::driver`), injecting panics, VM traps, fuel lies,
//! latency, hangs, corrupted probe output, and store-journal rot at
//! named sites. The served tier (`oraql-served`) threads the same plan
//! through its wire and daemon paths: connection resets, torn and
//! garbled response frames, response latency and hangs, failing group
//! fsyncs, and crash points that kill the daemon between its journal
//! append, index update, ack, and fsync steps.
//!
//! # Determinism contract
//!
//! Everything is a pure function of the plan seed and a per-site
//! occurrence counter: the decision for the `n`-th occurrence of site
//! `s` is
//!
//! ```text
//! splitmix64(seed ^ SITE_TAG[s] ^ n) % den < num
//! ```
//!
//! No wall clock, no OS entropy, no thread identity. With a sequential
//! consumer (the `--jobs 1` driver) the same seed therefore injects the
//! *identical* fault sequence on every run — the chaos CI gate diffs
//! two runs byte-for-byte. With concurrent consumers the per-site
//! occurrence order depends on scheduling, so only the fault *rates*
//! are reproducible, not their placement; the driver's graceful
//! degradation must hold either way.
//!
//! # Vocabulary
//!
//! * [`FaultPlan`] — parsed, immutable description: seed + one rational
//!   rate per [`FaultSite`]. Parse/render round-trips exactly.
//! * [`FaultInjector`] — a thread-safe instance of a plan: hands out
//!   deterministic yes/no decisions via [`FaultInjector::fire`] and
//!   counts what actually fired.
//! * [`InjectedPanic`] — the payload injected panics carry, so the
//!   driver's sandbox can tell an injected panic from a genuine bug.

use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64 — the tiny, high-quality mixer the plan is built on.
/// The definition lives in [`oraql_obs::rng`] (one copy for the fault
/// injector, the seeded tests, and the workload generator); re-exported
/// here so existing callers and old plan strings keep working
/// unchanged.
pub use oraql_obs::rng::splitmix64;

/// A named fault-injection site in the probe pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside the probe's pass-pipeline compile
    /// (`Driver::compile_with` / the probe compile).
    CompilePanic,
    /// The VM run traps immediately (`RuntimeError::Injected`).
    VmTrap,
    /// The VM is given a lying (tiny) fuel budget, so healthy programs
    /// report `FuelExhausted`.
    VmFuelLie,
    /// Artificial probe latency (bounded sleep, stays under deadlines).
    ProbeDelay,
    /// Probe hang: sleeps well past the configured probe deadline, so
    /// only the watchdog can reclaim the slot.
    ProbeHang,
    /// The probe's observed stdout is garbled before verification
    /// (simulates corrupted probe I/O).
    OutputGarble,
    /// A persistent-store hit is treated as checksum-corrupt and
    /// discarded (read-side rot).
    StoreReadCorrupt,
    /// A store append writes only a prefix of the record frame
    /// (kill-mid-write torn tail).
    StoreWriteTorn,
    /// A store append bit-flips one payload byte (silent disk rot,
    /// caught by the journal checksum on the next open).
    StoreWriteBitFlip,
    /// A worker-pool job panics before running its probe (poisoned
    /// worker).
    WorkerPoison,
    /// The server drops the connection instead of answering a request
    /// (mid-exchange RST as seen by the client).
    ConnReset,
    /// The server writes only a prefix of the response frame and then
    /// drops the connection (torn frame on the wire).
    FrameTorn,
    /// The server flips one byte of the response frame payload after
    /// the checksum was computed (wire corruption; the client's frame
    /// checksum must catch it wherever the flip lands).
    FrameGarble,
    /// The server delays a response briefly (bounded, below any sane
    /// client timeout — latency, not loss).
    ResponseDelay,
    /// The server sits on a response past the client's read timeout,
    /// so only the client-side deadline can reclaim the request.
    ResponseHang,
    /// A group-fsync pass fails for a dirty shard; the shard is
    /// re-marked dirty and retried on the next pass.
    FsyncFail,
    /// The daemon dies at a named crash point (between journal append,
    /// index update, ack, and fsync) — `std::process::abort` in the
    /// real daemon, a simulated hard stop for in-process servers.
    CrashPoint,
}

/// All sites, in wire order. Index into this array is the site's
/// stable id (used for counters and sub-seed derivation).
pub const SITES: [FaultSite; 17] = [
    FaultSite::CompilePanic,
    FaultSite::VmTrap,
    FaultSite::VmFuelLie,
    FaultSite::ProbeDelay,
    FaultSite::ProbeHang,
    FaultSite::OutputGarble,
    FaultSite::StoreReadCorrupt,
    FaultSite::StoreWriteTorn,
    FaultSite::StoreWriteBitFlip,
    FaultSite::WorkerPoison,
    FaultSite::ConnReset,
    FaultSite::FrameTorn,
    FaultSite::FrameGarble,
    FaultSite::ResponseDelay,
    FaultSite::ResponseHang,
    FaultSite::FsyncFail,
    FaultSite::CrashPoint,
];

impl FaultSite {
    /// Stable spec-file / CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::CompilePanic => "compile-panic",
            FaultSite::VmTrap => "vm-trap",
            FaultSite::VmFuelLie => "vm-fuel-lie",
            FaultSite::ProbeDelay => "probe-delay",
            FaultSite::ProbeHang => "probe-hang",
            FaultSite::OutputGarble => "output-garble",
            FaultSite::StoreReadCorrupt => "store-read-corrupt",
            FaultSite::StoreWriteTorn => "store-write-torn",
            FaultSite::StoreWriteBitFlip => "store-write-bitflip",
            FaultSite::WorkerPoison => "worker-poison",
            FaultSite::ConnReset => "conn-reset",
            FaultSite::FrameTorn => "frame-torn",
            FaultSite::FrameGarble => "frame-garble",
            FaultSite::ResponseDelay => "response-delay",
            FaultSite::ResponseHang => "response-hang",
            FaultSite::FsyncFail => "fsync-fail",
            FaultSite::CrashPoint => "crash-point",
        }
    }

    /// Index into [`SITES`].
    pub fn index(self) -> usize {
        SITES.iter().position(|&s| s == self).expect("site listed")
    }

    fn parse(s: &str) -> Option<FaultSite> {
        SITES.iter().copied().find(|site| site.as_str() == s)
    }

    /// Per-site tag mixed into the decision hash, derived from the name
    /// so reordering [`SITES`] cannot silently change old plans.
    fn tag(self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a 64 offset basis
        for b in self.as_str().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// A rational fault rate: the site fires on `num` out of every `den`
/// occurrences (in expectation, deterministically placed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rate {
    /// Numerator; `0` disables the site.
    pub num: u64,
    /// Denominator; `0` is treated like a disabled site.
    pub den: u64,
}

impl Rate {
    /// `num` in every `den` occurrences.
    pub fn new(num: u64, den: u64) -> Rate {
        Rate { num, den }
    }

    /// Never fires.
    pub fn never() -> Rate {
        Rate::default()
    }

    /// Fires on every occurrence.
    pub fn always() -> Rate {
        Rate { num: 1, den: 1 }
    }

    fn is_zero(self) -> bool {
        self.num == 0 || self.den == 0
    }
}

/// A parsed, immutable fault plan: seed plus one rate per site.
///
/// Spec syntax (CLI `--fault-plan`, config `fault_plan =`): a
/// comma-separated list of `key=value` items. `seed=<u64>` sets the
/// seed (default 0); every other key is a [`FaultSite`] name with a
/// `num/den` rational (or `0` to disable). Example:
///
/// ```text
/// seed=42,compile-panic=1/16,vm-trap=1/16,probe-hang=1/64
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The plan seed. Everything else being equal, different seeds
    /// place the same rates at different occurrences.
    pub seed: u64,
    rates: [Rate; SITES.len()],
}

impl FaultPlan {
    /// A plan where nothing ever fires.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [Rate::never(); SITES.len()],
        }
    }

    /// A plan injecting every site at `num/den`.
    pub fn uniform(seed: u64, num: u64, den: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [Rate::new(num, den); SITES.len()],
        }
    }

    /// Sets one site's rate (builder style).
    pub fn with_rate(mut self, site: FaultSite, rate: Rate) -> FaultPlan {
        self.rates[site.index()] = rate;
        self
    }

    /// The rate configured for `site`.
    pub fn rate(&self, site: FaultSite) -> Rate {
        self.rates[site.index()]
    }

    /// Parses a spec string (see the type docs for the syntax).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::quiet(0);
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault plan: expected key=value, got {item:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|e| format!("fault plan: bad seed {value:?}: {e}"))?;
                continue;
            }
            let site =
                FaultSite::parse(key).ok_or_else(|| format!("fault plan: unknown site {key:?}"))?;
            let rate = match value.split_once('/') {
                Some((n, d)) => Rate::new(
                    n.trim()
                        .parse()
                        .map_err(|e| format!("fault plan: bad rate {value:?}: {e}"))?,
                    d.trim()
                        .parse()
                        .map_err(|e| format!("fault plan: bad rate {value:?}: {e}"))?,
                ),
                None => {
                    let num: u64 = value
                        .parse()
                        .map_err(|e| format!("fault plan: bad rate {value:?}: {e}"))?;
                    if num == 0 {
                        Rate::never()
                    } else {
                        return Err(format!(
                            "fault plan: rate for {key} must be 0 or num/den, got {value:?}"
                        ));
                    }
                }
            };
            plan.rates[site.index()] = rate;
        }
        Ok(plan)
    }

    /// Renders the plan back into spec syntax ([`FaultPlan::parse`]
    /// round-trips it).
    pub fn render(&self) -> String {
        let mut s = format!("seed={}", self.seed);
        for site in SITES {
            let r = self.rate(site);
            if !r.is_zero() {
                s.push_str(&format!(",{}={}/{}", site.as_str(), r.num, r.den));
            }
        }
        s
    }

    /// Would occurrence `n` of `site` fire? Pure function of the plan.
    pub fn fires(&self, site: FaultSite, n: u64) -> bool {
        let r = self.rate(site);
        if r.is_zero() {
            return false;
        }
        if r.num >= r.den {
            return true;
        }
        splitmix64(self.seed ^ site.tag() ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % r.den < r.num
    }
}

/// Thread-safe instance of a [`FaultPlan`]: owns the per-site
/// occurrence counters and tallies what fired.
///
/// Each call to [`FaultInjector::fire`] consumes the site's next
/// occurrence index, so a sequential caller sees the plan's exact
/// deterministic sequence. Counters are atomics; concurrent callers
/// interleave occurrence indices in scheduling order (rates hold,
/// placement doesn't — see the crate docs).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    occurrences: [AtomicU64; SITES.len()],
    fired: [AtomicU64; SITES.len()],
}

impl FaultInjector {
    /// Builds an injector over `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            occurrences: Default::default(),
            fired: Default::default(),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consumes the next occurrence of `site` and reports whether the
    /// plan fires a fault there.
    pub fn fire(&self, site: FaultSite) -> bool {
        let i = site.index();
        let n = self.occurrences[i].fetch_add(1, Ordering::Relaxed);
        let hit = self.plan.fires(site, n);
        if hit {
            self.fired[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// How many times `site` has fired so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// `(site, occurrences, fired)` rows for every site that was ever
    /// consulted, in [`SITES`] order — the CLI's fault summary.
    pub fn summary(&self) -> Vec<(FaultSite, u64, u64)> {
        SITES
            .iter()
            .enumerate()
            .filter(|(i, _)| self.occurrences[*i].load(Ordering::Relaxed) > 0)
            .map(|(i, &s)| {
                (
                    s,
                    self.occurrences[i].load(Ordering::Relaxed),
                    self.fired[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }
}

/// Panic payload used by every injected panic (probe compile, worker
/// poison), so `catch_unwind` consumers can distinguish chaos from
/// genuine bugs via `payload.downcast_ref::<InjectedPanic>()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic(pub &'static str);

impl std::fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault: {}", self.0)
    }
}

/// Installs a process-wide panic hook that stays silent for
/// [`InjectedPanic`] payloads and delegates everything else to the
/// previous hook. Idempotent; called by chaos tests and the CLI when a
/// fault plan is active, so deliberate faults don't spam stderr with
/// scary-but-expected panic banners (genuine panics still print).
pub fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let spec = "seed=42,compile-panic=1/16,vm-trap=1/8,probe-hang=1/64";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rate(FaultSite::CompilePanic), Rate::new(1, 16));
        assert_eq!(plan.rate(FaultSite::VmTrap), Rate::new(1, 8));
        assert_eq!(plan.rate(FaultSite::ProbeDelay), Rate::never());
        let rendered = plan.render();
        assert_eq!(FaultPlan::parse(&rendered).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("what").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("no-such-site=1/2").is_err());
        assert!(FaultPlan::parse("vm-trap=0.5").is_err());
        assert!(FaultPlan::parse("vm-trap=1/x").is_err());
        // `0` disables, empty items are skipped.
        let p = FaultPlan::parse("seed=1,,vm-trap=0,").unwrap();
        assert_eq!(p.rate(FaultSite::VmTrap), Rate::never());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::uniform(7, 1, 4);
        let b = FaultPlan::uniform(7, 1, 4);
        let c = FaultPlan::uniform(8, 1, 4);
        let seq = |p: &FaultPlan| -> Vec<bool> {
            (0..256).map(|n| p.fires(FaultSite::VmTrap, n)).collect()
        };
        assert_eq!(seq(&a), seq(&b), "same seed, same placement");
        assert_ne!(seq(&a), seq(&c), "different seed, different placement");
        // Sites draw from independent streams.
        assert_ne!(
            seq(&a),
            (0..256)
                .map(|n| a.fires(FaultSite::CompilePanic, n))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlan::uniform(3, 1, 8);
        let hits = (0..8_000)
            .filter(|&n| p.fires(FaultSite::OutputGarble, n))
            .count();
        // 1/8 of 8000 = 1000; splitmix64 is a good mixer, allow ±20%.
        assert!((800..1200).contains(&hits), "hits = {hits}");
        assert!(FaultPlan::uniform(0, 1, 1).fires(FaultSite::VmTrap, 123));
        assert!(!FaultPlan::quiet(0).fires(FaultSite::VmTrap, 123));
    }

    #[test]
    fn injector_consumes_occurrences_in_order() {
        let plan = FaultPlan::uniform(11, 1, 3);
        let inj = FaultInjector::new(plan);
        let direct: Vec<bool> = (0..64).map(|n| plan.fires(FaultSite::VmTrap, n)).collect();
        let via: Vec<bool> = (0..64).map(|_| inj.fire(FaultSite::VmTrap)).collect();
        assert_eq!(direct, via);
        assert_eq!(
            inj.fired(FaultSite::VmTrap),
            direct.iter().filter(|&&b| b).count() as u64
        );
        assert_eq!(inj.fired(FaultSite::CompilePanic), 0);
        let summary = inj.summary();
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].0, FaultSite::VmTrap);
        assert_eq!(summary[0].1, 64);
    }

    #[test]
    fn site_names_are_unique_and_parseable() {
        for site in SITES {
            assert_eq!(FaultSite::parse(site.as_str()), Some(site));
            assert_eq!(SITES[site.index()], site);
        }
    }
}
