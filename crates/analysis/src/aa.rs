//! The alias-analysis manager: a lazily queried *chain* of analyses.
//!
//! LLVM's `AAResults` asks each registered analysis in a predetermined
//! sequence and returns as soon as one responds with a definite answer;
//! `MayAlias` is the pessimistic fallback when every analysis gives up
//! (paper §III). The ORAQL pass is appended at the end of this chain by
//! the driver, so it only ever sees queries no conservative analysis
//! could answer.

use crate::location::{AliasResult, MemoryLocation};
use oraql_ir::inst::{CallKind, FuncRef, Inst, InstId};
use oraql_ir::module::{FunctionId, Module};

/// Context handed to every analysis on every query.
pub struct QueryCtx<'a> {
    /// The module being compiled.
    pub module: &'a Module,
    /// The function the two pointers live in.
    pub func: FunctionId,
    /// Name of the transformation/analysis pass that issued the query
    /// (the paper associates pessimistic queries with the issuing pass).
    pub pass: &'a str,
}

/// One alias analysis in the chain.
pub trait AliasAnalysis {
    /// Short name used in reports and statistics.
    fn name(&self) -> &'static str;

    /// Answers a query or returns `MayAlias` to defer to the next
    /// analysis in the chain.
    fn alias(&mut self, ctx: &QueryCtx<'_>, a: &MemoryLocation, b: &MemoryLocation) -> AliasResult;

    /// Analysis-specific statistics, reported like LLVM's `-stats`
    /// (the ORAQL driver reads the unique-query count through this).
    fn stats(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// A record of one answered query, for reporting.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Function the query was issued in.
    pub func: FunctionId,
    /// First location.
    pub a: MemoryLocation,
    /// Second location.
    pub b: MemoryLocation,
    /// Final result.
    pub result: AliasResult,
    /// Name of the analysis that answered, `None` for the may-alias
    /// fallback.
    pub answered_by: Option<&'static str>,
    /// Pass that issued the query.
    pub pass: String,
}

/// Per-analysis answer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnswerCounts {
    /// Queries answered `NoAlias`.
    pub no_alias: u64,
    /// Queries answered `MustAlias`.
    pub must_alias: u64,
    /// Queries answered `PartialAlias`.
    pub partial_alias: u64,
}

/// The analysis chain plus bookkeeping.
pub struct AAManager {
    analyses: Vec<Box<dyn AliasAnalysis>>,
    counts: Vec<AnswerCounts>,
    /// Queries that fell through the whole chain.
    pub fallback_may_alias: u64,
    /// Total queries issued.
    pub total_queries: u64,
    /// Pass currently issuing queries (set by the pass manager).
    pub current_pass: String,
    /// Analyses whose definite answers are discarded (treated as
    /// may-alias). The paper's §VIII proposes *blocking* existing
    /// analyses to categorize the effect of already-known queries —
    /// suppressed analyses still run (their statistics count), but the
    /// chain falls through them.
    pub suppressed: std::collections::HashSet<String>,
    log: Option<Vec<QueryRecord>>,
    /// Cached memory-effect summaries per callee: `(reads, writes)`.
    /// Sound to cache across transformations: passes only remove
    /// accesses, so a stale `true` is merely conservative.
    callee_effects: std::collections::HashMap<FunctionId, (bool, bool)>,
}

impl AAManager {
    /// Creates an empty manager (no analyses: every query is MayAlias).
    pub fn new() -> Self {
        AAManager {
            analyses: Vec::new(),
            counts: Vec::new(),
            fallback_may_alias: 0,
            total_queries: 0,
            current_pass: String::new(),
            suppressed: std::collections::HashSet::new(),
            log: None,
            callee_effects: std::collections::HashMap::new(),
        }
    }

    /// Memory-effect summary of an internal callee: does its body (not
    /// following nested internal calls, which count conservatively)
    /// read / write memory? LLVM's function-attribute inference
    /// (`memory(none)` etc.) plays this role.
    pub fn callee_effects(&mut self, module: &Module, fid: FunctionId) -> (bool, bool) {
        if let Some(&e) = self.callee_effects.get(&fid) {
            return e;
        }
        let f = module.func(fid);
        let mut reads = false;
        let mut writes = false;
        for id in f.live_insts() {
            match f.inst(id) {
                Inst::Load { .. } => reads = true,
                Inst::Store { .. } => writes = true,
                Inst::Memcpy { .. } => {
                    reads = true;
                    writes = true;
                }
                Inst::Call { callee, .. } => match callee {
                    FuncRef::External(sym) if is_pure_external(module.strings.resolve(*sym)) => {}
                    _ => {
                        // Nested calls: conservative (no transitive walk,
                        // which would need recursion-cycle handling).
                        reads = true;
                        writes = true;
                    }
                },
                _ => {}
            }
            if reads && writes {
                break;
            }
        }
        self.callee_effects.insert(fid, (reads, writes));
        (reads, writes)
    }

    /// Appends an analysis to the end of the chain.
    pub fn add(&mut self, analysis: Box<dyn AliasAnalysis>) {
        self.analyses.push(analysis);
        self.counts.push(AnswerCounts::default());
    }

    /// Enables query logging (for report generation). Costly on large
    /// compilations; off by default.
    pub fn enable_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Drains the recorded log.
    pub fn take_log(&mut self) -> Vec<QueryRecord> {
        self.log.take().unwrap_or_default()
    }

    /// Names of registered analyses, in chain order.
    pub fn analysis_names(&self) -> Vec<&'static str> {
        self.analyses.iter().map(|a| a.name()).collect()
    }

    /// Per-analysis answer counters, in chain order.
    pub fn answer_counts(&self) -> &[AnswerCounts] {
        &self.counts
    }

    /// Total `NoAlias` answers across all analyses in the chain —
    /// the paper's "# No-Alias Results" column (Fig 4).
    pub fn no_alias_total(&self) -> u64 {
        self.counts.iter().map(|c| c.no_alias).sum()
    }

    /// Statistics from every analysis in the chain, prefixed by the
    /// analysis name (LLVM `-stats` analogue).
    pub fn stats(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for a in &self.analyses {
            for (k, v) in a.stats() {
                out.push((format!("{}.{}", a.name(), k), v));
            }
        }
        out
    }

    /// The core query entry point: asks each analysis in order, returns
    /// the first definite answer, `MayAlias` otherwise.
    pub fn alias(
        &mut self,
        module: &Module,
        func: FunctionId,
        a: &MemoryLocation,
        b: &MemoryLocation,
    ) -> AliasResult {
        self.total_queries += 1;
        // Identical pointers with identical size are trivially MustAlias;
        // LLVM answers this in AAResults before consulting analyses.
        if a.ptr == b.ptr {
            let r = if a.size == b.size {
                AliasResult::MustAlias
            } else {
                AliasResult::PartialAlias
            };
            self.record(module, func, a, b, r, Some("identity"));
            return r;
        }
        let ctx = QueryCtx {
            module,
            func,
            pass: &self.current_pass,
        };
        for (i, analysis) in self.analyses.iter_mut().enumerate() {
            let r = analysis.alias(&ctx, a, b);
            if self.suppressed.contains(analysis.name()) {
                continue; // blocked: its answer is discarded (§VIII)
            }
            if r.is_definite() {
                match r {
                    AliasResult::NoAlias => self.counts[i].no_alias += 1,
                    AliasResult::MustAlias => self.counts[i].must_alias += 1,
                    AliasResult::PartialAlias => self.counts[i].partial_alias += 1,
                    AliasResult::MayAlias => unreachable!(),
                }
                let name = analysis.name();
                self.record(module, func, a, b, r, Some(name));
                return r;
            }
        }
        self.fallback_may_alias += 1;
        self.record(module, func, a, b, AliasResult::MayAlias, None);
        AliasResult::MayAlias
    }

    fn record(
        &mut self,
        _module: &Module,
        func: FunctionId,
        a: &MemoryLocation,
        b: &MemoryLocation,
        result: AliasResult,
        answered_by: Option<&'static str>,
    ) {
        if let Some(log) = &mut self.log {
            log.push(QueryRecord {
                func,
                a: a.clone(),
                b: b.clone(),
                result,
                answered_by,
                pass: self.current_pass.clone(),
            });
        }
    }

    /// Convenience: query the locations of two access instructions.
    pub fn alias_insts(
        &mut self,
        module: &Module,
        func: FunctionId,
        i1: InstId,
        i2: InstId,
    ) -> AliasResult {
        let f = module.func(func);
        match (
            MemoryLocation::of_access(f, i1),
            MemoryLocation::of_access(f, i2),
        ) {
            (Some(a), Some(b)) => self.alias(module, func, &a, &b),
            _ => AliasResult::MayAlias,
        }
    }

    /// Whether instruction `id` may write to `loc` ("mod" side of LLVM's
    /// ModRef). Calls are handled conservatively: internal calls and
    /// parallel regions clobber everything; the VM's pure external math
    /// routines clobber nothing.
    pub fn may_clobber(
        &mut self,
        module: &Module,
        func: FunctionId,
        id: InstId,
        loc: &MemoryLocation,
    ) -> bool {
        let f = module.func(func);
        match f.inst(id) {
            Inst::Store { .. } => {
                let s = MemoryLocation::of_access(f, id).expect("store location");
                self.alias(module, func, &s, loc) != AliasResult::NoAlias
            }
            Inst::Memcpy { .. } => {
                let d = MemoryLocation::memcpy_dest(f, id).expect("memcpy dest");
                self.alias(module, func, &d, loc) != AliasResult::NoAlias
            }
            Inst::Call { callee, kind, .. } => match (callee, kind) {
                (FuncRef::External(sym), CallKind::Plain) => {
                    !is_pure_external(module.strings.resolve(*sym))
                }
                (FuncRef::Internal(fid), CallKind::Plain) => self.callee_effects(module, *fid).1,
                _ => true,
            },
            _ => false,
        }
    }

    /// Whether instruction `id` may read from `loc` ("ref" side).
    pub fn may_read(
        &mut self,
        module: &Module,
        func: FunctionId,
        id: InstId,
        loc: &MemoryLocation,
    ) -> bool {
        let f = module.func(func);
        match f.inst(id) {
            Inst::Load { .. } => {
                let l = MemoryLocation::of_access(f, id).expect("load location");
                self.alias(module, func, &l, loc) != AliasResult::NoAlias
            }
            Inst::Memcpy { .. } => {
                let s = MemoryLocation::memcpy_source(f, id).expect("memcpy src");
                self.alias(module, func, &s, loc) != AliasResult::NoAlias
            }
            Inst::Call { callee, kind, .. } => match (callee, kind) {
                (FuncRef::External(sym), CallKind::Plain) => {
                    !is_pure_external(module.strings.resolve(*sym))
                }
                (FuncRef::Internal(fid), CallKind::Plain) => self.callee_effects(module, *fid).0,
                _ => true,
            },
            _ => false,
        }
    }

    /// Resets per-compilation counters (analyses keep their own state).
    pub fn reset_counters(&mut self) {
        for c in &mut self.counts {
            *c = AnswerCounts::default();
        }
        self.fallback_may_alias = 0;
        self.total_queries = 0;
    }
}

impl Default for AAManager {
    fn default() -> Self {
        Self::new()
    }
}

/// External routines the VM implements without touching program-visible
/// memory. Calls to these do not block optimizations.
pub fn is_pure_external(name: &str) -> bool {
    matches!(
        name,
        "sqrt" | "exp" | "log" | "sin" | "cos" | "pow" | "fabs" | "floor" | "ceil" | "clock"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::value::Value;

    /// An analysis that always answers a fixed result.
    struct Fixed(&'static str, AliasResult);
    impl AliasAnalysis for Fixed {
        fn name(&self) -> &'static str {
            self.0
        }
        fn alias(
            &mut self,
            _ctx: &QueryCtx<'_>,
            _a: &MemoryLocation,
            _b: &MemoryLocation,
        ) -> AliasResult {
            self.1
        }
    }

    fn locs() -> (MemoryLocation, MemoryLocation) {
        (
            MemoryLocation::precise(Value::Arg(0), 8),
            MemoryLocation::precise(Value::Arg(1), 8),
        )
    }

    #[test]
    fn first_definite_answer_wins() {
        let m = Module::new("t");
        let mut mgr = AAManager::new();
        mgr.add(Box::new(Fixed("may", AliasResult::MayAlias)));
        mgr.add(Box::new(Fixed("no", AliasResult::NoAlias)));
        mgr.add(Box::new(Fixed("must", AliasResult::MustAlias)));
        let (a, b) = locs();
        assert_eq!(mgr.alias(&m, FunctionId(0), &a, &b), AliasResult::NoAlias);
        assert_eq!(mgr.answer_counts()[1].no_alias, 1);
        assert_eq!(mgr.answer_counts()[2].must_alias, 0);
        assert_eq!(mgr.no_alias_total(), 1);
    }

    #[test]
    fn fallback_is_may_alias() {
        let m = Module::new("t");
        let mut mgr = AAManager::new();
        mgr.add(Box::new(Fixed("may", AliasResult::MayAlias)));
        let (a, b) = locs();
        assert_eq!(mgr.alias(&m, FunctionId(0), &a, &b), AliasResult::MayAlias);
        assert_eq!(mgr.fallback_may_alias, 1);
        assert_eq!(mgr.total_queries, 1);
    }

    #[test]
    fn identical_pointers_are_must_alias_without_consulting_chain() {
        let m = Module::new("t");
        let mut mgr = AAManager::new();
        mgr.add(Box::new(Fixed("no", AliasResult::NoAlias)));
        let a = MemoryLocation::precise(Value::Arg(0), 8);
        assert_eq!(
            mgr.alias(&m, FunctionId(0), &a, &a.clone()),
            AliasResult::MustAlias
        );
        // The chain analysis was never consulted.
        assert_eq!(mgr.answer_counts()[0].no_alias, 0);
    }

    #[test]
    fn log_records_queries() {
        let m = Module::new("t");
        let mut mgr = AAManager::new();
        mgr.enable_log();
        mgr.current_pass = "GVN".into();
        let (a, b) = locs();
        mgr.alias(&m, FunctionId(0), &a, &b);
        let log = mgr.take_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].pass, "GVN");
        assert_eq!(log[0].result, AliasResult::MayAlias);
        assert!(log[0].answered_by.is_none());
    }

    #[test]
    fn pure_externals() {
        assert!(is_pure_external("sqrt"));
        assert!(!is_pure_external("memcpy"));
    }
}
