/root/repo/target/debug/deps/interp_latency-f1abef4a3ca0eda7.d: crates/bench/benches/interp_latency.rs Cargo.toml

/root/repo/target/debug/deps/libinterp_latency-f1abef4a3ca0eda7.rmeta: crates/bench/benches/interp_latency.rs Cargo.toml

crates/bench/benches/interp_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
