//! The ORAQL probing driver (paper §IV-B).
//!
//! Workflow: compile and run with the ORAQL pass deactivated and verify
//! the reference behaviour; try answering *every* query optimistically
//! (the empty sequence); if that breaks verification, bisect with the
//! configured strategy to pin down the queries that must stay
//! pessimistic. Executables are hashed so bit-identical recompilations
//! reuse the previous test verdict.

use crate::compile::{compile, CompileOptions, Compiled, Scope};
use crate::pass::{OraqlStats, UniqueQuery};
use crate::sequence::Decisions;
use crate::strategy::{ProbeOutcome, Prober, Strategy};
use crate::verify::{Mismatch, Verifier};
use oraql_ir::module::Module;
use oraql_passes::Stats;
use oraql_vm::{Interpreter, RunOutcome};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A benchmark handed to the driver: how to build the program, where
/// ORAQL may answer, and how to verify output.
pub struct TestCase {
    /// Benchmark name.
    pub name: String,
    /// Builds a fresh module (one "compilation" input). Must be
    /// deterministic: the driver compiles it many times.
    pub build: Box<dyn Fn() -> Module + Send + Sync>,
    /// ORAQL scope restriction (files / target).
    pub scope: Scope,
    /// Ignore patterns for volatile output lines (see [`crate::textpat`]).
    pub ignore_patterns: Vec<String>,
    /// Extra acceptable reference outputs (the paper's multiple
    /// references for e.g. rank-dependent meshes).
    pub extra_references: Vec<String>,
    /// VM fuel per test run.
    pub fuel: u64,
    /// Register the CFL points-to analyses in the chain.
    pub use_cfl: bool,
    /// What optimistic answers mean (§VIII extension).
    pub optimism: crate::pass::OptimismKind,
}

impl TestCase {
    /// Convenience constructor with defaults.
    pub fn new(name: &str, build: impl Fn() -> Module + Send + Sync + 'static) -> Self {
        TestCase {
            name: name.to_owned(),
            build: Box::new(build),
            scope: Scope::everything(),
            ignore_patterns: Vec::new(),
            extra_references: Vec::new(),
            fuel: 500_000_000,
            use_cfl: false,
            optimism: crate::pass::OptimismKind::NoAlias,
        }
    }
}

/// Driver options.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Bisection strategy.
    pub strategy: Strategy,
    /// Upper bound on executed tests (compiles still happen for cached
    /// verdicts).
    pub max_tests: u64,
    /// Record `-debug-pass=Executions` trace lines in the final compile.
    pub trace_passes: bool,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            strategy: Strategy::Chunked,
            max_tests: 4_096,
            trace_passes: false,
        }
    }
}

/// Probing effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeEffort {
    /// Compilations performed.
    pub compiles: u64,
    /// Tests actually executed (VM run + verification).
    pub tests_run: u64,
    /// Tests skipped because a bit-identical executable was seen before.
    pub tests_cached: u64,
    /// Tests skipped by the Fig. 2 deduction rule.
    pub tests_deduced: u64,
}

/// Everything the driver learned about one benchmark.
pub struct DriverResult {
    /// Benchmark name.
    pub name: String,
    /// Did the fully-optimistic compile verify on the first try?
    pub fully_optimistic: bool,
    /// The final (locally maximal) decision source.
    pub decisions: Decisions,
    /// ORAQL query counters from the final compilation (Fig. 4 columns).
    pub oraql: OraqlStats,
    /// `# No-Alias Results` of the baseline compilation (Fig. 4
    /// "Original").
    pub no_alias_original: u64,
    /// `# No-Alias Results` of the final ORAQL compilation.
    pub no_alias_oraql: u64,
    /// Baseline pass statistics.
    pub baseline_stats: Stats,
    /// Final pass statistics.
    pub final_stats: Stats,
    /// Baseline execution (reference run).
    pub baseline_run: RunOutcome,
    /// Final execution.
    pub final_run: RunOutcome,
    /// Probing effort.
    pub effort: ProbeEffort,
    /// Unique queries of the final compilation (report input).
    pub queries: Vec<UniqueQuery>,
    /// The final optimized module.
    pub final_module: Module,
    /// Pass trace of the final compilation (when requested).
    pub pass_trace: Vec<String>,
}

impl DriverResult {
    /// Relative change of no-alias results, the Fig. 4 `Δ` column.
    pub fn no_alias_delta_percent(&self) -> f64 {
        if self.no_alias_original == 0 {
            return 0.0;
        }
        (self.no_alias_oraql as f64 - self.no_alias_original as f64)
            / self.no_alias_original as f64
            * 100.0
    }
}

/// Driver errors.
#[derive(Debug)]
pub enum DriverError {
    /// The baseline compile did not verify against itself (broken case).
    BaselineBroken(Mismatch),
    /// The final sequence failed verification (driver bug).
    FinalBroken(Mismatch),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::BaselineBroken(m) => write!(f, "baseline failed verification: {m}"),
            DriverError::FinalBroken(m) => write!(f, "final sequence failed verification: {m}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// The probing driver.
pub struct Driver<'c> {
    case: &'c TestCase,
    opts: DriverOptions,
    verifier: Verifier,
    /// executable hash -> (verdict, unique query count)
    hash_cache: HashMap<u64, (bool, u64)>,
    effort: ProbeEffort,
}

fn module_hash(m: &Module) -> u64 {
    let text = oraql_ir::printer::module_str(m);
    let mut h = DefaultHasher::new();
    text.hash(&mut h);
    h.finish()
}

impl<'c> Driver<'c> {
    /// Runs the full workflow on one case.
    pub fn run(case: &'c TestCase, opts: DriverOptions) -> Result<DriverResult, DriverError> {
        // Step 1: baseline (ORAQL deactivated) — produces the reference.
        let baseline = compile(&case.build, &CompileOptions::baseline());
        let baseline_run = run_module(&baseline.module, case.fuel)
            .map_err(|e| DriverError::BaselineBroken(Mismatch::ExecutionFailed(e)))?;
        let mut references = vec![baseline_run.stdout.clone()];
        references.extend(case.extra_references.iter().cloned());
        let verifier = Verifier::new(references, &case.ignore_patterns);
        verifier
            .check(&baseline_run.stdout)
            .map_err(DriverError::BaselineBroken)?;

        let mut driver = Driver {
            case,
            opts,
            verifier,
            hash_cache: HashMap::new(),
            effort: ProbeEffort::default(),
        };

        // Step 2: the empty sequence — everything optimistic.
        let all_opt = Decisions::all_optimistic();
        let first = driver.probe(&all_opt);
        let (fully_optimistic, decisions) = if first.pass {
            (true, all_opt)
        } else {
            // Step 3: bisect.
            let d = driver.opts.strategy.solve(&mut driver);
            (false, d)
        };

        // Step 4: final compile + verification.
        let final_opts = CompileOptions {
            oraql: Some((decisions.clone(), case.scope.clone())),
            use_cfl: case.use_cfl,
            trace_passes: driver.opts.trace_passes,
            optimism: case.optimism,
            ..CompileOptions::default()
        };
        let finalc = compile(&case.build, &final_opts);
        let final_run = run_module(&finalc.module, case.fuel)
            .map_err(|e| DriverError::FinalBroken(Mismatch::ExecutionFailed(e)))?;
        driver
            .verifier
            .check(&final_run.stdout)
            .map_err(DriverError::FinalBroken)?;

        let shared = finalc.oraql.as_ref().expect("oraql installed");
        let st = shared.lock();
        Ok(DriverResult {
            name: case.name.clone(),
            fully_optimistic,
            decisions,
            oraql: st.stats,
            no_alias_original: baseline.no_alias_total,
            no_alias_oraql: finalc.no_alias_total,
            baseline_stats: baseline.stats,
            final_stats: finalc.stats.clone(),
            baseline_run,
            final_run,
            effort: driver.effort,
            queries: st.queries.clone(),
            final_module: finalc.module.clone(),
            pass_trace: finalc.pass_trace.clone(),
        })
    }

    fn compile_with(&mut self, d: &Decisions) -> Compiled {
        self.effort.compiles += 1;
        compile(
            &self.case.build,
            &CompileOptions {
                oraql: Some((d.clone(), self.case.scope.clone())),
                use_cfl: self.case.use_cfl,
                optimism: self.case.optimism,
                ..CompileOptions::default()
            },
        )
    }
}

fn run_module(m: &Module, fuel: u64) -> Result<RunOutcome, String> {
    let main = m.find_func("main").ok_or("no main")?;
    let mut interp = Interpreter::new(m).with_fuel(fuel);
    match interp.run(main, vec![]) {
        Ok(_) => Ok(RunOutcome {
            stdout: interp.stdout().to_owned(),
            stats: interp.stats(),
        }),
        Err(e) => Err(e.to_string()),
    }
}

impl Prober for Driver<'_> {
    fn probe(&mut self, d: &Decisions) -> ProbeOutcome {
        let compiled = self.compile_with(d);
        let unique = compiled
            .oraql
            .as_ref()
            .map(|s| s.lock().stats.unique())
            .unwrap_or(0);
        let h = module_hash(&compiled.module);
        if let Some(&(pass, cached_unique)) = self.hash_cache.get(&h) {
            self.effort.tests_cached += 1;
            return ProbeOutcome {
                pass,
                unique: cached_unique,
            };
        }
        self.effort.tests_run += 1;
        let pass = match run_module(&compiled.module, self.case.fuel) {
            Ok(run) => self.verifier.check(&run.stdout).is_ok(),
            Err(_) => false, // traps count as verification failures
        };
        self.hash_cache.insert(h, (pass, unique));
        ProbeOutcome { pass, unique }
    }

    fn budget_exceeded(&self) -> bool {
        self.effort.tests_run >= self.opts.max_tests
    }

    fn note_deduced(&mut self) {
        self.effort.tests_deduced += 1;
    }
}

/// Runs several cases concurrently (one driver per thread) and returns
/// results in input order. This is the driver-level parallelism used by
/// the Fig. 4 harness across the sixteen configurations.
pub fn run_many(
    cases: &[TestCase],
    opts: &DriverOptions,
) -> Vec<Result<DriverResult, DriverError>> {
    let mut results: Vec<Option<Result<DriverResult, DriverError>>> =
        (0..cases.len()).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            let opts = opts.clone();
            handles.push((i, s.spawn(move |_| Driver::run(case, opts))));
        }
        for (i, h) in handles {
            results[i] = Some(h.join().expect("driver thread panicked"));
        }
    })
    .expect("scope");
    results.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, Ty, Value};

    /// A program with `danger` genuinely-aliasing pointer pairs (each in
    /// its own function, called with aliased arguments), `safe`
    /// non-aliasing pairs that still look may-aliasing to the
    /// conservative chain, and `inert` pairs whose answer no
    /// transformation acts on (these exercise the executable-hash
    /// cache).
    fn mixed_case(safe: usize, danger: usize, inert: usize) -> TestCase {
        TestCase::new("mixed", move || build_mixed(safe, danger, inert))
    }

    /// One opaque two-pointer kernel; `i` makes the name unique.
    fn add_worker(m: &mut Module, i: usize, kind: &str) -> oraql_ir::module::FunctionId {
        let mut b = FunctionBuilder::new(m, &format!("work_{kind}_{i}"), vec![Ty::Ptr, Ty::Ptr], None);
        b.set_src_file("kernel.c");
        let p = b.arg(0);
        let q = b.arg(1);
        if kind == "inert" {
            // A load the MemorySSA walk queries against the store, but
            // nothing is eliminable: decisions here do not change code.
            b.store(Ty::I64, Value::ConstInt(100), q);
            let l = b.load(Ty::I64, p);
            b.print("{}", vec![l]);
        } else {
            let l1 = b.load(Ty::I64, p);
            b.store(Ty::I64, Value::ConstInt(100), q);
            let l2 = b.load(Ty::I64, p); // stale if p==q answered no-alias
            let s = b.add(l1, l2);
            b.print("{}", vec![s]);
        }
        b.ret(None);
        b.finish()
    }

    fn build_mixed(safe: usize, danger: usize, inert: usize) -> Module {
        let mut m = Module::new("mixed");
        let workers_safe: Vec<_> = (0..safe).map(|i| add_worker(&mut m, i, "safe")).collect();
        let workers_danger: Vec<_> = (0..danger)
            .map(|i| add_worker(&mut m, i, "danger"))
            .collect();
        let workers_inert: Vec<_> = (0..inert)
            .map(|i| add_worker(&mut m, i, "inert"))
            .collect();
        let cells = 2 * (safe + danger + inert) + 2;
        let g = m.add_global("cells", 16 * cells as u64, vec![], false);
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        b.set_src_file("main.c");
        let mut cell = 0i64;
        let mut fresh = |b: &mut FunctionBuilder| {
            let p = b.gep(Value::Global(g), 16 * cell);
            cell += 1;
            p
        };
        for w in workers_safe {
            let p = fresh(&mut b);
            let q = fresh(&mut b);
            b.store(Ty::I64, Value::ConstInt(5), p);
            b.call(w, vec![p, q], None);
        }
        for w in workers_danger {
            let p = fresh(&mut b);
            b.store(Ty::I64, Value::ConstInt(5), p);
            b.call(w, vec![p, p], None); // aliased!
        }
        for w in workers_inert {
            let p = fresh(&mut b);
            let q = fresh(&mut b);
            b.store(Ty::I64, Value::ConstInt(7), p);
            b.call(w, vec![p, q], None);
        }
        b.ret(None);
        b.finish();
        m
    }

    #[test]
    fn fully_optimistic_case_short_circuits() {
        let case = mixed_case(3, 0, 0);
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        assert!(r.fully_optimistic);
        assert_eq!(r.oraql.unique_pessimistic, 0);
        assert!(r.oraql.unique_optimistic > 0);
        assert!(r.no_alias_oraql > r.no_alias_original);
        assert_eq!(r.effort.tests_run, 1);
    }

    #[test]
    fn dangerous_queries_pinned_pessimistic() {
        let case = mixed_case(4, 1, 0);
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        assert!(!r.fully_optimistic);
        assert!(r.oraql.unique_pessimistic >= 1);
        assert!(
            r.oraql.unique_optimistic > r.oraql.unique_pessimistic,
            "most queries should stay optimistic: {:?}",
            r.oraql
        );
        // Output is verified inside the driver; also cross-check here.
        assert_eq!(r.baseline_run.stdout, r.final_run.stdout);
    }

    #[test]
    fn frequency_space_strategy_also_works() {
        let case = mixed_case(4, 1, 0);
        let r = Driver::run(
            &case,
            DriverOptions {
                strategy: Strategy::FrequencySpace,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.fully_optimistic);
        assert_eq!(r.baseline_run.stdout, r.final_run.stdout);
        assert!(r.oraql.unique_optimistic > 0);
    }

    #[test]
    fn hash_cache_kicks_in() {
        let case = mixed_case(4, 2, 4);
        let r = Driver::run(&case, DriverOptions::default()).unwrap();
        // Different sequences frequently produce identical executables
        // (decisions on queries that no transformation acts on).
        assert!(
            r.effort.tests_cached > 0,
            "expected cache hits: {:?}",
            r.effort
        );
        assert!(r.effort.compiles >= r.effort.tests_run + r.effort.tests_cached);
    }

    #[test]
    fn run_many_preserves_order() {
        let cases = vec![mixed_case(2, 0, 0), mixed_case(3, 1, 0)];
        let rs = run_many(&cases, &DriverOptions::default());
        assert_eq!(rs.len(), 2);
        assert!(rs[0].as_ref().unwrap().fully_optimistic);
        assert!(!rs[1].as_ref().unwrap().fully_optimistic);
    }
}
