//! # oraql-store — crash-safe persistent verdict store
//!
//! ORAQL's probing loop recomputes the same verdicts in every process:
//! the driver's in-memory `VerdictCaches` die with the run, so every
//! CLI invocation, bench target, and CI pass pays the full probe bill
//! again. This crate persists those verdicts (and the reference outputs
//! that gate them) in an on-disk, append-only, content-addressed
//! journal, so a warm re-run answers probes with metadata lookups
//! instead of compile + VM + verify cycles.
//!
//! ## Content addressing
//!
//! Keys are the driver's existing salted hashes — nothing here invents
//! new identity:
//!
//! * the **case salt** hashes the benchmark name, accepted references,
//!   ignore patterns and fuel — a verdict is only transferable between
//!   probes that agree on all of those;
//! * the **decisions digest** (salt + rendered decision vector) keys
//!   compile-free answers;
//! * the **module hash** (salt + printed module text) keys
//!   run-free answers for bit-identical recompilations.
//!
//! If a workload generator, verifier input, or fuel budget changes, the
//! salt changes, every key changes, and stale entries are simply never
//! hit — there is no invalidation protocol to get wrong.
//!
//! ## Crash safety
//!
//! The journal ([`journal`]) is append-only with per-record checksums.
//! A process killed mid-append leaves a torn tail that [`Store::open`]
//! silently truncates; a bit-flipped record is skipped and counted.
//! Compaction ([`Store::compact`]) rewrites the journal to one record
//! per live key through a temp file + atomic rename, guarded by an
//! advisory file lock so concurrent processes cannot compact over each
//! other; appends take the same lock shared and re-open their handle if
//! the inode changed underneath them.
//!
//! ## Concurrency contract
//!
//! * one process, many threads: share one [`Store`] in an `Arc`; all
//!   internal state is behind a mutex, counters are atomics;
//! * many processes: appends are single `write(2)` calls on an
//!   `O_APPEND` descriptor under a shared advisory lock; torn/interleaved
//!   writes are detected by checksums on the next open. [`Store::refresh`]
//!   picks up records other handles appended since open.

// The PR 4 driver audit, extended to the store now that a long-lived
// server owns journals: no `unwrap`/`expect` may sit on an I/O-reachable
// path. Everything fallible returns `StoreError`/`io::Error`; the only
// panics left are in `#[cfg(test)]` code, which this attribute exempts.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod journal;
pub mod stats;

pub use journal::Record;
use journal::{HeaderError, Scan, HEADER_LEN};
pub use stats::{StatsSnapshot, StoreStats};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Chaos-testing hook: may mutate (bit-flip) or truncate (tear) an
/// encoded record frame just before it is written to the journal.
/// Returns `true` when it corrupted the frame. See
/// [`Store::set_write_corruptor`].
pub type WriteCorruptor = Arc<dyn Fn(&mut Vec<u8>) -> bool + Send + Sync>;

/// Errors opening or maintaining a store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file exists but is not a (supported) store journal.
    Header(HeaderError),
    /// Another process holds the compaction lock.
    Locked,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Header(e) => write!(f, "{e}"),
            StoreError::Locked => write!(f, "store is locked by another process"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Outcome of one [`Store::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compaction {
    /// Live records written to the compacted journal.
    pub records: u64,
    /// Journal size before, in bytes.
    pub bytes_before: u64,
    /// Journal size after, in bytes.
    pub bytes_after: u64,
}

#[derive(Debug, Default)]
struct Maps {
    exe: HashMap<u64, (bool, u64)>,
    dec: HashMap<u64, (bool, u64)>,
    refs: HashMap<u64, String>,
}

impl Maps {
    fn apply(&mut self, r: Record) {
        match r {
            Record::ExeVerdict { key, pass, unique } => {
                self.exe.insert(key, (pass, unique));
            }
            Record::DecVerdict { key, pass, unique } => {
                self.dec.insert(key, (pass, unique));
            }
            Record::Reference { key, output } => {
                self.refs.insert(key, output);
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    maps: Maps,
    /// Append handle (`O_APPEND`) to the journal.
    writer: File,
    /// Handle to the sibling `.lock` file; held open for the handle's
    /// lifetime, locked shared around appends and exclusively around
    /// compaction.
    lock: File,
    /// Absolute journal offset this handle has loaded through.
    scanned: u64,
}

/// A handle to one on-disk verdict store. Cheap to share via `Arc`;
/// every operation is safe from any thread.
pub struct Store {
    path: PathBuf,
    stats: StoreStats,
    inner: Mutex<Inner>,
    /// Fault-injection hook applied to encoded frames before append.
    corruptor: Mutex<Option<WriteCorruptor>>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("stats", &self.stats)
            .field("inner", &self.inner)
            .field("corruptor", &lock_ignore_poison(&self.corruptor).is_some())
            .finish()
    }
}

/// Separator between the joined reference outputs of one record
/// (ASCII record separator; cannot occur in program stdout, which the
/// VM builds from formatted prints).
pub const REF_SEP: char = '\x1e';

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".lock");
    PathBuf::from(s)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".tmp");
    PathBuf::from(s)
}

#[cfg(unix)]
fn same_file(a: &File, path: &Path) -> bool {
    use std::os::unix::fs::MetadataExt;
    match (a.metadata(), std::fs::metadata(path)) {
        (Ok(ma), Ok(mp)) => ma.ino() == mp.ino() && ma.dev() == mp.dev(),
        _ => false,
    }
}

#[cfg(not(unix))]
fn same_file(_a: &File, _path: &Path) -> bool {
    true // best effort: non-unix hosts skip the staleness check
}

impl Store {
    /// Opens (or creates) the journal at `path`, recovering whatever is
    /// intact: a torn tail is truncated away, checksum-corrupt records
    /// are skipped, and both are counted in [`Store::stats`]. Fails only
    /// on I/O errors or when the file is not a store journal at all.
    pub fn open(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let stats = StoreStats::default();
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() >= 8 && bytes[0..8] != journal::MAGIC {
            return Err(StoreError::Header(HeaderError::BadMagic));
        }
        if bytes.len() >= HEADER_LEN {
            journal::check_header(&bytes).map_err(StoreError::Header)?;
        } else {
            // Empty file, or a header torn by a crash during creation:
            // (re)initialize. The magic was already vetted above, so
            // this can only discard a partial header, never user data.
            if !bytes.is_empty() {
                StoreStats::bump(&stats.dropped_torn, 1);
                stats::obs().dropped_torn.inc();
            }
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&journal::header())?;
            file.sync_data()?;
            bytes = journal::header().to_vec();
        }
        let scan = journal::scan(&bytes[HEADER_LEN..], HEADER_LEN as u64);
        if scan.valid_end < bytes.len() as u64 {
            // Drop the torn tail so future appends start on a frame
            // boundary.
            file.set_len(scan.valid_end)?;
            file.sync_data()?;
        }
        Self::note_scan(&stats, &scan);
        let mut maps = Maps::default();
        let scanned = scan.valid_end;
        for r in scan.records {
            maps.apply(r);
        }
        drop(file);
        let writer = OpenOptions::new().append(true).open(&path)?;
        let lock = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(lock_path(&path))?;
        Ok(Store {
            path,
            stats,
            inner: Mutex::new(Inner {
                maps,
                writer,
                lock,
                scanned,
            }),
            corruptor: Mutex::new(None),
        })
    }

    /// Installs (or clears) a chaos-testing [`WriteCorruptor`]. While
    /// set, every appended frame is offered to the hook first; a frame
    /// the hook corrupts still lands in this handle's in-memory maps —
    /// exactly like real silent disk rot, the damage is only discovered
    /// (checksum-skipped and counted) by the next process that scans
    /// the journal. Counted in [`StatsSnapshot::injected_corrupt`].
    pub fn set_write_corruptor(&self, c: Option<WriteCorruptor>) {
        *lock_ignore_poison(&self.corruptor) = c;
    }

    fn note_scan(stats: &StoreStats, scan: &Scan) {
        StoreStats::bump(&stats.recovered, scan.records.len() as u64);
        StoreStats::bump(&stats.dropped_corrupt, scan.corrupt);
        StoreStats::bump(&stats.dropped_torn, scan.torn);
        let obs = stats::obs();
        obs.recovered.add(scan.records.len() as u64);
        obs.dropped_corrupt.add(scan.corrupt);
        obs.dropped_torn.add(scan.torn);
    }

    /// The journal path this handle is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Entries in the executable-hash key space.
    pub fn exe_entries(&self) -> usize {
        lock_ignore_poison(&self.inner).maps.exe.len()
    }

    /// Entries in the decisions-digest key space.
    pub fn dec_entries(&self) -> usize {
        lock_ignore_poison(&self.inner).maps.dec.len()
    }

    /// Looks up a verdict by salted module hash.
    pub fn exe_verdict(&self, key: u64) -> Option<(bool, u64)> {
        let hit = lock_ignore_poison(&self.inner).maps.exe.get(&key).copied();
        StoreStats::bump(
            if hit.is_some() {
                &self.stats.exe_hits
            } else {
                &self.stats.misses
            },
            1,
        );
        hit
    }

    /// Looks up a verdict by salted decisions digest.
    pub fn dec_verdict(&self, key: u64) -> Option<(bool, u64)> {
        let hit = lock_ignore_poison(&self.inner).maps.dec.get(&key).copied();
        StoreStats::bump(
            if hit.is_some() {
                &self.stats.dec_hits
            } else {
                &self.stats.misses
            },
            1,
        );
        hit
    }

    /// The stored reference outputs for a case salt, if any.
    pub fn references(&self, salt: u64) -> Option<Vec<String>> {
        lock_ignore_poison(&self.inner)
            .maps
            .refs
            .get(&salt)
            .map(|s| s.split(REF_SEP).map(str::to_owned).collect())
    }

    /// A deterministic snapshot of every live record, in the same order
    /// [`Store::compact`] would write them (exe, then dec, then refs,
    /// each sorted by key). Used by `oraql-served` to replay a shard
    /// journal into its read-mostly in-memory index at startup.
    ///
    /// Concurrency: takes the internal mutex for the duration of the
    /// copy; safe to call from any thread, but returns only what this
    /// handle has loaded — call [`Store::refresh`] first to see foreign
    /// appends.
    pub fn export(&self) -> Vec<Record> {
        let inner = lock_ignore_poison(&self.inner);
        let mut out =
            Vec::with_capacity(inner.maps.exe.len() + inner.maps.dec.len() + inner.maps.refs.len());
        let mut exe: Vec<_> = inner.maps.exe.iter().collect();
        exe.sort_unstable_by_key(|(k, _)| **k);
        for (&key, &(pass, unique)) in exe {
            out.push(Record::ExeVerdict { key, pass, unique });
        }
        let mut dec: Vec<_> = inner.maps.dec.iter().collect();
        dec.sort_unstable_by_key(|(k, _)| **k);
        for (&key, &(pass, unique)) in dec {
            out.push(Record::DecVerdict { key, pass, unique });
        }
        let mut refs: Vec<_> = inner.maps.refs.iter().collect();
        refs.sort_unstable_by_key(|(k, _)| **k);
        for (&key, output) in refs {
            out.push(Record::Reference {
                key,
                output: output.clone(),
            });
        }
        out
    }

    /// Records an executable-hash verdict (no-op if an identical record
    /// is already live, so re-runs do not grow the journal).
    pub fn record_exe(&self, key: u64, pass: bool, unique: u64) -> std::io::Result<()> {
        self.record(Record::ExeVerdict { key, pass, unique })
    }

    /// Records a decisions-digest verdict (same dedup as
    /// [`Store::record_exe`]).
    pub fn record_dec(&self, key: u64, pass: bool, unique: u64) -> std::io::Result<()> {
        self.record(Record::DecVerdict { key, pass, unique })
    }

    /// Records the accepted reference outputs for a case salt.
    pub fn record_references(&self, salt: u64, outputs: &[String]) -> std::io::Result<()> {
        let joined = outputs.join(&REF_SEP.to_string());
        self.record(Record::Reference {
            key: salt,
            output: joined,
        })
    }

    fn record(&self, r: Record) -> std::io::Result<()> {
        let mut inner = lock_ignore_poison(&self.inner);
        let live = match &r {
            Record::ExeVerdict { key, pass, unique } => {
                inner.maps.exe.get(key) == Some(&(*pass, *unique))
            }
            Record::DecVerdict { key, pass, unique } => {
                inner.maps.dec.get(key) == Some(&(*pass, *unique))
            }
            Record::Reference { key, output } => inner.maps.refs.get(key) == Some(output),
        };
        if live {
            return Ok(());
        }
        let mut frame = r.encode();
        if let Some(c) = lock_ignore_poison(&self.corruptor).as_ref() {
            if c(&mut frame) {
                StoreStats::bump(&self.stats.injected_corrupt, 1);
            }
        }
        inner.lock.lock_shared()?;
        let res = (|| {
            if !same_file(&inner.writer, &self.path) {
                // Another process compacted the journal out from under
                // us: rebind to the new inode and pick up its records
                // before appending.
                inner.writer = OpenOptions::new().append(true).open(&self.path)?;
                inner.scanned = HEADER_LEN as u64;
                Self::refresh_locked(&self.stats, &mut inner, &self.path)?;
            }
            inner.writer.write_all(&frame)
        })();
        let _ = File::unlock(&inner.lock);
        res?;
        // `scanned` is deliberately NOT advanced: with concurrent
        // writers this frame landed at the shared EOF, not at our scan
        // offset. A later refresh re-reads it and re-applies it — an
        // idempotent no-op.
        inner.maps.apply(r);
        StoreStats::bump(&self.stats.appends, 1);
        stats::obs().appends.inc();
        Ok(())
    }

    /// Loads records other handles (threads or processes) appended
    /// since this handle last read the journal. Returns how many new
    /// records were merged. A tail currently being written by another
    /// process is left in place — it will be complete (or truncated) by
    /// the time it matters.
    pub fn refresh(&self) -> std::io::Result<u64> {
        let mut inner = lock_ignore_poison(&self.inner);
        if !same_file(&inner.writer, &self.path) {
            inner.writer = OpenOptions::new().append(true).open(&self.path)?;
            inner.scanned = HEADER_LEN as u64;
        }
        Self::refresh_locked(&self.stats, &mut inner, &self.path)
    }

    fn refresh_locked(stats: &StoreStats, inner: &mut Inner, path: &Path) -> std::io::Result<u64> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(inner.scanned))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            return Ok(0);
        }
        let scan = journal::scan(&bytes, inner.scanned);
        // Unlike open(), do not truncate or count a torn tail here: the
        // partial frame may simply still be in flight from another
        // writer. Only consume what is already whole.
        StoreStats::bump(&stats.recovered, scan.records.len() as u64);
        StoreStats::bump(&stats.dropped_corrupt, scan.corrupt);
        let obs = stats::obs();
        obs.recovered.add(scan.records.len() as u64);
        obs.dropped_corrupt.add(scan.corrupt);
        let n = scan.records.len() as u64;
        inner.scanned = scan.valid_end;
        for r in scan.records {
            inner.maps.apply(r);
        }
        Ok(n)
    }

    /// Flushes appended records to disk (`fdatasync`). Appends are
    /// plain `write(2)` calls; call this at a checkpoint (end of a
    /// case, end of a run) to bound the loss window on power failure.
    pub fn sync(&self) -> std::io::Result<()> {
        let res = lock_ignore_poison(&self.inner).writer.sync_data();
        if res.is_ok() {
            stats::obs().fsyncs.inc();
        }
        res
    }

    /// Rewrites the journal keeping exactly one record per live key —
    /// superseded and corrupt records disappear, and the byte size
    /// shrinks accordingly. Safe against concurrent processes: takes
    /// the advisory lock exclusively (fails with [`StoreError::Locked`]
    /// if contended), merges any records appended since the last
    /// refresh, writes a fresh journal next to the old one and renames
    /// it into place atomically.
    pub fn compact(&self) -> Result<Compaction, StoreError> {
        let mut inner = lock_ignore_poison(&self.inner);
        match inner.lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => return Err(StoreError::Locked),
            Err(std::fs::TryLockError::Error(e)) => return Err(StoreError::Io(e)),
        }
        let res = self.compact_locked(&mut inner);
        let _ = File::unlock(&inner.lock);
        res
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<Compaction, StoreError> {
        // Pick up everything other processes appended first, so
        // compaction never drops a record it did not know about.
        Self::refresh_locked(&self.stats, inner, &self.path)?;
        let bytes_before = std::fs::metadata(&self.path)?.len();
        let tmp = tmp_path(&self.path);
        let mut out = Vec::with_capacity(bytes_before as usize);
        out.extend_from_slice(&journal::header());
        let mut records = 0u64;
        // Deterministic journal bytes: sorted keys per record kind.
        let mut exe: Vec<_> = inner.maps.exe.iter().collect();
        exe.sort_unstable_by_key(|(k, _)| **k);
        for (&key, &(pass, unique)) in exe {
            out.extend_from_slice(&Record::ExeVerdict { key, pass, unique }.encode());
            records += 1;
        }
        let mut dec: Vec<_> = inner.maps.dec.iter().collect();
        dec.sort_unstable_by_key(|(k, _)| **k);
        for (&key, &(pass, unique)) in dec {
            out.extend_from_slice(&Record::DecVerdict { key, pass, unique }.encode());
            records += 1;
        }
        let mut refs: Vec<_> = inner.maps.refs.iter().collect();
        refs.sort_unstable_by_key(|(k, _)| **k);
        for (&key, output) in refs {
            out.extend_from_slice(
                &Record::Reference {
                    key,
                    output: output.clone(),
                }
                .encode(),
            );
            records += 1;
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            // Persist the rename itself (directory entry update).
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        inner.writer = OpenOptions::new().append(true).open(&self.path)?;
        inner.scanned = out.len() as u64;
        StoreStats::bump(&self.stats.compactions, 1);
        Ok(Compaction {
            records,
            bytes_before,
            bytes_after: out.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oraql_store_{name}_{}",
            std::process::id() // parallel `cargo test` binaries stay apart
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("verdicts.journal")
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = tmp("roundtrip");
        {
            let s = Store::open(&path).unwrap();
            s.record_exe(1, true, 10).unwrap();
            s.record_dec(2, false, 20).unwrap();
            s.record_references(3, &["a\n".into(), "b\n".into()])
                .unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(&path).unwrap();
        assert_eq!(s.exe_verdict(1), Some((true, 10)));
        assert_eq!(s.dec_verdict(2), Some((false, 20)));
        assert_eq!(s.references(3), Some(vec!["a\n".into(), "b\n".into()]));
        assert_eq!(s.stats().recovered, 3);
        assert_eq!(s.stats().hits(), 2);
        assert_eq!(s.exe_verdict(999), None);
        assert_eq!(s.stats().misses, 1);
        cleanup(&path);
    }

    #[test]
    fn identical_rerecord_does_not_grow_journal() {
        let path = tmp("dedup");
        let s = Store::open(&path).unwrap();
        s.record_exe(1, true, 10).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        s.record_exe(1, true, 10).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len);
        assert_eq!(s.stats().appends, 1);
        // A *changed* verdict for the same key is appended (last wins).
        s.record_exe(1, true, 11).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() > len);
        assert_eq!(s.exe_verdict(1), Some((true, 11)));
        cleanup(&path);
    }

    #[test]
    fn torn_tail_recovers_and_truncates() {
        let path = tmp("torn");
        {
            let s = Store::open(&path).unwrap();
            for k in 0..10 {
                s.record_dec(k, true, k).unwrap();
            }
            s.sync().unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        // Kill-mid-write: chop into the final record.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 4).unwrap();
        drop(f);
        let s = Store::open(&path).unwrap();
        assert_eq!(s.stats().dropped_torn, 1);
        assert_eq!(s.stats().recovered, 9);
        for k in 0..9 {
            assert_eq!(s.dec_verdict(k), Some((true, k)), "record {k}");
        }
        assert_eq!(s.dec_verdict(9), None);
        // The torn bytes are gone: appends resume on a frame boundary
        // and a further reopen sees a clean journal.
        s.record_dec(9, true, 9).unwrap();
        s.sync().unwrap();
        let s2 = Store::open(&path).unwrap();
        assert_eq!(s2.stats().dropped_torn, 0);
        assert_eq!(s2.stats().recovered, 10);
        assert_eq!(s2.dec_verdict(9), Some((true, 9)));
        cleanup(&path);
    }

    #[test]
    fn corrupt_record_skipped_with_counted_stat() {
        let path = tmp("corrupt");
        {
            let s = Store::open(&path).unwrap();
            s.record_exe(1, true, 10).unwrap();
            s.record_exe(2, true, 20).unwrap();
            s.record_exe(3, true, 30).unwrap();
            s.sync().unwrap();
        }
        // Flip one payload byte of the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        let frame = Record::ExeVerdict {
            key: 1,
            pass: true,
            unique: 10,
        }
        .encode()
        .len();
        let mid_payload = HEADER_LEN + frame + journal::RECORD_HEADER_LEN + 2;
        bytes[mid_payload] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let s = Store::open(&path).unwrap();
        assert_eq!(s.stats().dropped_corrupt, 1);
        assert_eq!(s.stats().dropped_torn, 0);
        assert_eq!(s.stats().recovered, 2);
        assert_eq!(s.exe_verdict(1), Some((true, 10)));
        assert_eq!(s.exe_verdict(2), None, "corrupt record must not serve");
        assert_eq!(s.exe_verdict(3), Some((true, 30)));
        cleanup(&path);
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        match Store::open(&path) {
            Err(StoreError::Header(HeaderError::BadMagic)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        cleanup(&path);
    }

    #[test]
    fn concurrent_two_handle_append_and_read() {
        let path = tmp("two_handles");
        let a = Arc::new(Store::open(&path).unwrap());
        let b = Arc::new(Store::open(&path).unwrap());
        std::thread::scope(|sc| {
            let a2 = Arc::clone(&a);
            let b2 = Arc::clone(&b);
            sc.spawn(move || {
                for k in 0..50 {
                    a2.record_exe(k, true, k).unwrap();
                }
            });
            sc.spawn(move || {
                for k in 50..100 {
                    b2.record_dec(k, false, k).unwrap();
                }
            });
        });
        a.sync().unwrap();
        b.sync().unwrap();
        // Each handle sees its own writes immediately and the other's
        // after a refresh.
        a.refresh().unwrap();
        b.refresh().unwrap();
        for k in 0..50 {
            assert_eq!(a.exe_verdict(k), Some((true, k)));
            assert_eq!(b.exe_verdict(k), Some((true, k)), "b sees a's records");
        }
        for k in 50..100 {
            assert_eq!(b.dec_verdict(k), Some((false, k)));
            assert_eq!(a.dec_verdict(k), Some((false, k)), "a sees b's records");
        }
        // And a cold reopen recovers every record intact.
        let c = Store::open(&path).unwrap();
        assert_eq!(c.stats().recovered, 100);
        assert_eq!(c.stats().dropped_corrupt, 0);
        assert_eq!(c.stats().dropped_torn, 0);
        cleanup(&path);
    }

    #[test]
    fn compaction_keeps_latest_verdict_per_key() {
        let path = tmp("compact");
        let s = Store::open(&path).unwrap();
        for round in 0..5u64 {
            for k in 0..20u64 {
                s.record_dec(k, true, 100 * round + k).unwrap();
            }
        }
        s.record_references(7, &["ref\n".into()]).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let c = s.compact().unwrap();
        assert_eq!(c.records, 21);
        assert_eq!(c.bytes_before, before);
        assert!(c.bytes_after < before, "{c:?}");
        for k in 0..20 {
            assert_eq!(s.dec_verdict(k), Some((true, 400 + k)), "latest round wins");
        }
        // Appends after compaction land in the new journal.
        s.record_exe(1000, false, 1).unwrap();
        s.sync().unwrap();
        let r = Store::open(&path).unwrap();
        assert_eq!(r.stats().recovered, 22);
        assert_eq!(r.dec_verdict(5), Some((true, 405)));
        assert_eq!(r.exe_verdict(1000), Some((false, 1)));
        assert_eq!(r.references(7), Some(vec!["ref\n".into()]));
        cleanup(&path);
    }

    #[test]
    fn compaction_is_deterministic_and_drops_corrupt_bytes() {
        let path = tmp("compact_det");
        {
            let s = Store::open(&path).unwrap();
            s.record_exe(3, true, 3).unwrap();
            s.record_exe(1, true, 1).unwrap();
            s.record_dec(2, false, 2).unwrap();
            s.sync().unwrap();
        }
        // Corrupt the journal, reopen (skips the bad record), compact:
        // the corrupt frame is gone from the bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xaa;
        std::fs::write(&path, &bytes).unwrap();
        let s = Store::open(&path).unwrap();
        assert_eq!(s.stats().dropped_corrupt, 1);
        s.compact().unwrap();
        let a = std::fs::read(&path).unwrap();
        let s2 = Store::open(&path).unwrap();
        assert_eq!(
            s2.stats().dropped_corrupt,
            0,
            "corrupt bytes compacted away"
        );
        assert_eq!(s2.stats().recovered, 2);
        s2.compact().unwrap();
        let b = std::fs::read(&path).unwrap();
        assert_eq!(a, b, "compaction output is byte-deterministic");
        cleanup(&path);
    }

    #[test]
    fn stale_handle_survives_foreign_compaction() {
        let path = tmp("stale");
        let a = Store::open(&path).unwrap();
        let b = Store::open(&path).unwrap();
        a.record_exe(1, true, 1).unwrap();
        b.refresh().unwrap();
        // b compacts (rename swaps the inode); a's next append must not
        // vanish into the unlinked file.
        b.compact().unwrap();
        a.record_exe(2, true, 2).unwrap();
        a.sync().unwrap();
        let c = Store::open(&path).unwrap();
        assert_eq!(c.exe_verdict(1), Some((true, 1)));
        assert_eq!(c.exe_verdict(2), Some((true, 2)));
        cleanup(&path);
    }

    #[test]
    fn display_of_stats_is_stable() {
        let path = tmp("display");
        let s = Store::open(&path).unwrap();
        s.record_exe(1, true, 1).unwrap();
        let _ = s.exe_verdict(1);
        let text = s.stats().to_string();
        assert!(text.contains("1 hits (1 exe / 0 dec)"), "{text}");
        assert!(text.contains("1 appends"), "{text}");
        cleanup(&path);
    }

    #[test]
    fn write_corruptor_bitflip_is_dropped_on_reopen() {
        let path = tmp("corruptor_flip");
        {
            let s = Store::open(&path).unwrap();
            s.record_exe(1, true, 10).unwrap();
            // Flip one payload bit of every frame appended from here on.
            s.set_write_corruptor(Some(Arc::new(|frame: &mut Vec<u8>| {
                let last = frame.len() - 1;
                frame[last] ^= 0x01;
                true
            })));
            s.record_exe(2, true, 20).unwrap();
            s.sync().unwrap();
            // The writing handle still sees the record in memory —
            // silent disk rot is invisible to the writer by design.
            assert_eq!(s.exe_verdict(2), Some((true, 20)));
            assert_eq!(s.stats().injected_corrupt, 1);
        }
        let s2 = Store::open(&path).unwrap();
        assert_eq!(s2.exe_verdict(1), Some((true, 10)), "clean record kept");
        assert_eq!(s2.exe_verdict(2), None, "corrupt record dropped");
        assert_eq!(s2.stats().dropped_corrupt, 1);
        assert_eq!(s2.stats().recovered, 1);
        cleanup(&path);
    }

    #[test]
    fn write_corruptor_torn_tail_is_truncated_on_reopen() {
        let path = tmp("corruptor_torn");
        {
            let s = Store::open(&path).unwrap();
            s.record_exe(1, true, 10).unwrap();
            // Tear the frame in half, as if the process died mid-write.
            s.set_write_corruptor(Some(Arc::new(|frame: &mut Vec<u8>| {
                frame.truncate(frame.len() / 2);
                true
            })));
            s.record_exe(2, false, 0).unwrap();
            s.sync().unwrap();
        }
        let s2 = Store::open(&path).unwrap();
        assert_eq!(s2.exe_verdict(1), Some((true, 10)));
        assert_eq!(s2.exe_verdict(2), None, "torn record truncated away");
        assert_eq!(s2.stats().dropped_torn, 1);
        // Clearing the hook restores normal appends.
        {
            let s = Store::open(&path).unwrap();
            s.set_write_corruptor(None);
            s.record_exe(3, true, 30).unwrap();
            s.sync().unwrap();
        }
        let s3 = Store::open(&path).unwrap();
        assert_eq!(s3.exe_verdict(3), Some((true, 30)));
        cleanup(&path);
    }
}
