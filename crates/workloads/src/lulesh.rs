//! LULESH — Livermore Unstructured Lagrange Explicit Shock Hydro
//! (paper §V-E), in sequential, OpenMP and MPI variants.
//!
//! LULESH cannot be compiled fully optimistically: the timed kernels
//! contain genuine aliases between the mesh views used by the force and
//! constraint calculations. ORAQL is applied to the timed functions only
//! (the `lulesh.cc` file); setup and teardown live in other files and
//! stay out of scope. The paper reports 35/15/99 pessimistic queries for
//! the seq/OpenMP/MPI variants and essentially unchanged run time.

use crate::toolkit::*;
use oraql::compile::Scope;
use oraql::TestCase;
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::value::Value;
use oraql_ir::Ty;

/// Mesh elements per rank.
const ELEMS: i64 = 32;
/// Time steps.
const STEPS: i64 = 2;

/// Variant selector.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Sequential C++ (8 hazard pairs).
    Seq,
    /// OpenMP (4 hazard pairs, chunked element loop).
    Omp,
    /// MPI, larger problem (2 ranks, 16 hazard pairs, halo exchanges).
    Mpi,
}

impl Variant {
    /// Default hazard count per variant (the paper's relative ordering:
    /// MPI > seq > OpenMP).
    pub fn hazards(self) -> i64 {
        match self {
            Variant::Seq => 8,
            Variant::Omp => 4,
            Variant::Mpi => 16,
        }
    }
    fn ranks(self) -> i64 {
        match self {
            Variant::Mpi => 2,
            _ => 1,
        }
    }
    fn name(self) -> &'static str {
        match self {
            Variant::Seq => "lulesh",
            Variant::Omp => "lulesh_omp",
            Variant::Mpi => "lulesh_mpi",
        }
    }
}

fn mesh_arrays(ranks: i64) -> Vec<(String, u64)> {
    let b = 8 * (ELEMS * ranks) as u64;
    ["xd", "yd", "zd", "fx", "fy", "fz", "e", "p", "q", "halo"]
        .iter()
        .map(|n| (n.to_string(), b))
        .collect()
}

/// `CalcForceForNodes`: force accumulation through mesh views.
fn emit_calc_force(m: &mut Module, ctx: &Ctx, v: Variant) -> FunctionId {
    let (params, outlined) = match v {
        Variant::Omp => (vec![Ty::I64, Ty::Ptr], true),
        _ => (vec![Ty::Ptr], false),
    };
    let mut b = FunctionBuilder::new(m, "CalcForceForNodes", params, None);
    b.set_outlined(outlined);
    b.set_src_file("lulesh.cc");
    b.set_loc("lulesh.cc", 1180, 3);
    let (cp, lo, hi) = if outlined {
        let tid = b.arg(0);
        let cp = b.arg(1);
        let (lo, hi) = chunk_bounds(&mut b, tid, ELEMS, 4);
        (cp, lo, hi)
    } else {
        (
            b.arg(0),
            Value::ConstInt(0),
            Value::ConstInt(ELEMS * v.ranks()),
        )
    };
    let tag = ctx.tag_data;
    // LULESH's timed kernels are hand-tuned: mesh pointers live in
    // locals and the hourglass-force math is sqrt-heavy, so (almost)
    // perfect alias information has little left to win — the paper's
    // "run time is barely affected".
    let xd = dptr(&mut b, ctx, cp, "xd");
    let yd = dptr(&mut b, ctx, cp, "yd");
    let fx = dptr(&mut b, ctx, cp, "fx");
    let fy = dptr(&mut b, ctx, cp, "fy");
    b.counted_loop(lo, hi, |b, i| {
        let xi = b.gep_scaled(xd, i, 8, 0);
        let x = b.load_tbaa(Ty::F64, xi, tag);
        let yi = b.gep_scaled(yd, i, 8, 0);
        let y = b.load_tbaa(Ty::F64, yi, tag);
        let hg0 = b.fmul(x, y);
        let hga = b.call_external("fabs", vec![hg0], Some(Ty::F64)).unwrap();
        let hgf = b.call_external("sqrt", vec![hga], Some(Ty::F64)).unwrap();
        let fxi = b.gep_scaled(fx, i, 8, 0);
        let cfx = b.load_tbaa(Ty::F64, fxi, tag);
        let sfx = b.fadd(cfx, hgf);
        b.store_tbaa(Ty::F64, sfx, fxi, tag);
        let fyi = b.gep_scaled(fy, i, 8, 0);
        let cfy = b.load_tbaa(Ty::F64, fyi, tag);
        let d = b.fsub(x, y);
        let sfy = b.fadd(cfy, d);
        b.store_tbaa(Ty::F64, sfy, fyi, tag);
    });
    b.ret(None);
    b.finish()
}

/// `CalcEnergyForElems`: EOS update with the hazard views (the element
/// energy array is also reachable through the "region representative"
/// views — a real LULESH aliasing pattern).
fn emit_calc_energy(m: &mut Module, ctx: &Ctx, v: Variant, hazards: i64) -> FunctionId {
    let mut b = FunctionBuilder::new(m, "CalcEnergyForElems", vec![Ty::Ptr], None);
    b.set_src_file("lulesh.cc");
    b.set_loc("lulesh.cc", 1560, 5);
    let cp = b.arg(0);
    // Regular EOS work (sqrt-heavy, pointers in locals).
    axpy_loop_ex(
        &mut b,
        ctx,
        cp,
        "p",
        "q",
        "e",
        0.5,
        Value::ConstInt(0),
        Value::ConstInt(ELEMS * v.ranks()),
        PtrMode::Hoisted,
        true,
    );
    // Hazard pairs: region views of `e`.
    let acc = dptr(&mut b, ctx, cp, "fz");
    for h in 0..hazards {
        b.set_loc("lulesh.cc", 1600 + h as u32, 11);
        let rname = format!("reg_r{h}");
        let wname = format!("reg_w{h}");
        hazard_sandwich(&mut b, ctx, cp, &rname, &wname, h % ELEMS, acc);
    }
    b.ret(None);
    b.finish()
}

fn build(v: Variant) -> Module {
    build_with(v, v.hazards())
}

/// Builds a LULESH variant with an explicit hazard count (the scaling
/// study sweeps this to measure probing cost vs dangerous queries).
pub fn build_with(v: Variant, hazards: i64) -> Module {
    let mut m = Module::new(v.name());
    let arrays = mesh_arrays(v.ranks());
    let array_refs: Vec<(&str, u64)> = arrays.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let mut aliases = Vec::new();
    for h in 0..hazards {
        aliases.push((format!("reg_r{h}"), "e".to_owned(), 8 * (h % ELEMS)));
        aliases.push((format!("reg_w{h}"), "e".to_owned(), 8 * (h % ELEMS)));
    }
    let alias_refs: Vec<(&str, &str, i64)> = aliases
        .iter()
        .map(|(a, b, o)| (a.as_str(), b.as_str(), *o))
        .collect();
    let ctx = make_ctx(&mut m, "mesh", &array_refs, &alias_refs);
    let force = emit_calc_force(&mut m, &ctx, v);
    let energy = emit_calc_energy(&mut m, &ctx, v, hazards);

    let mut b = main_builder(&mut m, "lulesh-init.cc");
    init_ctx(&mut b, &ctx);
    let n = ELEMS * v.ranks();
    fill_array(&mut b, &ctx, "xd", n, 1.0, 0.01);
    fill_array(&mut b, &ctx, "yd", n, -0.5, 0.02);
    fill_array(&mut b, &ctx, "zd", n, 0.25, 0.005);
    fill_array(&mut b, &ctx, "p", n, 1.2, 0.001);
    fill_array(&mut b, &ctx, "q", n, 0.8, -0.002);
    for a in ["fx", "fy", "fz", "e", "halo"] {
        fill_array(&mut b, &ctx, a, n, 0.0, 0.0);
    }
    b.counted_loop(Value::ConstInt(0), Value::ConstInt(STEPS), |b, _| {
        match v {
            Variant::Omp => {
                b.parallel_region(force, vec![Value::Global(ctx.global)], 4);
            }
            _ => {
                b.call(force, vec![Value::Global(ctx.global)], None);
            }
        }
        b.call(energy, vec![Value::Global(ctx.global)], None);
        if v == Variant::Mpi {
            // Halo exchange: each rank copies its boundary row into the
            // neighbour's halo (memcpy-chain material for MemCpyOpt).
            let e = ctx.backing("e");
            let halo = ctx.backing("halo");
            for r in 0..v.ranks() {
                let src = b.gep(Value::Global(e), 8 * r * ELEMS);
                let dst = b.gep(Value::Global(halo), 8 * ((r + 1) % v.ranks()) * ELEMS);
                b.memcpy(dst, src, Value::ConstInt(64));
            }
        }
    });
    // The displayed result: mesh checksum (the paper checks the printed
    // mesh result stays identical).
    checksum(&mut b, &ctx, "fx", n, "fx");
    checksum(&mut b, &ctx, "fz", n, "fz");
    checksum(&mut b, &ctx, "e", n, "energy");
    b.print("Elapsed time = {} s", vec![Value::const_f64(0.0)]);
    timing_epilogue(&mut b, "zones/s");
    b.ret(None);
    b.finish();
    m
}

/// The three LULESH test cases.
pub fn cases() -> Vec<TestCase> {
    [Variant::Seq, Variant::Omp, Variant::Mpi]
        .into_iter()
        .map(|v| {
            let mut c = TestCase::new(v.name(), move || build(v));
            // Timed functions only: lulesh.cc (setup is out of scope).
            c.scope = Scope::files(vec!["lulesh.cc".into()]);
            c.ignore_patterns = standard_ignore_patterns();
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn all_variants_run() {
        for v in [Variant::Seq, Variant::Omp, Variant::Mpi] {
            let m = build(v);
            oraql_ir::verify::assert_valid(&m);
            let out = Interpreter::run_main(&m).unwrap();
            assert!(
                out.stdout.contains("checksum(energy)="),
                "{}: {}",
                v.name(),
                out.stdout
            );
        }
    }

    #[test]
    fn mpi_runs_larger_problem() {
        let seq = Interpreter::run_main(&build(Variant::Seq)).unwrap();
        let mpi = Interpreter::run_main(&build(Variant::Mpi)).unwrap();
        assert!(mpi.stats.host_insts > seq.stats.host_insts);
    }
}
