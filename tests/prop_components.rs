//! Property-based tests of individual components: decision sequences,
//! text patterns, the verifier, VM memory, alias-analysis symmetry,
//! dominators, and the bisection strategies.

use oraql_suite::analysis::basic::BasicAA;
use oraql_suite::analysis::domtree::DomTree;
use oraql_suite::analysis::{AAManager, AliasResult, MemoryLocation};
use oraql_suite::ir::builder::FunctionBuilder;
use oraql_suite::ir::{Module, Ty, Value};
use oraql_suite::oraql::sequence::Decisions;
use oraql_suite::oraql::strategy::{chunked, frequency_space, ProbeOutcome, Prober};
use oraql_suite::oraql::textpat::Pattern;
use oraql_suite::oraql::Verifier;
use proptest::prelude::*;

// ---------------------------------------------------------------- sequences

proptest! {
    #[test]
    fn decisions_render_parse_roundtrip(
        seq in proptest::collection::vec(any::<bool>(), 0..64),
        tail in any::<bool>(),
    ) {
        let d = Decisions::Explicit { seq, tail };
        let d2 = Decisions::parse(&d.render()).unwrap();
        for i in 0..96 {
            prop_assert_eq!(d.decide(i), d2.decide(i));
        }
    }

    #[test]
    fn class_decisions_roundtrip(
        classes in proptest::collection::vec((1u64..16, 0u64..16), 0..6),
    ) {
        let d = Decisions::PessimisticClasses(classes);
        let d2 = Decisions::parse(&d.render()).unwrap();
        for i in 0..256 {
            prop_assert_eq!(d.decide(i), d2.decide(i));
        }
    }

    #[test]
    fn pessimistic_count_matches_decide(
        seq in proptest::collection::vec(any::<bool>(), 0..64),
        n in 0u64..96,
    ) {
        let d = Decisions::Explicit { seq, tail: true };
        let manual = (0..n).filter(|&i| !d.decide(i)).count() as u64;
        prop_assert_eq!(d.pessimistic_count(n), manual);
    }
}

// ---------------------------------------------------------------- textpat

/// Replaces every digit run in `line` with `<int>`.
fn generalize(line: &str) -> String {
    let mut out = String::new();
    let mut in_num = false;
    for c in line.chars() {
        if c.is_ascii_digit() {
            if !in_num {
                out.push_str("<int>");
                in_num = true;
            }
        } else {
            in_num = false;
            out.push(c);
        }
    }
    out
}

proptest! {
    #[test]
    fn generalized_pattern_matches_original(
        line in "[a-z =:]{0,12}[0-9]{1,6}[a-z =:]{0,12}",
    ) {
        let p = Pattern::parse(&generalize(&line));
        prop_assert!(p.matches(&line), "{line}");
    }

    #[test]
    fn literal_pattern_matches_only_itself(
        line in "[a-zA-Z ]{1,20}",
        other in "[a-zA-Z ]{1,20}",
    ) {
        let p = Pattern::parse(&line);
        prop_assert!(p.matches(&line));
        prop_assert_eq!(p.matches(&other), line == other);
    }
}

// ---------------------------------------------------------------- verifier

proptest! {
    #[test]
    fn verifier_accepts_identity_and_rejects_mutation(
        lines in proptest::collection::vec("[a-z]{1,8}=[0-9]{1,4}", 1..6),
        victim in 0usize..6,
    ) {
        let reference = lines.join("\n") + "\n";
        let v = Verifier::exact(reference.clone());
        prop_assert!(v.check(&reference).is_ok());
        let victim = victim % lines.len();
        let mut mutated = lines.clone();
        mutated[victim] = format!("{}x", mutated[victim]);
        let bad = mutated.join("\n") + "\n";
        prop_assert!(v.check(&bad).is_err());
    }

    #[test]
    fn ignore_patterns_excuse_only_matching_shapes(
        cycles_a in 0u64..1_000_000,
        cycles_b in 0u64..1_000_000,
    ) {
        let v = Verifier::new(
            vec![format!("ok\nRuntime: {cycles_a} cycles\n")],
            &["Runtime: <int> cycles".to_string()],
        );
        let ok_out = format!("ok\nRuntime: {cycles_b} cycles\n");
        prop_assert!(v.check(&ok_out).is_ok());
        // A shape change is not excused.
        prop_assert!(v.check("ok\nRuntime: never cycles\n").is_err());
        // A change outside the volatile line is not excused.
        let bad_out = format!("no\nRuntime: {cycles_a} cycles\n");
        prop_assert!(v.check(&bad_out).is_err());
    }
}

// ---------------------------------------------------------------- memory

proptest! {
    #[test]
    fn vm_memory_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        gap in 0u64..32,
    ) {
        let mut m = Module::new("t");
        m.add_global("g", 128, vec![], false);
        let mut mem = oraql_suite::vm::memory::Memory::new(&m);
        let base = mem.global_base(0) + gap;
        if gap + data.len() as u64 <= 128 {
            mem.write(base, &data).unwrap();
            let mut back = vec![0u8; data.len()];
            mem.read(base, &mut back).unwrap();
            prop_assert_eq!(data, back);
        } else {
            prop_assert!(mem.write(base, &data).is_err());
        }
    }
}

// ---------------------------------------------------------------- alias analysis

/// Builds a function with a mix of pointer shapes and returns some
/// memory locations derived from its accesses.
fn location_zoo(offs: &[i64]) -> (Module, Vec<MemoryLocation>) {
    let mut m = Module::new("zoo");
    let g = m.add_global("g", 256, vec![], false);
    let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::Ptr], None);
    let mut ptrs = vec![Value::Arg(0), Value::Arg(1), Value::Global(g)];
    let a = b.alloca(128, "a");
    ptrs.push(a);
    for (i, &off) in offs.iter().enumerate() {
        let base = ptrs[i % ptrs.len()];
        let p = b.gep(base, off.rem_euclid(96));
        ptrs.push(p);
    }
    // Touch them all so the verifier is happy.
    let locs: Vec<MemoryLocation> = ptrs
        .iter()
        .map(|&p| MemoryLocation::precise(p, 8))
        .collect();
    for &p in &ptrs {
        b.store(Ty::I64, Value::ConstInt(1), p);
    }
    b.ret(None);
    b.finish();
    (m, locs)
}

proptest! {
    #[test]
    fn alias_queries_are_symmetric(
        offs in proptest::collection::vec(-64i64..64, 1..10),
    ) {
        let (m, locs) = location_zoo(&offs);
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let f = oraql_suite::ir::FunctionId(0);
        for x in &locs {
            for y in &locs {
                let ab = aa.alias(&m, f, x, y);
                let ba = aa.alias(&m, f, y, x);
                prop_assert_eq!(ab, ba, "asymmetric for {:?} vs {:?}", x.ptr, y.ptr);
            }
        }
    }

    #[test]
    fn identity_queries_are_must_alias(
        offs in proptest::collection::vec(-64i64..64, 1..8),
    ) {
        let (m, locs) = location_zoo(&offs);
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let f = oraql_suite::ir::FunctionId(0);
        for x in &locs {
            prop_assert_eq!(aa.alias(&m, f, x, &x.clone()), AliasResult::MustAlias);
        }
    }
}

// ---------------------------------------------------------------- dominators

proptest! {
    #[test]
    fn entry_dominates_every_reachable_block(
        splits in proptest::collection::vec(any::<bool>(), 1..8),
    ) {
        // Build a random chain of diamonds/straight segments.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::I1], None);
        for &diamond in &splits {
            if diamond {
                let t = b.new_block();
                let e = b.new_block();
                let j = b.new_block();
                let c = b.arg(0);
                b.cond_br(c, t, e);
                b.switch_to(t);
                b.br(j);
                b.switch_to(e);
                b.br(j);
                b.switch_to(j);
            } else {
                let n = b.new_block();
                b.br(n);
                b.switch_to(n);
            }
        }
        b.ret(None);
        let id = b.finish();
        let f = m.func(id);
        let dt = DomTree::build(f);
        for &bb in dt.rpo() {
            prop_assert!(dt.dominates(oraql_suite::ir::module::Function::ENTRY, bb));
            // The idom, when present, strictly dominates.
            if let Some(d) = dt.idom(bb) {
                prop_assert!(dt.dominates(d, bb));
                prop_assert!(d != bb);
            }
        }
    }
}

// ---------------------------------------------------------------- strategies

struct Synthetic {
    dangerous: Vec<u64>,
    n: u64,
    tests: u64,
}

impl Prober for Synthetic {
    fn probe(&mut self, d: &Decisions) -> ProbeOutcome {
        self.tests += 1;
        ProbeOutcome {
            pass: self.dangerous.iter().all(|&i| !d.decide(i)),
            unique: self.n,
        }
    }
    fn budget_exceeded(&self) -> bool {
        self.tests > 50_000
    }
    fn note_deduced(&mut self) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn both_strategies_pin_all_dangerous_queries(
        mut dangerous in proptest::collection::vec(0u64..200, 0..12),
        extra in 0u64..56,
    ) {
        dangerous.sort_unstable();
        dangerous.dedup();
        let n = 200 + extra;
        for solve in [chunked as fn(&mut dyn Prober) -> Decisions, frequency_space] {
            let mut s = Synthetic { dangerous: dangerous.clone(), n, tests: 0 };
            let d = solve(&mut s);
            for &i in &dangerous {
                prop_assert!(!d.decide(i), "index {i} left optimistic: {d:?}");
            }
            // Local maximality (sanity bound): the strategies should not
            // pessimize more than a small multiple of the dangerous set
            // plus bookkeeping.
            let pess = d.pessimistic_count(n);
            prop_assert!(
                pess <= (dangerous.len() as u64) * 8 + 8,
                "excessively pessimistic: {pess} for {} dangers", dangerous.len()
            );
        }
    }
}
