/root/repo/target/debug/deps/oraql-477cf8f1fcb56878.d: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/pass.rs crates/core/src/pool.rs crates/core/src/report.rs crates/core/src/sequence.rs crates/core/src/strategy.rs crates/core/src/textpat.rs crates/core/src/trace.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/liboraql-477cf8f1fcb56878.rmeta: crates/core/src/lib.rs crates/core/src/compile.rs crates/core/src/config.rs crates/core/src/driver.rs crates/core/src/pass.rs crates/core/src/pool.rs crates/core/src/report.rs crates/core/src/sequence.rs crates/core/src/strategy.rs crates/core/src/textpat.rs crates/core/src/trace.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/compile.rs:
crates/core/src/config.rs:
crates/core/src/driver.rs:
crates/core/src/pass.rs:
crates/core/src/pool.rs:
crates/core/src/report.rs:
crates/core/src/sequence.rs:
crates/core/src/strategy.rs:
crates/core/src/textpat.rs:
crates/core/src/trace.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
