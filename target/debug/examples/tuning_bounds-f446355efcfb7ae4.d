/root/repo/target/debug/examples/tuning_bounds-f446355efcfb7ae4.d: examples/tuning_bounds.rs Cargo.toml

/root/repo/target/debug/examples/libtuning_bounds-f446355efcfb7ae4.rmeta: examples/tuning_bounds.rs Cargo.toml

examples/tuning_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
