//! Crash-point recovery torture: run the real `oraql-served` daemon as
//! a child process with an armed `crash-point` fault site
//! (`CrashMode::Abort` — the process genuinely dies mid-request), kill
//! it over and over at injected points, restart it over the same
//! directory, and assert the journal-replay contract after every
//! death: **no acked write is ever lost, and no torn record is ever
//! served** (a surviving key must come back byte-exact, not merely
//! present).

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use oraql_served::{Client, ClientOptions};

/// The expected verdict for key `k`; a pure function, so serving a
/// torn or bit-rotted record shows up as a value mismatch.
fn verdict(k: u64) -> (bool, u64) {
    (k % 2 == 1, k.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

struct Torture {
    dir: std::path::PathBuf,
    seed: u64,
    child: Child,
    client: Client,
    kills: u32,
}

impl Torture {
    fn spawn_daemon(dir: &std::path::Path, seed: u64, incarnation: u32) -> (Child, String) {
        // A slow ambient fsync keeps the crash-point draw rate tied to
        // request traffic instead of the fsync ticker, so the daemon
        // reliably survives long enough to ack some writes. The fault
        // seed folds in the incarnation number: each restart's injector
        // starts its draw counter at zero, so reusing the seed verbatim
        // would kill every incarnation at the *same* deterministic
        // point and the torture loop would livelock on one key.
        let fault_seed = seed.wrapping_mul(1000).wrapping_add(incarnation as u64);
        let mut child = Command::new(env!("CARGO_BIN_EXE_oraql-served"))
            .args([
                "serve",
                "--dir",
                dir.to_str().unwrap(),
                "--listen",
                "127.0.0.1:0",
                "--fsync-ms",
                "200",
                "--fault-plan",
                &format!("seed={fault_seed},crash-point=1/24"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn oraql-served");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("daemon banner");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .unwrap_or_else(|| panic!("unparseable daemon banner: {line:?}"))
            .trim()
            .to_string();
        (child, addr)
    }

    fn new(dir: std::path::PathBuf, seed: u64) -> Torture {
        let (child, addr) = Torture::spawn_daemon(&dir, seed, 0);
        let client = Torture::client_for(&addr);
        Torture {
            dir,
            seed,
            child,
            client,
            kills: 0,
        }
    }

    fn client_for(addr: &str) -> Client {
        Client::with_options(
            addr,
            ClientOptions {
                timeout: Duration::from_millis(500),
                cooldown: Duration::from_millis(10),
                max_retries: 0, // the harness owns retries
                seed: 1,
                ..ClientOptions::default()
            },
        )
    }

    /// After a client error: if the daemon died, wait for the corpse,
    /// restart over the same directory, and hand back `true`. A `false`
    /// means the daemon is still alive (transient failure) — retry.
    fn reap_and_restart(&mut self) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(_) => break,
                None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
                None => return false,
            }
        }
        self.kills += 1;
        let (child, addr) = Torture::spawn_daemon(&self.dir, self.seed, self.kills);
        self.child = child;
        self.client = Torture::client_for(&addr);
        true
    }

    /// Every previously acked write must be served byte-exact. The
    /// daemon may crash *again* mid-verification (the plan stays
    /// armed); that just earns another restart and a re-read.
    fn verify(&mut self, acked: &[u64]) {
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut i = 0;
        while i < acked.len() {
            let k = acked[i];
            match self.client.get_dec(k) {
                Ok(got) => {
                    assert_eq!(
                        got,
                        Some(verdict(k)),
                        "seed {}: acked key {k} lost or torn after {} kills",
                        self.seed,
                        self.kills
                    );
                    i += 1;
                }
                Err(e) => {
                    assert!(
                        Instant::now() < deadline,
                        "seed {}: verification never converged: {e}",
                        self.seed
                    );
                    if !self.reap_and_restart() {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        }
    }
}

impl Drop for Torture {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The torture loop, per seed: keep appending verdicts until the
/// injected crash points have killed the daemon at least twice, then
/// once more for good measure, verifying the full acked set after
/// every single death.
#[test]
fn acked_writes_survive_repeated_crash_points() {
    for seed in [3u64, 11, 29] {
        let dir =
            std::env::temp_dir().join(format!("oraql_crashtort_{seed}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut t = Torture::new(dir, seed);

        let mut acked: Vec<u64> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(90);
        let mut k = 0u64;
        while (t.kills < 3 || acked.len() < 48) && acked.len() < 400 {
            assert!(
                Instant::now() < deadline,
                "seed {seed}: torture loop never accumulated enough kills \
                 ({} kills, {} acked)",
                t.kills,
                acked.len()
            );
            let (pass, unique) = verdict(k);
            match t.client.put_dec(k, pass, unique) {
                Ok(()) => {
                    acked.push(k);
                    k += 1;
                }
                Err(_) => {
                    // Unacked: the write may or may not have been
                    // journaled — both outcomes are legal. Re-putting
                    // the same key is safe (idempotent by design).
                    if t.reap_and_restart() {
                        t.verify(&acked);
                    } else {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        }
        assert!(
            t.kills >= 3,
            "seed {seed}: crash points never killed the daemon enough ({})",
            t.kills
        );
        t.verify(&acked);
    }
}
