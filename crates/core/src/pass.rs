//! The ORAQL alias-analysis pass (paper §IV-A).
//!
//! "Alias analysis pass" is a misnomer: no analysis is performed. The
//! pass answers queries solely according to a predetermined decision
//! sequence. It is appended as the *final* analysis in the chain, so it
//! only responds to queries that no conservative analysis could answer.
//!
//! A cache keyed by the unordered pointer pair (location descriptions
//! deliberately ignored) keeps responses consistent — optimistic
//! responses often violate internal invariants if inconsistent — and
//! shortens the sequence that must be probed. When the end of the
//! sequence is reached, all further unique queries are answered
//! optimistically. The number of unique queries is reported through the
//! statistics interface so the driver can adjust sequence lengths.

use crate::compile::Scope;
use crate::sequence::Decisions;
use oraql_analysis::aa::{AliasAnalysis, QueryCtx};
use oraql_analysis::location::{AliasResult, MemoryLocation};
use oraql_ir::module::FunctionId;
use oraql_ir::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Query counters, matching the columns of the paper's Fig. 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OraqlStats {
    /// Unique queries answered optimistically.
    pub unique_optimistic: u64,
    /// Cache hits replaying an optimistic answer.
    pub cached_optimistic: u64,
    /// Unique queries answered pessimistically.
    pub unique_pessimistic: u64,
    /// Cache hits replaying a pessimistic answer.
    pub cached_pessimistic: u64,
    /// Queries outside the configured scope (not answered, not cached).
    pub out_of_scope: u64,
}

impl OraqlStats {
    /// Total unique (non-cached) queries — the sequence length the
    /// driver must cover.
    pub fn unique(&self) -> u64 {
        self.unique_optimistic + self.unique_pessimistic
    }
}

/// One unique query as recorded for reports (Fig. 3).
#[derive(Debug, Clone)]
pub struct UniqueQuery {
    /// Function containing the query.
    pub func: FunctionId,
    /// First location as queried (with its location size).
    pub a: MemoryLocation,
    /// Second location.
    pub b: MemoryLocation,
    /// `true` = answered no-alias.
    pub optimistic: bool,
    /// Pass that issued the first (non-cached) occurrence.
    pub pass: String,
    /// Position in the decision sequence.
    pub index: u64,
    /// How many later queries were served from the cache entry.
    pub cached_hits: u64,
}

/// What an *optimistic* answer means (paper §VIII future work: explore
/// whether optimistic must-alias responses unlock further
/// optimizations, e.g. store-to-load forwarding between pointers the
/// analyses cannot relate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimismKind {
    /// Optimistic answers are `NoAlias` (the paper's main design).
    #[default]
    NoAlias,
    /// Optimistic answers are `MustAlias`.
    MustAlias,
}

/// Pass state shared between the installed analysis (inside the AA
/// manager) and the driver that inspects it after compilation.
#[derive(Debug, Default)]
pub struct OraqlState {
    /// Decision source for this compilation.
    pub decisions: Decisions,
    /// Next sequence index to consume.
    pub next_index: u64,
    /// Per-pointer-pair decision cache.
    cache: HashMap<(FunctionId, Value, Value), usize>,
    /// Counters.
    pub stats: OraqlStats,
    /// Unique query records (always collected; one entry per cache key).
    pub queries: Vec<UniqueQuery>,
    /// Scope restriction.
    pub scope: Scope,
    /// Disabled passes answer everything MayAlias without recording.
    pub enabled: bool,
    /// What optimistic answers mean.
    pub optimism: OptimismKind,
}

impl Default for Decisions {
    fn default() -> Self {
        Decisions::all_optimistic()
    }
}

/// `std::sync::Mutex` wrapper with a `parking_lot`-style infallible
/// `lock()` (a poisoned lock means a panicking compilation thread; the
/// state is plain counters, so we recover the inner value).
#[derive(Debug, Default)]
pub struct SharedOraqlState(Mutex<OraqlState>);

impl SharedOraqlState {
    /// Locks the pass state.
    pub fn lock(&self) -> MutexGuard<'_, OraqlState> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Shared handle to the pass state.
pub type OraqlShared = Arc<SharedOraqlState>;

/// Creates a fresh shared state for one compilation.
pub fn new_shared(decisions: Decisions, scope: Scope) -> OraqlShared {
    new_shared_with(decisions, scope, OptimismKind::NoAlias)
}

/// [`new_shared`] with an explicit optimism kind (§VIII extension).
pub fn new_shared_with(decisions: Decisions, scope: Scope, optimism: OptimismKind) -> OraqlShared {
    Arc::new(SharedOraqlState(Mutex::new(OraqlState {
        decisions,
        scope,
        enabled: true,
        optimism,
        ..Default::default()
    })))
}

/// The installable analysis: a thin adapter around the shared state.
pub struct OraqlAA {
    shared: OraqlShared,
}

impl OraqlAA {
    /// Wraps a shared state.
    pub fn new(shared: OraqlShared) -> Self {
        OraqlAA { shared }
    }
}

impl AliasAnalysis for OraqlAA {
    fn name(&self) -> &'static str {
        "ORAQL"
    }

    fn alias(&mut self, ctx: &QueryCtx<'_>, a: &MemoryLocation, b: &MemoryLocation) -> AliasResult {
        let mut st = self.shared.lock();
        if !st.enabled {
            return AliasResult::MayAlias;
        }
        // Scope restriction (§IV-E): only answer for functions from the
        // configured files / the configured compilation target.
        let f = ctx.module.func(ctx.func);
        if !st.scope.contains(ctx.module, f) {
            st.stats.out_of_scope += 1;
            return AliasResult::MayAlias;
        }

        // Cache lookup: unordered pointer pair, location sizes ignored.
        let key = if a.ptr <= b.ptr {
            (ctx.func, a.ptr, b.ptr)
        } else {
            (ctx.func, b.ptr, a.ptr)
        };
        let positive = match st.optimism {
            OptimismKind::NoAlias => AliasResult::NoAlias,
            OptimismKind::MustAlias => AliasResult::MustAlias,
        };
        if let Some(&qi) = st.cache.get(&key) {
            let optimistic = st.queries[qi].optimistic;
            st.queries[qi].cached_hits += 1;
            if optimistic {
                st.stats.cached_optimistic += 1;
                return positive;
            }
            st.stats.cached_pessimistic += 1;
            return AliasResult::MayAlias;
        }

        // New unique query: consume the next sequence position.
        let index = st.next_index;
        st.next_index += 1;
        let optimistic = st.decisions.decide(index);
        if optimistic {
            st.stats.unique_optimistic += 1;
        } else {
            st.stats.unique_pessimistic += 1;
        }
        let qi = st.queries.len();
        st.queries.push(UniqueQuery {
            func: ctx.func,
            a: a.clone(),
            b: b.clone(),
            optimistic,
            pass: ctx.pass.to_owned(),
            index,
            cached_hits: 0,
        });
        st.cache.insert(key, qi);
        if optimistic {
            positive
        } else {
            AliasResult::MayAlias
        }
    }

    fn stats(&self) -> Vec<(String, u64)> {
        let st = self.shared.lock();
        vec![
            ("unique queries".into(), st.stats.unique()),
            ("unique optimistic".into(), st.stats.unique_optimistic),
            ("unique pessimistic".into(), st.stats.unique_pessimistic),
            ("cached optimistic".into(), st.stats.cached_optimistic),
            ("cached pessimistic".into(), st.stats.cached_pessimistic),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_analysis::location::LocationSize;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::{Module, Ty};

    fn module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::Ptr, Ty::Ptr], None);
        b.set_src_file("sna.cpp");
        b.store(Ty::I64, Value::ConstInt(0), b.arg(0));
        b.ret(None);
        b.finish();
        m
    }

    fn loc(arg: u32, size: LocationSize) -> MemoryLocation {
        MemoryLocation::new(Value::Arg(arg), size)
    }

    fn query(aa: &mut OraqlAA, m: &Module, a: &MemoryLocation, b: &MemoryLocation) -> AliasResult {
        let ctx = QueryCtx {
            module: m,
            func: FunctionId(0),
            pass: "GVN",
        };
        aa.alias(&ctx, a, b)
    }

    #[test]
    fn sequence_consumed_only_by_unique_queries() {
        let m = module();
        let shared = new_shared(
            Decisions::Explicit {
                seq: vec![true, false],
                tail: true,
            },
            Scope::everything(),
        );
        let mut aa = OraqlAA::new(shared.clone());
        let a = loc(0, LocationSize::Precise(8));
        let b = loc(1, LocationSize::Precise(8));
        assert_eq!(query(&mut aa, &m, &a, &b), AliasResult::NoAlias);
        // Identical pair, different location size: served from cache.
        let a2 = loc(0, LocationSize::BeforeOrAfterPointer);
        assert_eq!(query(&mut aa, &m, &a2, &b), AliasResult::NoAlias);
        // Swapped operand order: still the same pair.
        assert_eq!(query(&mut aa, &m, &b, &a), AliasResult::NoAlias);
        let st = shared.lock();
        assert_eq!(st.stats.unique_optimistic, 1);
        assert_eq!(st.stats.cached_optimistic, 2);
        assert_eq!(st.next_index, 1);
        assert_eq!(st.queries[0].cached_hits, 2);
    }

    #[test]
    fn pessimistic_decision_replayed_from_cache() {
        let m = module();
        let shared = new_shared(
            Decisions::Explicit {
                seq: vec![false],
                tail: true,
            },
            Scope::everything(),
        );
        let mut aa = OraqlAA::new(shared.clone());
        let a = loc(0, LocationSize::Precise(8));
        let b = loc(1, LocationSize::Precise(8));
        assert_eq!(query(&mut aa, &m, &a, &b), AliasResult::MayAlias);
        assert_eq!(query(&mut aa, &m, &a, &b), AliasResult::MayAlias);
        let st = shared.lock();
        assert_eq!(st.stats.unique_pessimistic, 1);
        assert_eq!(st.stats.cached_pessimistic, 1);
    }

    #[test]
    fn end_of_sequence_is_optimistic() {
        let m = module();
        let shared = new_shared(
            Decisions::Explicit {
                seq: vec![],
                tail: true,
            },
            Scope::everything(),
        );
        let mut aa = OraqlAA::new(shared.clone());
        for i in 0..5u32 {
            let a = loc(0, LocationSize::Precise(8 + i as u64));
            let mut b = loc(1, LocationSize::Precise(8));
            // Make pairs unique by varying the second pointer.
            b.ptr = Value::ConstInt(i as i64);
            assert_eq!(query(&mut aa, &m, &a, &b), AliasResult::NoAlias);
        }
        assert_eq!(shared.lock().stats.unique_optimistic, 5);
    }

    #[test]
    fn out_of_scope_queries_not_answered() {
        let m = module();
        let shared = new_shared(
            Decisions::all_optimistic(),
            Scope::files(vec!["lulesh.cc".into()]),
        );
        let mut aa = OraqlAA::new(shared.clone());
        let a = loc(0, LocationSize::Precise(8));
        let b = loc(1, LocationSize::Precise(8));
        // The module's function is from sna.cpp: out of scope.
        assert_eq!(query(&mut aa, &m, &a, &b), AliasResult::MayAlias);
        let st = shared.lock();
        assert_eq!(st.stats.unique(), 0);
        assert_eq!(st.stats.out_of_scope, 1);
    }

    #[test]
    fn disabled_pass_is_inert() {
        let m = module();
        let shared = new_shared(Decisions::all_optimistic(), Scope::everything());
        shared.lock().enabled = false;
        let mut aa = OraqlAA::new(shared.clone());
        let a = loc(0, LocationSize::Precise(8));
        let b = loc(1, LocationSize::Precise(8));
        assert_eq!(query(&mut aa, &m, &a, &b), AliasResult::MayAlias);
        assert_eq!(shared.lock().stats.unique(), 0);
    }

    #[test]
    fn records_issuing_pass() {
        let m = module();
        let shared = new_shared(Decisions::all_optimistic(), Scope::everything());
        let mut aa = OraqlAA::new(shared.clone());
        let a = loc(0, LocationSize::Precise(8));
        let b = loc(1, LocationSize::Precise(8));
        query(&mut aa, &m, &a, &b);
        let st = shared.lock();
        assert_eq!(st.queries[0].pass, "GVN");
        assert_eq!(st.queries[0].index, 0);
    }
}
