/root/repo/target/debug/deps/scaling-e833902b28f6ceb4.d: crates/bench/benches/scaling.rs

/root/repo/target/debug/deps/scaling-e833902b28f6ceb4: crates/bench/benches/scaling.rs

crates/bench/benches/scaling.rs:
