//! Minimal JSON-lines formatting helpers shared by the probe trace
//! (`oraql-core::trace`) and the span sink. Hand-rolled on purpose:
//! the repo is std-only, and the subset we need (flat objects of
//! strings, integers, and booleans) does not justify a parser crate.

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extract the raw text of `"key": <value>` from a flat JSON object.
/// Returns the value with surrounding whitespace trimmed, quotes kept.
pub fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut esc = false;
        for (i, c) in stripped.char_indices() {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                return Some(&rest[..i + 2]);
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim_end())
    }
}

/// Parse `"key": <u64>` out of a flat JSON object line.
pub fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_field(line, key)?.parse().ok()
}

/// Parse `"key": <bool>` out of a flat JSON object line.
pub fn json_bool(line: &str, key: &str) -> Option<bool> {
    match json_field(line, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Parse `"key": "<string>"` out of a flat JSON object line,
/// un-escaping the common escapes produced by [`escape_json`].
pub fn json_str(line: &str, key: &str) -> Option<String> {
    let raw = json_field(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_and_unescape_roundtrip() {
        let nasty = "a\"b\\c\nd\te\r\u{1}f";
        let line = format!("{{\"k\": \"{}\"}}", escape_json(nasty));
        assert_eq!(json_str(&line, "k").as_deref(), Some(nasty));
    }

    #[test]
    fn field_extraction() {
        let line = r#"{"a": 17, "b": "x,y", "c": true}"#;
        assert_eq!(json_u64(line, "a"), Some(17));
        assert_eq!(json_str(line, "b").as_deref(), Some("x,y"));
        assert_eq!(json_bool(line, "c"), Some(true));
        assert_eq!(json_u64(line, "missing"), None);
    }
}
