#!/usr/bin/env sh
# Probe-latency microbenchmark for the two interpreter modes.
#
# Runs every registered workload configuration under both the tree-walk
# reference and the pre-decoded executor and writes per-case latency,
# instructions-per-second, the per-case speedup geomean, and the
# instruction-weighted total speedup as JSON. Output path defaults to
# BENCH_interp.json in the repo root; override with ORAQL_BENCH_OUT.
set -eu
cd "$(dirname "$0")/.."

# Cargo runs benches with the package directory as cwd, so anchor the
# default output at the repo root via an absolute path.
ORAQL_BENCH_OUT="${ORAQL_BENCH_OUT:-$(pwd)/BENCH_interp.json}" \
    cargo bench --offline -p oraql-bench --bench interp_latency
