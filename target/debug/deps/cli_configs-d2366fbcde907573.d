/root/repo/target/debug/deps/cli_configs-d2366fbcde907573.d: tests/cli_configs.rs

/root/repo/target/debug/deps/cli_configs-d2366fbcde907573: tests/cli_configs.rs

tests/cli_configs.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
