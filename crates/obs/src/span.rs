//! Scoped-timer span tracing feeding the same JSONL sink family as
//! the probe trace.
//!
//! A [`SpanSink`] hands out [`Span`] guards; each guard records one
//! [`SpanEvent`] on drop (including unwinds, so a panicking probe
//! still closes its span). Events carry `id`/`parent` so the
//! analyzer can rebuild the `case > probe > compile|vm|verify|store|
//! server` hierarchy, and `start_micros` relative to the sink's
//! creation instant so merged files from one run share a clock.

use crate::jsonl::{escape_json, json_str, json_u64};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span, serialized as a single JSONL line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique per-sink id, starting at 1. 0 is never allocated.
    pub id: u64,
    /// Id of the enclosing span, or 0 for roots.
    pub parent: u64,
    /// Static label (`case`, `probe`, `compile`, `vm`, ...).
    pub name: String,
    /// Workload case the span belongs to ("" outside any case).
    pub case: String,
    /// Start offset in microseconds from sink creation.
    pub start_micros: u64,
    /// Wall-clock duration in microseconds.
    pub dur_micros: u64,
}

impl SpanEvent {
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"id\": {}, \"parent\": {}, \"name\": \"{}\", \"case\": \"{}\", \"start_micros\": {}, \"dur_micros\": {}}}",
            self.id,
            self.parent,
            escape_json(&self.name),
            escape_json(&self.case),
            self.start_micros,
            self.dur_micros
        )
    }

    pub fn parse_jsonl(line: &str) -> Option<SpanEvent> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(SpanEvent {
            id: json_u64(line, "id")?,
            parent: json_u64(line, "parent")?,
            name: json_str(line, "name")?,
            case: json_str(line, "case")?,
            start_micros: json_u64(line, "start_micros")?,
            dur_micros: json_u64(line, "dur_micros")?,
        })
    }
}

struct SpanInner {
    events: Vec<SpanEvent>,
    file: Option<BufWriter<File>>,
    dropped: u64,
}

/// Shared, cloneable span sink. Clones share the buffer, the id
/// allocator, and the epoch, so spans from worker threads interleave
/// into one stream.
#[derive(Clone)]
pub struct SpanSink {
    inner: Arc<Mutex<SpanInner>>,
    next_id: Arc<AtomicU64>,
    epoch: Instant,
}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_ignore_poison(&self.inner);
        f.debug_struct("SpanSink")
            .field("events", &inner.events.len())
            .field("file", &inner.file.is_some())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl SpanSink {
    pub fn in_memory() -> SpanSink {
        SpanSink {
            inner: Arc::new(Mutex::new(SpanInner {
                events: Vec::new(),
                file: None,
                dropped: 0,
            })),
            next_id: Arc::new(AtomicU64::new(1)),
            epoch: Instant::now(),
        }
    }

    /// Sink that also streams each event to `path` (truncated).
    pub fn to_file(path: &Path) -> std::io::Result<SpanSink> {
        let file = File::create(path)?;
        let sink = SpanSink::in_memory();
        lock_ignore_poison(&sink.inner).file = Some(BufWriter::new(file));
        Ok(sink)
    }

    /// Open a span. The returned guard records the event when it is
    /// dropped; `parent` is a previously issued id, or 0 for a root.
    pub fn span(&self, name: &'static str, case: &str, parent: u64) -> Span {
        Span {
            sink: self.clone(),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            case: case.to_string(),
            start_micros: self.epoch.elapsed().as_micros() as u64,
            started: Instant::now(),
        }
    }

    fn record(&self, ev: SpanEvent) {
        let mut inner = lock_ignore_poison(&self.inner);
        if let Some(f) = inner.file.as_mut() {
            if writeln!(f, "{}", ev.to_jsonl()).is_err() {
                inner.dropped += 1;
                crate::global()
                    .counter("oraql_spans_dropped_lines_total")
                    .inc();
            }
        }
        inner.events.push(ev);
    }

    /// All events recorded so far, in completion order.
    pub fn events(&self) -> Vec<SpanEvent> {
        lock_ignore_poison(&self.inner).events.clone()
    }

    /// Flush the backing file, if any. Returns the number of span
    /// lines dropped by failed writes (including a failed flush), so
    /// callers can report data loss once instead of never.
    pub fn flush(&self) -> u64 {
        let mut inner = lock_ignore_poison(&self.inner);
        if let Some(f) = inner.file.as_mut() {
            if f.flush().is_err() {
                inner.dropped += 1;
                crate::global()
                    .counter("oraql_spans_dropped_lines_total")
                    .inc();
            }
        }
        inner.dropped
    }
}

/// Scoped timer; records its [`SpanEvent`] on drop.
pub struct Span {
    sink: SpanSink,
    id: u64,
    parent: u64,
    name: &'static str,
    case: String,
    start_micros: u64,
    started: Instant,
}

impl Span {
    /// The span's id, for use as a child's `parent`.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ev = SpanEvent {
            id: self.id,
            parent: self.parent,
            name: self.name.to_string(),
            case: std::mem::take(&mut self.case),
            start_micros: self.start_micros,
            dur_micros: self.started.elapsed().as_micros() as u64,
        };
        self.sink.record(ev);
    }
}

/// Read a spans file back, skipping blank lines and rejecting
/// malformed ones.
pub fn read_spans(path: &Path) -> std::io::Result<Vec<SpanEvent>> {
    let f = File::open(path)?;
    let mut out = Vec::new();
    for (no, line) in BufReader::new(f).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match SpanEvent::parse_jsonl(&line) {
            Some(ev) => out.push(ev),
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad span line {}: {line}", no + 1),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip() {
        let ev = SpanEvent {
            id: 3,
            parent: 1,
            name: "vm".to_string(),
            case: "loop \"nest\"".to_string(),
            start_micros: 17,
            dur_micros: 4096,
        };
        assert_eq!(SpanEvent::parse_jsonl(&ev.to_jsonl()), Some(ev));
        assert_eq!(SpanEvent::parse_jsonl("not json"), None);
    }

    #[test]
    fn guard_records_on_drop_with_hierarchy() {
        let sink = SpanSink::in_memory();
        let parent_id;
        {
            let case = sink.span("case", "demo", 0);
            parent_id = case.id();
            let probe = sink.span("probe", "demo", case.id());
            drop(sink.span("vm", "demo", probe.id()));
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        // Children complete before parents.
        assert_eq!(evs[0].name, "vm");
        assert_eq!(evs[2].name, "case");
        assert_eq!(evs[2].parent, 0);
        assert_eq!(evs[1].parent, parent_id);
        // Ids are unique and nonzero.
        assert!(evs.iter().all(|e| e.id != 0));
    }

    #[test]
    fn guard_records_on_unwind() {
        let sink = SpanSink::in_memory();
        let s2 = sink.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _span = s2.span("probe", "boom", 0);
            panic!("probe died");
        }));
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].name, "probe");
    }

    #[test]
    fn sink_roundtrips_through_file() {
        let path = std::env::temp_dir().join(format!(
            "oraql_spans_test_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let sink = SpanSink::to_file(&path).expect("create spans file");
        {
            let case = sink.span("case", "f", 0);
            drop(sink.span("compile", "f", case.id()));
        }
        assert_eq!(sink.flush(), 0, "no dropped lines");
        let back = read_spans(&path).expect("read spans back");
        assert_eq!(back, sink.events());
        let _ = std::fs::remove_file(&path);
    }
}
