//! Bounded worker pool for parallel probing (std-only concurrency).
//!
//! The probing driver (paper §IV-B) spends almost all of its time in
//! compile-and-run probe cycles that are independent of each other:
//! sibling probes inside one bisection step, speculative grandchildren
//! of the bisection DAG, and probes of different
//! [`crate::driver::TestCase`]s in a suite. [`WorkerPool`] is the shared
//! execution substrate for all of them — a fixed set of `std::thread`
//! workers draining a single priority queue, so a `--jobs N` budget
//! bounds the total probe concurrency of a whole suite run no matter
//! how many drivers feed it.
//!
//! # Concurrency contract
//!
//! * Jobs are opaque `FnOnce() + Send` closures; they must not block on
//!   other pool jobs (probe jobs never do — each one is a self-contained
//!   compile + execute + verify cycle), otherwise the bounded pool can
//!   deadlock.
//! * The queue is a priority queue: higher [`WorkerPool::submit_with_priority`]
//!   values dequeue first, ties dequeue in submission order. Any idle
//!   worker steals the best queued job regardless of which driver
//!   submitted it. [`WorkerPool::submit`] enqueues at priority 0.
//!   Completion order is unspecified; consumers synchronize through the
//!   channel they pass into their job (see `Driver::probe_speculative`).
//! * [`CancelToken`] is advisory: a job observes it *before* starting
//!   expensive work. A job already past that check runs to completion;
//!   cancellation then merely means nobody consumes its result (the
//!   shared verdict cache still keeps the work from being wasted, and
//!   the driver traces it as a `cancelled` probe).
//! * A job that panics takes down only its own worker thread: the pool
//!   detects the unwind and spawns a replacement, so the configured
//!   `--jobs` width survives any number of misbehaving probes. The
//!   panicked job's result channel is dropped, which its consumer
//!   observes as a disconnect (see `Driver::wait_probe`). Counted in
//!   [`WorkerPool::panics`] / [`WorkerPool::respawns`].
//! * [`WorkerPool::submit`] after [`WorkerPool::close`] (or mid-drop)
//!   returns [`SubmitError`] and leaves the queue-depth gauge exactly
//!   where it was — the rejected job never counts as queued.
//! * Dropping the pool closes the queue and joins every worker
//!   (replacements included); jobs still queued at that point are run
//!   by the workers before they exit. Only if a worker dies during
//!   shutdown (when no replacement is spawned) can jobs be left
//!   stranded — `Drop` drains those and decrements the queue-depth
//!   gauge per job, so the gauge always returns to its pre-pool level.

use std::collections::BinaryHeap;
use std::sync::{
    atomic::{AtomicBool, AtomicU64, Ordering},
    Arc, Condvar, Mutex, MutexGuard, OnceLock,
};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Registry handles, resolved once. The queue-depth gauge tracks
/// submitted-but-not-yet-dequeued jobs across every pool in the
/// process (suite runs share one pool, so that is the number that
/// matters for sizing `--jobs`).
struct PoolMetrics {
    queue_depth: &'static oraql_obs::Gauge,
    submitted: &'static oraql_obs::Counter,
    panics: &'static oraql_obs::Counter,
    respawns: &'static oraql_obs::Counter,
}

fn metrics() -> &'static PoolMetrics {
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = oraql_obs::global();
        PoolMetrics {
            queue_depth: r.gauge("oraql_pool_queue_depth"),
            submitted: r.counter("oraql_pool_jobs_submitted_total"),
            panics: r.counter("oraql_pool_panics_total"),
            respawns: r.counter("oraql_pool_respawns_total"),
        }
    })
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Advisory cancellation flag shared between a submitter and a queued
/// job. See the module docs for the exact semantics.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Requests cancellation; queued-but-unstarted jobs will be skipped.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The pool's queue was already closed when [`WorkerPool::submit`] was
/// called; the job was rejected without being queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitError;

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("worker pool is shut down")
    }
}

impl std::error::Error for SubmitError {}

/// A queued job plus its dequeue key: priority descending, then
/// submission sequence ascending (FIFO among equals).
struct PrioJob {
    priority: i64,
    seq: u64,
    job: Job,
}

impl PartialEq for PrioJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for PrioJob {}

impl PartialOrd for PrioJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PrioJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap pops the maximum: higher priority wins, and for
        // equal priorities the *lower* sequence number must compare
        // greater so submission order is preserved.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The job queue proper. `closed` flips once, under the same mutex, so
/// workers can distinguish "empty for now" from "empty forever".
struct Queue {
    heap: BinaryHeap<PrioJob>,
    closed: bool,
}

/// State shared between the pool handle and every worker thread.
struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
    /// Live worker handles. Respawned workers push here, so `Drop` must
    /// keep popping until empty rather than iterate a snapshot.
    handles: Mutex<Vec<JoinHandle<()>>>,
    panics: AtomicU64,
    respawns: AtomicU64,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    shutdown: AtomicBool,
}

/// A fixed-size pool of worker threads draining one priority queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    width: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.width)
            .field("panics", &self.panics())
            .finish()
    }
}

/// Armed for the lifetime of a worker thread; if the thread unwinds
/// out of a panicking job, `Drop` spawns a replacement so the pool
/// keeps its configured width.
struct RespawnGuard(Arc<Shared>);

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return; // clean exit: the queue was closed
        }
        self.0.panics.fetch_add(1, Ordering::Relaxed);
        metrics().panics.inc();
        if self.0.shutdown.load(Ordering::Acquire) {
            // Pool is being dropped; no replacement is spawned, so jobs
            // this worker would have drained may be stranded in the
            // queue — `WorkerPool::drop` drains them after the joins.
            return;
        }
        // This runs during unwind, so it must not panic (that would
        // abort the process). A failed spawn just leaves the pool one
        // worker short — still functional as long as one survives.
        if spawn_worker(&self.0).is_ok() {
            self.0.respawns.fetch_add(1, Ordering::Relaxed);
            metrics().respawns.inc();
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>) -> std::io::Result<()> {
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let s = Arc::clone(shared);
    let h = std::thread::Builder::new()
        .name(format!("oraql-probe-{id}"))
        .spawn(move || {
            let _guard = RespawnGuard(Arc::clone(&s));
            worker_loop(&s);
        })?;
    lock_ignore_poison(&shared.handles).push(h);
    Ok(())
}

impl WorkerPool {
    /// Spawns `jobs` worker threads (at least one).
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                heap: BinaryHeap::new(),
                closed: false,
            }),
            available: Condvar::new(),
            handles: Mutex::new(Vec::with_capacity(jobs)),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        for _ in 0..jobs {
            spawn_worker(&shared).expect("spawn pool worker");
        }
        WorkerPool {
            shared,
            width: jobs,
        }
    }

    /// Number of worker threads the pool maintains.
    pub fn workers(&self) -> usize {
        self.width
    }

    /// How many jobs have panicked (and unwound a worker) so far.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// How many replacement workers were spawned after panics. Normally
    /// equals [`WorkerPool::panics`]; lags it only if a respawn itself
    /// failed (thread exhaustion) or the panic raced pool shutdown.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Enqueues a job at priority 0. Returns [`SubmitError`] — without
    /// queueing anything or disturbing the queue-depth gauge — if the
    /// pool was already closed.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        self.submit_with_priority(0, job)
    }

    /// Enqueues a job; higher `priority` values are dequeued first,
    /// ties in submission order. Same error contract as
    /// [`WorkerPool::submit`].
    pub fn submit_with_priority(
        &self,
        priority: i64,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), SubmitError> {
        // Mirror the dequeue side: the gauge counts the job from the
        // moment submission is attempted, and is rolled back on the
        // error path so a rejected job leaves no trace.
        metrics().queue_depth.inc();
        {
            let mut q = lock_ignore_poison(&self.shared.queue);
            if q.closed {
                drop(q);
                metrics().queue_depth.dec();
                return Err(SubmitError);
            }
            let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
            q.heap.push(PrioJob {
                priority,
                seq,
                job: Box::new(job),
            });
        }
        metrics().submitted.inc();
        self.shared.available.notify_one();
        Ok(())
    }

    /// Closes the queue: subsequent submits fail with [`SubmitError`],
    /// and workers exit once the already-queued jobs are drained.
    /// Idempotent; called automatically by `Drop`.
    pub fn close(&self) {
        lock_ignore_poison(&self.shared.queue).closed = true;
        self.shared.available.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Hold the queue lock only while dequeuing, never while running
        // a job. A panicked sibling may have poisoned the mutex; the
        // queue state is still sound, so keep draining.
        let mut q = lock_ignore_poison(&shared.queue);
        let job = loop {
            if let Some(pj) = q.heap.pop() {
                break pj.job;
            }
            if q.closed {
                return; // queue drained and closed: pool is shutting down
            }
            q = shared.available.wait(q).unwrap_or_else(|p| p.into_inner());
        };
        drop(q);
        metrics().queue_depth.dec();
        job();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.close();
        // Joining a panicked worker returns only after its unwind — and
        // thus its respawn push — completes, so popping until empty
        // also collects every replacement worker. Queued jobs are still
        // run: workers only exit once the closed queue is empty.
        loop {
            let h = lock_ignore_poison(&self.shared.handles).pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        // If a worker died during shutdown (RespawnGuard skips the
        // replacement then), the jobs it would have drained are
        // stranded here. Drop them and release their gauge increments
        // so `oraql_pool_queue_depth` returns to its pre-pool level.
        let mut q = lock_ignore_poison(&self.shared.queue);
        while q.heap.pop().is_some() {
            metrics().queue_depth.dec();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    /// The panic/respawn counters are bumped during the dying thread's
    /// unwind, which can lag the replacement worker picking up the next
    /// job — so tests await them instead of asserting immediately.
    fn await_counts(pool: &WorkerPool, panics: u64, respawns: u64) {
        for _ in 0..5_000 {
            if pool.panics() == panics && pool.respawns() == respawns {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!((pool.panics(), pool.respawns()), (panics, respawns));
    }

    #[test]
    fn runs_all_jobs_bounded() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let hits = Arc::new(AtomicU64::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            })
            .unwrap();
        }
        for _ in 0..64 {
            rx.recv().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn cancelled_jobs_are_skipped() {
        let pool = WorkerPool::new(1);
        let token = CancelToken::default();
        token.cancel();
        let ran = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel();
        let t = token.clone();
        let r = Arc::clone(&ran);
        pool.submit(move || {
            if !t.is_cancelled() {
                r.store(true, Ordering::SeqCst);
            }
            let _ = tx.send(());
        })
        .unwrap();
        rx.recv().unwrap();
        assert!(!ran.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_joins_workers() {
        let hits = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..8 {
                let hits = Arc::clone(&hits);
                pool.submit(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
        } // drop waits for the queue to drain
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_requested_workers_still_works() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = channel();
        pool.submit(move || {
            let _ = tx.send(7u8);
        })
        .unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn higher_priority_jobs_dequeue_first() {
        let pool = WorkerPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (gate_tx, gate_rx) = channel::<()>();
        let (done_tx, done_rx) = channel::<()>();
        // Block the single worker so everything below queues up.
        pool.submit(move || {
            gate_rx.recv().unwrap();
        })
        .unwrap();
        for (prio, tag) in [(0, "low-a"), (0, "low-b"), (50, "high"), (10, "mid")] {
            let order = Arc::clone(&order);
            let done_tx = done_tx.clone();
            pool.submit_with_priority(prio, move || {
                lock_ignore_poison(&order).push(tag);
                let _ = done_tx.send(());
            })
            .unwrap();
        }
        gate_tx.send(()).unwrap();
        for _ in 0..4 {
            done_rx.recv().unwrap();
        }
        // Priority descending, FIFO among equals.
        assert_eq!(
            *lock_ignore_poison(&order),
            vec!["high", "mid", "low-a", "low-b"]
        );
    }

    #[test]
    fn submit_after_close_returns_error() {
        let pool = WorkerPool::new(2);
        pool.submit(|| {}).unwrap();
        pool.close();
        let err = pool.submit(|| unreachable!("must not run"));
        assert_eq!(err, Err(SubmitError));
        assert_eq!(SubmitError.to_string(), "worker pool is shut down");
    }

    #[test]
    fn panicking_job_respawns_worker() {
        oraql_faults::quiet_injected_panics();
        // Width 1: if the panicked worker were not replaced, the second
        // job could never run and recv() below would hang forever.
        let pool = WorkerPool::new(1);
        let (ptx, prx) = channel();
        pool.submit(move || {
            let _ = ptx.send(());
            std::panic::panic_any(oraql_faults::InjectedPanic("pool test"));
        })
        .unwrap();
        prx.recv().unwrap();
        let (tx, rx) = channel();
        pool.submit(move || {
            let _ = tx.send(42u8);
        })
        .unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
        await_counts(&pool, 1, 1);
    }

    #[test]
    fn pool_survives_repeated_panics() {
        oraql_faults::quiet_injected_panics();
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        for i in 0..16u64 {
            let tx = tx.clone();
            pool.submit(move || {
                let _ = tx.send(i);
                if i % 3 == 0 {
                    std::panic::panic_any(oraql_faults::InjectedPanic("chaos"));
                }
            })
            .unwrap();
        }
        let mut got: Vec<u64> = (0..16).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        await_counts(&pool, 6, 6); // panics at i = 0, 3, 6, 9, 12, 15
    }

    #[test]
    fn drop_after_panic_does_not_hang() {
        oraql_faults::quiet_injected_panics();
        let pool = WorkerPool::new(2);
        pool.submit(|| std::panic::panic_any(oraql_faults::InjectedPanic("late")))
            .unwrap();
        drop(pool); // must join the replacement worker too
    }
}
