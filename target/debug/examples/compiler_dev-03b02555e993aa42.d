/root/repo/target/debug/examples/compiler_dev-03b02555e993aa42.d: examples/compiler_dev.rs Cargo.toml

/root/repo/target/debug/examples/libcompiler_dev-03b02555e993aa42.rmeta: examples/compiler_dev.rs Cargo.toml

examples/compiler_dev.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
