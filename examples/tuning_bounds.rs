//! Use case 3 from the paper: **bounded tuning of the analysis
//! pipeline**.
//!
//! Selecting which alias analyses to enable (out of LLVM 14's seven)
//! used to be done by hand. With ORAQL, the search space has a *known
//! upper bound*: the performance of the (almost) perfect-alias build.
//! A tuner can stop as soon as a candidate configuration closes most of
//! the gap — or skip tuning entirely when the bound shows there is
//! nothing to win.
//!
//! ```text
//! cargo run --release --example tuning_bounds
//! ```

use oraql_suite::oraql::compile::{compile, CompileOptions};
use oraql_suite::oraql::{Driver, DriverOptions};
use oraql_suite::vm::Interpreter;
use oraql_suite::workloads;

fn insts_with(case: &oraql_suite::oraql::TestCase, use_cfl: bool) -> u64 {
    let mut opts = CompileOptions::baseline();
    opts.use_cfl = use_cfl;
    let c = compile(&*case.build, &opts);
    Interpreter::run_main(&c.module)
        .unwrap()
        .stats
        .total_insts()
}

fn main() {
    println!(
        "{:16} {:>10} {:>10} {:>10} {:>9}  verdict",
        "config", "default", "+CFL", "bound", "gap"
    );
    for name in [
        "testsnap",
        "quicksilver",
        "minigmg_ompif",
        "lulesh",
        "xsbench",
    ] {
        let case = workloads::find_case(name).expect(name);
        // The ORAQL bound: (almost) perfect alias information.
        let r = Driver::run(&case, DriverOptions::default()).expect("driver");
        let bound = r.final_run.stats.total_insts();
        let default_chain = insts_with(&case, false);
        let with_cfl = insts_with(&case, true);

        let gap = default_chain.saturating_sub(bound);
        let gap_pct = gap as f64 / default_chain as f64 * 100.0;
        // The tuning decision the paper describes: if the bound shows a
        // negligible gap, stop — no analysis investment can pay off.
        let verdict = if gap_pct < 2.0 {
            "nothing to win: skip tuning"
        } else if default_chain.saturating_sub(with_cfl) * 2 >= gap {
            "+CFL closes most of the gap"
        } else {
            "gap needs new analyses/annotations"
        };
        println!(
            "{name:16} {default_chain:>10} {with_cfl:>10} {bound:>10} {gap_pct:>8.1}%  {verdict}"
        );
    }

    // Sanity for the example's own claims.
    let case = workloads::find_case("lulesh").unwrap();
    let r = Driver::run(&case, DriverOptions::default()).unwrap();
    let bound = r.final_run.stats.total_insts();
    let default_chain = insts_with(&case, false);
    assert!(bound <= default_chain);
    let gap_pct = (default_chain - bound) as f64 / default_chain as f64 * 100.0;
    assert!(
        gap_pct < 5.0,
        "LULESH should show a negligible bound gap (got {gap_pct:.1}%)"
    );
    println!("\ntuning_bounds OK");
}
