/root/repo/target/debug/deps/prop_components-2dd2e1aea3ca0874.d: tests/prop_components.rs tests/common/mod.rs

/root/repo/target/debug/deps/prop_components-2dd2e1aea3ca0874: tests/prop_components.rs tests/common/mod.rs

tests/prop_components.rs:
tests/common/mod.rs:
