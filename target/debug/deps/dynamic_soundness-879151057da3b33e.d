/root/repo/target/debug/deps/dynamic_soundness-879151057da3b33e.d: tests/dynamic_soundness.rs

/root/repo/target/debug/deps/dynamic_soundness-879151057da3b33e: tests/dynamic_soundness.rs

tests/dynamic_soundness.rs:
