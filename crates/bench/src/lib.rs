//! Shared support for the benchmark harnesses that regenerate the
//! paper's tables and figures.
//!
//! Each bench target (`cargo bench -p oraql-bench --bench figN_...`)
//! prints the paper-shaped rows first, then runs a few Criterion
//! measurements of the machinery it exercised. Measured numbers are
//! recorded in `EXPERIMENTS.md`.

use std::path::PathBuf;

use oraql::trace::TraceSink;
use oraql::{Driver, DriverOptions, DriverResult};
use oraql_workloads::{find_case, find_info, CaseInfo, CASE_INFOS};

/// Where the shared probe-trace artifact is written: `$ORAQL_TRACE_OUT`
/// or `BENCH_trace.jsonl` in the working directory. Every suite-shaped
/// bench target records into — and recomputes its effort tables from —
/// this one file, so the numbers in every table trace back to the same
/// probe events.
pub fn trace_artifact() -> PathBuf {
    std::env::var_os("ORAQL_TRACE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_trace.jsonl"))
}

/// Runs the full ORAQL workflow for one configuration.
pub fn run_config(name: &str) -> (CaseInfo, DriverResult) {
    run_config_traced(name, None)
}

fn run_config_traced(name: &str, sink: Option<&TraceSink>) -> (CaseInfo, DriverResult) {
    let case = find_case(name).unwrap_or_else(|| panic!("unknown config {name}"));
    let info = find_info(name).expect("info");
    let r = Driver::run(
        &case,
        DriverOptions {
            trace: sink.cloned(),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    (info, r)
}

/// Runs all sixteen configurations (sequentially; each driver is
/// internally deterministic) while recording every probe answer into
/// the JSONL artifact at [`trace_artifact`]. Consumers re-read that
/// file (via `oraql::trace::read_trace`) instead of keeping their own
/// counters.
pub fn run_all_configs() -> Vec<(CaseInfo, DriverResult)> {
    let path = trace_artifact();
    let sink = TraceSink::to_file(&path)
        .unwrap_or_else(|e| panic!("cannot open trace artifact {}: {e}", path.display()));
    let results = CASE_INFOS
        .iter()
        .map(|i| run_config_traced(i.name, Some(&sink)))
        .collect();
    sink.flush();
    results
}

/// Formats a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Percentage delta, rendered like the paper (`+115.7%`).
pub fn pct(before: u64, after: u64) -> String {
    if before == 0 {
        return "n/a".into();
    }
    let d = (after as f64 - before as f64) / before as f64 * 100.0;
    format!("{d:+.1}%")
}

/// Prints a header followed by rows, with a separator line.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!(
        "{}",
        row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        println!("{}", row(r));
    }
}
