/root/repo/target/debug/examples/quickstart-e57198c5afe68b2d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e57198c5afe68b2d: examples/quickstart.rs

examples/quickstart.rs:
