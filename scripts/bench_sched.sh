#!/usr/bin/env sh
# Cold-suite scheduler benchmark: cross-case dedup on vs off.
#
# Runs the full 16-configuration suite cold at --jobs 1, 4, and 8 with
# --speculate-depth 3, with and without the suite-global dedup tiers,
# and writes wall clock, total probe compiles, and in-flight joins per
# leg as JSON. Output path defaults to BENCH_sched.json in the repo
# root; override with ORAQL_BENCH_OUT.
set -eu
cd "$(dirname "$0")/.."

# Cargo runs benches with the package directory as cwd, so anchor the
# default output at the repo root via an absolute path.
ORAQL_BENCH_OUT="${ORAQL_BENCH_OUT:-$(pwd)/BENCH_sched.json}" \
    cargo bench --offline -p oraql-bench --bench sched_dedup
