//! The motif library: each motif emits one or more opaque-pointer worker
//! functions plus the `main`-side wiring that fixes the true alias
//! relation of every interesting pointer pair — and records that
//! relation as a [`Label`] at emission time.
//!
//! # Labelling discipline (the soundness-gate contract)
//!
//! The gate fails a run when a pair labelled [`Label::Must`] keeps an
//! optimistic `NoAlias` answer, so a `Must` label is only ever emitted
//! for a pair that carries a *constructed observable hazard*: a
//! `load p; store c, q; load p` sandwich whose reloaded sum is printed,
//! with `c` different from the value at `p`. A wrong no-alias on such a
//! pair forwards the first load across the store and changes program
//! output, so the driver's verification provably rejects it and the
//! final verdict must be pessimistic. A genuinely-aliasing pair
//! *without* a hazard may legitimately keep its optimistic answer (no
//! transformation exploits it); labelling it `Must` would make the gate
//! fire on a perfectly sound run, so such pairs are left unlabelled or
//! labelled [`Label::May`].
//!
//! Conversely [`Label::No`] is only emitted for pairs whose concrete
//! byte ranges are disjoint for every execution of the generated
//! program — derived from the generator's own constant arena offsets,
//! not from any analysis.
//!
//! Every worker takes only opaque `ptr` parameters (plus a thread id for
//! outlined workers), so the conservative chain cannot resolve the
//! pairs and they genuinely reach ORAQL as last-resort queries — the
//! same shape the paper observes for outlined OpenMP regions.

use oraql::truth::{GroundTruth, Label};
use oraql_ir::builder::FunctionBuilder;
use oraql_ir::{FunctionId, GlobalId, Module, Ty, Value};
use oraql_obs::rng::{splitmix64, Gen};

use crate::plan::{GenPlan, Motif};

/// A `main`-side initial store into a motif arena.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Init {
    /// `store i64 <v>` at the offset.
    I(i64),
    /// `store f64 <v>` at the offset.
    F(f64),
}

/// What `main` must do to run one emitted motif instance: initial arena
/// stores, then a call (plain or parallel region) with pointer
/// arguments at fixed arena offsets.
#[derive(Debug)]
pub(crate) struct Wiring {
    pub callee: FunctionId,
    /// `Some(n)` → invoke as an OpenMP-style parallel region over `n`
    /// threads (the callee's leading `i64` param is the thread id).
    pub threads: Option<u32>,
    /// Pointer arguments as `(arena, byte offset)`.
    pub args: Vec<(GlobalId, i64)>,
    /// Initial stores as `(arena, byte offset, value)`.
    pub inits: Vec<(GlobalId, i64, Init)>,
}

/// Emits one whole generated case: samples `plan.per_case` motifs,
/// emits their workers and labels, then builds `main` from the wirings.
/// Pure function of `(plan, index)` — the driver rebuilds modules from
/// many threads and every rebuild must be identical.
pub(crate) fn emit_case(plan: &GenPlan, index: u32) -> (Module, GroundTruth, Vec<Motif>) {
    let case = crate::compose::case_name(plan, index);
    // Independent per-case stream: cases of one corpus share nothing but
    // the root seed, so dropping or reordering cases never shifts others.
    let sub = splitmix64(plan.seed ^ splitmix64(0x6f72_6171_6c67_656e ^ u64::from(index)));
    let mut rng = Gen::new(sub);

    let mut m = Module::new("gen");
    let mut truth = GroundTruth::new();
    let mut picked = Vec::new();
    let mut wirings = Vec::new();
    for j in 0..plan.per_case {
        let motif = *rng.pick(&plan.motifs);
        picked.push(motif);
        let w = match motif {
            Motif::Red => red(&mut m, &mut rng, j, &case, &mut truth),
            Motif::Outlined => outlined(&mut m, &mut rng, j, &case, &mut truth),
            Motif::Aos => aos(&mut m, &mut rng, j, &case, &mut truth),
            Motif::Csr => csr(&mut m, &mut rng, j, &case, &mut truth),
            Motif::Halo => halo(&mut m, &mut rng, j, &case, &mut truth),
        };
        wirings.push(w);
    }

    let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
    b.set_src_file("gen_main.c");
    for w in &wirings {
        for &(g, off, init) in &w.inits {
            let p = b.gep(Value::Global(g), off);
            match init {
                Init::I(v) => b.store(Ty::I64, Value::ConstInt(v), p),
                Init::F(v) => b.store(Ty::F64, Value::const_f64(v), p),
            };
        }
        let args: Vec<Value> = w
            .args
            .iter()
            .map(|&(g, off)| b.gep(Value::Global(g), off))
            .collect();
        match w.threads {
            Some(t) => {
                b.parallel_region(w.callee, args, t);
            }
            None => {
                b.call(w.callee, args, None);
            }
        }
    }
    b.print("gen case {} done", vec![Value::ConstInt(i64::from(index))]);
    b.ret(None);
    b.finish();

    (m, truth, picked)
}

/// A small initial cell value, kept below 64 so it can never collide
/// with a hazard salt (always >= 100).
fn cell(rng: &mut Gen) -> i64 {
    rng.range_i64(1, 64)
}

/// A hazard store constant, kept >= 100 so it always differs from
/// initial cell values — the observability requirement.
fn salt(rng: &mut Gen) -> i64 {
    rng.range_i64(100, 1000)
}

/// Minimal red square: `w(p, q)` prints the hazard sum; `main` wires
/// `q` either on top of `p` (Must) or one cell away (No).
fn red(m: &mut Module, rng: &mut Gen, j: u32, case: &str, truth: &mut GroundTruth) -> Wiring {
    let g = m.add_global(&format!("m{j}_red_arena"), 32, vec![], false);
    let fname = format!("m{j}_red");
    let salt = salt(rng);
    let aliased = rng.bool();

    let mut b = FunctionBuilder::new(m, &fname, vec![Ty::Ptr, Ty::Ptr], None);
    b.set_src_file("gen_red.c");
    let (p, q) = (b.arg(0), b.arg(1));
    let s = b.hazard_probe(p, q, salt);
    b.print("{}", vec![s]);
    b.ret(None);
    let f = b.finish();

    truth.insert(
        case,
        &fname,
        Value::Arg(0),
        Value::Arg(1),
        if aliased { Label::Must } else { Label::No },
    );

    Wiring {
        callee: f,
        threads: None,
        args: vec![(g, 0), (g, if aliased { 0 } else { 16 })],
        inits: vec![(g, 0, Init::I(cell(rng))), (g, 16, Init::I(cell(rng)))],
    }
}

/// Outlined capture: `w(tid, p, q)` over a 2-thread parallel region;
/// each thread stores its id into its slice of `p`, then runs the
/// shared hazard on `(p, q)`.
fn outlined(m: &mut Module, rng: &mut Gen, j: u32, case: &str, truth: &mut GroundTruth) -> Wiring {
    const THREADS: u32 = 2;
    // p slices @ [0, 16), q cell @ [24, 32).
    let g = m.add_global(&format!("m{j}_outlined_arena"), 32, vec![], false);
    let fname = format!("m{j}_outlined");
    let salt = salt(rng);
    let aliased = rng.bool();

    let mut b = FunctionBuilder::new(m, &fname, vec![Ty::I64, Ty::Ptr, Ty::Ptr], None);
    b.set_outlined(true);
    b.set_src_file("gen_outlined.c");
    let (tid, p, q) = (b.arg(0), b.arg(1), b.arg(2));
    let slice = b.gep_scaled(p, tid, 8, 0);
    b.store(Ty::I64, tid, slice);
    let s = b.hazard_probe(p, q, salt);
    b.print("{}", vec![s]);
    b.ret(None);
    let f = b.finish();

    truth.insert(
        case,
        &fname,
        Value::Arg(1),
        Value::Arg(2),
        if aliased { Label::Must } else { Label::No },
    );
    // The per-thread slice overlaps `p`'s own cell only for tid 0 and
    // overlaps `q` only when aliased — thread-dependent either way.
    truth.insert(case, &fname, slice, Value::Arg(1), Label::May);
    truth.insert(
        case,
        &fname,
        slice,
        Value::Arg(2),
        if aliased { Label::May } else { Label::No },
    );

    Wiring {
        callee: f,
        threads: Some(THREADS),
        args: vec![(g, 0), (g, if aliased { 0 } else { 24 })],
        inits: vec![
            (g, 0, Init::I(cell(rng))),
            (g, 8, Init::I(cell(rng))),
            (g, 24, Init::I(cell(rng))),
        ],
    }
}

/// AoS/SoA strided streams: `w(x, y)` walks both pointers at stride 16
/// with field offsets 0 and 8 and a per-iteration printed hazard.
/// Wiring decides the relation: same base (AoS fields, disjoint),
/// separate bases (SoA, disjoint), or `y = x - 8` (punned overlap:
/// `yg == xg` every iteration).
fn aos(m: &mut Module, rng: &mut Gen, j: u32, case: &str, truth: &mut GroundTruth) -> Wiring {
    const K: i64 = 4;
    let g = m.add_global(&format!("m{j}_aos_arena"), 256, vec![], false);
    let fname = format!("m{j}_aos");
    let salt = salt(rng);
    // 0 = AoS fields, 1 = SoA, 2 = punned overlap.
    let variant = rng.range_usize(0, 3);

    let mut b = FunctionBuilder::new(m, &fname, vec![Ty::Ptr, Ty::Ptr], None);
    b.set_src_file("gen_aos.c");
    let (x, y) = (b.arg(0), b.arg(1));
    let (xg, yg) = b.strided_hazard_loop(x, y, K, 16, 0, 8, salt);
    b.ret(None);
    let f = b.finish();

    // x is always arena+8 so the punned wiring (arena+0) stays in
    // bounds; xg = arena + 8 + 16i.
    let y_off = match variant {
        0 => 8,   // yg = arena + 16 + 16i: interleaved, disjoint fields
        1 => 136, // yg = arena + 144 + 16i: separate stream
        _ => 0,   // yg = arena + 8 + 16i = xg: overlap every iteration
    };
    truth.insert(
        case,
        &fname,
        xg,
        yg,
        if variant == 2 { Label::Must } else { Label::No },
    );
    if variant == 1 {
        // Bases live in fully disjoint regions; safe to label even if a
        // pass ever queries the raw arguments.
        truth.insert(case, &fname, Value::Arg(0), Value::Arg(1), Label::No);
    }

    let mut inits = Vec::new();
    for i in 0..K {
        inits.push((g, 8 + 16 * i, Init::I(cell(rng))));
    }
    Wiring {
        callee: f,
        threads: None,
        args: vec![(g, 8), (g, y_off)],
        inits,
    }
}

/// CSR neighbor gather with a punned value buffer: `w(col, vals, out,
/// vi)` first runs a type-punned hazard (`load i64` through `vi`,
/// `store f64` through `vals`), then gathers `out[i] = vals[col[i]]`
/// and prints the last output cell. Wiring chooses whether `vi` is the
/// `vals` buffer itself (punned views, Must) and whether the gather
/// writes in place over `vals` (May) or into a separate row (No).
fn csr(m: &mut Module, rng: &mut Gen, j: u32, case: &str, truth: &mut GroundTruth) -> Wiring {
    const K: i64 = 4;
    // col @ [0, 32), vals @ [64, 96), out @ [128, 160), scratch @ [192, 200).
    let g = m.add_global(&format!("m{j}_csr_arena"), 200, vec![], false);
    let fname = format!("m{j}_csr");
    let pun = rng.bool();
    let inplace = rng.bool();
    let init_f = 1.5 + f64::from(j);
    let pun_f = 2.75 + rng.range_i64(1, 32) as f64;

    let mut b = FunctionBuilder::new(m, &fname, vec![Ty::Ptr, Ty::Ptr, Ty::Ptr, Ty::Ptr], None);
    b.set_src_file("gen_csr.c");
    let (col, vals, out, vi) = (b.arg(0), b.arg(1), b.arg(2), b.arg(3));
    let s = b.hazard_probe_typed(Ty::I64, vi, Ty::F64, Value::const_f64(pun_f), vals);
    b.print("{}", vec![s]);
    let (ig, vg, og) = b.gather_loop8(vals, col, out, K);
    let last = b.gep(out, 8 * (K - 1));
    let l = b.load(Ty::I64, last);
    b.print("{}", vec![l]);
    b.ret(None);
    let f = b.finish();

    truth.insert(
        case,
        &fname,
        Value::Arg(3),
        Value::Arg(1),
        if pun { Label::Must } else { Label::No },
    );
    // The column row is never written and never indexed into: both the
    // gathered value pointer (in-range column entries) and the output
    // pointer live in other rows.
    truth.insert(case, &fname, ig, vg, Label::No);
    truth.insert(case, &fname, ig, og, Label::No);
    // vals[col[i]] vs out[i]: data-dependent when gathering in place.
    truth.insert(
        case,
        &fname,
        vg,
        og,
        if inplace { Label::May } else { Label::No },
    );

    let mut inits = Vec::new();
    // In-range neighbor indices: a shuffled permutation of 0..K.
    let mut perm: Vec<i64> = (0..K).collect();
    rng.shuffle(&mut perm);
    for (i, &c) in perm.iter().enumerate() {
        inits.push((g, 8 * i as i64, Init::I(c)));
    }
    inits.push((g, 64, Init::F(init_f)));
    for i in 1..K {
        inits.push((g, 64 + 8 * i, Init::I(cell(rng))));
    }
    inits.push((g, 192, Init::I(cell(rng))));
    Wiring {
        callee: f,
        threads: None,
        args: vec![
            (g, 0),
            (g, 64),
            (g, if inplace { 64 } else { 128 }),
            (g, if pun { 64 } else { 192 }),
        ],
        inits,
    }
}

/// Halo exchange: `w(grid, send)` runs a hazard on the grid's edge cell
/// against the send buffer, packs the interior into the buffer, then
/// prints the first packed cell. Wiring makes `send` either a separate
/// rank buffer (all-disjoint) or a zero-copy view of the grid edge
/// (the hazard pair aliases; the pack loop still reads a disjoint
/// interior window).
fn halo(m: &mut Module, rng: &mut Gen, j: u32, case: &str, truth: &mut GroundTruth) -> Wiring {
    const N: i64 = 8; // grid cells
    const H: i64 = 2; // halo width
    const EDGE: i64 = 8 * (N - H); // byte offset of the edge window
                                   // grid @ [0, 64), separate buffer @ [96, 112).
    let g = m.add_global(&format!("m{j}_halo_arena"), 112, vec![], false);
    let fname = format!("m{j}_halo");
    let salt = salt(rng);
    let zero_copy = rng.bool();

    let mut b = FunctionBuilder::new(m, &fname, vec![Ty::Ptr, Ty::Ptr], None);
    b.set_src_file("gen_halo.c");
    let (grid, send) = (b.arg(0), b.arg(1));
    let ge = b.gep(grid, EDGE);
    let s = b.hazard_probe(ge, send, salt);
    b.print("{}", vec![s]);
    let gi = b.gep(grid, 8);
    let (sg, dg) = b.copy_loop8(send, gi, H);
    let first = b.load(Ty::I64, send);
    b.print("{}", vec![first]);
    b.ret(None);
    let f = b.finish();

    truth.insert(
        case,
        &fname,
        ge,
        Value::Arg(1),
        if zero_copy { Label::Must } else { Label::No },
    );
    // Pack source window [8, 24) never meets the destination (edge
    // window or separate buffer).
    truth.insert(case, &fname, sg, dg, Label::No);
    truth.insert(case, &fname, ge, sg, Label::No);
    // Destination cells meet the edge cell / the raw send pointer only
    // for iteration 0.
    truth.insert(
        case,
        &fname,
        ge,
        dg,
        if zero_copy { Label::May } else { Label::No },
    );
    truth.insert(case, &fname, Value::Arg(1), dg, Label::May);

    let mut inits = Vec::new();
    for i in 0..N {
        inits.push((g, 8 * i, Init::I(cell(rng))));
    }
    inits.push((g, 96, Init::I(cell(rng))));
    inits.push((g, 104, Init::I(cell(rng))));
    Wiring {
        callee: f,
        threads: None,
        args: vec![(g, 0), (g, if zero_copy { EDGE } else { 96 })],
        inits,
    }
}
