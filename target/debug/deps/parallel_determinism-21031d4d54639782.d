/root/repo/target/debug/deps/parallel_determinism-21031d4d54639782.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-21031d4d54639782: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
