/root/repo/target/debug/examples/offload_multi_target-b96b49de720997a6.d: examples/offload_multi_target.rs Cargo.toml

/root/repo/target/debug/examples/liboffload_multi_target-b96b49de720997a6.rmeta: examples/offload_multi_target.rs Cargo.toml

examples/offload_multi_target.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
