//! Workload-generator throughput benchmark.
//!
//! The acceptance bar for `oraql-gen` is a thousand-case corpus run
//! green through the gated driver at both ends of the jobs axis; this
//! bench measures what that costs and how fast raw generation is:
//!
//! * `generate` — composing the full 1000-case suite (module emission,
//!   IR verification via `TestCase` construction deferred, ground-truth
//!   labelling, name round-trips) without running the driver.
//! * `suite_jobs1` / `suite_jobs4` — the same corpus driven end to end
//!   through the probing driver with the soundness gate armed, at
//!   `jobs = 1` and `jobs = 4`.
//!
//! Every pass re-asserts the gate invariant (zero violations, zero
//! missed cases) so the numbers are only ever reported for a sound run.
//! Writes `$ORAQL_BENCH_OUT` (default `BENCH_gen.json`): generation
//! throughput in cases/s, both suite wall clocks, the jobs-4 speedup,
//! and the corpus-wide label census. Not a criterion bench: the JSON
//! artifact is the point, and each pass covers a thousand driver runs.

use std::sync::Arc;
use std::time::Instant;

use oraql::{run_suite, DriverOptions, TruthReport};
use oraql_gen::{suite, GenPlan};

const PLAN: &str = "seed=2024,cases=1000,motifs=red+outlined+aos+csr+halo,per=3";

fn gated_suite_pass(plan: &GenPlan, jobs: usize) -> (f64, TruthReport) {
    let (cases, truth) = suite(plan);
    let opts = DriverOptions {
        jobs,
        ground_truth: Some(Arc::new(truth)),
        ..Default::default()
    };
    let t = Instant::now();
    let results = run_suite(&cases, &opts);
    let wall = t.elapsed().as_secs_f64() * 1e3;
    let mut total = TruthReport::default();
    for (case, r) in cases.iter().zip(results) {
        let r = r.unwrap_or_else(|e| panic!("jobs={jobs}/{}: {e}", case.name));
        total.absorb(r.truth.as_ref().expect("gate armed"));
    }
    assert!(
        total.clean(),
        "jobs={jobs}: {}",
        total.describe_violations()
    );
    (wall, total)
}

fn main() {
    let out = std::env::var("ORAQL_BENCH_OUT").unwrap_or_else(|_| "BENCH_gen.json".into());
    let plan = GenPlan::parse(PLAN).expect("bench plan parses");

    // Generation throughput: compose the whole corpus (including the
    // truth tables) without driving it. One warm-up pass keeps the
    // allocator growth out of the measured one.
    let _ = suite(&plan);
    let t = Instant::now();
    let (cases, truth) = suite(&plan);
    let gen_ms = t.elapsed().as_secs_f64() * 1e3;
    let cases_per_s = f64::from(plan.cases) / (gen_ms / 1e3);
    let (no, may, must) = truth.counts();
    assert_eq!(cases.len(), plan.cases as usize);

    let (jobs1_ms, t1) = gated_suite_pass(&plan, 1);
    let (jobs4_ms, t4) = gated_suite_pass(&plan, 4);
    assert_eq!(t1.checked, t4.checked, "jobs must not change coverage");
    let speedup = jobs1_ms / jobs4_ms;

    println!(
        "generate {} cases: {gen_ms:>9.1} ms ({cases_per_s:.0} cases/s)",
        plan.cases
    );
    println!("gated suite jobs=1: {jobs1_ms:>9.1} ms   [{t1}]");
    println!("gated suite jobs=4: {jobs4_ms:>9.1} ms   ({speedup:.2}x)");

    let json = format!(
        "{{\n  \"bench\": \"gen_corpus\",\n  \"plan\": \"{}\",\n  \
         \"cases\": {},\n  \
         \"labels_no\": {no},\n  \"labels_may\": {may},\n  \"labels_must\": {must},\n  \
         \"generate_ms\": {gen_ms:.2},\n  \
         \"generate_cases_per_s\": {cases_per_s:.1},\n  \
         \"suite_jobs1_ms\": {jobs1_ms:.2},\n  \
         \"suite_jobs4_ms\": {jobs4_ms:.2},\n  \
         \"jobs4_speedup\": {speedup:.4},\n  \
         \"checked_pairs\": {},\n  \
         \"violations\": {}\n}}\n",
        plan.render(),
        plan.cases,
        t1.checked,
        t1.violations.len() + t4.violations.len(),
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
