//! Regenerates the paper's §V per-benchmark *runtime* observations:
//! executed instructions and modelled cycles for the original vs the
//! final (almost-perfect-alias-information) executable of every
//! configuration.
//!
//! Expected shape (paper §V / §VI): most configurations barely move;
//! TestSNAP-seq gains a little; TestSNAP-OpenMP executes notably fewer
//! instructions with little wall-clock change; GridMini's device
//! kernels get *slower*; Quicksilver and MiniGMG-ompif speed up;
//! LULESH is flat.

use criterion::{criterion_group, criterion_main, Criterion};
use oraql_bench::{print_table, run_all_configs};
use oraql_vm::Interpreter;

fn fmt_delta(before: u64, after: u64) -> String {
    if before == 0 {
        return "-".into();
    }
    format!(
        "{:+.1}%",
        (after as f64 - before as f64) / before as f64 * 100.0
    )
}

fn print_runtime_table() {
    let results = run_all_configs();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(info, r)| {
            let b = &r.baseline_run.stats;
            let f = &r.final_run.stats;
            vec![
                info.name.to_string(),
                b.total_insts().to_string(),
                f.total_insts().to_string(),
                fmt_delta(b.total_insts(), f.total_insts()),
                b.host_cycles.to_string(),
                f.host_cycles.to_string(),
                fmt_delta(b.host_cycles, f.host_cycles),
                b.device_cycles.to_string(),
                f.device_cycles.to_string(),
                fmt_delta(b.device_cycles, f.device_cycles),
            ]
        })
        .collect();
    print_table(
        "§V runtime observations — executed instructions and modelled cycles, original vs ORAQL",
        &[
            "config",
            "insts orig",
            "insts ORAQL",
            "Δ insts",
            "host cyc orig",
            "host cyc ORAQL",
            "Δ host",
            "dev cyc orig",
            "dev cyc ORAQL",
            "Δ dev",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    print_runtime_table();

    // Criterion: wall-clock of interpreting original vs optimized
    // modules (the simulator-level analogue of the paper's timings).
    let case = oraql_workloads::find_case("minigmg_ompif").unwrap();
    let base = oraql::compile::compile(&*case.build, &oraql::compile::CompileOptions::baseline());
    let opt = oraql::compile::compile(
        &*case.build,
        &oraql::compile::CompileOptions::with_oraql(
            oraql::Decisions::all_optimistic(),
            case.scope.clone(),
        ),
    );
    let mut g = c.benchmark_group("interp");
    g.bench_function("minigmg_ompif/original", |b| {
        b.iter(|| Interpreter::run_main(&base.module).unwrap())
    });
    g.bench_function("minigmg_ompif/oraql", |b| {
        b.iter(|| Interpreter::run_main(&opt.module).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
