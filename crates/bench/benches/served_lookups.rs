//! Verdict-server benchmark: sustained lookup throughput under
//! concurrent clients, and cold-vs-warm probe replay through the
//! daemon.
//!
//! Two measurements against one in-process `oraql-served` daemon:
//!
//! 1. **Sustained lookups/s** at 1, 4, and 8 concurrent clients, each
//!    on its own connection, hammering `GetDec` over a pre-populated
//!    key set — the read-mostly index path the multi-tenant design
//!    optimizes for.
//! 2. **Cold vs warm suite replay**: every registered workload
//!    configuration run twice with `--server` as the only cache tier —
//!    a cold pass populating the daemon (every probe compiles) and a
//!    warm pass from a fresh tenant (every probe answered remotely,
//!    zero compiles). The warm/cold ratio is the remote-tier payoff.
//!
//! Results land as JSON in `$ORAQL_BENCH_OUT` (default
//! `BENCH_served.json` in the working directory). Not a criterion
//! bench: the JSON artifact is the point.

use std::sync::Arc;
use std::time::Instant;

use oraql::{Driver, DriverOptions};
use oraql_served::{Client, Server, ServerConfig};

/// Keys pre-populated for the lookup-throughput phase.
const POPULATION: u64 = 4_096;
/// Lookups each client performs per throughput round.
const LOOKUPS_PER_CLIENT: u64 = 25_000;

fn lookup_throughput(addr: &str, clients: usize) -> f64 {
    let t = Instant::now();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let addr = addr.to_string();
            handles.push(s.spawn(move || {
                let client = Client::new(&addr);
                for i in 0..LOOKUPS_PER_CLIENT {
                    // Stride by client id so concurrent clients fan out
                    // over different shards at any instant.
                    let key = (i * (c as u64 + 1)) % POPULATION;
                    let got = client.get_dec(key).expect("lookup");
                    assert!(got.is_some(), "populated key {key} missing");
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
    });
    (clients as u64 * LOOKUPS_PER_CLIENT) as f64 / t.elapsed().as_secs_f64()
}

fn run_pass(addr: &str, label: &str) -> Vec<(String, f64)> {
    // A fresh client per pass = a fresh tenant: nothing carries over
    // locally, so the warm pass measures the remote tier alone.
    let client = Arc::new(Client::new(addr));
    let mut rows = Vec::new();
    for info in &oraql_workloads::CASE_INFOS {
        let case = oraql_workloads::find_case(info.name).expect("registered");
        let t = Instant::now();
        let r = Driver::run(
            &case,
            DriverOptions {
                server: Some(Arc::clone(&client)),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", info.name));
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if label == "warm" {
            assert_eq!(
                r.effort.compiles, 0,
                "{}: warm pass compiled probes: {:?}",
                info.name, r.effort
            );
            assert!(r.effort.tests_server > 0, "{}: {:?}", info.name, r.effort);
        }
        assert_eq!(r.failures.server_down, 0, "{}: {:?}", info.name, r.failures);
        rows.push((info.name.to_owned(), ms));
    }
    rows
}

fn main() {
    let dir = std::env::temp_dir().join(format!("oraql_bench_served_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(&ServerConfig::new(&dir), "127.0.0.1:0").expect("start server");
    let addr = server.addr();

    // Phase 1: populate, then sustained concurrent lookups.
    let seed = Client::new(&addr);
    for key in 0..POPULATION {
        seed.put_dec(key, key % 3 != 0, key).expect("populate");
    }
    seed.sync().expect("sync");
    let mut lookup_rows = Vec::new();
    for &clients in &[1usize, 4, 8] {
        let per_s = lookup_throughput(&addr, clients);
        println!("{clients} client(s): {per_s:>12.0} lookups/s");
        lookup_rows.push((clients, per_s));
    }

    // Phase 2: cold-vs-warm suite replay through the daemon.
    let cold = run_pass(&addr, "cold");
    let warm = run_pass(&addr, "warm");

    let mut rows = Vec::new();
    let (mut cold_total, mut warm_total) = (0.0f64, 0.0f64);
    for ((name, cold_ms), (_, warm_ms)) in cold.iter().zip(&warm) {
        let ratio = warm_ms / cold_ms;
        println!("{name:22} {cold_ms:>10.1} ms cold  {warm_ms:>10.1} ms warm  ({ratio:>5.3}x)");
        rows.push(format!(
            "    {{\"case\": \"{name}\", \"cold_ms\": {cold_ms:.2}, \"warm_ms\": {warm_ms:.2}, \
             \"ratio\": {ratio:.4}}}"
        ));
        cold_total += cold_ms;
        warm_total += warm_ms;
    }
    let ratio = warm_total / cold_total;
    println!(
        "total: {cold_total:.1} ms cold, {warm_total:.1} ms warm, warm/cold = {ratio:.3} \
         (warm replay {:.1}x faster, {} cases)",
        cold_total / warm_total,
        cold.len()
    );
    let final_stats = Client::new(&addr).server_stats().expect("stats");
    println!("{final_stats}");
    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    let lookups_json = lookup_rows
        .iter()
        .map(|(c, per_s)| format!("    {{\"clients\": {c}, \"lookups_per_s\": {per_s:.0}}}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"served_lookups\",\n  \"population\": {POPULATION},\n  \
         \"lookups_per_client\": {LOOKUPS_PER_CLIENT},\n  \"lookup_throughput\": [\n{}\n  ],\n  \
         \"cases_total\": {},\n  \"cold_total_ms\": {:.2},\n  \"warm_total_ms\": {:.2},\n  \
         \"warm_cold_ratio\": {:.4},\n  \"warm_speedup\": {:.2},\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        lookups_json,
        cold.len(),
        cold_total,
        warm_total,
        ratio,
        cold_total / warm_total,
        rows.join(",\n")
    );
    let out = std::env::var("ORAQL_BENCH_OUT").unwrap_or_else(|_| "BENCH_served.json".into());
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
