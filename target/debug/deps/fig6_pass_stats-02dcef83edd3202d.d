/root/repo/target/debug/deps/fig6_pass_stats-02dcef83edd3202d.d: crates/bench/benches/fig6_pass_stats.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_pass_stats-02dcef83edd3202d.rmeta: crates/bench/benches/fig6_pass_stats.rs Cargo.toml

crates/bench/benches/fig6_pass_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
