/root/repo/target/debug/deps/oraql_suite-4575ef4ce4f0d988.d: src/lib.rs

/root/repo/target/debug/deps/liboraql_suite-4575ef4ce4f0d988.rlib: src/lib.rs

/root/repo/target/debug/deps/liboraql_suite-4575ef4ce4f0d988.rmeta: src/lib.rs

src/lib.rs:
