//! Superword-level parallelism (SLP) vectorizer: packs runs of adjacent
//! scalar store/compute/load lanes within one block into vector
//! instructions — the unrolled `re`/`im` struct-field pattern common in
//! HPC kernels (the paper's MiniFE row: +33% vector instructions).

use crate::manager::{Pass, PassCx};
use oraql_analysis::location::MemoryLocation;
use oraql_analysis::pointer::decompose;
use oraql_ir::inst::{BinOp, CastKind, Inst, InstId};
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::types::Ty;
use oraql_ir::value::Value;

/// The pass.
pub struct SlpVectorize;

/// One vectorizable lane group discovered in a block.
struct Group {
    stores: Vec<InstId>,
    bins: Vec<InstId>,
    /// lhs lane loads (empty when lhs is a shared scalar).
    lhs_loads: Vec<InstId>,
    rhs_loads: Vec<InstId>,
    op: BinOp,
    ty: Ty,
    /// Shared scalar operands (when a side is not a load lane).
    lhs_shared: Option<Value>,
    rhs_shared: Option<Value>,
}

impl Pass for SlpVectorize {
    fn name(&self) -> &'static str {
        "SLP"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let mut generated = 0u64;
        let nblocks = m.func(fid).blocks.len();
        for bi in 0..nblocks {
            // Repeatedly harvest groups from this block until none fit.
            while let Some(group) = find_group(m, fid, bi, cx) {
                generated += apply_group(m, fid, bi, &group);
            }
        }
        cx.stat("SLP", "vector instructions generated", generated);
    }
}

/// A store lane: `store ty (bin op ...), base+off`.
struct Lane {
    store: InstId,
    bin: InstId,
    off: i64,
}

fn const_addr(f: &oraql_ir::module::Function, ptr: Value) -> Option<(Value, i64)> {
    let d = decompose(f, ptr);
    if !d.is_const_offset() {
        return None;
    }
    // Re-anchor on the base as a value for grouping.
    let base = match d.base {
        oraql_analysis::pointer::PtrBase::Alloca(i)
        | oraql_analysis::pointer::PtrBase::LoadResult(i)
        | oraql_analysis::pointer::PtrBase::CallResult(i)
        | oraql_analysis::pointer::PtrBase::Merge(i) => Value::Inst(i),
        oraql_analysis::pointer::PtrBase::Arg { index, .. } => Value::Arg(index),
        oraql_analysis::pointer::PtrBase::Global(g) => Value::Global(g),
        oraql_analysis::pointer::PtrBase::Unknown => return None,
    };
    Some((base, d.const_off))
}

/// Number of uses of `needle` across the function.
fn use_count(f: &oraql_ir::module::Function, needle: InstId) -> usize {
    let mut n = 0;
    for id in f.live_insts() {
        f.inst(id).for_each_operand(|v| {
            if v == Value::Inst(needle) {
                n += 1;
            }
        });
    }
    n
}

fn find_group(m: &Module, fid: FunctionId, bi: usize, cx: &mut PassCx<'_>) -> Option<Group> {
    let f = m.func(fid);
    let ids = &f.blocks[bi].insts;

    // Collect candidate store lanes.
    let mut lanes_by_base: Vec<(Value, Ty, BinOp, Vec<Lane>)> = Vec::new();
    for &id in ids {
        let Inst::Store { ptr, value, ty, .. } = f.inst(id) else {
            continue;
        };
        if !ty.vectorizable() {
            continue;
        }
        let Some((base, off)) = const_addr(f, *ptr) else {
            continue;
        };
        let Value::Inst(bin) = value else { continue };
        let Inst::Bin { op, ty: bty, .. } = f.inst(*bin) else {
            continue;
        };
        if bty != ty || matches!(op, BinOp::Div | BinOp::Rem) {
            continue;
        }
        if f.block_of(*bin) != f.block_of(id) || use_count(f, *bin) != 1 {
            continue;
        }
        let op = *op;
        match lanes_by_base
            .iter_mut()
            .find(|(b, t, o, _)| *b == base && *t == *ty && *o == op)
        {
            Some((_, _, _, lanes)) => lanes.push(Lane {
                store: id,
                bin: *bin,
                off,
            }),
            None => lanes_by_base.push((
                base,
                *ty,
                op,
                vec![Lane {
                    store: id,
                    bin: *bin,
                    off,
                }],
            )),
        }
    }

    for (_, ty, op, mut lanes) in lanes_by_base {
        if lanes.len() < 2 {
            continue;
        }
        lanes.sort_by_key(|l| l.off);
        let sz = ty.size() as i64;
        // Find a run of 2 or 4 consecutive offsets.
        for width in [4usize, 2] {
            if lanes.len() < width {
                continue;
            }
            'runs: for w in lanes.windows(width) {
                if !w
                    .iter()
                    .enumerate()
                    .all(|(i, l)| l.off == w[0].off + i as i64 * sz)
                {
                    continue;
                }
                // Match the operand shape across lanes.
                let side = |get: fn(&Inst) -> Value| -> Option<(Vec<InstId>, Option<Value>)> {
                    let first = get(f.inst(w[0].bin));
                    // Shared scalar: every lane uses the same value, and
                    // that value is defined before the insertion point.
                    if w.iter().all(|l| get(f.inst(l.bin)) == first) {
                        let ok = match first {
                            Value::Inst(d) => {
                                // Must not be one of the lane loads.
                                f.block_of(d) != f.block_of(w[0].store)
                                    || position(f, bi, d) < position(f, bi, w[0].store)
                            }
                            _ => true,
                        };
                        if ok && width > 1 {
                            return Some((Vec::new(), Some(first)));
                        }
                    }
                    // Load lanes: consecutive loads matching store lanes.
                    let mut loads = Vec::new();
                    let mut base0 = None;
                    let mut off0 = 0i64;
                    for (i, l) in w.iter().enumerate() {
                        let Value::Inst(ld) = get(f.inst(l.bin)) else {
                            return None;
                        };
                        let Inst::Load { ptr, ty: lty, .. } = f.inst(ld) else {
                            return None;
                        };
                        if *lty != ty
                            || use_count(f, ld) != 1
                            || f.block_of(ld) != f.block_of(l.store)
                        {
                            return None;
                        }
                        let (b, o) = const_addr(f, *ptr)?;
                        match base0 {
                            None => {
                                base0 = Some(b);
                                off0 = o;
                            }
                            Some(b0) => {
                                if b != b0 || o != off0 + i as i64 * sz {
                                    return None;
                                }
                            }
                        }
                        loads.push(ld);
                    }
                    Some((loads, None))
                };
                let lhs_of = |i: &Inst| match i {
                    Inst::Bin { lhs, .. } => *lhs,
                    _ => Value::Undef,
                };
                let rhs_of = |i: &Inst| match i {
                    Inst::Bin { rhs, .. } => *rhs,
                    _ => Value::Undef,
                };
                let Some((lhs_loads, lhs_shared)) = side(lhs_of) else {
                    continue 'runs;
                };
                let Some((rhs_loads, rhs_shared)) = side(rhs_of) else {
                    continue 'runs;
                };

                let group = Group {
                    stores: w.iter().map(|l| l.store).collect(),
                    bins: w.iter().map(|l| l.bin).collect(),
                    lhs_loads,
                    rhs_loads,
                    op,
                    ty,
                    lhs_shared,
                    rhs_shared,
                };
                if group_safe(m, fid, bi, cx, &group) {
                    return Some(group);
                }
            }
        }
    }
    None
}

fn position(f: &oraql_ir::module::Function, bi: usize, id: InstId) -> usize {
    f.blocks[bi]
        .insts
        .iter()
        .position(|&x| x == id)
        .unwrap_or(usize::MAX)
}

/// Safety: all group loads move down to the last store's position and
/// the stores move there too. Any non-group memory instruction in the
/// affected window must not interfere (alias queries).
fn group_safe(m: &Module, fid: FunctionId, bi: usize, cx: &mut PassCx<'_>, g: &Group) -> bool {
    let f = m.func(fid);
    let members: Vec<InstId> = g
        .stores
        .iter()
        .chain(&g.bins)
        .chain(&g.lhs_loads)
        .chain(&g.rhs_loads)
        .copied()
        .collect();
    let first = members.iter().map(|&i| position(f, bi, i)).min().unwrap();
    let last = members.iter().map(|&i| position(f, bi, i)).max().unwrap();

    // Intra-group: loads must not read lanes written by earlier lanes
    // (shifted in-place patterns). Same base ⇒ offsets must match
    // lane-for-lane or ranges must be disjoint; `side()` established the
    // loads are consecutive from off0, so comparing the first lane's
    // addresses suffices.
    let store_addr = |s: InstId| match f.inst(s) {
        Inst::Store { ptr, .. } => const_addr(f, *ptr),
        _ => None,
    };
    let load_addr = |l: InstId| match f.inst(l) {
        Inst::Load { ptr, .. } => const_addr(f, *ptr),
        _ => None,
    };
    let (sb, so) = store_addr(g.stores[0]).expect("store addr");
    let sz = g.ty.size() as i64;
    let width = g.stores.len() as i64;
    for lanes in [&g.lhs_loads, &g.rhs_loads] {
        if lanes.is_empty() {
            continue;
        }
        let (lb, lo) = load_addr(lanes[0]).expect("load addr");
        if lb == sb {
            let disjoint = lo + width * sz <= so || so + width * sz <= lo;
            if lo != so && !disjoint {
                return false;
            }
        }
    }

    // External instructions inside the window.
    let window: Vec<InstId> = f.blocks[bi].insts[first..=last]
        .iter()
        .copied()
        .filter(|id| !members.contains(id))
        .collect();
    for x in window {
        let f = m.func(fid);
        if !f.inst(x).reads_memory() && !f.inst(x).writes_memory() {
            continue;
        }
        // Against every group load (loads move down past x) and every
        // group store (stores move down past x: x must not read them —
        // but x executing before the moved store now reads pre-store
        // memory, so x must not read the store locations).
        for &l in g.lhs_loads.iter().chain(&g.rhs_loads) {
            let loc = MemoryLocation::of_access(m.func(fid), l).expect("load");
            if cx.aa.may_clobber(m, fid, x, &loc) {
                return false;
            }
        }
        for &s in &g.stores {
            let loc = MemoryLocation::of_access(m.func(fid), s).expect("store");
            if cx.aa.may_read(m, fid, x, &loc) {
                return false;
            }
            // x writing the store's target would be reordered too.
            if cx.aa.may_clobber(m, fid, x, &loc) {
                return false;
            }
        }
    }
    true
}

fn apply_group(m: &mut Module, fid: FunctionId, bi: usize, g: &Group) -> u64 {
    let width = g.stores.len() as u8;
    let vty = g.ty.vec_of(width);
    let f = m.func_mut(fid);
    let bb = oraql_ir::value::BlockId(bi as u32);
    let last_store = *g.stores.last().unwrap();
    let mut at = position(f, bi, last_store);
    let mut generated = 0u64;

    let vec_side = |f: &mut oraql_ir::module::Function,
                    at: &mut usize,
                    loads: &[InstId],
                    shared: Option<Value>,
                    generated: &mut u64|
     -> Value {
        if let Some(s) = shared {
            let id = f.insert_inst(
                bb,
                *at,
                Inst::Cast {
                    kind: CastKind::Splat,
                    val: s,
                    to: vty,
                },
                None,
            );
            *at += 1;
            *generated += 1;
            Value::Inst(id)
        } else {
            let lane0_ptr = match f.inst(loads[0]) {
                Inst::Load { ptr, .. } => *ptr,
                _ => unreachable!(),
            };
            let id = f.insert_inst(
                bb,
                *at,
                Inst::Load {
                    ptr: lane0_ptr,
                    ty: vty,
                    meta: Default::default(),
                },
                None,
            );
            *at += 1;
            *generated += 1;
            Value::Inst(id)
        }
    };

    let vl = vec_side(f, &mut at, &g.lhs_loads, g.lhs_shared, &mut generated);
    let vr = vec_side(f, &mut at, &g.rhs_loads, g.rhs_shared, &mut generated);
    let vbin = f.insert_inst(
        bb,
        at,
        Inst::Bin {
            op: g.op,
            ty: vty,
            lhs: vl,
            rhs: vr,
        },
        None,
    );
    at += 1;
    generated += 1;
    let lane0_store_ptr = match f.inst(g.stores[0]) {
        Inst::Store { ptr, .. } => *ptr,
        _ => unreachable!(),
    };
    f.insert_inst(
        bb,
        at,
        Inst::Store {
            ptr: lane0_store_ptr,
            value: Value::Inst(vbin),
            ty: vty,
            meta: Default::default(),
        },
        None,
    );
    generated += 1;

    for &id in g
        .stores
        .iter()
        .chain(&g.bins)
        .chain(&g.lhs_loads)
        .chain(&g.rhs_loads)
    {
        f.remove_inst(id);
    }
    generated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::PassCx;
    use crate::stats::Stats;
    use oraql_analysis::basic::BasicAA;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_vm::Interpreter;

    fn run_slp(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            SlpVectorize.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    /// out[k] = a[k] + b[k] for k in 0..4, fully unrolled.
    fn unrolled(distinct_out: bool) -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let a = b.alloca(32, "a");
        let bb = b.alloca(32, "b");
        let out = if distinct_out { b.alloca(32, "out") } else { a };
        for k in 0..4i64 {
            let ak = b.gep(a, 8 * k);
            b.store(Ty::F64, Value::const_f64(k as f64), ak);
            let bk = b.gep(bb, 8 * k);
            b.store(Ty::F64, Value::const_f64(10.0 * k as f64), bk);
        }
        for k in 0..4i64 {
            let ak = b.gep(a, 8 * k);
            let av = b.load(Ty::F64, ak);
            let bk = b.gep(bb, 8 * k);
            let bv = b.load(Ty::F64, bk);
            let s = b.fadd(av, bv);
            let ok = b.gep(out, 8 * k);
            b.store(Ty::F64, s, ok);
        }
        let mut acc = Value::const_f64(0.0);
        for k in 0..4i64 {
            let ok = b.gep(out, 8 * k);
            let v = b.load(Ty::F64, ok);
            acc = b.fadd(acc, v);
        }
        b.print("sum={}", vec![acc]);
        b.ret(None);
        b.finish();
        m
    }

    #[test]
    fn unrolled_lanes_packed() {
        let mut m = unrolled(true);
        let before = Interpreter::run_main(&m).unwrap();
        let stats = run_slp(&mut m);
        assert!(
            stats.get("SLP", "vector instructions generated") >= 4,
            "{}",
            stats.render()
        );
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
        assert!(after.stats.host_insts < before.stats.host_insts);
    }

    #[test]
    fn in_place_lane_aligned_packed() {
        // out == a (lane-aligned in-place): still safe.
        let mut m = unrolled(false);
        let before = Interpreter::run_main(&m).unwrap();
        run_slp(&mut m);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, after.stdout);
    }

    #[test]
    fn shared_scalar_operand_splatted() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let a = b.alloca(16, "a");
        let out = b.alloca(16, "out");
        for k in 0..2i64 {
            let ak = b.gep(a, 8 * k);
            b.store(Ty::F64, Value::const_f64(1.0 + k as f64), ak);
        }
        for k in 0..2i64 {
            let ak = b.gep(a, 8 * k);
            let av = b.load(Ty::F64, ak);
            let s = b.fmul(av, Value::const_f64(3.0));
            let ok = b.gep(out, 8 * k);
            b.store(Ty::F64, s, ok);
        }
        let o0 = b.gep(out, 0);
        let v0 = b.load(Ty::F64, o0);
        let o1 = b.gep(out, 8);
        let v1 = b.load(Ty::F64, o1);
        let s = b.fadd(v0, v1);
        b.print("{}", vec![s]);
        b.ret(None);
        b.finish();
        let stats = run_slp(&mut m);
        assert!(stats.get("SLP", "vector instructions generated") >= 3);
        let out2 = Interpreter::run_main(&m).unwrap();
        assert_eq!(out2.stdout, "9.0\n");
    }

    #[test]
    fn shifted_in_place_rejected() {
        // out lanes overlap input lanes shifted by one: unsafe.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "main", vec![], None);
        let a = b.alloca(40, "a");
        for k in 0..5i64 {
            let ak = b.gep(a, 8 * k);
            b.store(Ty::F64, Value::const_f64(k as f64), ak);
        }
        // a[k+1] = a[k] + 1  (unrolled, carries between lanes)
        for k in 0..2i64 {
            let src = b.gep(a, 8 * k);
            let v = b.load(Ty::F64, src);
            let s = b.fadd(v, Value::const_f64(1.0));
            let dst = b.gep(a, 8 * (k + 1));
            b.store(Ty::F64, s, dst);
        }
        let a2 = b.gep(a, 16);
        let v = b.load(Ty::F64, a2);
        b.print("{}", vec![v]);
        b.ret(None);
        b.finish();
        let before = Interpreter::run_main(&m).unwrap();
        assert_eq!(before.stdout, "2.0\n"); // 0+1 -> a1, a1+1 -> a2
        let stats = run_slp(&mut m);
        assert_eq!(stats.get("SLP", "vector instructions generated"), 0);
        let after = Interpreter::run_main(&m).unwrap();
        assert_eq!(after.stdout, "2.0\n");
    }
}
