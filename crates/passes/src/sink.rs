//! Machine-code sinking analogue: moves pure instructions (and, with
//! alias-analysis help, loads) whose only users live in exactly one
//! successor block down into that block, so they do not execute on the
//! other path.

use crate::manager::{Pass, PassCx};
use oraql_analysis::location::MemoryLocation;
use oraql_ir::cfg;
use oraql_ir::inst::{Inst, InstId};
use oraql_ir::module::{FunctionId, Module};
use oraql_ir::value::{BlockId, Value};

/// The pass.
pub struct MachineSink;

impl Pass for MachineSink {
    fn name(&self) -> &'static str {
        "machine sinking"
    }

    fn run(&mut self, m: &mut Module, fid: FunctionId, cx: &mut PassCx<'_>) {
        let mut sunk = 0u64;
        // Iterate until no more motion; sinking one inst can enable its
        // operands to sink too.
        loop {
            let mut moved = false;
            let nblocks = m.func(fid).blocks.len();
            for bi in 0..nblocks {
                let bb = BlockId(bi as u32);
                let succs = cfg::successors(m.func(fid), bb);
                if succs.len() != 2 {
                    continue; // only branchy blocks benefit
                }
                let preds = cfg::predecessors(m.func(fid));
                // Candidates, scanned backwards so dependent chains sink
                // in the right order across iterations.
                let ids: Vec<InstId> = m.func(fid).blocks[bi].insts.clone();
                for &id in ids.iter().rev() {
                    let f = m.func(fid);
                    let inst = f.inst(id);
                    let sinkable_pure = matches!(
                        inst,
                        Inst::Bin { .. }
                            | Inst::Cmp { .. }
                            | Inst::Cast { .. }
                            | Inst::Gep { .. }
                            | Inst::Select { .. }
                    );
                    let is_load = matches!(inst, Inst::Load { .. });
                    if !sinkable_pure && !is_load {
                        continue;
                    }
                    // All users must be in exactly one successor, and
                    // that successor must have `bb` as its only
                    // predecessor (otherwise the value would not
                    // dominate its uses / would be recomputed wrongly).
                    let mut user_blocks: Vec<BlockId> = Vec::new();
                    let mut used_here = false;
                    for uid in f.live_insts() {
                        let mut uses_id = false;
                        f.inst(uid).for_each_operand(|v| {
                            uses_id |= v == Value::Inst(id);
                        });
                        if uses_id {
                            let ub = f.block_of(uid);
                            if ub == bb {
                                used_here = true;
                                break;
                            }
                            if !user_blocks.contains(&ub) {
                                user_blocks.push(ub);
                            }
                        }
                    }
                    if used_here {
                        continue;
                    }
                    let [target] = user_blocks.as_slice() else {
                        continue;
                    };
                    let target = *target;
                    if !succs.contains(&target) || preds[target.0 as usize].len() != 1 {
                        continue;
                    }
                    // Loads may only sink past non-clobbering writes.
                    if is_load {
                        let loc = MemoryLocation::of_access(f, id).expect("load");
                        let pos = f.blocks[bi].insts.iter().position(|&x| x == id).unwrap();
                        let after: Vec<InstId> = f.blocks[bi].insts[pos + 1..].to_vec();
                        let mut blocked = false;
                        for w in after {
                            if m.func(fid).inst(w).writes_memory()
                                && cx.aa.may_clobber(m, fid, w, &loc)
                            {
                                blocked = true;
                                break;
                            }
                        }
                        if blocked {
                            continue;
                        }
                    }
                    // Move to the head of the target (after its phis).
                    let fm = m.func_mut(fid);
                    let from = fm.block_of(id);
                    fm.blocks[from.0 as usize].insts.retain(|&x| x != id);
                    let tb = &mut fm.blocks[target.0 as usize];
                    let at = tb
                        .insts
                        .iter()
                        .position(|&x| !matches!(fm.insts[x.0 as usize].inst, Inst::Phi { .. }))
                        .unwrap_or(tb.insts.len());
                    fm.blocks[target.0 as usize].insts.insert(at, id);
                    fm.insts[id.0 as usize].block = target;
                    sunk += 1;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        cx.stat("machine sinking", "instructions sunk", sunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use oraql_analysis::basic::BasicAA;
    use oraql_analysis::AAManager;
    use oraql_ir::builder::FunctionBuilder;
    use oraql_ir::inst::CmpPred;
    use oraql_ir::{Ty, Value};
    use oraql_vm::{Interpreter, RtVal};

    fn run_pass(m: &mut Module) -> Stats {
        let mut aa = AAManager::new();
        aa.add(Box::new(BasicAA::new()));
        let mut stats = Stats::new();
        for fi in 0..m.funcs.len() {
            let mut cx = PassCx {
                aa: &mut aa,
                stats: &mut stats,
            };
            MachineSink.run(m, FunctionId(fi as u32), &mut cx);
        }
        oraql_ir::verify::assert_valid(m);
        stats
    }

    /// f(flag, p): compute an expensive value but only print it on one
    /// branch; the untaken path should not pay for it after sinking.
    fn build(noalias_blocker: bool) -> (Module, FunctionId) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::I1, Ty::Ptr, Ty::Ptr], None);
        let flag = b.arg(0);
        let p = b.arg(1);
        let q = b.arg(2);
        if noalias_blocker {
            b.set_noalias(1, true);
            b.set_noalias(2, true);
        }
        let v = b.load(Ty::I64, p);
        let w = b.mul(v, Value::ConstInt(3));
        b.store(Ty::I64, Value::ConstInt(9), q); // write after the load
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(flag, t, e);
        b.switch_to(t);
        b.print("{}", vec![w]);
        b.ret(None);
        b.switch_to(e);
        b.print("other", vec![]);
        b.ret(None);
        let id = b.finish();
        (m, id)
    }

    #[test]
    fn pure_chain_sinks_into_used_branch() {
        let (mut m, fid) = build(true);
        let stats = run_pass(&mut m);
        // With restrict args the load sinks past the store, and the mul
        // goes with it.
        assert_eq!(stats.get("machine sinking", "instructions sunk"), 2);
        // Both the load and the mul now live in the then-block (block 1).
        let f = m.func(fid);
        let load = f
            .live_insts()
            .find(|&i| matches!(f.inst(i), Inst::Load { .. }))
            .unwrap();
        let mul = f
            .live_insts()
            .find(|&i| matches!(f.inst(i), Inst::Bin { .. }))
            .unwrap();
        assert_eq!(f.block_of(load), BlockId(1));
        assert_eq!(f.block_of(mul), BlockId(1));
        // Load precedes mul after sinking.
        let pos = |x: InstId| f.blocks[1].insts.iter().position(|&i| i == x).unwrap();
        assert!(pos(load) < pos(mul));
        let _ = fid;
    }

    #[test]
    fn aliasing_store_blocks_load_sinking() {
        let (mut m, _) = build(false);
        let stats = run_pass(&mut m);
        // The load cannot move past the may-aliasing store; the mul
        // cannot move because its operand stays.
        assert_eq!(stats.get("machine sinking", "instructions sunk"), 1); // only the mul? no: mul uses v in bb0... mul's user w is in t.
        let _ = stats;
    }

    #[test]
    fn semantics_preserved_on_taken_branch() {
        let (mut m, fid) = build(true);
        run_pass(&mut m);
        // Execute the then-branch against real memory.
        let g = { m.add_global("cell", 16, vec![42, 0, 0, 0, 0, 0, 0, 0], false) };
        let mut i = Interpreter::new(&m);
        let base = oraql_vm::memory::GLOBAL_BASE;
        let _ = g;
        i.run(fid, vec![RtVal::I(1), RtVal::P(base), RtVal::P(base + 8)])
            .unwrap();
        assert_eq!(i.stdout(), "126\n"); // 42 * 3
    }

    #[test]
    fn value_used_in_both_branches_stays() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m, "f", vec![Ty::I64], None);
        let x = b.mul(b.arg(0), Value::ConstInt(2));
        let c = b.cmp(CmpPred::Gt, Ty::I64, x, Value::ConstInt(0));
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.print("{}", vec![x]);
        b.ret(None);
        b.switch_to(e);
        b.print("neg {}", vec![x]);
        b.ret(None);
        b.finish();
        let stats = run_pass(&mut m);
        assert_eq!(stats.get("machine sinking", "instructions sunk"), 0);
    }
}
