//! Pre-decoded function bodies.
//!
//! The tree-walking interpreter re-matches `Inst` payloads, re-computes
//! `inst_cost` and re-searches phi incoming lists on every executed
//! instruction. Since every ORAQL probe is one full interpreted run,
//! that structural overhead is paid hundreds of times per module. This
//! module lowers a function once into a dense, execution-oriented form:
//!
//! * operands are resolved to frame slots / immediates ([`Opd`]) — in
//!   particular, global addresses become immediate pointers because the
//!   global layout is a pure function of the module, and print format
//!   strings are resolved out of the interner once,
//! * each block's phi incoming lists are compiled into per-predecessor
//!   parallel-copy tables ([`Edge`]), turning the O(preds) `find` on
//!   every loop backedge into an index carried by the branch,
//! * per-op cycle costs are precomputed and summed per segment
//!   ([`Seg`]) so fuel and cycle accounting is batched instead of
//!   per-instruction. A segment never extends past a `Call`: callees
//!   share the fuel budget and the `clock` external observes the cycle
//!   counters mid-run, so charging beyond a call would be visible.
//!
//! All variable-length data (ops, costs, segments, phi slots, edges,
//! copy tables, error messages) lives in flat per-function arenas
//! indexed by ranges in [`DBlock`]: decoding a function performs a
//! handful of allocations rather than several per block, and the ops
//! array is a single dense run the executor walks with no pointer
//! chasing. Error messages sit in a side table ([`DecodedFunction::
//! msgs`]) so the hot [`Opd`]/[`Jump`] enums stay small.
//!
//! The contract is exact equivalence with the tree-walk: identical
//! stdout, identical [`crate::ExecStats`], and identical
//! [`crate::RuntimeError`] classification (including message strings),
//! even on malformed IR. Malformed constructs decode into [`Opd::Bad`],
//! [`Jump::Bad`] or [`Op::Bad`] carrying the exact error message the
//! tree-walk raises at the same point of execution.

use crate::interp::inst_cost;
use oraql_ir::inst::{BinOp, CallKind, CastKind, CmpPred, FuncRef, GepOffset, Inst, InstId};
use oraql_ir::module::{Function, Module};
use oraql_ir::types::Ty;
use oraql_ir::value::Value;

/// Sentinel edge index for the initial entry into a function (the entry
/// block has no incoming edge on its first visit, even when it is also
/// a loop target).
pub const NO_EDGE: u32 = u32::MAX;

/// A pre-resolved operand. Immediates are unpacked into scalar variants
/// (IR constants are always scalar; vectors only arise at runtime) so
/// the enum stays 16 bytes.
#[derive(Debug, Clone, Copy)]
pub enum Opd {
    /// Integer immediate.
    ImmI(i64),
    /// Float immediate.
    ImmF(f64),
    /// Pointer immediate (resolved global address).
    ImmP(u64),
    /// Result slot of an instruction in the current frame.
    Slot(u32),
    /// Function argument index.
    Arg(u32),
    /// `Value::Undef`: always traps as an undefined read.
    Undef,
    /// Statically malformed operand; evaluating it raises `BadProgram`
    /// with message [`DecodedFunction::msgs`]`[i]` (matching the
    /// tree-walk).
    Bad(u32),
}

/// A pre-resolved branch target: the destination block plus the edge
/// index to present to the destination's [`Edge`] table.
#[derive(Debug, Clone, Copy)]
pub enum Jump {
    /// Branch to `block`, arriving via incoming edge `edge`.
    To {
        /// Destination block index.
        block: u32,
        /// Index into the destination's edge table.
        edge: u32,
    },
    /// Branch to a nonexistent block (raises `BadProgram` with message
    /// [`DecodedFunction::msgs`]`[i]`).
    Bad(u32),
}

/// One pre-decoded non-phi instruction.
#[derive(Debug, Clone)]
pub enum Op {
    /// Stack allocation.
    Alloca {
        /// Allocation size in bytes.
        size: u64,
        /// Result slot.
        dst: u32,
    },
    /// Typed load; `id` is the original instruction (for access traces).
    Load {
        ptr: Opd,
        ty: Ty,
        dst: u32,
        id: InstId,
    },
    /// Typed store.
    Store {
        ptr: Opd,
        val: Opd,
        ty: Ty,
        id: InstId,
    },
    /// Pointer plus constant byte offset.
    GepConst { base: Opd, off: i64, dst: u32 },
    /// Pointer plus `index * scale + add` bytes.
    GepScaled {
        base: Opd,
        index: Opd,
        scale: i64,
        add: i64,
        dst: u32,
    },
    /// Binary arithmetic.
    Bin {
        op: BinOp,
        ty: Ty,
        lhs: Opd,
        rhs: Opd,
        dst: u32,
    },
    /// Comparison.
    Cmp {
        pred: CmpPred,
        lhs: Opd,
        rhs: Opd,
        dst: u32,
    },
    /// Lazy select.
    Select { cond: Opd, t: Opd, f: Opd, dst: u32 },
    /// Value cast.
    Cast {
        kind: CastKind,
        val: Opd,
        to: Ty,
        dst: u32,
    },
    /// Call. `dst` is always written (with `None` for void callees),
    /// exactly like the tree-walk does.
    Call {
        callee: FuncRef,
        kind: CallKind,
        args: Box<[Opd]>,
        dst: u32,
    },
    /// Formatted output; the format string is resolved at decode time.
    Print { fmt: Box<str>, args: Box<[Opd]> },
    /// `memcpy(dst, src, bytes)`.
    Memcpy { dst: Opd, src: Opd, bytes: Opd },
    /// Return.
    Ret { val: Option<Opd> },
    /// Unconditional branch.
    Br { jump: Jump },
    /// Conditional branch.
    CondBr { cond: Opd, then_: Jump, else_: Jump },
    /// A position the tree-walk faults at: an out-of-range `InstId` in
    /// the block's list (`charged: false` — the fault fires before the
    /// fuel charge), a `Removed` placeholder, or a `Print` whose format
    /// string id is out of range (both `charged: true` — the tree-walk
    /// charges the op, then faults before evaluating operands).
    Bad {
        /// Index of the `BadProgram` message in
        /// [`DecodedFunction::msgs`].
        msg: u32,
        /// Whether the op is fuel-charged before the fault.
        charged: bool,
    },
}

impl Op {
    /// True for ops counted in `ExecStats::loads`.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// True for ops counted in `ExecStats::stores`.
    pub fn is_store(&self) -> bool {
        matches!(self, Op::Store { .. })
    }
}

/// The parallel-copy table for one incoming edge of a block: the
/// `copies` range (into [`DecodedFunction::copies`]) is parallel to the
/// block's phi range; `None` marks a phi lacking an entry for this
/// predecessor (a `BadProgram` at runtime, matching the tree-walk's
/// failed `find`).
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Predecessor block index (for error messages).
    pub pred: u32,
    /// Range of per-phi incoming operands in
    /// [`DecodedFunction::copies`].
    pub copies: (u32, u32),
}

/// A run of ops whose fuel/cycle accounting is charged in one batch.
/// Segments end after every `Call` op (and at the end of the block).
#[derive(Debug, Clone, Copy)]
pub struct Seg {
    /// One past the last op of the segment, as an absolute index into
    /// [`DecodedFunction::ops`] (`start` is the previous segment's
    /// `end`, or the block's op-range start for the first segment).
    pub end: u32,
    /// Sum of per-op cycle costs over the segment.
    pub cycles: u64,
    /// Number of `Load` ops in the segment.
    pub loads: u32,
    /// Number of `Store` ops in the segment.
    pub stores: u32,
}

/// One pre-decoded basic block: ranges into the function-level arenas.
#[derive(Debug, Clone, Copy)]
pub struct DBlock {
    /// Result slots of the leading phis: range in
    /// [`DecodedFunction::phi_slots`].
    pub phis: (u32, u32),
    /// Incoming-edge tables: range in [`DecodedFunction::edges`].
    pub edges: (u32, u32),
    /// The non-phi body, ending at the first terminator (or truncated
    /// at an [`Op::Bad`], past which nothing can execute): range in
    /// [`DecodedFunction::ops`] / [`DecodedFunction::costs`].
    pub ops: (u32, u32),
    /// Batched-accounting segments covering `ops`: range in
    /// [`DecodedFunction::segs`].
    pub segs: (u32, u32),
    /// Set (as a message index) when an out-of-range `InstId` sits
    /// inside the leading-phi prefix: the tree-walk faults there during
    /// phi scanning — after evaluating the earlier phi copies, before
    /// charging any of them.
    pub scan_err: Option<u32>,
}

/// A function lowered for direct execution. The arenas stay `Vec`s
/// rather than boxed slices: a `Vec -> Box<[T]>` conversion reallocates
/// whenever capacity exceeds length, and with seven arenas per function
/// those copies are a measurable share of first-call decode latency.
#[derive(Debug, Clone)]
pub struct DecodedFunction {
    /// Blocks, indexed by block id.
    pub blocks: Vec<DBlock>,
    /// All blocks' op arrays, one dense run.
    pub ops: Vec<Op>,
    /// Per-op cycle cost, parallel to `ops` (max `inst_cost` is 12).
    pub costs: Vec<u8>,
    /// All blocks' accounting segments.
    pub segs: Vec<Seg>,
    /// All blocks' leading-phi result slots.
    pub phi_slots: Vec<u32>,
    /// All blocks' incoming-edge tables.
    pub edges: Vec<Edge>,
    /// All edges' parallel-copy operands.
    pub copies: Vec<Option<Opd>>,
    /// `BadProgram` messages referenced by `Opd::Bad`, `Jump::Bad`,
    /// `Op::Bad` and `DBlock::scan_err`.
    pub msgs: Vec<Box<str>>,
    /// Size of the frame's value array (`Function::insts.len()`).
    pub n_slots: usize,
}

/// Interns a `BadProgram` message, returning its index.
fn msg(msgs: &mut Vec<Box<str>>, s: String) -> u32 {
    msgs.push(s.into());
    (msgs.len() - 1) as u32
}

#[inline(always)]
fn decode_opd(f: &Function, global_bases: &[u64], v: Value, msgs: &mut Vec<Box<str>>) -> Opd {
    match v {
        Value::ConstInt(i) => Opd::ImmI(i),
        Value::ConstFloat(bits) => Opd::ImmF(f64::from_bits(bits)),
        Value::Global(g) => match global_bases.get(g.0 as usize) {
            Some(&base) => Opd::ImmP(base),
            None => Opd::Bad(msg(msgs, format!("global @{} out of range", g.0))),
        },
        Value::Arg(i) => Opd::Arg(i),
        Value::Inst(id) => {
            if (id.0 as usize) < f.insts.len() {
                Opd::Slot(id.0)
            } else {
                Opd::Bad(msg(msgs, format!("instruction id %{} out of range", id.0)))
            }
        }
        Value::Undef => Opd::Undef,
    }
}

/// Finds the first terminator the tree-walk's phase 2 would execute:
/// the first `Ret`/`Br`/`CondBr` among the block's resolvable
/// instructions. Invalid ids and `Removed` placeholders are scanned
/// past here — if one precedes the terminator, execution faults before
/// branching, so over-approximating the successor set is harmless.
fn first_terminator<'a>(f: &'a Function, insts: &[InstId]) -> Option<&'a Inst> {
    insts
        .iter()
        .filter_map(|&id| f.get_inst(id))
        .find(|i| i.is_terminator())
}

/// Predecessor lists for every block, in one flat CSR-style arena
/// (block `b`'s predecessors are `flat[starts[b]..starts[b+1]]`). One
/// allocation pair instead of one `Vec` per block — block count exceeds
/// instruction count in kernel-heavy modules, so per-block allocations
/// dominate decode latency.
struct Preds {
    starts: Vec<u32>,
    flat: Vec<u32>,
}

impl Preds {
    fn of(&self, block: u32) -> &[u32] {
        match self.starts.get(block as usize..block as usize + 2) {
            Some(w) => &self.flat[w[0] as usize..w[1] as usize],
            None => &[],
        }
    }
}

fn edge_of(preds: &Preds, cur: u32, target: u32, msgs: &mut Vec<Box<str>>) -> Jump {
    match preds.of(target).iter().position(|&p| p == cur) {
        Some(e) => Jump::To {
            block: target,
            edge: e as u32,
        },
        // A known target always lists `cur` (pass 1 records every
        // terminator pass 2 emits), so `None` means a missing block;
        // kept non-panicking either way.
        None => Jump::Bad(msg(msgs, format!("missing block bb{target}"))),
    }
}

/// Lowers `f` into its pre-decoded form. Never fails: malformed IR
/// decodes into `Bad` ops/operands/jumps that reproduce the tree-walk's
/// runtime errors exactly.
pub fn decode_function(m: &Module, f: &Function, global_bases: &[u64]) -> DecodedFunction {
    {
        static LOWERINGS: std::sync::OnceLock<&'static oraql_obs::Counter> =
            std::sync::OnceLock::new();
        LOWERINGS
            .get_or_init(|| oraql_obs::global().counter("oraql_vm_decode_lowerings_total"))
            .inc();
    }
    let n_blocks = f.blocks.len();

    // Pass 1: predecessor lists, giving each (pred, target) pair a
    // stable edge index (first occurrence; a CondBr with both arms on
    // the same target shares one edge, matching the tree-walk's
    // find-by-predecessor). Since every block contributes at most two
    // distinct in-range targets, successors fit a fixed pair and the
    // lists build in two counting passes over one flat arena.
    const NONE: u32 = u32::MAX;
    let succs: Vec<[u32; 2]> = f
        .blocks
        .iter()
        .map(|block| match first_terminator(f, &block.insts) {
            Some(Inst::Br { target }) if (target.0 as usize) < n_blocks => [target.0, NONE],
            Some(Inst::CondBr {
                then_bb, else_bb, ..
            }) => {
                let t = if (then_bb.0 as usize) < n_blocks {
                    then_bb.0
                } else {
                    NONE
                };
                let e = if (else_bb.0 as usize) < n_blocks && else_bb.0 != t {
                    else_bb.0
                } else {
                    NONE
                };
                [t, e]
            }
            _ => [NONE, NONE],
        })
        .collect();
    let mut starts = vec![0u32; n_blocks + 1];
    for s in &succs {
        for &t in s {
            if t != NONE {
                starts[t as usize + 1] += 1;
            }
        }
    }
    for i in 0..n_blocks {
        starts[i + 1] += starts[i];
    }
    let mut flat = vec![0u32; *starts.last().unwrap_or(&0) as usize];
    let mut fill = starts.clone();
    for (b, s) in succs.iter().enumerate() {
        for &t in s {
            if t != NONE {
                flat[fill[t as usize] as usize] = b as u32;
                fill[t as usize] += 1;
            }
        }
    }
    let preds = Preds { starts, flat };

    // Pass 2: decode each block into the shared arenas.
    let mut blocks: Vec<DBlock> = Vec::with_capacity(n_blocks);
    let mut ops: Vec<Op> = Vec::with_capacity(f.insts.len());
    let mut costs: Vec<u8> = Vec::with_capacity(f.insts.len());
    let mut segs: Vec<Seg> = Vec::new();
    let mut phi_slots: Vec<u32> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut copies: Vec<Option<Opd>> = Vec::new();
    let mut msgs: Vec<Box<str>> = Vec::new();
    let mut phi_incoming = Vec::new();
    for (b, block) in f.blocks.iter().enumerate() {
        // Leading phis (the only ones the tree-walk ever evaluates).
        let phi_start = phi_slots.len() as u32;
        phi_incoming.clear();
        let mut scan_err: Option<u32> = None;
        for &id in &block.insts {
            match f.get_inst(id) {
                None => {
                    scan_err = Some(msg(
                        &mut msgs,
                        format!("instruction id %{} out of range", id.0),
                    ));
                    break;
                }
                Some(Inst::Phi { incoming, .. }) => {
                    phi_slots.push(id.0);
                    phi_incoming.push(incoming);
                }
                Some(_) => break,
            }
        }

        let edge_start = edges.len() as u32;
        for &p in preds.of(b as u32) {
            let copy_start = copies.len() as u32;
            for incoming in &phi_incoming {
                copies.push(
                    incoming
                        .iter()
                        .find(|(bb, _)| bb.0 == p)
                        .map(|&(_, v)| decode_opd(f, global_bases, v, &mut msgs)),
                );
            }
            edges.push(Edge {
                pred: p,
                copies: (copy_start, copies.len() as u32),
            });
        }

        // Body: everything from the start of the block (phis are
        // skipped exactly as the tree-walk does) up to and including
        // the first terminator, truncated at the first position the
        // tree-walk would fault at. Batch-accounting segments (runs
        // ending after each Call) accumulate in the same pass.
        let ops_start = ops.len() as u32;
        let seg_start = segs.len() as u32;
        let mut seg = Seg {
            end: ops_start,
            cycles: 0,
            loads: 0,
            stores: 0,
        };
        if scan_err.is_none() {
            for &id in &block.insts {
                let (op, cost) = match f.get_inst(id) {
                    None => (
                        Op::Bad {
                            msg: msg(&mut msgs, format!("instruction id %{} out of range", id.0)),
                            charged: false,
                        },
                        0,
                    ),
                    Some(Inst::Phi { .. }) => continue,
                    Some(inst) => (
                        decode_op(m, f, global_bases, &preds, b as u32, id, inst, &mut msgs),
                        inst_cost(inst) as u8,
                    ),
                };
                let stop = matches!(
                    op,
                    Op::Bad { .. } | Op::Ret { .. } | Op::Br { .. } | Op::CondBr { .. }
                );
                seg.cycles += cost as u64;
                seg.loads += op.is_load() as u32;
                seg.stores += op.is_store() as u32;
                let close = matches!(op, Op::Call { .. });
                ops.push(op);
                costs.push(cost);
                seg.end = ops.len() as u32;
                if close {
                    segs.push(seg);
                    seg = Seg {
                        end: seg.end,
                        cycles: 0,
                        loads: 0,
                        stores: 0,
                    };
                }
                if stop {
                    break;
                }
            }
        }
        let closed = segs[seg_start as usize..]
            .last()
            .map_or(ops_start, |s| s.end);
        if closed as usize != ops.len() {
            segs.push(seg);
        }

        blocks.push(DBlock {
            phis: (phi_start, phi_slots.len() as u32),
            edges: (edge_start, edges.len() as u32),
            ops: (ops_start, ops.len() as u32),
            segs: (seg_start, segs.len() as u32),
            scan_err,
        });
    }

    DecodedFunction {
        blocks,
        ops,
        costs,
        segs,
        phi_slots,
        edges,
        copies,
        msgs,
        n_slots: f.insts.len(),
    }
}

// Single call site (the block body loop): inlining avoids a call and a
// by-value `Op` return per decoded instruction.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn decode_op(
    m: &Module,
    f: &Function,
    global_bases: &[u64],
    preds: &Preds,
    cur_block: u32,
    id: InstId,
    inst: &Inst,
    msgs: &mut Vec<Box<str>>,
) -> Op {
    let dst = id.0;
    match inst {
        Inst::Alloca { size, .. } => Op::Alloca { size: *size, dst },
        Inst::Load { ptr, ty, .. } => Op::Load {
            ptr: decode_opd(f, global_bases, *ptr, msgs),
            ty: *ty,
            dst,
            id,
        },
        Inst::Store { ptr, value, ty, .. } => Op::Store {
            ptr: decode_opd(f, global_bases, *ptr, msgs),
            val: decode_opd(f, global_bases, *value, msgs),
            ty: *ty,
            id,
        },
        Inst::Gep { base, offset } => match offset {
            GepOffset::Const(c) => Op::GepConst {
                base: decode_opd(f, global_bases, *base, msgs),
                off: *c,
                dst,
            },
            GepOffset::Scaled { index, scale, add } => Op::GepScaled {
                base: decode_opd(f, global_bases, *base, msgs),
                index: decode_opd(f, global_bases, *index, msgs),
                scale: *scale,
                add: *add,
                dst,
            },
        },
        Inst::Bin { op, ty, lhs, rhs } => Op::Bin {
            op: *op,
            ty: *ty,
            lhs: decode_opd(f, global_bases, *lhs, msgs),
            rhs: decode_opd(f, global_bases, *rhs, msgs),
            dst,
        },
        Inst::Cmp {
            pred: p, lhs, rhs, ..
        } => Op::Cmp {
            pred: *p,
            lhs: decode_opd(f, global_bases, *lhs, msgs),
            rhs: decode_opd(f, global_bases, *rhs, msgs),
            dst,
        },
        Inst::Select { cond, t, f: fv, .. } => Op::Select {
            cond: decode_opd(f, global_bases, *cond, msgs),
            t: decode_opd(f, global_bases, *t, msgs),
            f: decode_opd(f, global_bases, *fv, msgs),
            dst,
        },
        Inst::Cast { kind, val, to } => Op::Cast {
            kind: *kind,
            val: decode_opd(f, global_bases, *val, msgs),
            to: *to,
            dst,
        },
        Inst::Call {
            callee, args, kind, ..
        } => Op::Call {
            callee: *callee,
            kind: *kind,
            args: args
                .iter()
                .map(|&a| decode_opd(f, global_bases, a, msgs))
                .collect(),
            dst,
        },
        // The tree-walk resolves the format string before evaluating
        // any argument, so a bad id faults (charged) with no operand
        // side effects — exactly an `Op::Bad { charged: true }`.
        Inst::Print { fmt, args } => match m.strings.try_resolve(*fmt) {
            Some(s) => Op::Print {
                fmt: s.into(),
                args: args
                    .iter()
                    .map(|&a| decode_opd(f, global_bases, a, msgs))
                    .collect(),
            },
            None => Op::Bad {
                msg: msg(msgs, format!("string id {} out of range", fmt.0)),
                charged: true,
            },
        },
        Inst::Memcpy {
            dst: d, src, bytes, ..
        } => Op::Memcpy {
            dst: decode_opd(f, global_bases, *d, msgs),
            src: decode_opd(f, global_bases, *src, msgs),
            bytes: decode_opd(f, global_bases, *bytes, msgs),
        },
        Inst::Ret { val } => Op::Ret {
            val: val.map(|v| decode_opd(f, global_bases, v, msgs)),
        },
        Inst::Br { target } => Op::Br {
            jump: edge_of(preds, cur_block, target.0, msgs),
        },
        Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        } => Op::CondBr {
            cond: decode_opd(f, global_bases, *cond, msgs),
            then_: edge_of(preds, cur_block, then_bb.0, msgs),
            else_: edge_of(preds, cur_block, else_bb.0, msgs),
        },
        Inst::Removed => Op::Bad {
            msg: msg(msgs, format!("removed instruction %{} executed", id.0)),
            charged: true,
        },
        Inst::Phi { .. } => unreachable!("phis are skipped by the caller"),
    }
}
