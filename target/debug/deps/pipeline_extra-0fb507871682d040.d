/root/repo/target/debug/deps/pipeline_extra-0fb507871682d040.d: crates/passes/tests/pipeline_extra.rs

/root/repo/target/debug/deps/pipeline_extra-0fb507871682d040: crates/passes/tests/pipeline_extra.rs

crates/passes/tests/pipeline_extra.rs:
