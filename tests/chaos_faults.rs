//! Chaos suite for the probe sandbox: real workloads probed under a
//! deterministic fault-injection plan. The contract under any plan:
//!
//! * no panic ever escapes the driver (`Driver::run` returns, and every
//!   suite sibling is unaffected),
//! * verification still holds — a quarantined probe degrades to
//!   pessimistic may-alias, never to a silently-wrong no-alias, so the
//!   final output always matches the baseline,
//! * at `jobs = 1` the whole run (decisions, failure counters, effort)
//!   is a pure function of the fault-plan seed: two runs are identical.

use std::sync::Arc;
use std::time::Duration;

use oraql::faults::{quiet_injected_panics, Rate};
use oraql::{
    run_suite, Driver, DriverOptions, DriverResult, FaultInjector, FaultPlan, FaultSite, TestCase,
    Verifier,
};
use oraql_workloads as workloads;

/// Small-but-real cases that keep the matrix fast; `testsnap_omp` and
/// `xsbench` genuinely bisect, `gridmini` exercises device code.
const CASES: [&str; 3] = ["testsnap_omp", "xsbench", "gridmini"];

fn chaos_run(name: &str, plan: FaultPlan, jobs: usize) -> DriverResult {
    quiet_injected_panics();
    let case = workloads::find_case(name).expect(name);
    Driver::run(
        &case,
        DriverOptions {
            jobs,
            faults: Some(Arc::new(FaultInjector::new(plan))),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name}: chaos run must not fail the driver: {e}"))
}

/// Asserts the final output still verifies, the same way the driver
/// does it: against the baseline output (plus any extra references),
/// with the case's ignore patterns excusing volatile lines.
fn assert_verifies(case: &TestCase, r: &DriverResult) {
    let mut refs = vec![r.baseline_run.stdout.clone()];
    refs.extend(case.extra_references.iter().cloned());
    let v = Verifier::new(refs, &case.ignore_patterns);
    if let Err(m) = v.check(&r.final_run.stdout) {
        panic!("{}: final output failed verification: {m}", case.name);
    }
}

/// Seed matrix at `jobs = 1`: every seed is deterministic (two runs
/// agree on everything) and always verifies against the baseline.
#[test]
fn chaos_seed_matrix_is_deterministic_and_safe() {
    for seed in [1, 42, 1337] {
        let plan = FaultPlan::uniform(seed, 1, 7);
        for name in CASES {
            let a = chaos_run(name, plan, 1);
            let b = chaos_run(name, plan, 1);
            assert_eq!(a.decisions, b.decisions, "{name} seed={seed}");
            assert_eq!(a.failures, b.failures, "{name} seed={seed}");
            assert_eq!(a.effort, b.effort, "{name} seed={seed}");
            assert_eq!(a.final_run.stdout, b.final_run.stdout, "{name} seed={seed}");
            // The safety half: whatever the faults did, the surviving
            // decision vector verifies.
            assert_verifies(&workloads::find_case(name).unwrap(), &a);
        }
    }
}

/// Injected faults only ever *add* pessimism relative to the fault-free
/// run — a fault can hide a safe no-alias answer, but must never smuggle
/// in an unsafe one.
#[test]
fn chaos_never_gains_optimism() {
    for name in CASES {
        let case = workloads::find_case(name).expect(name);
        let healthy = Driver::run(&case, DriverOptions::default()).unwrap();
        let chaotic = chaos_run(name, FaultPlan::uniform(42, 1, 5), 1);
        assert!(
            chaotic.no_alias_oraql <= healthy.no_alias_oraql,
            "{name}: chaos must not add no-alias answers \
             ({} healthy vs {} chaotic)",
            healthy.no_alias_oraql,
            chaotic.no_alias_oraql
        );
        assert_verifies(&case, &chaotic);
    }
}

/// A hostile plan with a watchdog deadline: hangs are cut short,
/// classified, and the run still completes and verifies.
#[test]
fn deadline_cuts_injected_hangs() {
    let plan = FaultPlan::quiet(7).with_rate(FaultSite::ProbeHang, Rate::new(1, 3));
    quiet_injected_panics();
    let case = workloads::find_case("testsnap_omp").expect("case");
    let r = Driver::run(
        &case,
        DriverOptions {
            faults: Some(Arc::new(FaultInjector::new(plan))),
            // Injected hangs sleep well past this deadline (4x, capped
            // at 2s), so every one of them must be caught by the
            // watchdog rather than waited out.
            probe_deadline: Some(Duration::from_millis(250)),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r.failures.deadlines > 0, "{:?}", r.failures);
    assert_verifies(&case, &r);
}

/// Full suite under a mixed plan at `jobs = 4`, worker poisoning
/// included: every case completes, none is poisoned by a sibling, and
/// every result verifies. (At `jobs > 1` the fault *stream* interleaves
/// nondeterministically across threads, so this is a completion +
/// safety check, not a byte-compare.)
#[test]
fn chaos_suite_completes_under_parallel_poisoning() {
    quiet_injected_panics();
    let plan = FaultPlan::uniform(11, 1, 9).with_rate(FaultSite::WorkerPoison, Rate::new(1, 4));
    let cases: Vec<_> = CASES
        .iter()
        .map(|n| workloads::find_case(n).expect(n))
        .collect();
    let results = run_suite(
        &cases,
        &DriverOptions {
            jobs: 4,
            faults: Some(Arc::new(FaultInjector::new(plan))),
            ..Default::default()
        },
    );
    for (case, result) in cases.iter().zip(&results) {
        let r = result
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: suite case failed under chaos: {e}", case.name));
        assert_verifies(case, r);
    }
}
