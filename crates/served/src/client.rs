//! The blocking client the driver embeds as its third cache tier.
//!
//! Design goals, in order:
//!
//! 1. **A dead server must not slow a probe down.** Connects and reads
//!    are bounded by short timeouts, and after a failure the client
//!    trips a circuit breaker: every call inside the cooldown window
//!    fails instantly with [`ClientError::Unavailable`] without
//!    touching the socket, so the driver's fallback to the local store
//!    costs nothing. When the cooldown expires the breaker goes
//!    **half-open**: exactly one request becomes the probe (single
//!    attempt, no retries); success closes the breaker, failure
//!    re-opens it for another cooldown.
//! 2. **A restarted or flaky server heals transparently.** Every
//!    operation here is idempotent (`GET`s are pure, `PUT`s are
//!    deduplicated by the server's store), so a failed request is
//!    retried up to [`ClientOptions::max_retries`] times on a fresh
//!    connection with jittered exponential backoff. Retries reuse the
//!    **same request id**, and the server echoes the id on every
//!    response — a stale or foreign response can never be paired with
//!    the wrong request.
//! 3. **An overloaded server is not a broken server.** A `BUSY`
//!    answer (load shedding, see `docs/PROTOCOL.md`) surfaces as
//!    [`ClientError::Busy`] immediately: it consumes no retries, does
//!    not trip the breaker (a shedding server is alive — during a
//!    half-open probe it *closes* the breaker), and tells the driver
//!    to fall back to its local tiers.
//!
//! Backoff jitter is deterministic — a pure function of
//! `(seed, req_id, attempt)` via `splitmix64` (see [`backoff_delay`]) —
//! so N clients with distinct seeds spread their reconnects instead of
//! thundering-herding, and tests can assert the exact spread.
//!
//! # Concurrency contract
//!
//! A [`Client`] is `Send + Sync`; share one per process in an `Arc`.
//! The single underlying connection is behind a mutex — requests from
//! many threads serialize (including any backoff sleeps, which are
//! bounded by `backoff_cap`), which is the correct protocol behavior
//! (frames interleaved by two writers are garbage) and fine for the
//! driver, whose probe loop talks to the server at most a few times
//! per probe. Counters are atomics, readable at any time via
//! [`Client::stats`].

use crate::net::{Addr, Conn};
use crate::protocol::{read_frame, write_frame, Request, Response, Status};
use oraql_faults::splitmix64;
use oraql_store::REF_SEP;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server is (or was recently) unreachable; the circuit
    /// breaker is open. Callers should fall back to their local tier.
    Unavailable(String),
    /// The server shed the request with `BUSY` (admission control or
    /// connection cap): it is alive but overloaded, and the request
    /// was **not** executed. Fall back to the local tier; do not
    /// retry.
    Busy,
    /// The server answered with an error status.
    Remote(Status, String),
    /// The server answered bytes that do not decode as a response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Unavailable(m) => write!(f, "verdict server unavailable: {m}"),
            ClientError::Busy => write!(f, "verdict server busy (request shed)"),
            ClientError::Remote(s, m) if m.is_empty() => {
                write!(f, "verdict server error: {}", s.as_str())
            }
            ClientError::Remote(s, m) => write!(f, "verdict server error: {} ({m})", s.as_str()),
            ClientError::Protocol(m) => write!(f, "verdict server protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Tunables for a [`Client`]. Plain data; the defaults match
/// [`Client::new`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Per-request socket timeout (connect, read, write). Default 2 s.
    pub timeout: Duration,
    /// How long the breaker stays open after a failure before the
    /// half-open probe. Default 250 ms.
    pub cooldown: Duration,
    /// Idempotent retries after the first attempt of a request (not
    /// counting the half-open probe, which gets exactly one attempt).
    /// Default 2.
    pub max_retries: u32,
    /// First retry's backoff before jitter; doubles per retry.
    /// Default 10 ms.
    pub backoff_base: Duration,
    /// Upper bound on one backoff sleep. Default 200 ms.
    pub backoff_cap: Duration,
    /// Seed for deterministic backoff jitter and request-id mixing.
    /// Defaults to a per-client unique value so concurrent clients
    /// de-correlate; pin it in tests.
    pub seed: u64,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        // Distinct per client so a fleet created in a loop still gets
        // de-correlated jitter (no OS entropy: hermetic + std-only).
        static NEXT_SEED: AtomicU64 = AtomicU64::new(1);
        ClientOptions {
            timeout: Client::DEFAULT_TIMEOUT,
            cooldown: Client::DEFAULT_COOLDOWN,
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            seed: splitmix64(0x0c11_e27b ^ NEXT_SEED.fetch_add(1, Ordering::Relaxed)),
        }
    }
}

/// The jittered exponential backoff before retry `attempt` (1-based)
/// of request `req_id`: `base · 2^(attempt-1)`, capped at `cap`, then
/// scaled into `[0.5, 1.0)` by a `splitmix64` hash of
/// `(seed, req_id, attempt)`. Pure — the reconnect-storm test asserts
/// the spread across seeds without racing wall clocks.
pub fn backoff_delay(
    seed: u64,
    req_id: u64,
    attempt: u32,
    base: Duration,
    cap: Duration,
) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
    let exp = exp.min(cap);
    let j = splitmix64(seed ^ req_id.rotate_left(17) ^ u64::from(attempt));
    exp.mul_f64(0.5 + (j % 1024) as f64 / 2048.0)
}

/// Breaker states, in the classic three-state shape. The state gauge
/// `oraql_client_breaker_state` publishes these as 0/1/2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    /// Healthy: requests flow, failures trip to `Open`.
    Closed,
    /// Failing: every request inside the window fails fast.
    Open { until: Instant },
    /// Cooldown expired: the next request is the single probe.
    HalfOpen,
}

/// Live client counters (all monotone; relaxed loads/stores — they
/// feed the CLI summary, not synchronization).
#[derive(Debug, Default)]
struct Counters {
    lookups: AtomicU64,
    hits: AtomicU64,
    appends: AtomicU64,
    io_errors: AtomicU64,
    fast_fails: AtomicU64,
    busy: AtomicU64,
    retries: AtomicU64,
    connects: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
}

/// A plain-value copy of a client's counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// `GET` requests issued (dec + exe + refs).
    pub lookups: u64,
    /// `GET`s the server answered with a record.
    pub hits: u64,
    /// `PUT` requests issued.
    pub appends: u64,
    /// Requests that died on a real socket/protocol error.
    pub io_errors: u64,
    /// Requests refused instantly by the open circuit breaker.
    pub fast_fails: u64,
    /// Requests the server shed with `BUSY`.
    pub busy: u64,
    /// Idempotent retry attempts (beyond each request's first try).
    pub retries: u64,
    /// Successful (re)connects.
    pub connects: u64,
    /// Request bytes written.
    pub bytes_out: u64,
    /// Response bytes read.
    pub bytes_in: u64,
}

impl std::fmt::Display for ClientStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} lookups, {} appends, {} errors, {} fast-fails, {} busy, {} retries, {} connects",
            self.hits,
            self.lookups,
            self.appends,
            self.io_errors,
            self.fast_fails,
            self.busy,
            self.retries,
            self.connects
        )
    }
}

/// Connection state behind the client's mutex.
struct Link {
    conn: Option<Conn>,
    breaker: Breaker,
}

impl Default for Link {
    fn default() -> Link {
        Link {
            conn: None,
            breaker: Breaker::Closed,
        }
    }
}

/// A blocking verdict-server client with timeouts, idempotent retries,
/// and a three-state circuit breaker. See the module docs for the full
/// contract.
pub struct Client {
    addr: Addr,
    addr_str: String,
    opts: ClientOptions,
    link: Mutex<Link>,
    counters: Counters,
    next_req: AtomicU64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr_str)
            .field("stats", &self.stats())
            .finish()
    }
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn breaker_gauge() -> &'static oraql_obs::Gauge {
    static G: std::sync::OnceLock<&'static oraql_obs::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| oraql_obs::global().gauge("oraql_client_breaker_state"))
}

fn retries_counter() -> &'static oraql_obs::Counter {
    static C: std::sync::OnceLock<&'static oraql_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| oraql_obs::global().counter("oraql_client_retries_total"))
}

fn busy_counter() -> &'static oraql_obs::Counter {
    static C: std::sync::OnceLock<&'static oraql_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| oraql_obs::global().counter("oraql_client_busy_total"))
}

impl Client {
    /// Default per-request socket timeout.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(2);
    /// Default circuit-breaker cooldown after a failure.
    pub const DEFAULT_COOLDOWN: Duration = Duration::from_millis(250);

    /// Builds a client for `addr` (see [`Addr::parse`] for the
    /// grammar) with default [`ClientOptions`]. No I/O happens here —
    /// the first request dials.
    pub fn new(addr: &str) -> Client {
        Client::with_options(addr, ClientOptions::default())
    }

    /// [`Client::new`] with explicit socket timeout and breaker
    /// cooldown (tests use tiny cooldowns to exercise recovery).
    pub fn with_timeouts(addr: &str, timeout: Duration, cooldown: Duration) -> Client {
        Client::with_options(
            addr,
            ClientOptions {
                timeout,
                cooldown,
                ..ClientOptions::default()
            },
        )
    }

    /// Builds a client with explicit [`ClientOptions`].
    pub fn with_options(addr: &str, opts: ClientOptions) -> Client {
        Client {
            addr: Addr::parse(addr),
            addr_str: addr.to_string(),
            opts,
            link: Mutex::new(Link::default()),
            counters: Counters::default(),
            next_req: AtomicU64::new(0),
        }
    }

    /// The address string this client dials.
    pub fn addr(&self) -> &str {
        &self.addr_str
    }

    /// The options this client runs with.
    pub fn options(&self) -> &ClientOptions {
        &self.opts
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ClientStats {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ClientStats {
            lookups: r(&self.counters.lookups),
            hits: r(&self.counters.hits),
            appends: r(&self.counters.appends),
            io_errors: r(&self.counters.io_errors),
            fast_fails: r(&self.counters.fast_fails),
            busy: r(&self.counters.busy),
            retries: r(&self.counters.retries),
            connects: r(&self.counters.connects),
            bytes_out: r(&self.counters.bytes_out),
            bytes_in: r(&self.counters.bytes_in),
        }
    }

    /// A fresh request id: unique per client (a `splitmix64` bijection
    /// over a counter, mixed with the client seed so two clients'
    /// streams don't collide). The same id tags every retry of one
    /// logical request.
    fn new_req_id(&self) -> u64 {
        let n = self.next_req.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.opts.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// One logical request: breaker, idempotent retries, backoff, and
    /// `BUSY` interception, as described in the module docs. Holds the
    /// connection mutex for the whole exchange (including backoff).
    fn request(&self, req: &Request) -> Result<Response, ClientError> {
        let mut link = lock_ignore_poison(&self.link);
        let probing = match link.breaker {
            Breaker::Closed => false,
            Breaker::HalfOpen => true,
            Breaker::Open { until } => {
                if Instant::now() < until {
                    self.counters.fast_fails.fetch_add(1, Ordering::Relaxed);
                    return Err(ClientError::Unavailable(
                        "breaker open (in cooldown)".into(),
                    ));
                }
                link.breaker = Breaker::HalfOpen;
                breaker_gauge().set(2);
                true
            }
        };
        let req_id = self.new_req_id();
        let frame = req.encode(req_id);
        // The probe gets one shot; a normal request gets 1 + retries.
        let attempts = if probing {
            1
        } else {
            1 + self.opts.max_retries
        };
        let mut last_err = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                retries_counter().inc();
                std::thread::sleep(backoff_delay(
                    self.opts.seed,
                    req_id,
                    attempt,
                    self.opts.backoff_base,
                    self.opts.backoff_cap,
                ));
            }
            match self.exchange(&mut link, &frame, req.op(), req_id) {
                Ok(Response::Busy) => {
                    // Alive but shedding: no breaker trip, no retry —
                    // and a probe answered BUSY proves liveness.
                    self.counters.busy.fetch_add(1, Ordering::Relaxed);
                    busy_counter().inc();
                    link.breaker = Breaker::Closed;
                    breaker_gauge().set(0);
                    return Err(ClientError::Busy);
                }
                Ok(resp) => {
                    link.breaker = Breaker::Closed;
                    breaker_gauge().set(0);
                    return Ok(resp);
                }
                Err(e) => {
                    link.conn = None;
                    last_err = e;
                }
            }
        }
        self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
        link.breaker = Breaker::Open {
            until: Instant::now() + self.opts.cooldown,
        };
        breaker_gauge().set(1);
        Err(ClientError::Unavailable(last_err))
    }

    /// Sends `frame` and reads one response on the cached connection,
    /// dialing first if needed, and checks the echoed request id.
    /// Errors are stringified for the caller to wrap (every failure
    /// class here means "server unreachable or incoherent", which the
    /// retry loop treats uniformly).
    fn exchange(
        &self,
        link: &mut Link,
        frame: &[u8],
        op: crate::protocol::Op,
        req_id: u64,
    ) -> Result<Response, String> {
        if link.conn.is_none() {
            let conn = Conn::connect(&self.addr, self.opts.timeout).map_err(|e| e.to_string())?;
            conn.set_read_timeout(Some(self.opts.timeout))
                .map_err(|e| e.to_string())?;
            conn.set_write_timeout(Some(self.opts.timeout))
                .map_err(|e| e.to_string())?;
            self.counters.connects.fetch_add(1, Ordering::Relaxed);
            link.conn = Some(conn);
        }
        // Checked is_none() above; keep the borrow local to this call.
        let Some(conn) = link.conn.as_mut() else {
            return Err("no connection".into());
        };
        write_frame(conn, frame).map_err(|e| e.to_string())?;
        self.counters
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        let payload = match read_frame(conn).map_err(|e| e.to_string())? {
            Some(p) => p,
            None => return Err("server closed the connection".into()),
        };
        self.counters
            .bytes_in
            .fetch_add((12 + payload.len()) as u64, Ordering::Relaxed);
        let (echoed, resp) = Response::decode(op, &payload)?;
        if echoed != req_id {
            // A stale response from an earlier timed-out request on
            // this connection: the stream is desynced, drop it.
            return Err(format!(
                "response id {echoed:#x} does not match request {req_id:#x}"
            ));
        }
        Ok(resp)
    }

    fn remote_err(resp: Response) -> ClientError {
        match resp {
            Response::Err(status, msg) => ClientError::Remote(status, msg),
            Response::Busy => ClientError::Busy, // unreachable: request() intercepts
            other => ClientError::Protocol(format!("unexpected response {other:?}")),
        }
    }

    /// Liveness check.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(Self::remote_err(other)),
        }
    }

    fn get_verdict(&self, req: Request) -> Result<Option<(bool, u64)>, ClientError> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.request(&req)? {
            Response::Verdict { pass, unique } => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some((pass, unique)))
            }
            Response::NotFound => Ok(None),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Looks up a decisions-digest verdict.
    pub fn get_dec(&self, key: u64) -> Result<Option<(bool, u64)>, ClientError> {
        self.get_verdict(Request::GetDec { key })
    }

    /// Looks up an executable-hash verdict.
    pub fn get_exe(&self, key: u64) -> Result<Option<(bool, u64)>, ClientError> {
        self.get_verdict(Request::GetExe { key })
    }

    fn put(&self, req: Request) -> Result<(), ClientError> {
        self.counters.appends.fetch_add(1, Ordering::Relaxed);
        match self.request(&req)? {
            Response::Ok => Ok(()),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Appends a decisions-digest verdict.
    pub fn put_dec(&self, key: u64, pass: bool, unique: u64) -> Result<(), ClientError> {
        self.put(Request::PutDec { key, pass, unique })
    }

    /// Appends an executable-hash verdict.
    pub fn put_exe(&self, key: u64, pass: bool, unique: u64) -> Result<(), ClientError> {
        self.put(Request::PutExe { key, pass, unique })
    }

    /// Looks up the reference outputs stored for a case salt.
    pub fn get_refs(&self, salt: u64) -> Result<Option<Vec<String>>, ClientError> {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        match self.request(&Request::GetRefs { salt })? {
            Response::Text(joined) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(joined.split(REF_SEP).map(str::to_owned).collect()))
            }
            Response::NotFound => Ok(None),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Appends the accepted reference outputs for a case salt.
    pub fn put_refs(&self, salt: u64, outputs: &[String]) -> Result<(), ClientError> {
        self.put(Request::PutRefs {
            salt,
            refs: outputs.join(&REF_SEP.to_string()),
        })
    }

    /// Fetches the server's `STATS` text.
    pub fn server_stats(&self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Text(t) => Ok(t),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Fetches the server's `METRICS` text exposition (the daemon
    /// process's metrics registry, Prometheus-style `name value`
    /// lines; parse with `oraql_obs::Snapshot::parse`).
    pub fn server_metrics(&self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Text(t) => Ok(t),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Forces a group fsync of every dirty shard.
    pub fn sync(&self) -> Result<(), ClientError> {
        match self.request(&Request::Sync)? {
            Response::Ok => Ok(()),
            other => Err(Self::remote_err(other)),
        }
    }

    /// Compacts every shard journal; returns the per-shard summary.
    pub fn server_compact(&self) -> Result<String, ClientError> {
        match self.request(&Request::Compact)? {
            Response::Text(t) => Ok(t),
            other => Err(Self::remote_err(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oraql_client_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Small options for breaker tests: no retries so each failure is
    /// one socket error, short cooldown so recovery is observable.
    fn snappy(addr: &str, cooldown: Duration) -> Client {
        Client::with_options(
            addr,
            ClientOptions {
                timeout: Duration::from_millis(500),
                cooldown,
                max_retries: 0,
                seed: 42,
                ..ClientOptions::default()
            },
        )
    }

    #[test]
    fn breaker_fast_fails_then_half_open_probe_recovers() {
        let dir = scratch("breaker");
        let cfg = ServerConfig::new(&dir);
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        // Generous cooldown so the breaker is observably open.
        let client = snappy(&addr, Duration::from_millis(200));
        client.put_dec(1, true, 1).unwrap();
        server.shutdown().unwrap();
        // First call after the server died: a real error trips the breaker.
        assert!(matches!(
            client.get_dec(1),
            Err(ClientError::Unavailable(_))
        ));
        let after_trip = client.stats().io_errors;
        assert!(after_trip >= 1);
        // Inside the cooldown: fail-fast, no new socket error.
        assert!(matches!(
            client.get_dec(1),
            Err(ClientError::Unavailable(_))
        ));
        assert_eq!(client.stats().io_errors, after_trip);
        assert!(client.stats().fast_fails >= 1);
        // Cooldown expires against a still-dead server: the half-open
        // probe fails (one more io error) and re-opens the breaker.
        std::thread::sleep(Duration::from_millis(250));
        assert!(matches!(
            client.get_dec(1),
            Err(ClientError::Unavailable(_))
        ));
        assert_eq!(client.stats().io_errors, after_trip + 1);
        // Restart on the same port and wait out the cooldown: the next
        // probe succeeds and closes the breaker for good.
        let port_cfg = ServerConfig::new(&dir);
        let server = Server::start(&port_cfg, &addr).unwrap();
        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(client.get_dec(1).unwrap(), Some((true, 1)));
        assert_eq!(client.get_dec(1).unwrap(), Some((true, 1)));
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retries_survive_server_restart() {
        let dir = scratch("retry");
        let cfg = ServerConfig::new(&dir);
        let server = Server::start(&cfg, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let client = Client::new(&addr);
        client.put_dec(5, true, 5).unwrap();
        // Bounce the server; the client's cached connection is now
        // stale, but the next request must succeed via an idempotent
        // retry on a fresh connection, not error.
        server.shutdown().unwrap();
        let server = Server::start(&cfg, &addr).unwrap();
        assert_eq!(client.get_dec(5).unwrap(), Some((true, 5)));
        assert!(client.stats().retries >= 1);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_clients_share_one_handle() {
        let dir = scratch("shared");
        let server = Server::start(&ServerConfig::new(&dir), "127.0.0.1:0").unwrap();
        let client = std::sync::Arc::new(Client::new(&server.addr()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = std::sync::Arc::clone(&client);
                s.spawn(move || {
                    for k in 0..25u64 {
                        let key = t * 100 + k;
                        c.put_dec(key, true, key).unwrap();
                        assert_eq!(c.get_dec(key).unwrap(), Some((true, key)));
                    }
                });
            }
        });
        assert_eq!(client.stats().appends, 100);
        assert_eq!(client.stats().hits, 100);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_bounded() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        // Deterministic: same inputs, same delay.
        assert_eq!(
            backoff_delay(1, 2, 1, base, cap),
            backoff_delay(1, 2, 1, base, cap)
        );
        // Bounded: never more than the cap, never less than half the
        // exponential step.
        for attempt in 1..8u32 {
            for seed in 0..32u64 {
                let d = backoff_delay(seed, 99, attempt, base, cap);
                assert!(d <= cap, "attempt {attempt} seed {seed}: {d:?}");
                assert!(d >= base / 2, "attempt {attempt} seed {seed}: {d:?}");
            }
        }
        // Exponential-ish: attempt 4's floor exceeds attempt 1's cap.
        let early_max = base.mul_f64(1.0);
        let late_min = backoff_delay(7, 7, 4, base, cap);
        assert!(late_min > early_max, "{late_min:?} vs {early_max:?}");
        // Jittered: distinct seeds give a spread of delays.
        let distinct: std::collections::HashSet<Duration> = (0..64u64)
            .map(|seed| backoff_delay(seed, 5, 2, base, cap))
            .collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct delays",
            distinct.len()
        );
    }
}
