//! # oraql — Optimistic Responses to Alias Queries
//!
//! The paper's primary contribution: a *last-resort* alias analysis that
//! answers the queries no conservative analysis could resolve according
//! to a predetermined decision sequence, plus the probing driver and
//! verification harness that search for a locally maximal set of
//! queries answerable "no-alias" without changing program output.
//!
//! Components (paper §IV):
//!
//! * [`pass::OraqlAA`] — the alias-analysis pass (§IV-A): consumes a
//!   0/1 decision sequence, caches decisions per unordered pointer pair
//!   (location sizes ignored), answers optimistically past the end of
//!   the sequence, reports its unique-query count through the statistics
//!   interface, and can be restricted to source files and compilation
//!   targets (§IV-E).
//! * [`driver::Driver`] — the probing driver (§IV-B): baseline compile,
//!   full-optimism fast path, recursive bisection with the *chunked*
//!   and *frequency-space* strategies ([`strategy`]), shared verdict
//!   caches (executable hash + decisions digest) and the Fig. 2
//!   deduction rule. Probes run speculatively on a bounded worker
//!   pool ([`pool`]) when `jobs > 1`; `jobs = 1` reproduces the
//!   sequential driver byte-for-byte.
//! * [`trace`] — probe-trace observability: a JSONL event stream
//!   recording how every probe was answered (executed / cached /
//!   store / deduced), consumed by [`report`] summaries.
//! * [`store`] (the `oraql-store` crate) — the crash-safe persistent
//!   verdict store: an append-only, checksummed, content-addressed
//!   journal that makes warm re-runs answer probes without compiling.
//!   Attached via [`DriverOptions`]'s `store` field (`--store` in the
//!   CLI) as a write-through tier behind [`driver::VerdictCaches`].
//! * [`served`] (the `oraql-served` crate) — the shared verdict
//!   *server*: a daemon owning sharded journals, answering lookups from
//!   an in-memory index and batching appends with group fsync, so many
//!   concurrent drivers share one probe corpus. Attached via
//!   [`DriverOptions`]'s `server` field (`--server ADDR` in the CLI) as
//!   a third cache tier behind the local store, with circuit-breaker
//!   fallback when the daemon is unreachable.
//! * [`verify::Verifier`] — the verification script (§IV-C): compares
//!   program output against one or more references, ignoring volatile
//!   lines via [`textpat`] patterns.
//! * [`report`] — static impact identification (§IV-D): Fig. 3-style
//!   dumps of (non-)cached optimistic/pessimistic queries with source
//!   locations and the issuing pass.
//! * [`mod@compile`] — the "compiler": conservative AA chain + ORAQL last,
//!   the standard pipeline from `oraql-passes`, machine statistics.
//! * [`config`] — benchmark description files for the CLI driver.
//! * [`truth`] — ground-truth alias labels and the corpus soundness
//!   gate: generated workloads (`oraql-gen`) attach a label map to
//!   [`DriverOptions`] and the driver cross-checks every final verdict
//!   against it, failing loudly on optimism kept on a genuinely
//!   aliasing pair.

pub mod compile;
pub mod config;
pub mod driver;
pub mod pass;
pub mod pool;
pub mod report;
pub mod sequence;
pub mod strategy;
pub mod textpat;
pub mod trace;
pub mod truth;
pub mod verify;

pub use oraql_faults as faults;
pub use oraql_served as served;
pub use oraql_store as store;

pub use compile::{compile, CompileOptions, Compiled, Scope};
pub use driver::{
    run_many, run_suite, Driver, DriverError, DriverOptions, DriverResult, FailureStats,
    ProbeFailure, TestCase, VerdictCaches,
};
pub use oraql_faults::{FaultInjector, FaultPlan, FaultSite, InjectedPanic};
pub use oraql_store::{StatsSnapshot, Store, StoreError, StoreStats};
pub use pass::{OraqlAA, OraqlShared, OraqlStats};
pub use pool::{CancelToken, SubmitError, WorkerPool};
pub use sequence::Decisions;
pub use strategy::Strategy;
pub use trace::{read_trace, ProbeEvent, ProbeKind, TraceSink};
pub use truth::{GroundTruth, Label, TruthReport};
pub use verify::Verifier;
