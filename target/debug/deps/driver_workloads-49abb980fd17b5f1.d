/root/repo/target/debug/deps/driver_workloads-49abb980fd17b5f1.d: tests/driver_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libdriver_workloads-49abb980fd17b5f1.rmeta: tests/driver_workloads.rs Cargo.toml

tests/driver_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
