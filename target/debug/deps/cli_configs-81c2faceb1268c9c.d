/root/repo/target/debug/deps/cli_configs-81c2faceb1268c9c.d: tests/cli_configs.rs Cargo.toml

/root/repo/target/debug/deps/libcli_configs-81c2faceb1268c9c.rmeta: tests/cli_configs.rs Cargo.toml

tests/cli_configs.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
