(function() {
    const implementors = Object.fromEntries([["oraql",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"oraql/driver/enum.DriverError.html\" title=\"enum oraql::driver::DriverError\">DriverError</a>",0]]],["oraql_ir",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"struct\" href=\"oraql_ir/verify/struct.VerifyError.html\" title=\"struct oraql_ir::verify::VerifyError\">VerifyError</a>",0]]],["oraql_vm",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"oraql_vm/interp/enum.RuntimeError.html\" title=\"enum oraql_vm::interp::RuntimeError\">RuntimeError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[280,296,293]}