//! End-to-end soundness gate for generated corpora: the labels that
//! `oraql-gen` constructs must agree with the verdicts the driver
//! actually reaches, under every execution mode we ship — sequential,
//! parallel + speculative, and chaos fault injection. The contract:
//!
//! * same plan string → byte-identical corpus on disk,
//! * every labelled violating pair ends pessimistic (zero entries in
//!   `TruthReport::violations`), at any jobs × speculate-depth point,
//! * a wrong label is *caught*, not absorbed: flipping a safe pair to
//!   `Must` fails the run with `DriverError::SoundnessViolation`,
//! * fault injection can cost optimism but never buys it back on an
//!   aliasing pair — the gate stays clean across the chaos seed matrix.

use std::sync::Arc;

use oraql_suite::gen::{resolve, suite, write_corpus, GenPlan, Motif};
use oraql_suite::oraql::faults::quiet_injected_panics;
use oraql_suite::oraql::{
    run_suite, Driver, DriverError, DriverOptions, FaultInjector, FaultPlan, GroundTruth, Label,
    TruthReport,
};

/// Modest case count keeps the jobs × depth matrix fast in debug mode
/// while still sampling every motif family many times over.
const PLAN: &str = "seed=2024,cases=24,motifs=red+outlined+aos+csr+halo,per=3";

fn gated_opts(truth: GroundTruth) -> DriverOptions {
    DriverOptions {
        ground_truth: Some(Arc::new(truth)),
        ..Default::default()
    }
}

/// Folds every case's `TruthReport` into a suite total, failing the
/// test on any driver error along the way.
fn run_gated(plan: &GenPlan, mut opts: DriverOptions) -> TruthReport {
    let (cases, truth) = suite(plan);
    opts.ground_truth = Some(Arc::new(truth));
    let mut total = TruthReport::default();
    for (case, r) in cases.iter().zip(run_suite(&cases, &opts)) {
        let r = r.unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let t = r
            .truth
            .as_ref()
            .unwrap_or_else(|| panic!("{}: gate produced no truth report", case.name));
        total.absorb(t);
    }
    total
}

#[test]
fn same_plan_regenerates_a_byte_identical_corpus() {
    let plan = GenPlan::parse("seed=99,cases=12,per=2").unwrap();
    let base = std::env::temp_dir().join("oraql_gen_soundness_corpus");
    let (a, b) = (base.join("a"), base.join("b"));
    let sa = write_corpus(&plan, &a).unwrap();
    let sb = write_corpus(&plan, &b).unwrap();
    assert_eq!(sa.cases, 12);
    assert_eq!(sa.labels, sb.labels);
    let mut names: Vec<_> = std::fs::read_dir(&a)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    names.sort();
    assert_eq!(names.len(), 13, "12 configs + MANIFEST");
    for name in names {
        let fa = std::fs::read(a.join(&name)).unwrap();
        let fb = std::fs::read(b.join(&name)).unwrap();
        assert_eq!(fa, fb, "{name:?} differs between two writes");
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Labels and verdicts agree at every jobs × speculate-depth point. The
/// exact optimism split can shift with scheduling (speculation warms
/// different cache entries), but soundness cannot: violations stay
/// empty and every violating-labelled pair is pinned.
#[test]
fn labels_agree_with_verdicts_across_jobs_and_depth() {
    let plan = GenPlan::parse(PLAN).unwrap();
    for jobs in [1usize, 4] {
        for depth in [0u32, 3] {
            let t = run_gated(
                &plan,
                DriverOptions {
                    jobs,
                    speculate_depth: depth,
                    ..Default::default()
                },
            );
            assert!(
                t.clean(),
                "jobs={jobs} depth={depth}: {}",
                t.describe_violations()
            );
            assert!(t.checked > 0, "jobs={jobs} depth={depth}: nothing checked");
            assert!(
                t.pessimism_held > 0,
                "jobs={jobs} depth={depth}: no violating pair was ever pinned"
            );
            assert!(
                t.optimism_confirmed > 0,
                "jobs={jobs} depth={depth}: no safe pair ever stayed optimistic"
            );
        }
    }
}

/// A deliberately wrong label must trip the gate, not pass silently:
/// mislabel a provably-disjoint pair as `Must` and the driver's kept
/// optimism on it becomes a `SoundnessViolation`.
#[test]
fn mislabelled_safe_pair_trips_the_gate() {
    let plan = GenPlan {
        motifs: vec![Motif::Red],
        cases: 16,
        per_case: 2,
        ..GenPlan::default()
    };
    let (cases, truth) = suite(&plan);
    // Find a case carrying at least one `No`-labelled pair and rebuild
    // its truth with every such pair flipped to the violating label.
    let mut tripped = false;
    for case in &cases {
        let no_pairs: Vec<_> = truth
            .pairs()
            .filter(|p| p.case == case.name && p.label == Label::No)
            .collect();
        if no_pairs.is_empty() {
            continue;
        }
        let mut bad = GroundTruth::new();
        for p in &no_pairs {
            bad.insert(&p.case, &p.func, p.a, p.b, Label::Must);
        }
        match Driver::run(case, gated_opts(bad)) {
            Err(DriverError::SoundnessViolation(msg)) => {
                assert!(msg.contains("must"), "unexpected message: {msg}");
                tripped = true;
                break;
            }
            Err(e) => panic!("expected SoundnessViolation, got {e}"),
            Ok(_) => panic!("mislabelled corpus passed the gate"),
        }
    }
    assert!(tripped, "plan produced no disjoint red pair to mislabel");
}

/// Chaos seed matrix: fault injection degrades toward pessimism only,
/// so the gate stays clean under every seed — faults may cost
/// `missed_optimism`, but a quarantined probe can never re-enable
/// optimism on an aliasing pair.
#[test]
fn chaos_faults_gain_no_optimism_on_aliasing_pairs() {
    quiet_injected_panics();
    let plan = GenPlan::parse("seed=7,cases=12,per=2").unwrap();
    for seed in [1u64, 42, 1337] {
        let spec = format!(
            "seed={seed},compile-panic=1/16,vm-trap=1/24,vm-fuel-lie=1/24,\
             probe-delay=1/32,output-garble=1/24,store-read-corrupt=1/16"
        );
        let fault_plan = FaultPlan::parse(&spec).unwrap();
        let t = run_gated(
            &plan,
            DriverOptions {
                faults: Some(Arc::new(FaultInjector::new(fault_plan))),
                ..Default::default()
            },
        );
        assert!(t.clean(), "seed={seed}: {}", t.describe_violations());
        assert!(t.checked > 0, "seed={seed}: nothing checked");
    }
}

/// `resolve` reconstructs both the case and its truth from the name
/// alone, and the reconstructed truth drives the gate identically.
#[test]
fn resolved_case_carries_its_own_truth() {
    let plan = GenPlan::parse("seed=5,cases=4,per=2").unwrap();
    let name = oraql_suite::gen::case_name(&plan, 2);
    let gc = resolve(&name).expect("name resolves");
    let r = Driver::run(&gc.case, gated_opts(gc.truth)).unwrap();
    let t = r.truth.expect("gate ran");
    assert!(t.clean() && t.checked > 0);
}
