//! # oraql-workloads — the seven HPC proxy applications
//!
//! IR generators mirroring the paper's evaluation benchmarks (Fig. 4's
//! sixteen configurations):
//!
//! | module | benchmark | configurations |
//! |---|---|---|
//! | [`testsnap`] | TestSNAP (LAMMPS SNAP force) | C++, OpenMP, Kokkos/CUDA, Fortran |
//! | [`xsbench`] | XSBench (OpenMC lookup) | C, OpenMP, CUDA/Thrust |
//! | [`gridmini`] | GridMini (lattice QCD SU3) | OpenMP offload |
//! | [`quicksilver`] | Quicksilver (Mercury MC) | OpenMP |
//! | [`lulesh`] | LULESH (shock hydro) | C++, OpenMP, MPI |
//! | [`minife`] | MiniFE (implicit FE) | OpenMP |
//! | [`minigmg`] | MiniGMG (geometric multigrid) | ompif, omptask, SSE |
//!
//! Each configuration is a [`oraql::TestCase`]: a deterministic module
//! builder, an ORAQL scope (file / device restriction) and the ignore
//! patterns for its volatile output lines. The problem sizes are scaled
//! down from the paper's testbed so a full Fig. 4 sweep completes in
//! minutes; the *shape* of the results (which configurations verify
//! fully optimistically, where the pessimistic queries live, which pass
//! statistics move) is preserved. See `EXPERIMENTS.md`.

pub mod amg;
pub mod analyze;
pub mod gencli;
pub mod gridmini;
pub mod lulesh;
pub mod minife;
pub mod minigmg;
pub mod quicksilver;
pub mod sw4lite;
pub mod testsnap;
pub mod toolkit;
pub mod xsbench;

use oraql::TestCase;

/// Metadata for the Fig. 4 table rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseInfo {
    /// Configuration name (also the `TestCase` name).
    pub name: &'static str,
    /// Benchmark column.
    pub benchmark: &'static str,
    /// Programming-model column.
    pub model: &'static str,
    /// Source-files column (the ORAQL scope).
    pub source_files: &'static str,
}

/// The sixteen configurations in the paper's Fig. 4 row order.
pub const CASE_INFOS: [CaseInfo; 16] = [
    CaseInfo {
        name: "testsnap",
        benchmark: "TestSNAP",
        model: "C++",
        source_files: "sna",
    },
    CaseInfo {
        name: "testsnap_omp",
        benchmark: "TestSNAP",
        model: "C++, OpenMP",
        source_files: "sna",
    },
    CaseInfo {
        name: "testsnap_kokkos",
        benchmark: "TestSNAP",
        model: "C++, Kokkos, CUDA",
        source_files: "sna",
    },
    CaseInfo {
        name: "testsnap_fortran",
        benchmark: "TestSNAP",
        model: "Fortran",
        source_files: "all (manual LTO)",
    },
    CaseInfo {
        name: "xsbench",
        benchmark: "XSBench",
        model: "C",
        source_files: "Simulation",
    },
    CaseInfo {
        name: "xsbench_omp",
        benchmark: "XSBench",
        model: "C, OpenMP",
        source_files: "Simulation",
    },
    CaseInfo {
        name: "xsbench_cuda",
        benchmark: "XSBench",
        model: "CUDA, Thrust",
        source_files: "Simulation",
    },
    CaseInfo {
        name: "gridmini",
        benchmark: "GridMini",
        model: "C++, OpenMP Offload",
        source_files: "Benchmark_su3",
    },
    CaseInfo {
        name: "quicksilver",
        benchmark: "Quicksilver",
        model: "C++, OpenMP",
        source_files: "all (manual LTO)",
    },
    CaseInfo {
        name: "lulesh",
        benchmark: "LULESH",
        model: "C++",
        source_files: "lulesh",
    },
    CaseInfo {
        name: "lulesh_omp",
        benchmark: "LULESH",
        model: "C++, OpenMP",
        source_files: "lulesh",
    },
    CaseInfo {
        name: "lulesh_mpi",
        benchmark: "LULESH",
        model: "C++, MPI",
        source_files: "lulesh",
    },
    CaseInfo {
        name: "minife",
        benchmark: "MiniFE",
        model: "C++, OpenMP",
        source_files: "main",
    },
    CaseInfo {
        name: "minigmg_ompif",
        benchmark: "MiniGMG",
        model: "C, OpenMP",
        source_files: "operators.ompif",
    },
    CaseInfo {
        name: "minigmg_omptask",
        benchmark: "MiniGMG",
        model: "C, OpenMP tasks",
        source_files: "operators.omptask",
    },
    CaseInfo {
        name: "minigmg_sse",
        benchmark: "MiniGMG",
        model: "C, SSE intrinsics",
        source_files: "operators.sse",
    },
];

/// Extra proxies beyond the paper's Fig. 4 table: hand-written models
/// of the aliasing motifs the `oraql-gen` corpus generalizes (CSR with
/// type-punned workspace views; zero-copy halo exchange). Kept out of
/// [`CASE_INFOS`] so the Fig. 4 sweep and its reports are unchanged.
pub const EXTRA_CASE_INFOS: [CaseInfo; 2] = [
    CaseInfo {
        name: "amg_csr",
        benchmark: "AMG",
        model: "C, CSR + punned workspace",
        source_files: "amg",
    },
    CaseInfo {
        name: "sw4lite_halo",
        benchmark: "SW4lite",
        model: "C, MPI halo (zero-copy)",
        source_files: "sw4lite",
    },
];

/// Builds all sixteen test cases, in Fig. 4 row order.
pub fn all_cases() -> Vec<TestCase> {
    let mut v = Vec::new();
    v.extend(testsnap::cases());
    v.extend(xsbench::cases());
    v.extend(gridmini::cases());
    v.extend(quicksilver::cases());
    v.extend(lulesh::cases());
    v.extend(minife::cases());
    v.extend(minigmg::cases());
    v
}

/// Builds the extra (non-Fig. 4) test cases, in [`EXTRA_CASE_INFOS`]
/// order.
pub fn extra_cases() -> Vec<TestCase> {
    let mut v = Vec::new();
    v.extend(amg::cases());
    v.extend(sw4lite::cases());
    v
}

/// Builds one test case by configuration name (Fig. 4 rows first, then
/// the extra proxies).
pub fn find_case(name: &str) -> Option<TestCase> {
    all_cases()
        .into_iter()
        .chain(extra_cases())
        .find(|c| c.name == name)
}

/// Metadata lookup by configuration name.
pub fn find_info(name: &str) -> Option<CaseInfo> {
    CASE_INFOS
        .iter()
        .chain(EXTRA_CASE_INFOS.iter())
        .copied()
        .find(|i| i.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraql_vm::Interpreter;

    #[test]
    fn registry_is_complete_and_ordered() {
        let cases = all_cases();
        assert_eq!(cases.len(), 16);
        for (case, info) in cases.iter().zip(CASE_INFOS.iter()) {
            assert_eq!(case.name, info.name);
        }
    }

    #[test]
    fn every_case_builds_verifies_and_runs() {
        for case in all_cases() {
            let m = (case.build)();
            oraql_ir::verify::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            let out = Interpreter::run_main(&m).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            assert!(
                out.stdout.contains("checksum"),
                "{}: {}",
                case.name,
                out.stdout
            );
            assert!(out.stdout.contains("Runtime: "), "{}", case.name);
        }
    }

    #[test]
    fn builders_are_deterministic() {
        for case in all_cases() {
            let a = oraql_ir::printer::module_str(&(case.build)());
            let b = oraql_ir::printer::module_str(&(case.build)());
            assert_eq!(a, b, "{} build is nondeterministic", case.name);
        }
    }

    #[test]
    fn find_case_resolves_names() {
        assert!(find_case("lulesh_mpi").is_some());
        assert!(find_case("nonexistent").is_none());
        assert_eq!(find_info("gridmini").unwrap().model, "C++, OpenMP Offload");
        assert!(find_case("amg_csr").is_some());
        assert!(find_case("sw4lite_halo").is_some());
        assert_eq!(find_info("amg_csr").unwrap().benchmark, "AMG");
    }

    #[test]
    fn extra_cases_build_verify_and_run() {
        let cases = extra_cases();
        assert_eq!(cases.len(), EXTRA_CASE_INFOS.len());
        for (case, info) in cases.iter().zip(EXTRA_CASE_INFOS.iter()) {
            assert_eq!(case.name, info.name);
            let m = (case.build)();
            oraql_ir::verify::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            let out = Interpreter::run_main(&m).unwrap_or_else(|e| panic!("{}: {e}", case.name));
            assert!(out.stdout.contains("checksum"), "{}", case.name);
            assert!(out.stdout.contains("Runtime: "), "{}", case.name);
            let a = oraql_ir::printer::module_str(&(case.build)());
            let b = oraql_ir::printer::module_str(&(case.build)());
            assert_eq!(a, b, "{} build is nondeterministic", case.name);
        }
    }
}
